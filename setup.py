"""Packaging for the Delta-net (NSDI'17) reproduction.

Kept as a classic ``setup.py`` (rather than pyproject-only metadata) so
``pip install -e . --no-use-pep517`` works in offline sandboxes that
ship setuptools but not ``wheel``.  Installs the ``repro`` package from
the ``src/`` layout and the ``deltanet`` console entry point documented
in :mod:`repro.cli`.
"""

import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    """Read __version__ from src/repro/__init__.py without importing it."""
    init_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "src", "repro", "__init__.py")
    with open(init_path, encoding="utf-8") as stream:
        match = re.search(r'^__version__ = "([^"]+)"', stream.read(),
                          re.MULTILINE)
    return match.group(1) if match else "0.0.0"


setup(
    name="deltanet-repro",
    version=_version(),
    description=("Reproduction of Delta-net: Real-time Network "
                 "Verification Using Atoms (NSDI 2017), with a unified "
                 "multi-backend verification API"),
    long_description=("See README/docs/api.md: VerificationSession over "
                      "pluggable backends (deltanet, veriflow, apv, "
                      "netplumber, sharded) with property subscriptions."),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # 3.9 is the floor actually exercised by CI (int.bit_count fallback
    # and typing usage assume it); 3.13 is the ceiling in the matrix.
    python_requires=">=3.9",
    install_requires=[],  # stdlib only, by design
    extras_require={
        # Minimum versions the twin property suites (hypothesis
        # state-machine gc-equivalence + persist crash-recovery) and the
        # coverage gate rely on; requirements-dev.txt mirrors these.
        "test": [
            "pytest>=7.4",
            "pytest-benchmark>=4.0",
            "pytest-cov>=4.1",
            "hypothesis>=6.80",
        ],
    },
    entry_points={
        "console_scripts": [
            "deltanet = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.13",
        "Topic :: System :: Networking",
    ],
)
