#!/usr/bin/env python3
"""Pre-deployment analysis: Algorithm 3 and policy checks (paper §3.3).

Design goal 3: when real-time constraints are relaxed (pre-deployment
testing), Delta-net's lattice-theoretic representation supports broader
queries.  This example builds a fat-tree data plane and runs:

  * Algorithm 3 — the atom-labelled Floyd–Warshall transitive closure
    answering *all-pairs* reachability for *all* packets at once,
  * a waypoint policy check (must all cross-pod traffic pass the core?),
  * a tenant-isolation check over two prefix slices.

Run:  python examples/all_pairs_reachability.py
"""

from repro.bgp.prefixes import PrefixPool
from repro.checkers.allpairs import (
    all_pairs_reachability, loops_from_closure, reachability_matrix,
)
from repro.checkers.isolation import check_isolation
from repro.checkers.waypoint import check_waypoint
from repro.core.deltanet import DeltaNet
from repro.routing.rulegen import ShortestPathRuleGenerator
from repro.topology.generators import fat_tree


def main() -> None:
    topology = fat_tree(4)
    pool = PrefixPool(seed=11)
    generator = ShortestPathRuleGenerator(topology, seed=11)
    net = DeltaNet()

    # Route 40 prefixes to edge switches across the pods.
    edges = sorted(n for n in topology.nodes if str(n).startswith("e"))
    prefixes = pool.sample(40)
    for index, prefix in enumerate(prefixes):
        destination = edges[index % len(edges)]
        for rule in generator.rules_for_prefix(prefix, destination=destination,
                                               priority=prefix[1]):
            net.insert_rule(rule)
    print(f"fat-tree(4): {topology.num_nodes} switches, "
          f"{net.num_rules} rules, {net.num_atoms} atoms")

    # -- Algorithm 3 ----------------------------------------------------------
    closure = all_pairs_reachability(net)
    print(f"\nAlgorithm 3 closure: {len(closure)} reachable (src, dst) pairs")
    src, dst = "e0_0", "e3_1"
    atoms = reachability_matrix(closure, src, dst)
    spans = sorted(net.atoms.atom_interval(a) for a in atoms)[:3]
    print(f"  {src} -> {dst}: {len(atoms)} packet classes; "
          f"first intervals {spans}")
    print(f"  forwarding loops on the diagonal: "
          f"{len(loops_from_closure(closure))}")

    # -- waypoint policy --------------------------------------------------------
    bypassing = check_waypoint(net, "e0_0", "e1_0", "a0_0")
    print(f"\nwaypoint check (e0_0 -> e1_0 must pass a0_0): "
          f"{len(bypassing)} bypassing classes "
          f"({'violated' if bypassing else 'holds'})")

    # -- tenant isolation --------------------------------------------------------
    slice_a = [PrefixPool.to_interval(p) for p in prefixes[:5]]
    slice_b = [PrefixPool.to_interval(p) for p in prefixes[5:10]]
    offenders = check_isolation(net, slice_a, slice_b)
    print(f"isolation check (tenant A: 5 prefixes, tenant B: 5 prefixes): "
          f"{len(offenders)} links carry both tenants")
    for link in list(offenders)[:3]:
        print(f"  shared: {link}")
    print("\n(shared core links are expected in a fat-tree unless slices "
          "are pinned to disjoint paths)")


if __name__ == "__main__":
    main()
