#!/usr/bin/env python3
"""Pre-deployment analysis: Algorithm 3 and policy checks (paper §3.3).

Design goal 3: when real-time constraints are relaxed (pre-deployment
testing), Delta-net's lattice-theoretic representation supports broader
queries.  This example builds a fat-tree data plane through a
:class:`repro.VerificationSession` and runs:

  * Algorithm 3 — the atom-labelled Floyd–Warshall transitive closure
    answering *all-pairs* reachability for *all* packets at once (a
    Delta-net-specific analysis, reached through ``session.native``),
  * a waypoint policy check (must all cross-pod traffic pass the core?)
    via the backend-agnostic :class:`repro.WaypointProperty`,
  * a tenant-isolation check over two prefix slices via
    :class:`repro.IsolationProperty`.

Run:  python examples/all_pairs_reachability.py
"""

from repro import IsolationProperty, VerificationSession, WaypointProperty
from repro.bgp.prefixes import PrefixPool
from repro.checkers.allpairs import (
    all_pairs_reachability, loops_from_closure, reachability_matrix,
)
from repro.routing.rulegen import ShortestPathRuleGenerator
from repro.topology.generators import fat_tree


def main() -> None:
    topology = fat_tree(4)
    pool = PrefixPool(seed=11)
    generator = ShortestPathRuleGenerator(topology, seed=11)
    session = VerificationSession("deltanet")

    # Route 40 prefixes to edge switches across the pods (one batch —
    # pre-deployment loading needs no per-rule checking).
    edges = sorted(n for n in topology.nodes if str(n).startswith("e"))
    prefixes = pool.sample(40)
    with session.batch():
        for index, prefix in enumerate(prefixes):
            destination = edges[index % len(edges)]
            for rule in generator.rules_for_prefix(
                    prefix, destination=destination, priority=prefix[1]):
                session.insert(rule)
    stats = session.stats()
    print(f"fat-tree(4): {topology.num_nodes} switches, "
          f"{stats['rules']} rules, {stats['atoms']} atoms")

    # -- Algorithm 3 (Delta-net-specific; session.native escape hatch) --------
    net = session.native
    closure = all_pairs_reachability(net)
    print(f"\nAlgorithm 3 closure: {len(closure)} reachable (src, dst) pairs")
    src, dst = "e0_0", "e3_1"
    atoms = reachability_matrix(closure, src, dst)
    spans = sorted(net.atoms.atom_interval(a) for a in atoms)[:3]
    print(f"  {src} -> {dst}: {len(atoms)} packet classes; "
          f"first intervals {spans}")
    print(f"  forwarding loops on the diagonal: "
          f"{len(loops_from_closure(closure))}")
    print(f"  (uniform query agrees: session.reachable gives "
          f"{len(session.reachable(src, dst))} interval(s))")

    # -- waypoint policy --------------------------------------------------------
    bypassing = session.check(WaypointProperty("e0_0", "e1_0", "a0_0"))
    print(f"\nwaypoint check (e0_0 -> e1_0 must pass a0_0): "
          f"{'violated' if bypassing else 'holds'}")
    for violation in bypassing:
        print(f"  {violation}")

    # -- tenant isolation --------------------------------------------------------
    slice_a = [PrefixPool.to_interval(p) for p in prefixes[:5]]
    slice_b = [PrefixPool.to_interval(p) for p in prefixes[5:10]]
    offenders = session.check(IsolationProperty(slice_a, slice_b))
    print(f"isolation check (tenant A: 5 prefixes, tenant B: 5 prefixes): "
          f"{len(offenders)} links carry both tenants")
    for violation in offenders[:3]:
        print(f"  shared: {violation.signature[1]}")
    print("\n(shared core links are expected in a fat-tree unless slices "
          "are pinned to disjoint paths)")


if __name__ == "__main__":
    main()
