#!/usr/bin/env python3
"""Quickstart: verify a tiny data plane in real time.

Builds the forwarding table of the paper's Table 1 (a high-priority drop
rule shadowing part of a low-priority forward rule), inserts a few more
rules, and runs the per-update checks every SDN controller would want:
forwarding loops, black holes, and reachability.

Run:  python examples/quickstart.py
"""

from repro import DeltaNet, LoopChecker, reachable_atoms
from repro.checkers.blackholes import find_blackholes
from repro.core.rules import Action


def main() -> None:
    net = DeltaNet()               # IPv4: 32-bit destination addresses
    checker = LoopChecker(net)

    # -- Table 1: two rules on switch s1 ------------------------------------
    # High priority: drop 0.0.0.10/31.  Low priority: forward 0.0.0.0/28.
    r_high = net.make_rule(0, "0.0.0.10/31", priority=20, source="s1",
                           action=Action.DROP)
    r_low = net.make_rule(1, "0.0.0.0/28", priority=10, source="s1",
                          target="s2")
    for rule in (r_high, r_low):
        delta = net.insert_rule(rule)
        loops = checker.check_update(delta)
        print(f"inserted {rule}: {len(loops)} loops")

    print(f"\natoms: {net.num_atoms} "
          f"(the paper's Figure 5 segmentation plus the tail atom)")
    print("flows on s1->s2:", net.flows_on(("s1", "s2")))
    print("dropped at s1:  ", net.flows_on(("s1", "__drop__")))

    # -- grow the network ----------------------------------------------------
    net.insert_rule(net.make_rule(2, "0.0.0.0/28", 10, "s2", "s3"))
    delta = net.insert_rule(net.make_rule(3, "0.0.0.0/30", 30, "s3", "s1"))
    loops = checker.check_update(delta)
    print(f"\nafter closing s3->s1 for 0.0.0.0/30: {len(loops)} loop(s)")
    for loop in loops:
        lo, hi = net.atoms.atom_interval(loop.atom)
        print(f"  packets [{lo}:{hi}) cycle through {' -> '.join(map(str, loop.cycle))}")

    # -- reachability and black holes ---------------------------------------
    atoms = reachable_atoms(net, "s1", "s3")
    spans = sorted(net.atoms.atom_interval(a) for a in atoms)
    print(f"\npackets reaching s3 from s1: {spans}")
    holes = find_blackholes(net, expected_sinks=["s3"])
    print(f"black holes: { {n: len(a) for n, a in holes.items()} }")


if __name__ == "__main__":
    main()
