#!/usr/bin/env python3
"""Quickstart: verify a tiny data plane in real time.

Builds the forwarding table of the paper's Table 1 (a high-priority drop
rule shadowing part of a low-priority forward rule), inserts a few more
rules, and runs the per-update checks every SDN controller would want:
forwarding loops, black holes, and reachability — all through the
unified :class:`repro.VerificationSession` API, so swapping the paper's
verifier for any baseline is a one-word change.

Run:  python examples/quickstart.py            (Delta-net)
      BACKEND=veriflow python examples/quickstart.py
"""

import os

from repro import (
    BlackholeProperty, LoopProperty, ReachabilityProperty,
    VerificationSession,
)
from repro.core.rules import Action


def main() -> None:
    backend = os.environ.get("BACKEND", "deltanet")
    session = VerificationSession(backend)     # IPv4: 32-bit dst addresses
    session.watch(LoopProperty())

    # -- Table 1: two rules on switch s1 ------------------------------------
    # High priority: drop 0.0.0.10/31.  Low priority: forward 0.0.0.0/28.
    r_high = session.make_rule(0, "0.0.0.10/31", priority=20, source="s1",
                               action=Action.DROP)
    r_low = session.make_rule(1, "0.0.0.0/28", priority=10, source="s1",
                              target="s2")
    for rule in (r_high, r_low):
        result = session.insert(rule)
        print(f"inserted {rule}: {len(result.violations)} violations "
              f"({result.latency * 1e6:.0f}us)")

    stats = session.stats()
    if "atoms" in stats:
        print(f"\natoms: {stats['atoms']} "
              f"(the paper's Figure 5 segmentation plus the tail atom)")
    print("flows on s1->s2:", session.flows_on(("s1", "s2")))
    print("dropped at s1:  ", session.flows_on(("s1", "__drop__")))

    # -- grow the network ----------------------------------------------------
    session.insert(session.make_rule(2, "0.0.0.0/28", 10, "s2", "s3"))
    result = session.insert(session.make_rule(3, "0.0.0.0/30", 30, "s3", "s1"))
    print(f"\nafter closing s3->s1 for 0.0.0.0/30: "
          f"{len(result.violations)} violation(s)")
    for violation in result.violations:
        print(f"  {violation}")
        print(f"    (cycling packet space: {session.flows_on(('s3', 's1'))})")

    # -- reachability and black holes ---------------------------------------
    spans = session.reachable("s1", "s3")
    print(f"\npackets reaching s3 from s1: {spans}")
    holes = session.check(BlackholeProperty(expected_sinks=["s3"]))
    print(f"black holes: {[str(v) for v in holes] or 'none'}")
    unreached = session.check(ReachabilityProperty("s1", "s3"))
    print(f"reachability s1->s3: {'violated' if unreached else 'holds'}")


if __name__ == "__main__":
    main()
