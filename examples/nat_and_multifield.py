#!/usr/bin/env python3
"""Extensions beyond the paper's core: NAT rewriting and port matching.

Demonstrates the two extension mechanisms the paper sketches:

* §4.1 — composite matches: rules that also match the switch *input
  port*, encoded as separate graph nodes (one per ``(switch, port)``),
* §6 (future work) — stateless packet modification: a NAT boundary that
  rewrites a private destination prefix onto a public one, with
  reachability answered in the sender's original address space.

Run:  python examples/nat_and_multifield.py
"""

from repro.core.deltanet import DeltaNet
from repro.core.multifield import FieldSchema, MultiFieldDeltaNet
from repro.core.prefix import prefix_to_interval
from repro.core.rewrite import (
    PrefixRewrite, RewriteTable, reachable_intervals_with_rewrites,
)
from repro.core.rules import Rule


def port_matching_demo() -> None:
    print("=" * 72)
    print("Composite matches: (in_port, dst prefix) rules  (paper §4.1)")
    print("=" * 72)
    schema = FieldSchema(["in_port"], domains=[(1, 2, 3)])
    mf = MultiFieldDeltaNet(schema, width=32)

    lo, hi = prefix_to_interval("10.0.0.0/8")
    # Port-agnostic baseline route...
    mf.insert_rule(0, lo, hi, priority=8, switch="edge", fields=[None],
                   target="core")
    # ...but traffic arriving on port 3 (the scrubbing appliance uplink)
    # is steered to a monitor instead.
    mf.insert_rule(1, lo, hi, priority=100, switch="edge", fields=[3],
                   target="monitor")

    for port in (1, 2, 3):
        flows = mf.flows_on("edge", (port,), "core")
        steered = mf.flows_on("edge", (port,), "monitor")
        print(f"  port {port}: to core {flows or '—'}, "
              f"to monitor {steered or '—'}")
    print(f"  graph encodes {mf.num_nodes} nodes for 3 switches "
          f"(one per (switch, port)) and {mf.num_atoms} atoms\n")


def nat_demo() -> None:
    print("=" * 72)
    print("NAT-style prefix rewriting on a link  (paper §6, future work)")
    print("=" * 72)
    net = DeltaNet()
    private_lo, private_hi = prefix_to_interval("192.168.0.0/16")
    public_lo, public_hi = prefix_to_interval("203.0.113.0/24")

    # Inside: the gateway forwards private-destined traffic to the NAT.
    net.insert_rule(Rule.forward(0, private_lo, private_hi, 10,
                                 "lan", "nat"))
    # The NAT's egress link translates 192.168.0.0/24 -> 203.0.113.0/24.
    nat_match_lo, nat_match_hi = prefix_to_interval("192.168.0.0/24")
    rewrites = RewriteTable()
    rewrites.add(("nat", "wan"), PrefixRewrite(nat_match_lo, nat_match_hi,
                                               public_lo))
    net.insert_rule(Rule.forward(1, private_lo, private_hi, 10,
                                 "nat", "wan"))
    # Outside: the WAN router only carries public space.
    net.insert_rule(Rule.forward(2, public_lo, public_hi, 10,
                                 "wan", "internet"))

    reach = reachable_intervals_with_rewrites(net, rewrites,
                                              "lan", "internet")
    print("  packets the LAN can address to reach the internet "
          "(original coordinates):")
    for lo, hi in reach.spans:
        print(f"    [{lo}:{hi})  (= 192.168.0.0/24 pre-NAT)")
    without = reachable_intervals_with_rewrites(net, RewriteTable(),
                                                "lan", "internet")
    print(f"  without the NAT rewrite: {without.spans or 'nothing'} — the "
          f"WAN router never matches private space")


if __name__ == "__main__":
    port_matching_demo()
    nat_demo()
