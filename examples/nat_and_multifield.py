#!/usr/bin/env python3
"""Extensions beyond the paper's core: NAT rewriting and port matching.

Demonstrates the two extension mechanisms the paper sketches:

* §4.1 — composite matches: rules that also match the switch *input
  port*, encoded as separate graph nodes (one per ``(switch, port)``),
* §6 (future work) — stateless packet modification: a NAT boundary that
  rewrites a private destination prefix onto a public one, with
  reachability answered in the sender's original address space.

The NAT demo drives its Delta-net through the unified
:class:`repro.VerificationSession`; the rewrite analysis itself needs
the native atom structures (``session.native``), and the multi-field
graph is a separate structure outside the single-field backend protocol.

Run:  python examples/nat_and_multifield.py
"""

from repro import VerificationSession
from repro.core.multifield import FieldSchema, MultiFieldDeltaNet
from repro.core.prefix import prefix_to_interval
from repro.core.rewrite import (
    PrefixRewrite, RewriteTable, reachable_intervals_with_rewrites,
)
from repro.core.rules import Rule


def port_matching_demo() -> None:
    print("=" * 72)
    print("Composite matches: (in_port, dst prefix) rules  (paper §4.1)")
    print("=" * 72)
    schema = FieldSchema(["in_port"], domains=[(1, 2, 3)])
    mf = MultiFieldDeltaNet(schema, width=32)

    lo, hi = prefix_to_interval("10.0.0.0/8")
    # Port-agnostic baseline route...
    mf.insert_rule(0, lo, hi, priority=8, switch="edge", fields=[None],
                   target="core")
    # ...but traffic arriving on port 3 (the scrubbing appliance uplink)
    # is steered to a monitor instead.
    mf.insert_rule(1, lo, hi, priority=100, switch="edge", fields=[3],
                   target="monitor")

    for port in (1, 2, 3):
        flows = mf.flows_on("edge", (port,), "core")
        steered = mf.flows_on("edge", (port,), "monitor")
        print(f"  port {port}: to core {flows or '—'}, "
              f"to monitor {steered or '—'}")
    print(f"  graph encodes {mf.num_nodes} nodes for 3 switches "
          f"(one per (switch, port)) and {mf.num_atoms} atoms\n")


def nat_demo() -> None:
    print("=" * 72)
    print("NAT-style prefix rewriting on a link  (paper §6, future work)")
    print("=" * 72)
    session = VerificationSession("deltanet")
    private_lo, private_hi = prefix_to_interval("192.168.0.0/16")
    public_lo, public_hi = prefix_to_interval("203.0.113.0/24")

    # Inside: the gateway forwards private-destined traffic to the NAT.
    # The NAT's egress link translates 192.168.0.0/24 -> 203.0.113.0/24.
    # Outside: the WAN router only carries public space.
    nat_match_lo, nat_match_hi = prefix_to_interval("192.168.0.0/24")
    rewrites = RewriteTable()
    rewrites.add(("nat", "wan"), PrefixRewrite(nat_match_lo, nat_match_hi,
                                               public_lo))
    with session.batch():
        session.insert(Rule.forward(0, private_lo, private_hi, 10,
                                    "lan", "nat"))
        session.insert(Rule.forward(1, private_lo, private_hi, 10,
                                    "nat", "wan"))
        session.insert(Rule.forward(2, public_lo, public_hi, 10,
                                    "wan", "internet"))

    # Without the rewrite, the uniform query sees the private space die
    # at the WAN router; the rewrite-aware analysis runs on the native
    # Delta-net underneath the session.
    print(f"  plain reachability lan->internet (no rewrite semantics): "
          f"{session.reachable('lan', 'internet') or 'nothing'}")
    reach = reachable_intervals_with_rewrites(session.native, rewrites,
                                              "lan", "internet")
    print("  packets the LAN can address to reach the internet "
          "(original coordinates):")
    for lo, hi in reach.spans:
        print(f"    [{lo}:{hi})  (= 192.168.0.0/24 pre-NAT)")
    without = reachable_intervals_with_rewrites(session.native, RewriteTable(),
                                                "lan", "internet")
    print(f"  without the NAT rewrite: {without.spans or 'nothing'} — the "
          f"WAN router never matches private space")


if __name__ == "__main__":
    port_matching_demo()
    nat_demo()
