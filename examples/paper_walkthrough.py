#!/usr/bin/env python3
"""The paper's running example, end to end (Figures 1, 2, 4 and Table 1).

Reproduces, with printed state at each step:

  1. the four-switch network with rules r1, r2, r3 and the atom
     segmentation of their overlapping prefixes (Figure 2, top),
  2. the insertion of higher-priority rule r4 at s1: the atom split, the
     label transfer from edge s1->s2 to s1->s4 (Figure 2, bottom), and
     the fact that only s1's rules are touched (Figure 4b),
  3. the Table 1 / §3.2.1 atom-splitting walkthrough (rH, rL, then rM,
     with CREATE_ATOMS+ returning the delta pair alpha0 -> alpha4).

Updates flow through :class:`repro.VerificationSession` (whose
``UpdateResult.delta`` is exactly the paper's delta-graph); the atom
table internals the figures visualize are reached through
``session.native``, the documented escape hatch for Delta-net-specific
introspection.

Run:  python examples/paper_walkthrough.py
"""

from repro import VerificationSession
from repro.core.rules import Rule


def show_labels(session: VerificationSession, title: str) -> None:
    net = session.native
    print(f"\n{title}")
    for link in sorted(session.links(), key=repr):
        atoms = net.label_of(link)
        if not atoms:
            continue
        spans = session.flows_on(link)
        names = ", ".join(f"a{a}" for a in sorted(atoms))
        print(f"  {link}: {{{names}}}  = {spans}")


def figure_2_and_4() -> None:
    print("=" * 72)
    print("Figures 1/2/4 — transforming a single edge-labelled graph")
    print("=" * 72)
    session = VerificationSession("deltanet", width=8)
    # Overlapping prefixes drawn as the parallel lines of Figure 1.
    session.insert(Rule.forward(1, 10, 60, 1, "s1", "s2"))  # r1
    session.insert(Rule.forward(2, 20, 70, 1, "s2", "s3"))  # r2
    session.insert(Rule.forward(3, 30, 50, 1, "s3", "s4"))  # r3
    show_labels(session, "before r4 (Figure 2, top): rules r1, r2, r3")

    result = session.insert(Rule.forward(4, 15, 60, 9, "s1", "s4"))  # r4
    delta = result.delta
    show_labels(session, "after inserting high-priority r4 at s1 "
                         "(Figure 2, bottom)")
    print("\ndelta-graph of the update (only s1's edges change — Fig. 4b):")
    for link, atom, sign in sorted(delta.changes(), key=repr):
        print(f"  {'+' if sign > 0 else '-'} {link}: a{atom}")
    print(f"affected switches: {sorted(map(str, delta.affected_sources()))} "
          f"(Veriflow would traverse rules on every switch, Fig. 4a)")


def table_1_walkthrough() -> None:
    print("\n" + "=" * 72)
    print("Table 1 / §3.2.1 — atoms and CREATE_ATOMS+")
    print("=" * 72)
    session = VerificationSession("deltanet")  # 32-bit space, as in the paper
    net = session.native
    r_h = session.make_rule(0, "0.0.0.10/31", 30, "s", "hop_h")   # [10:12)
    r_l = session.make_rule(1, "0.0.0.0/28", 10, "s", "hop_l")    # [0:16)
    session.insert(r_h)
    session.insert(r_l)
    print("\nafter rH and rL, M's boundaries:", net.atoms.boundaries()[:-1],
          "(plus MAX)")
    print("atoms:", [(f"a{a}", span) for a, span in net.atoms.intervals()][:4])

    # rM = 0.0.0.8/30 = [8:12): priority between rL and rH.
    r_m = session.make_rule(2, "0.0.0.8/30", 20, "s", "hop_m")
    splits = net.atoms.peek_splits(r_m.lo, r_m.hi)
    print(f"\nCREATE_ATOMS+(rM) will split: "
          f"{[(f'a{atom}', span) for atom, span in splits]} "
          f"(the paper's alpha0 -> alpha4 split)")
    session.insert(r_m)
    show_labels(session, "labels after inserting rM")
    print("\nrH keeps [10:12); rM owns [8:10); rL keeps [0:8) and [12:16).")


if __name__ == "__main__":
    figure_2_and_4()
    table_1_walkthrough()
