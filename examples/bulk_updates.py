#!/usr/bin/env python3
"""Bulk rule pushes: batched updates and the parallel-sharded engine.

An SDN controller rarely gets one rule at a time — link failures and BGP
convergence push thousands of updates at once.  This example applies the
same update stream three ways through the one
:class:`repro.api.VerificationSession` surface:

1. the classic per-op path (one incremental check per rule),
2. ``session.apply_batch`` on the ``deltanet`` backend (one aggregated
   delta-graph, one check per batch),
3. the ``parallel`` backend — one worker process per header-space shard,
   Libra's map/reduce with real OS processes.

All three must agree on the final loop verdict; the throughput spread is
the point.

Run:  PYTHONPATH=src python examples/bulk_updates.py
"""

import random
import time

from repro.api import LoopProperty, VerificationSession
from repro.core.rules import Rule


def build_rules(count=4000, switches=24, prefixes=400, seed=42):
    """A synthetic convergence burst over a shared prefix pool."""
    rng = random.Random(seed)
    pool = []
    for _ in range(prefixes):
        plen = rng.randint(10, 22)
        span = 1 << (32 - plen)
        lo = rng.randrange(1 << 32) & ~(span - 1)
        pool.append((lo, lo + span))
    rules = []
    for rid in range(count):
        lo, hi = pool[rng.randrange(prefixes)]
        source = rng.randrange(switches)
        target = (source + rng.randrange(1, switches)) % switches
        rules.append(Rule.forward(rid, lo, hi, rid, f"s{source}",
                                  f"s{target}"))
    # a deliberate three-switch cycle so every engine has a loop to find
    wide = (0, 1 << 32)
    for offset, (src, dst) in enumerate((("s0", "s1"), ("s1", "s2"),
                                         ("s2", "s0"))):
        rules.append(Rule.forward(count + offset, wide[0], wide[1],
                                  10**9 + offset, src, dst))
    return rules


def run_per_op(rules):
    session = VerificationSession("deltanet", properties=(LoopProperty(),))
    start = time.perf_counter()
    for rule in rules:
        session.insert(rule)
    return session, time.perf_counter() - start


def run_batched(rules, backend="deltanet", batch_size=1000, **options):
    session = VerificationSession(backend, properties=(LoopProperty(),),
                                  **options)
    start = time.perf_counter()
    for index in range(0, len(rules), batch_size):
        session.apply_batch(rules[index:index + batch_size])
    return session, time.perf_counter() - start


def main():
    rules = build_rules()
    print(f"pushing {len(rules)} rules through three engines\n")

    per_op, seconds = run_per_op(rules)
    base_rate = len(rules) / seconds
    print(f"deltanet, per-op     : {base_rate:>9,.0f} ops/s   "
          f"loops found: {len(per_op.violations())}")

    batched, seconds = run_batched(rules)
    rate = len(rules) / seconds
    print(f"deltanet, batched    : {rate:>9,.0f} ops/s   "
          f"loops found: {len(batched.violations())}   "
          f"({rate / base_rate:.1f}x)")

    with VerificationSession("parallel", shards=4,
                             properties=(LoopProperty(),)) as parallel:
        start = time.perf_counter()
        for index in range(0, len(rules), 1000):
            parallel.apply_batch(rules[index:index + 1000])
        seconds = time.perf_counter() - start
        rate = len(rules) / seconds
        mode = ("worker processes" if parallel.stats()["parallel"]
                else "inline fallback")
        print(f"parallel, batched    : {rate:>9,.0f} ops/s   "
              f"loops found: {len(parallel.violations())}   ({mode})")

        verdicts = {
            "per-op": sorted(map(repr, per_op.find_loops())),
            "batched": sorted(map(repr, batched.find_loops())),
            "parallel": sorted(map(repr, parallel.find_loops())),
        }
    assert verdicts["per-op"] == verdicts["batched"] == verdicts["parallel"]
    print(f"\nall engines agree: {len(verdicts['per-op'])} forwarding "
          f"loop(s) in the final data plane")
    print("  " + verdicts["per-op"][0])


if __name__ == "__main__":
    main()
