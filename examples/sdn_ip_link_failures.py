#!/usr/bin/env python3
"""Real-time verification of a live SDN-IP deployment (paper §4.2.2).

Recreates Figure 7's pipeline in-process:

    BGP peers --eBGP--> RIB --SDN-IP--> controller --(+r / -r)--> verifier

Sixteen switches in the Airtel topology, one Quagga-like border router
per switch announcing Route-Views-style prefixes.  A
:class:`repro.VerificationSession` (Delta-net backend with atom GC)
subscribes to the controller's rule feed and checks every
insertion/removal for forwarding loops as it happens; an event injector
then fails and recovers every link (the Airtel 1 campaign) while
verification keeps up.  Because the controller feed is just
``session.apply(op)``, any registered backend can sit in the verifier
box — set ``BACKEND=veriflow`` to watch the baseline fall behind.

Run:  python examples/sdn_ip_link_failures.py
"""

import os

from repro import LoopProperty, VerificationSession
from repro.analysis.stats import summarize
from repro.bgp.prefixes import PrefixPool
from repro.bgp.updates import UpdateStream
from repro.sdn.controller import Controller
from repro.sdn.events import EventInjector
from repro.sdn.sdnip import SdnIp
from repro.topology.generators import airtel


def main() -> None:
    topology = airtel()
    controller = Controller(topology)
    backend = os.environ.get("BACKEND", "deltanet")
    options = {"gc": True} if backend in ("deltanet", "sharded") else {}
    session = VerificationSession(backend, properties=(LoopProperty(),),
                                 **options)
    times = []

    def verify(op) -> None:
        """The verifier box of Figure 7: check each +r / -r in real time."""
        result = session.apply(op)
        times.append(result.latency)

    controller.subscribe(verify)

    peers = {f"bgp{i}": i for i in range(topology.num_nodes)}
    sdnip = SdnIp(controller, peers)
    stream = UpdateStream(list(peers), PrefixPool(seed=42),
                          prefixes_per_peer=8, seed=42)

    print(f"announcing prefixes from 16 border routers (backend={backend}) ...")
    sdnip.handle_updates(stream.initial_announcements())
    stats = session.stats()
    print(f"  programmed {controller.num_installed} rules, "
          f"{stats.get('atoms', '?')} atoms, "
          f"{len(session.violations())} transient loops")

    print("\ninjecting link failures (Airtel 1 campaign: every link once) ...")
    injector = EventInjector(sdnip)
    failures = injector.single_failure_sweep()
    print(f"  {failures} failures + recoveries caused "
          f"{len(times) - controller.num_installed} extra rule operations")

    print("\nroute flapping (withdraw/re-announce) ...")
    sdnip.handle_updates(stream.flaps(40))

    summary = summarize(times)
    print(f"\nverified {summary['count']} rule updates in real time:")
    print(f"  median {summary['median'] * 1e6:.1f} us, "
          f"mean {summary['mean'] * 1e6:.1f} us, "
          f"p99 {summary['p99'] * 1e6:.1f} us, "
          f"{summary['frac_below_threshold'] * 100:.1f}% under 250 us")
    print(f"  forwarding loops flagged: {len(session.violations())} "
          f"(reroute churn can transiently loop; steady state is clean)")
    print(f"final state: {session!r}")


if __name__ == "__main__":
    main()
