#!/usr/bin/env python3
"""Real-time verification of a live SDN-IP deployment (paper §4.2.2).

Recreates Figure 7's pipeline in-process:

    BGP peers --eBGP--> RIB --SDN-IP--> controller --(+r / -r)--> Delta-net

Sixteen switches in the Airtel topology, one Quagga-like border router
per switch announcing Route-Views-style prefixes.  Delta-net subscribes
to the controller's rule feed and checks every insertion/removal for
forwarding loops as it happens; an event injector then fails and
recovers every link (the Airtel 1 campaign) while verification keeps up.

Run:  python examples/sdn_ip_link_failures.py
"""

import time

from repro.analysis.stats import summarize
from repro.bgp.prefixes import PrefixPool
from repro.bgp.updates import UpdateStream
from repro.checkers.loops import LoopChecker
from repro.core.deltanet import DeltaNet
from repro.sdn.controller import Controller
from repro.sdn.events import EventInjector
from repro.sdn.sdnip import SdnIp
from repro.topology.generators import airtel


def main() -> None:
    topology = airtel()
    controller = Controller(topology)
    net = DeltaNet(gc=True)
    checker = LoopChecker(net)
    times = []
    loops_found = 0

    def verify(op) -> None:
        """The Delta-net box of Figure 7: check each +r / -r in real time."""
        nonlocal loops_found
        start = time.perf_counter()
        if op.is_insert:
            delta = net.insert_rule(op.rule)
        else:
            delta = net.remove_rule(op.rid)
        loops_found += len(checker.check_update(delta))
        times.append(time.perf_counter() - start)

    controller.subscribe(verify)

    peers = {f"bgp{i}": i for i in range(topology.num_nodes)}
    sdnip = SdnIp(controller, peers)
    stream = UpdateStream(list(peers), PrefixPool(seed=42),
                          prefixes_per_peer=8, seed=42)

    print("announcing prefixes from 16 border routers ...")
    sdnip.handle_updates(stream.initial_announcements())
    print(f"  programmed {controller.num_installed} rules, "
          f"{net.num_atoms} atoms, {loops_found} transient loops")

    print("\ninjecting link failures (Airtel 1 campaign: every link once) ...")
    injector = EventInjector(sdnip)
    failures = injector.single_failure_sweep()
    print(f"  {failures} failures + recoveries caused "
          f"{len(times) - controller.num_installed} extra rule operations")

    print("\nroute flapping (withdraw/re-announce) ...")
    sdnip.handle_updates(stream.flaps(40))

    summary = summarize(times)
    print(f"\nverified {summary['count']} rule updates in real time:")
    print(f"  median {summary['median'] * 1e6:.1f} us, "
          f"mean {summary['mean'] * 1e6:.1f} us, "
          f"p99 {summary['p99'] * 1e6:.1f} us, "
          f"{summary['frac_below_threshold'] * 100:.1f}% under 250 us")
    print(f"  forwarding loops flagged: {loops_found} "
          f"(reroute churn can transiently loop; steady state is clean)")
    print(f"final state: {net!r}")


if __name__ == "__main__":
    main()
