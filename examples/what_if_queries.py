#!/usr/bin/env python3
"""Datalog-style "what if" queries (paper §4.3.2, Table 4).

Builds a consistent data plane from the Berkeley-style dataset, then
asks, for every link: *what is the fate of packets using this link if it
fails?* — first with Delta-net (constant-time label lookup + subgraph
restriction), then with Veriflow-RI (equivalence-class recomputation and
one forwarding graph per EC), and prints the speedup.

Run:  python examples/what_if_queries.py
"""

import time

from repro.checkers.whatif import link_failure_impact
from repro.core.deltanet import DeltaNet
from repro.datasets.builders import build_berkeley
from repro.veriflow.verifier import VeriflowRI


def main() -> None:
    dataset = build_berkeley(scale=0.6)
    print(f"building the {dataset.name} data plane "
          f"({dataset.num_inserts} rules) ...")
    net = DeltaNet()
    veriflow = VeriflowRI()
    for op in dataset.ops:
        if op.is_insert:
            net.insert_rule(op.rule)
            veriflow.insert_rule(op.rule, check_loops=False)
    links = list(net.label)
    print(f"  {net.num_atoms} atoms over {len(links)} labelled links")

    print(f"\nfailing each of the {len(links)} links (hypothetically) ...")
    start = time.perf_counter()
    impacts = [link_failure_impact(net, link) for link in links]
    deltanet_time = time.perf_counter() - start

    start = time.perf_counter()
    for link in links:
        veriflow.whatif_link_failure(link)
    veriflow_time = time.perf_counter() - start

    worst = max(impacts, key=lambda i: i.num_affected_flows)
    print(f"  Delta-net:   {deltanet_time * 1e3:8.1f} ms total "
          f"({deltanet_time / len(links) * 1e3:.2f} ms/query)")
    print(f"  Veriflow-RI: {veriflow_time * 1e3:8.1f} ms total "
          f"({veriflow_time / len(links) * 1e3:.2f} ms/query)")
    print(f"  speedup: {veriflow_time / deltanet_time:.1f}x "
          f"(the paper reports 10x to orders of magnitude)")

    print(f"\nworst-hit link: {worst.failed_link} — "
          f"{worst.num_affected_flows} packet classes rerouted")
    spans = worst.affected_intervals(net)
    print(f"  affected header space ({len(spans)} intervals), first three:")
    for lo, hi in spans[:3]:
        print(f"    [{lo}:{hi})")
    print(f"  affected subgraph spans {len(worst.affected_subgraph)} links")


if __name__ == "__main__":
    main()
