#!/usr/bin/env python3
"""Datalog-style "what if" queries (paper §4.3.2, Table 4).

Builds a consistent data plane from the Berkeley-style dataset, then
asks, for every link: *what is the fate of packets using this link if it
fails?* — through two :class:`repro.VerificationSession` instances whose
only difference is the backend name.  Delta-net answers with a
constant-time label lookup; Veriflow-RI recomputes equivalence classes
and one forwarding graph per EC behind the very same
``what_if_link_down`` call, and the speedup is printed.

Run:  python examples/what_if_queries.py
"""

import time

from repro import VerificationSession
from repro.datasets.builders import build_berkeley


def main() -> None:
    dataset = build_berkeley(scale=0.6)
    print(f"building the {dataset.name} data plane "
          f"({dataset.num_inserts} rules) ...")
    deltanet = VerificationSession("deltanet")
    # check_loops=False: skip Veriflow's per-insert EC loop checking
    # while loading — this example only measures the what-if queries.
    veriflow = VerificationSession("veriflow", check_loops=False)
    for op in dataset.ops:
        if op.is_insert:
            deltanet.apply(op)
            veriflow.apply(op)
    links = deltanet.links()
    stats = deltanet.stats()
    print(f"  {stats['atoms']} atoms over {len(links)} labelled links")

    print(f"\nfailing each of the {len(links)} links (hypothetically) ...")
    start = time.perf_counter()
    impacts = [deltanet.what_if_link_down(link) for link in links]
    deltanet_time = time.perf_counter() - start

    start = time.perf_counter()
    for link in links:
        veriflow.what_if_link_down(link)
    veriflow_time = time.perf_counter() - start

    worst_index = max(range(len(links)), key=lambda i: len(impacts[i]))
    print(f"  Delta-net:   {deltanet_time * 1e3:8.1f} ms total "
          f"({deltanet_time / len(links) * 1e3:.2f} ms/query)")
    print(f"  Veriflow-RI: {veriflow_time * 1e3:8.1f} ms total "
          f"({veriflow_time / len(links) * 1e3:.2f} ms/query)")
    print(f"  speedup: {veriflow_time / deltanet_time:.1f}x "
          f"(the paper reports 10x to orders of magnitude)")
    print(f"\nworst-hit link {links[worst_index]}: "
          f"{len(impacts[worst_index])} affected interval(s), e.g. "
          f"{impacts[worst_index][:3]}")


if __name__ == "__main__":
    main()
