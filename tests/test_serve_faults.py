"""Daemon fault behavior: backpressure, health, drain, rude clients."""

import json
import socket
import threading
import time

import pytest

from repro.serve import (
    DrainRequested, StreamServer, install_sigterm_drain,
    request_over_socket, serve_socket, serve_stdio,
)


def rule_payload(rid, prefix, priority, source, target):
    return {"rid": rid, "prefix": prefix, "priority": priority,
            "source": source, "target": target}


def send(server, request):
    return server.handle_line(json.dumps(request))


@pytest.fixture
def server(tmp_path):
    instance = StreamServer(str(tmp_path / "state"), width=8)
    yield instance
    instance.close()


class TestHealth:
    def test_health_reports_the_basics(self, server):
        response, keep_going = send(server, {"cmd": "health"})
        assert keep_going
        assert response["ok"] and response["status"] == "ok"
        assert response["seq"] == 0
        assert response["backend"] == "deltanet"
        assert response["queue_depth"] == 0
        assert response["max_queue"] == server.max_queue

    def test_health_answers_while_the_session_is_held(self, server):
        # The whole point of the lock-free path: a wedged update must
        # not make the daemon unmonitorable.
        acquired = threading.Event()
        release = threading.Event()

        def hold():
            with server._lock:
                acquired.set()
                release.wait(10)

        thread = threading.Thread(target=hold, daemon=True)
        thread.start()
        assert acquired.wait(5)
        try:
            response, _ = send(server, {"cmd": "health"})
            assert response["ok"]
        finally:
            release.set()
            thread.join(5)

    def test_health_reports_worker_state(self, tmp_path):
        server = StreamServer(str(tmp_path / "state"), engine="parallel",
                              width=8, shards=2, force_inline=True)
        try:
            response, _ = send(server, {"cmd": "health"})
            workers = response["workers"]
            assert workers["shards"] == 2
            assert workers["degraded"] is False
            assert workers["restarts"] == 0
        finally:
            server.close()


class TestBackpressure:
    def test_overloaded_queue_is_refused_immediately(self, tmp_path):
        server = StreamServer(str(tmp_path / "state"), width=8, max_queue=0,
                              retry_after=2.5)
        try:
            response, keep_going = send(server, {"cmd": "ping"})
            assert keep_going  # refusal, not disconnection
            assert not response["ok"]
            assert response["error"] == "overloaded"
            assert response["retry_after"] == 2.5
            # health is exempt from admission control
            response, _ = send(server, {"cmd": "health"})
            assert response["ok"]
        finally:
            server.close()

    def test_request_timeout_yields_busy_not_a_hang(self, tmp_path):
        server = StreamServer(str(tmp_path / "state"), width=8,
                              request_timeout=0.05)
        acquired = threading.Event()
        release = threading.Event()

        def hold():
            with server._lock:
                acquired.set()
                release.wait(10)

        thread = threading.Thread(target=hold, daemon=True)
        thread.start()
        assert acquired.wait(5)
        try:
            start = time.monotonic()
            response, keep_going = send(server, {"cmd": "ping"})
            assert time.monotonic() - start < 5
            assert keep_going
            assert not response["ok"] and "busy" in response["error"]
            assert response["retry_after"] == server.retry_after
        finally:
            release.set()
            thread.join(5)
            server.close()

    def test_stats_and_updates_flow_normally_under_limits(self, tmp_path):
        server = StreamServer(str(tmp_path / "state"), width=8,
                              request_timeout=5.0, max_queue=2)
        try:
            response, _ = send(server, {
                "cmd": "insert",
                "rule": rule_payload(1, "0/1", 5, "a", "b")})
            assert response["ok"] and response["seq"] == 1
        finally:
            server.close()


class TestDrain:
    def test_drain_refuses_new_work_but_health_still_answers(self, server):
        server.request_drain()
        response, keep_going = send(server, {"cmd": "ping"})
        assert not response["ok"] and response["error"] == "draining"
        assert not keep_going
        response, keep_going = send(server, {"cmd": "health"})
        assert response["ok"] and response["status"] == "draining"
        assert not keep_going  # transports exit after reporting

    def test_stdio_drain_exits_the_loop_with_final_checkpoint(self, tmp_path):
        import io

        state = str(tmp_path / "state")
        server = StreamServer(state, width=8, checkpoint_every=1000)
        requests = "\n".join(json.dumps(r) for r in [
            {"cmd": "insert", "rule": rule_payload(1, "0/1", 5, "a", "b")},
            {"cmd": "ping"},
            {"cmd": "never-dispatched"},
        ])

        class DrainingStream:
            """Yields two requests, then SIGTERM 'arrives' (simulated)."""

            def __init__(self, lines):
                self.lines = lines
                self.count = 0

            def readline(self, size=-1):
                if self.count == 2:
                    server.request_drain()
                    raise DrainRequested()
                line = self.lines[self.count]
                self.count += 1
                return line + "\n"

        out = io.StringIO()
        served = serve_stdio(server, DrainingStream(requests.splitlines()),
                             out)
        assert served == 2
        server.close()
        # The final checkpoint happened: a fresh start sees the insert
        # even though checkpoint_every was never reached.
        recovered = StreamServer(state, width=8)
        assert recovered.session.sequence == 1
        assert recovered.session.num_rules == 1
        recovered.close()

    def test_close_is_idempotent(self, tmp_path):
        server = StreamServer(str(tmp_path / "state"), width=8)
        server.close()
        server.close()

    def test_install_sigterm_drain_outside_main_thread_is_refused(
            self, server):
        result = {}

        def try_install():
            result["handler"] = install_sigterm_drain(server)

        thread = threading.Thread(target=try_install)
        thread.start()
        thread.join(5)
        assert result["handler"] is None  # refused, not crashed

    def test_sigterm_handler_drains(self, server):
        import signal

        previous = install_sigterm_drain(server)
        try:
            assert not server.draining
            with pytest.raises(DrainRequested):
                signal.raise_signal(signal.SIGTERM)
            assert server.draining
        finally:
            signal.signal(signal.SIGTERM, previous or signal.SIG_DFL)

    def test_repeated_sigterm_while_draining_is_a_no_op(self, server):
        # Supervisors re-signal (systemd, timeout).  A second TERM must
        # not raise again — it would land inside close()'s final
        # checkpoint and abort it.
        import signal

        previous = install_sigterm_drain(server)
        try:
            with pytest.raises(DrainRequested):
                signal.raise_signal(signal.SIGTERM)
            signal.raise_signal(signal.SIGTERM)  # no raise
            assert server.draining
        finally:
            signal.signal(signal.SIGTERM, previous or signal.SIG_DFL)

    def test_sigterm_mid_dispatch_defers_the_raise(self, server):
        import signal

        previous = install_sigterm_drain(server)
        try:
            server._busy = True  # as if a dispatch were running
            signal.raise_signal(signal.SIGTERM)  # no raise
            assert server.draining
        finally:
            server._busy = False
            signal.signal(signal.SIGTERM, previous or signal.SIG_DFL)


class TestRudeClients:
    def test_abrupt_disconnect_does_not_kill_the_daemon(self, tmp_path):
        lines = []
        server = StreamServer(str(tmp_path / "state"), width=8,
                              log=lines.append)
        address = {}
        ready = threading.Event()

        def on_ready(host, port):
            address["host"], address["port"] = host, port
            ready.set()

        thread = threading.Thread(target=serve_socket, args=(server,),
                                  kwargs=dict(port=0, ready=on_ready),
                                  daemon=True)
        thread.start()
        assert ready.wait(10)

        # Client one: send a request, then vanish without reading the
        # response (RST via SO_LINGER 0).
        rude = socket.create_connection((address["host"], address["port"]),
                                        timeout=5)
        rude.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        b"\x01\x00\x00\x00\x00\x00\x00\x00")
        rude.sendall((json.dumps(
            {"cmd": "insert",
             "rule": rule_payload(1, "0/1", 5, "a", "b")}) + "\n")
            .encode())
        time.sleep(0.2)
        rude.close()

        # Client two: the daemon is still alive and the rude client's
        # update landed (applied + journaled before the response died).
        responses = request_over_socket(address["host"], address["port"], [
            {"cmd": "query", "what": "rules"},
            {"cmd": "shutdown"},
        ])
        thread.join(10)
        server.close()
        assert responses[0]["ok"]
        assert responses[0]["result"] == [1]
