"""Tests for the link-failure event injector (Airtel campaigns)."""

from repro.bgp.prefixes import PrefixPool
from repro.bgp.updates import UpdateStream
from repro.sdn.controller import Controller
from repro.sdn.events import EventInjector
from repro.sdn.sdnip import SdnIp
from repro.topology.generators import ring


def make_setup(n=4, prefixes_per_peer=3):
    controller = Controller(ring(n))
    ops = []
    controller.subscribe(ops.append)
    peers = {f"bgp{i}": i for i in range(n)}
    sdnip = SdnIp(controller, peers)
    stream = UpdateStream(list(peers), PrefixPool(seed=1),
                          prefixes_per_peer=prefixes_per_peer, seed=1)
    sdnip.handle_updates(stream.initial_announcements())
    return controller, sdnip, ops


class TestEventInjector:
    def test_single_failure_sweep_covers_every_link(self):
        controller, sdnip, ops = make_setup()
        injector = EventInjector(sdnip)
        count = injector.single_failure_sweep()
        assert count == 4  # ring(4) has 4 undirected links
        fails = [e for e in injector.events if e[0] == "fail"]
        recoveries = [e for e in injector.events if e[0] == "recover"]
        assert len(fails) == len(recoveries) == 4
        # Strict alternation: each link recovered before the next fails.
        kinds = [kind for kind, _edge in injector.events]
        assert kinds == ["fail", "recover"] * 4

    def test_sweep_generates_rule_churn(self):
        controller, sdnip, ops = make_setup()
        baseline = len(ops)
        EventInjector(sdnip).single_failure_sweep()
        churn = ops[baseline:]
        assert churn, "failures must cause reroutes"
        inserts = sum(1 for op in churn if op.is_insert)
        removals = len(churn) - inserts
        # Full recovery: every reroute rule is eventually removed again.
        assert inserts == removals

    def test_network_state_restored_after_sweep(self):
        controller, sdnip, _ops = make_setup()
        before = {rid: rule for rule in controller.installed_rules()
                  for rid in [rule.rid]}
        next_hops_before = {
            (prefix, switch): sdnip.installed_next_hop(prefix, switch)
            for prefix in list(sdnip._installed)
            for switch in range(4)}
        EventInjector(sdnip).single_failure_sweep()
        next_hops_after = {
            (prefix, switch): sdnip.installed_next_hop(prefix, switch)
            for prefix in list(sdnip._installed)
            for switch in range(4)}
        assert next_hops_before == next_hops_after
        assert controller.num_installed == len(before)

    def test_pair_sweep_counts(self):
        controller, sdnip, _ops = make_setup()
        injector = EventInjector(sdnip)
        pairs = injector.pair_failure_sweep()
        assert pairs == 6  # C(4, 2)
        assert len(injector.events) == 4 * pairs

    def test_pair_sweep_limit(self):
        controller, sdnip, _ops = make_setup()
        injector = EventInjector(sdnip)
        assert injector.pair_failure_sweep(limit=2) == 2

    def test_no_failures_during_recovery_state(self):
        """After the sweep, the failed-link set must be empty."""
        controller, sdnip, _ops = make_setup()
        EventInjector(sdnip).pair_failure_sweep(limit=3)
        assert sdnip.failed_links == set()
