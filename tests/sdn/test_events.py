"""Tests for the link-failure event injector (Airtel campaigns)."""

from repro.bgp.prefixes import PrefixPool
from repro.bgp.updates import UpdateStream
from repro.sdn.controller import Controller
from repro.sdn.events import EventInjector
from repro.sdn.sdnip import SdnIp
from repro.topology.generators import ring


def make_setup(n=4, prefixes_per_peer=3):
    controller = Controller(ring(n))
    ops = []
    controller.subscribe(ops.append)
    peers = {f"bgp{i}": i for i in range(n)}
    sdnip = SdnIp(controller, peers)
    stream = UpdateStream(list(peers), PrefixPool(seed=1),
                          prefixes_per_peer=prefixes_per_peer, seed=1)
    sdnip.handle_updates(stream.initial_announcements())
    return controller, sdnip, ops


class TestEventInjector:
    def test_single_failure_sweep_covers_every_link(self):
        controller, sdnip, ops = make_setup()
        injector = EventInjector(sdnip)
        count = injector.single_failure_sweep()
        assert count == 4  # ring(4) has 4 undirected links
        fails = [e for e in injector.events if e[0] == "fail"]
        recoveries = [e for e in injector.events if e[0] == "recover"]
        assert len(fails) == len(recoveries) == 4
        # Strict alternation: each link recovered before the next fails.
        kinds = [kind for kind, _edge in injector.events]
        assert kinds == ["fail", "recover"] * 4

    def test_sweep_generates_rule_churn(self):
        controller, sdnip, ops = make_setup()
        baseline = len(ops)
        EventInjector(sdnip).single_failure_sweep()
        churn = ops[baseline:]
        assert churn, "failures must cause reroutes"
        inserts = sum(1 for op in churn if op.is_insert)
        removals = len(churn) - inserts
        # Full recovery: every reroute rule is eventually removed again.
        assert inserts == removals

    def test_network_state_restored_after_sweep(self):
        controller, sdnip, _ops = make_setup()
        before = {rid: rule for rule in controller.installed_rules()
                  for rid in [rule.rid]}
        next_hops_before = {
            (prefix, switch): sdnip.installed_next_hop(prefix, switch)
            for prefix in list(sdnip._installed)
            for switch in range(4)}
        EventInjector(sdnip).single_failure_sweep()
        next_hops_after = {
            (prefix, switch): sdnip.installed_next_hop(prefix, switch)
            for prefix in list(sdnip._installed)
            for switch in range(4)}
        assert next_hops_before == next_hops_after
        assert controller.num_installed == len(before)

    def test_pair_sweep_counts(self):
        controller, sdnip, _ops = make_setup()
        injector = EventInjector(sdnip)
        pairs = injector.pair_failure_sweep()
        assert pairs == 6  # C(4, 2)
        assert len(injector.events) == 4 * pairs

    def test_pair_sweep_limit(self):
        controller, sdnip, _ops = make_setup()
        injector = EventInjector(sdnip)
        assert injector.pair_failure_sweep(limit=2) == 2

    def test_no_failures_during_recovery_state(self):
        """After the sweep, the failed-link set must be empty."""
        controller, sdnip, _ops = make_setup()
        EventInjector(sdnip).pair_failure_sweep(limit=3)
        assert sdnip.failed_links == set()


class TestScenarioCampaigns:
    """The seeded campaigns repro.scenarios drives (flaps/storms/drains)."""

    def test_flap_is_fail_then_recover(self):
        controller, sdnip, _ops = make_setup()
        injector = EventInjector(sdnip)
        injector.flap(0, 1)
        assert [kind for kind, _edge in injector.events] == \
            ["fail", "recover"]
        assert sdnip.failed_links == set()

    def test_random_flaps_deterministic_and_counted(self):
        import random

        _c1, sdnip1, ops1 = make_setup()
        _c2, sdnip2, ops2 = make_setup()
        assert EventInjector(sdnip1).random_flaps(
            5, random.Random(3)) == 5
        assert EventInjector(sdnip2).random_flaps(
            5, random.Random(3)) == 5
        assert [op.to_line() for op in ops1] == \
            [op.to_line() for op in ops2]

    def test_storm_holds_links_down_together(self):
        controller, sdnip, _ops = make_setup(n=6)
        injector = EventInjector(sdnip)
        import random

        failed = injector.failure_storm(3, random.Random(1))
        assert failed == 3
        kinds = [kind for kind, _edge in injector.events]
        # All failures land before any recovery (the storm shape).
        assert kinds == ["fail"] * 3 + ["recover"] * 3
        assert sdnip.failed_links == set()

    def test_storm_capped_by_link_count(self):
        controller, sdnip, _ops = make_setup(n=4)
        import random

        assert EventInjector(sdnip).failure_storm(
            99, random.Random(1)) == 4  # ring(4): 4 undirected links

    def test_rolling_maintenance_restores_state(self):
        controller, sdnip, _ops = make_setup(n=5)
        injector = EventInjector(sdnip)
        before = controller.num_installed
        assert injector.rolling_maintenance(iter([0, 2])) == 2
        assert sdnip.failed_links == set()
        assert controller.num_installed == before
        # Node 0 touches its 2 ring links, node 2 its 2: 4 fails total.
        fails = [edge for kind, edge in injector.events if kind == "fail"]
        assert len(fails) == 4

    def test_rolling_maintenance_skips_linkless_nodes(self):
        controller, sdnip, _ops = make_setup()
        controller.topology.add_node("lonely")
        injector = EventInjector(sdnip)
        assert injector.rolling_maintenance(iter(["lonely"])) == 0
        assert injector.events == []

    def test_duplicate_fail_is_idempotent_but_logged(self):
        """Duplicate link ops: the data plane converges, the log keeps
        every injection (surfaced while building scenarios)."""
        controller, sdnip, _ops = make_setup()
        injector = EventInjector(sdnip)
        injector.fail(0, 1)
        state_after_first = {rule.rid for rule in
                            controller.installed_rules()}
        injector.fail(0, 1)
        assert {rule.rid for rule in controller.installed_rules()} == \
            state_after_first
        assert sdnip.failed_links == {frozenset((0, 1))}
        injector.recover(0, 1)
        assert sdnip.failed_links == set()
        injector.recover(0, 1)  # recovering a healthy link: no-op
        assert sdnip.failed_links == set()
        assert [kind for kind, _e in injector.events] == \
            ["fail", "fail", "recover", "recover"]

    def test_single_switch_domain_has_no_links_to_fail(self):
        from repro.topology.graph import Topology

        topo = Topology("one")
        topo.add_node(0)
        controller = Controller(topo)
        sdnip = SdnIp(controller, {"bgp0": 0})
        injector = EventInjector(sdnip)
        import random

        assert injector.single_failure_sweep() == 0
        assert injector.pair_failure_sweep() == 0
        assert injector.random_flaps(3, random.Random(1)) == 0
        assert injector.rolling_maintenance(iter([0])) == 0
        assert injector.events == []
