"""Tests for OpenFlow-style flow tables."""

import pytest

from repro.core.rules import Rule
from repro.sdn.switch import FlowTable


class TestFlowTable:
    def test_install_and_len(self):
        table = FlowTable("s1")
        table.install(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        assert len(table) == 1
        assert 0 in table

    def test_wrong_switch_rejected(self):
        table = FlowTable("s1")
        with pytest.raises(ValueError):
            table.install(Rule.forward(0, 0, 16, 1, "s2", "s3"))

    def test_duplicate_rid_rejected(self):
        table = FlowTable("s1")
        table.install(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        with pytest.raises(ValueError):
            table.install(Rule.forward(0, 0, 8, 2, "s1", "s2"))

    def test_uninstall(self):
        table = FlowTable("s1")
        rule = Rule.forward(0, 0, 16, 1, "s1", "s2")
        table.install(rule)
        assert table.uninstall(0) == rule
        assert len(table) == 0
        with pytest.raises(KeyError):
            table.uninstall(0)

    def test_match_highest_priority(self):
        table = FlowTable("s1")
        table.install(Rule.forward(0, 0, 16, 1, "s1", "low"))
        table.install(Rule.forward(1, 4, 8, 9, "s1", "high"))
        assert table.match(5).target == "high"
        assert table.match(2).target == "low"
        assert table.match(3000) is None

    def test_match_empty(self):
        assert FlowTable("s1").match(5) is None

    def test_match_tie_broken_by_rid(self):
        table = FlowTable("s1")
        table.install(Rule.forward(0, 0, 16, 5, "s1", "a"))
        table.install(Rule.forward(1, 0, 16, 5, "s1", "b"))
        assert table.match(5).target == "b"

    def test_rules_sorted_descending_priority(self):
        table = FlowTable("s1")
        for rid, priority in enumerate((3, 9, 1)):
            table.install(Rule.forward(rid, 0, 16, priority, "s1", "t"))
        assert [r.priority for r in table.rules_sorted()] == [9, 3, 1]

    def test_iteration(self):
        table = FlowTable("s1")
        table.install(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        assert [r.rid for r in table] == [0]
