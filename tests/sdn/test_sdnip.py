"""Tests for the SDN-IP application emulation."""

import pytest

from repro.bgp.updates import BgpUpdate
from repro.sdn.controller import Controller
from repro.sdn.sdnip import SdnIp
from repro.topology.generators import ring

PREFIX = (10 << 24, 8)  # 10.0.0.0/8


def make_sdnip(n=4):
    controller = Controller(ring(n))
    ops = []
    controller.subscribe(ops.append)
    peers = {f"bgp{i}": i for i in range(n)}
    return controller, SdnIp(controller, peers), ops


class TestProgramming:
    def test_announce_installs_rules_on_every_switch(self):
        controller, sdnip, ops = make_sdnip()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        # One rule per non-egress switch + the egress handoff rule.
        assert controller.num_installed == 4
        assert all(op.is_insert for op in ops)
        egress_rules = [op.rule for op in ops if op.rule.source == 0]
        assert egress_rules[0].target == "bgp0"

    def test_priority_is_prefix_length(self):
        controller, sdnip, ops = make_sdnip()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        assert all(op.rule.priority == 8 for op in ops)

    def test_rules_form_paths_to_egress(self):
        controller, sdnip, _ops = make_sdnip(6)
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp3", 1))
        point = PREFIX[0]
        for start in range(6):
            node, hops = start, 0
            while node != "bgp3":
                rule = controller.switches[node].match(point)
                assert rule is not None, f"black hole at {node}"
                node = rule.target
                hops += 1
                assert hops < 10
        assert sdnip.num_programmed_prefixes == 1

    def test_withdraw_removes_all_rules(self):
        controller, sdnip, ops = make_sdnip()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        sdnip.handle_update(BgpUpdate("withdraw", PREFIX, "bgp0", 1))
        assert controller.num_installed == 0
        assert sdnip.num_programmed_prefixes == 0

    def test_better_route_moves_egress(self):
        controller, sdnip, _ops = make_sdnip()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 5))
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp2", 1))
        point = PREFIX[0]
        node = 1
        seen = set()
        while isinstance(node, int):
            assert node not in seen
            seen.add(node)
            node = controller.switches[node].match(point).target
        assert node == "bgp2"

    def test_redundant_announce_no_churn(self):
        controller, sdnip, ops = make_sdnip()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        installed = len(ops)
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        assert len(ops) == installed


class TestFailures:
    def test_link_failure_reroutes(self):
        controller, sdnip, ops = make_sdnip()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        before = len(ops)
        sdnip.handle_link_failure(0, 1)
        assert len(ops) > before  # some switches rerouted
        # Switch 1 must now reach egress 0 the long way around (via 2).
        assert sdnip.installed_next_hop(PREFIX, 1) == 2
        # And the data path still works end to end.
        point = PREFIX[0]
        node, hops = 1, 0
        while node != "bgp0":
            node = controller.switches[node].match(point).target
            hops += 1
            assert hops < 10

    def test_recovery_restores_short_path(self):
        controller, sdnip, _ops = make_sdnip()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        sdnip.handle_link_failure(0, 1)
        sdnip.handle_link_recovery(0, 1)
        assert sdnip.installed_next_hop(PREFIX, 1) == 0

    def test_validation(self):
        controller = Controller(ring(4))
        with pytest.raises(ValueError):
            SdnIp(controller, {})
        with pytest.raises(ValueError):
            SdnIp(controller, {"bgp0": "no-such-switch"})
