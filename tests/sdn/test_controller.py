"""Tests for the SDN controller's rule lifecycle and listener feed."""

import pytest

from repro.sdn.controller import Controller
from repro.topology.generators import ring


class TestController:
    def setup_method(self):
        self.controller = Controller(ring(4))
        self.ops = []
        self.controller.subscribe(self.ops.append)

    def test_install_emits_insert_op(self):
        rule = self.controller.install_forward(0, 1, 0, 16, 5)
        assert self.controller.num_installed == 1
        assert len(self.ops) == 1
        assert self.ops[0].is_insert and self.ops[0].rule == rule
        assert rule.rid in self.controller.switches[0]

    def test_uninstall_emits_remove_op(self):
        rule = self.controller.install_forward(0, 1, 0, 16, 5)
        self.controller.uninstall(rule.rid)
        assert self.controller.num_installed == 0
        assert not self.ops[1].is_insert
        assert self.ops[1].rid == rule.rid

    def test_uninstall_unknown_raises(self):
        with pytest.raises(KeyError):
            self.controller.uninstall(99)

    def test_install_drop(self):
        rule = self.controller.install_drop(2, 0, 16, 5)
        from repro.core.rules import Action
        assert rule.action is Action.DROP

    def test_rids_are_unique_and_increasing(self):
        rids = [self.controller.install_forward(0, 1, 0, 16, i).rid
                for i in range(5)]
        assert rids == sorted(set(rids))

    def test_install_on_unknown_switch(self):
        with pytest.raises(KeyError):
            self.controller.install_forward("nope", 1, 0, 16, 5)

    def test_multiple_listeners(self):
        second = []
        self.controller.subscribe(second.append)
        self.controller.install_forward(0, 1, 0, 16, 5)
        assert len(self.ops) == len(second) == 1

    def test_rule_lookup(self):
        rule = self.controller.install_forward(0, 1, 0, 16, 5)
        assert self.controller.rule(rule.rid) == rule
        assert self.controller.rule(12345) is None
