"""Tests for the OpenFlow-transport controller, incl. SDN-IP end to end."""

import pytest

from repro.bgp.prefixes import PrefixPool
from repro.bgp.updates import BgpUpdate, UpdateStream
from repro.checkers.intents import check_intents
from repro.core.deltanet import DeltaNet
from repro.sdn.events import EventInjector
from repro.sdn.sdnip import SdnIp
from repro.sdn.transport import OpenFlowController
from repro.topology.generators import ring

PREFIX = (10 << 24, 8)


class TestOpenFlowController:
    def setup_method(self):
        self.controller = OpenFlowController(ring(4))
        self.ops = []
        self.controller.subscribe(self.ops.append)

    def test_install_commits_and_notifies(self):
        rule = self.controller.install_forward(0, 1, 0, 16, 5)
        assert self.controller.num_installed == 1
        assert self.ops and self.ops[0].is_insert
        assert self.controller.switches[0].match(3).rid == rule.rid

    def test_uninstall_commits_on_flow_removed(self):
        rule = self.controller.install_forward(0, 1, 0, 16, 5)
        self.controller.uninstall(rule.rid)
        assert self.controller.num_installed == 0
        assert not self.ops[-1].is_insert and self.ops[-1].rid == rule.rid
        assert self.controller.switches[0].match(3) is None

    def test_uninstall_unknown(self):
        with pytest.raises(KeyError):
            self.controller.uninstall(42)

    def test_deferred_flush(self):
        controller = OpenFlowController(ring(4), auto_flush=False)
        ops = []
        controller.subscribe(ops.append)
        controller.install_forward(0, 1, 0, 16, 5)
        assert controller.num_installed == 0 and not ops  # still in flight
        controller.flush()
        assert controller.num_installed == 1 and len(ops) == 1

    def test_install_drop(self):
        from repro.core.rules import Action

        rule = self.controller.install_drop(2, 0, 16, 5)
        assert rule.action is Action.DROP
        assert self.controller.rule(rule.rid) == rule


class TestSdnIpOverOpenFlow:
    def make(self, n=4):
        controller = OpenFlowController(ring(n))
        net = DeltaNet(gc=True)

        def mirror(op):
            if op.is_insert:
                net.insert_rule(op.rule)
            else:
                net.remove_rule(op.rid)

        controller.subscribe(mirror)
        peers = {f"bgp{i}": i for i in range(n)}
        sdnip = SdnIp(controller, peers)
        return controller, sdnip, net, peers

    def test_announcement_programs_via_messages(self):
        controller, sdnip, net, peers = self.make()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        assert controller.num_installed == 4
        assert check_intents(net, sdnip.rib, peers) == []

    def test_failure_sweep_over_message_plane(self):
        controller, sdnip, net, peers = self.make()
        stream = UpdateStream(list(peers), PrefixPool(seed=9),
                              prefixes_per_peer=3, seed=9)
        sdnip.handle_updates(stream.initial_announcements())
        EventInjector(sdnip).single_failure_sweep()
        assert check_intents(net, sdnip.rib, peers) == []
        assert net.num_rules == controller.num_installed

    def test_direct_and_messaged_controllers_converge(self):
        """Same BGP input => identical final flow tables either way."""
        from repro.sdn.controller import Controller

        direct = Controller(ring(4))
        messaged = OpenFlowController(ring(4))
        peers = {f"bgp{i}": i for i in range(4)}
        for controller in (direct, messaged):
            sdnip = SdnIp(controller, peers)
            stream = UpdateStream(list(peers), PrefixPool(seed=5),
                                  prefixes_per_peer=4, seed=5)
            sdnip.handle_updates(stream.initial_announcements())

        def table_view(controller):
            out = {}
            for switch, table in controller.switches.items():
                out[switch] = sorted((r.lo, r.hi, r.priority, repr(r.target))
                                     for r in table)
            return out

        assert table_view(direct) == table_view(messaged)
