"""Tests for the OpenFlow-style southbound message layer."""

import pytest

from repro.sdn.openflow import (
    Barrier, BarrierReply, Channel, FlowMod, FlowModCommand, FlowRemoved,
    OpenFlowFabric, PacketIn, SwitchAgent,
)


def add_mod(rid, lo, hi, priority, out_node, xid=0):
    return FlowMod(FlowModCommand.ADD, rid, lo, hi, priority, out_node, xid)


class TestSwitchAgent:
    def setup_method(self):
        self.inbox = []
        self.agent = SwitchAgent("s1", self.inbox.append)

    def test_add_installs_rule(self):
        self.agent.handle(add_mod(0, 0, 16, 5, "s2"))
        assert len(self.agent.table) == 1
        assert self.agent.table.match(3).target == "s2"

    def test_add_drop_rule(self):
        self.agent.handle(add_mod(0, 0, 16, 5, None))
        from repro.core.rules import Action

        assert self.agent.table.match(3).action is Action.DROP

    def test_delete_emits_flow_removed(self):
        self.agent.handle(add_mod(0, 0, 16, 5, "s2"))
        self.agent.handle(FlowMod(FlowModCommand.DELETE, 0, xid=7))
        assert self.inbox == [FlowRemoved(rid=0, switch="s1", xid=7)]
        assert len(self.agent.table) == 0

    def test_barrier_reply(self):
        self.agent.handle(Barrier(xid=3))
        assert self.inbox == [BarrierReply(xid=3, switch="s1")]

    def test_unknown_message_rejected(self):
        with pytest.raises(TypeError):
            self.agent.handle("junk")

    def test_table_miss_punts_packet_in(self):
        assert self.agent.lookup(5) is None
        assert self.inbox == [PacketIn(switch="s1", point=5)]

    def test_hit_does_not_punt(self):
        self.agent.handle(add_mod(0, 0, 16, 5, "s2"))
        assert self.agent.lookup(5).target == "s2"
        assert self.inbox == []


class TestChannel:
    def test_fifo_by_default(self):
        channel = Channel()
        channel.send("a")
        channel.send("b")
        assert channel.drain() == ["a", "b"]
        assert len(channel) == 0

    def test_reordering_fault_model(self):
        swapped = False
        for seed in range(30):
            channel = Channel(seed=seed, reorder_window=1,
                              reorder_probability=1.0)
            channel.send("a")
            channel.send("b")
            if channel.drain() == ["b", "a"]:
                swapped = True
                break
        assert swapped

    def test_barriers_never_reordered(self):
        channel = Channel(seed=1, reorder_window=1, reorder_probability=1.0)
        channel.send("a")
        channel.send(Barrier(xid=1))
        channel.send("b")
        drained = channel.drain()
        assert drained.index("a") < drained.index(Barrier(xid=1))


class TestFabric:
    def test_install_via_barrier(self):
        fabric = OpenFlowFabric(["s1", "s2"])
        replies = fabric.install_via_barrier(
            "s1", [add_mod(0, 0, 16, 5, "s2")])
        assert any(isinstance(r, BarrierReply) for r in replies)
        assert fabric.agents["s1"].table.match(3).target == "s2"

    def test_flush_all_switches(self):
        fabric = OpenFlowFabric(["s1", "s2"])
        fabric.send("s1", add_mod(0, 0, 16, 5, "s2"))
        fabric.send("s2", add_mod(1, 0, 16, 5, "s1"))
        fabric.flush()
        assert len(fabric.agents["s1"].table) == 1
        assert len(fabric.agents["s2"].table) == 1

    def test_delete_roundtrip(self):
        fabric = OpenFlowFabric(["s1"])
        fabric.install_via_barrier("s1", [add_mod(0, 0, 16, 5, "s2")])
        inbox = fabric.install_via_barrier(
            "s1", [FlowMod(FlowModCommand.DELETE, 0)])
        assert any(isinstance(m, FlowRemoved) and m.rid == 0 for m in inbox)

    def test_xids_unique(self):
        fabric = OpenFlowFabric(["s1"])
        xids = {fabric.allocate_xid() for _ in range(10)}
        assert len(xids) == 10
