"""Tests for the topology graph model."""

import pytest

from repro.topology.graph import Topology


def square() -> Topology:
    topo = Topology("square")
    for u, v in ((0, 1), (1, 2), (2, 3), (3, 0)):
        topo.add_link(u, v)
    return topo


class TestConstruction:
    def test_add_link_bidirectional(self):
        topo = Topology()
        topo.add_link("a", "b")
        assert topo.has_link("a", "b") and topo.has_link("b", "a")
        assert topo.num_links == 2

    def test_add_link_directed(self):
        topo = Topology()
        topo.add_link("a", "b", bidirectional=False)
        assert topo.has_link("a", "b") and not topo.has_link("b", "a")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Topology().add_link("a", "a")

    def test_remove_link(self):
        topo = square()
        topo.remove_link(0, 1)
        assert not topo.has_link(0, 1) and not topo.has_link(1, 0)

    def test_isolated_node(self):
        topo = Topology()
        topo.add_node("lonely")
        assert topo.num_nodes == 1
        assert topo.degree("lonely") == 0

    def test_undirected_links_each_once(self):
        topo = square()
        undirected = topo.undirected_links()
        assert len(undirected) == 4
        assert len({frozenset(e) for e in undirected}) == 4

    def test_copy_independent(self):
        topo = square()
        clone = topo.copy()
        clone.remove_link(0, 1)
        assert topo.has_link(0, 1)


class TestConnectivity:
    def test_connected(self):
        assert square().is_connected()

    def test_disconnected(self):
        topo = square()
        topo.add_node("island")
        assert not topo.is_connected()

    def test_empty_is_connected(self):
        assert Topology().is_connected()

    def test_diameter(self):
        assert square().diameter() == 2


class TestShortestPaths:
    def test_tree_reaches_everything(self):
        topo = square()
        tree = topo.shortest_path_tree(0)
        assert set(tree) == {1, 2, 3}
        assert tree[1] == 0 and tree[3] == 0
        assert tree[2] in (1, 3)

    def test_path(self):
        topo = square()
        path = topo.shortest_path(2, 0)
        assert path[0] == 2 and path[-1] == 0
        assert len(path) == 3

    def test_path_identity(self):
        assert square().shortest_path(1, 1) == [1]

    def test_path_avoiding_links(self):
        topo = square()
        path = topo.shortest_path(1, 0, avoid_links=[(0, 1)])
        assert path == [1, 2, 3, 0]

    def test_avoid_blocks_both_directions(self):
        topo = square()
        tree = topo.shortest_path_tree(0, avoid_links=[(1, 0)])
        assert tree[1] == 2  # 1 cannot use the failed 1-0 link

    def test_no_path_when_cut(self):
        topo = square()
        assert topo.shortest_path(2, 0,
                                  avoid_links=[(0, 1), (3, 0)]) is None

    def test_tree_is_deterministic(self):
        topo = square()
        assert topo.shortest_path_tree(0) == topo.shortest_path_tree(0)
