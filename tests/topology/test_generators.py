"""Tests for topology generators (scale/shape per Table 2)."""

import pytest

import networkx  # cross-check library, tests only

from repro.topology.generators import (
    airtel, campus, fat_tree, four_switch, grid, isp_like, line, ring,
    rocketfuel, star,
)


def to_networkx(topo):
    graph = networkx.DiGraph()
    graph.add_nodes_from(topo.nodes)
    graph.add_edges_from(topo.links())
    return graph


class TestBasicShapes:
    def test_line(self):
        topo = line(5)
        assert topo.num_nodes == 5
        assert topo.num_links == 8
        assert topo.diameter() == 4

    def test_ring(self):
        topo = ring(6)
        assert topo.num_nodes == 6
        assert topo.num_links == 12
        assert all(topo.degree(n) == 2 for n in topo.nodes)

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring(2)

    def test_star(self):
        topo = star(7)
        assert topo.num_nodes == 8
        assert topo.degree(0) == 7

    def test_grid(self):
        topo = grid(3, 4)
        assert topo.num_nodes == 12
        assert topo.is_connected()

    def test_fat_tree_counts(self):
        k = 4
        topo = fat_tree(k)
        # k^2/4 cores + k pods x (k/2 aggs + k/2 edges)
        assert topo.num_nodes == (k * k) // 4 + k * k
        assert topo.is_connected()

    def test_fat_tree_odd_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(3)

    def test_four_switch(self):
        topo = four_switch()
        assert topo.num_nodes == 4
        assert topo.name == "4switch"


class TestEvaluationTopologies:
    def test_campus_is_23_nodes(self):
        topo = campus()
        assert topo.num_nodes == 23  # Table 2: Berkeley
        assert topo.is_connected()

    def test_airtel_is_16_switches(self):
        topo = airtel()
        assert topo.num_nodes == 16  # §4.2.2: sixteen Open vSwitches
        assert topo.is_connected()
        assert topo.diameter() <= 5

    @pytest.mark.parametrize("asn,expected_nodes",
                             [(1755, 87), (3257, 161), (6461, 138),
                              (1239, 316)])
    def test_rocketfuel_node_counts_match_table2(self, asn, expected_nodes):
        topo = rocketfuel(asn)
        assert topo.num_nodes == expected_nodes
        assert topo.is_connected()

    def test_rocketfuel_unknown_asn(self):
        with pytest.raises(ValueError):
            rocketfuel(9999)

    def test_isp_like_determinism(self):
        a = isp_like(50, 60, seed=5)
        b = isp_like(50, 60, seed=5)
        assert sorted(a.links()) == sorted(b.links())
        c = isp_like(50, 60, seed=6)
        assert sorted(a.links()) != sorted(c.links())

    def test_isp_like_heavy_tail(self):
        """Preferential attachment: max degree well above the median."""
        topo = isp_like(120, 150, seed=3)
        degrees = sorted(topo.degree(n) for n in topo.nodes)
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_connectivity_cross_checked_with_networkx(self):
        topo = rocketfuel(1755)
        graph = to_networkx(topo)
        assert networkx.is_strongly_connected(graph)
        assert graph.number_of_nodes() == topo.num_nodes
        assert graph.number_of_edges() == topo.num_links

    def test_shortest_paths_match_networkx(self):
        topo = airtel()
        graph = to_networkx(topo)
        for destination in (0, 7, 13):
            tree = topo.shortest_path_tree(destination)
            lengths = networkx.single_source_shortest_path_length(
                graph.reverse(), destination)
            for node, parent in tree.items():
                assert lengths[node] == lengths[parent] + 1
