"""Tests for atomic-predicate computation (Yang & Lam refinement)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apv.atomic import atomic_predicates, is_partition, predicate_to_atoms
from repro.core.atoms import AtomTable
from repro.core.intervals import IntervalSet

spans = st.lists(
    st.tuples(st.integers(0, 32), st.integers(0, 32)).map(
        lambda p: (min(p), max(p))),
    min_size=1, max_size=3)
predicates_strategy = st.lists(spans.map(IntervalSet), min_size=0, max_size=8)


class TestAtomicPredicates:
    def test_no_predicates_single_class(self):
        partition = atomic_predicates([], width=5)
        assert partition == [IntervalSet.universe(5)]

    def test_paper_table1_rules(self):
        """rH=[10:12), rL=[0:16) over a 4-bit space.

        Unlike Delta-net's three atoms (Figure 5), the *minimal* partition
        merges [0:10) and [12:16) — they behave identically under both
        predicates.  This is exactly the §5 minimality difference.
        """
        partition = atomic_predicates(
            [IntervalSet([(10, 12)]), IntervalSet([(0, 16)])], width=4)
        assert [p.spans for p in partition] == \
            [[(0, 10), (12, 16)], [(10, 12)]]

    def test_is_minimal_vs_deltanet_atoms(self):
        """APV can merge non-contiguous classes Delta-net keeps separate:
        predicates [0:4) and [8:12) make Delta-net atoms
        {[0:4),[4:8),[8:12),[12:16)} but only 3 atomic predicates
        ([4:8) and [12:16) behave identically for every predicate)."""
        preds = [IntervalSet([(0, 4)]), IntervalSet([(8, 12)])]
        partition = atomic_predicates(preds, width=4)
        assert len(partition) == 3
        table = AtomTable(width=4)
        table.create_atoms(0, 4)
        table.create_atoms(8, 12)
        assert table.num_atoms == 4  # Delta-net's non-minimal refinement

    @settings(max_examples=150, deadline=None)
    @given(predicates_strategy)
    def test_result_is_partition(self, predicates):
        predicates = [p for p in predicates if p]
        partition = atomic_predicates(predicates, width=6)
        assert is_partition(partition, width=6)

    @settings(max_examples=150, deadline=None)
    @given(predicates_strategy)
    def test_every_predicate_is_union_of_atoms(self, predicates):
        predicates = [p for p in predicates if p]
        partition = atomic_predicates(predicates, width=6)
        for predicate in predicates:
            indices = predicate_to_atoms(predicate, partition)
            rebuilt = IntervalSet()
            for index in indices:
                rebuilt = rebuilt | partition[index]
            assert rebuilt == predicate

    @settings(max_examples=50, deadline=None)
    @given(predicates_strategy)
    def test_minimality_no_two_classes_mergeable(self, predicates):
        """Minimality: distinct classes differ on at least one predicate."""
        predicates = [p for p in predicates if p]
        partition = atomic_predicates(predicates, width=6)
        signatures = []
        for part in partition:
            point = part.spans[0][0]
            signatures.append(tuple(point in pred for pred in predicates))
        assert len(set(signatures)) == len(signatures)

    def test_predicate_to_atoms_rejects_unrefined(self):
        partition = [IntervalSet([(0, 32)]), IntervalSet([(32, 64)])]
        with pytest.raises(ValueError):
            predicate_to_atoms(IntervalSet([(10, 20)]), partition)


class TestIsPartition:
    def test_good_partition(self):
        assert is_partition([IntervalSet([(0, 8)]), IntervalSet([(8, 16)])], 4)

    def test_gap_rejected(self):
        assert not is_partition([IntervalSet([(0, 8)])], 4)

    def test_overlap_rejected(self):
        assert not is_partition(
            [IntervalSet([(0, 10)]), IntervalSet([(8, 16)])], 4)

    def test_empty_class_rejected(self):
        assert not is_partition([IntervalSet(), IntervalSet([(0, 16)])], 4)
