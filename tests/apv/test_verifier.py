"""Tests for the static atomic-predicates verifier."""

import random

import pytest

from repro.apv.verifier import APVerifier
from repro.checkers.reachability import reachable_atoms
from repro.core.deltanet import DeltaNet
from repro.core.intervals import IntervalSet
from repro.core.rules import Rule

from tests.conftest import random_rules


def chain_rules():
    return [
        Rule.forward(0, 0, 8, 1, "s1", "s2"),
        Rule.forward(1, 0, 4, 1, "s2", "s3"),
        Rule.forward(2, 8, 16, 1, "s1", "s4"),
    ]


class TestAPVerifier:
    def test_labels_respect_priority(self):
        rules = [Rule.forward(0, 0, 16, 1, "s1", "s2"),
                 Rule.forward(1, 4, 8, 9, "s1", "s3")]
        apv = APVerifier(rules, width=4)
        low_pred = apv.predicate_of(apv.label[rules[0].link])
        high_pred = apv.predicate_of(apv.label[rules[1].link])
        assert high_pred == IntervalSet([(4, 8)])
        assert low_pred == IntervalSet([(0, 4), (8, 16)])

    def test_reachable_matches_deltanet(self):
        rules = chain_rules()
        apv = APVerifier(rules, width=4)
        net = DeltaNet(width=4)
        for rule in rules:
            net.insert_rule(rule)
        for src, dst in (("s1", "s3"), ("s1", "s4"), ("s2", "s4")):
            apv_answer = apv.reachable(src, dst)
            atoms = reachable_atoms(net, src, dst)
            deltanet_answer = IntervalSet(
                net.atoms.atom_interval(a) for a in atoms)
            assert apv_answer == deltanet_answer, (src, dst)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_reachability_matches_deltanet(self, seed):
        rng = random.Random(seed)
        rules = random_rules(rng, 20, width=6, switches=4, drop_fraction=0.0)
        apv = APVerifier(rules, width=6)
        net = DeltaNet(width=6)
        for rule in rules:
            net.insert_rule(rule)
        for src in ("s0", "s1", "s2", "s3"):
            for dst in ("s0", "s1", "s2", "s3"):
                if src == dst:
                    continue
                atoms = reachable_atoms(net, src, dst)
                expected = IntervalSet(net.atoms.atom_interval(a) for a in atoms)
                assert apv.reachable(src, dst) == expected

    def test_insert_and_remove_recompute(self):
        apv = APVerifier(chain_rules(), width=4)
        before = apv.num_atomic_predicates
        apv.insert_rule(Rule.forward(9, 2, 6, 9, "s1", "s9"))
        assert apv.num_atomic_predicates >= before
        apv.remove_rule(9)
        assert apv.num_atomic_predicates == before
        assert all(r.rid != 9 for r in apv.rules)

    def test_minimality_never_exceeds_deltanet_atoms(self):
        rng = random.Random(1)
        rules = random_rules(rng, 25, width=6, switches=3, drop_fraction=0.0)
        apv = APVerifier(rules, width=6)
        net = DeltaNet(width=6)
        for rule in rules:
            net.insert_rule(rule)
        assert apv.num_atomic_predicates <= net.num_atoms
