"""The budgeted scrubber: clean passes, detection, cursor semantics."""

import random

from repro.api.session import VerificationSession
from repro.integrity import Scrubber

from tests.conftest import random_rules


def make_session(backend="deltanet", count=20, seed=3, **options):
    session = VerificationSession(backend, width=8, **options)
    for rule in random_rules(random.Random(seed), count, width=8,
                             switches=4):
        session.insert(rule)
    return session


class TestCleanPasses:
    def test_full_pass_is_clean_on_healthy_state(self):
        session = make_session()
        scrubber = Scrubber(session)
        report = scrubber.run_full()
        assert report.ok
        assert report["mode"] == "nets"
        assert report["entries"] > 0
        assert scrubber.counters["passes"] == 1
        assert scrubber.counters["mismatches"] == 0
        session.close()

    def test_sharded_backend_scrubs_every_net(self):
        session = make_session("sharded")
        report = Scrubber(session).run_full()
        assert report.ok
        assert report["nets"] == len(session.backend.native.nets)
        session.close()

    def test_budgeted_pass_takes_multiple_steps(self):
        session = make_session()
        scrubber = Scrubber(session, entries_per_step=1)
        steps = 0
        while True:
            progress = scrubber.step()
            steps += 1
            if progress.get("pass_complete"):
                break
            assert steps < 10_000, "pass never completed"
        assert steps > 1
        assert scrubber.last_report.ok
        assert scrubber.counters["steps"] == steps
        session.close()

    def test_status_reports_counters_and_verdict(self):
        session = make_session()
        scrubber = Scrubber(session)
        status = scrubber.status()
        assert status["last_pass_clean"] is None
        scrubber.run_full()
        status = scrubber.status()
        assert status["last_pass_clean"] is True
        assert status["passes"] == 1
        session.close()


class TestCursorInvalidation:
    def test_mutation_between_steps_restarts_the_pass(self):
        session = make_session(count=30)
        scrubber = Scrubber(session, entries_per_step=1)
        progress = scrubber.step()
        assert not progress.get("pass_complete")
        # A mutation bumps the sequence; the cursor is now mixed-epoch.
        from repro.core.rules import Rule

        session.insert(Rule.forward(9999, 0, 64, 3, "s0", "s1"))
        scrubber.run_full()
        assert scrubber.counters["restarts"] == 1
        assert scrubber.last_report.ok
        session.close()


class TestDetection:
    def test_tampered_label_digest_is_detected(self):
        session = make_session()
        native = session.backend.native
        # Corrupt the incrementally maintained digest behind the
        # structure's back — the from-scratch recomputation must win.
        native.findex.digest.xor ^= 0xDEADBEEF
        report = Scrubber(session).run_full()
        assert not report.ok
        assert any(m["component"] == "labels" for m in report["mismatches"])
        session.close()

    def test_tampered_boundary_digest_is_detected(self):
        session = make_session()
        native = session.backend.native
        native.atoms.digest.total = (native.atoms.digest.total + 1) & (
            (1 << 64) - 1)
        report = Scrubber(session).run_full()
        assert not report.ok
        assert any(m["component"] == "boundaries"
                   for m in report["mismatches"])
        session.close()

    def test_desynced_structure_is_detected(self):
        # Structure corruption (not digest corruption): toggle a label
        # entry behind the digest's back, as bit rot would.
        session = make_session()
        native = session.backend.native
        runs = next(iter(native.findex.by_link.values()))
        if not runs.add(0):
            runs.discard(0)
        report = Scrubber(session).run_full()
        assert not report.ok
        session.close()


class TestDisabledDigests:
    def test_scrub_skips_comparison_when_disabled(self, monkeypatch):
        monkeypatch.setenv("DELTANET_DIGESTS", "0")
        session = make_session()
        report = Scrubber(session).run_full()
        # Nothing incremental to audit — the pass completes clean
        # rather than crashing or reporting phantom mismatches.
        assert report.ok
        session.close()
