"""Order-independent state digests: algebra, wiring, cross-checks."""

import random

import pytest

from repro.core.deltanet import DeltaNet
from repro.core.rules import Link, Rule
from repro.integrity import (
    combine_digests, digests_enabled, format_digest, parse_digest,
    rules_digest,
)
from repro.integrity.digest import (
    BoundaryDigest, DigestAccumulator, LabelDigest, mix64,
)

from tests.conftest import random_rules


class TestAccumulatorAlgebra:
    def test_include_is_order_independent(self):
        values = [mix64(n) for n in range(50)]
        forward, backward = DigestAccumulator(), DigestAccumulator()
        for value in values:
            forward.include(value)
        for value in reversed(values):
            backward.include(value)
        assert forward == backward

    def test_exclude_inverts_include(self):
        acc = DigestAccumulator()
        baseline = acc.as_tuple()
        for value in (mix64(n) for n in range(20)):
            acc.include(value)
        for value in (mix64(n) for n in range(20)):
            acc.exclude(value)
        assert acc.as_tuple() == baseline

    def test_multiset_not_set(self):
        # The same entry twice is distinguishable from once: the count
        # and sum components move even though xor cancels.
        once, twice = DigestAccumulator(), DigestAccumulator()
        once.include(mix64(7))
        twice.include(mix64(7))
        twice.include(mix64(7))
        assert once != twice


class TestLabelAndBoundaryDigests:
    def test_label_add_remove_roundtrip(self):
        digest = LabelDigest()
        empty = digest.as_tuple()
        link = Link("a", "b")
        for atom in (1, 5, 9):
            digest.add(link, atom)
        for atom in (9, 1, 5):
            digest.remove(link, atom)
        assert digest.as_tuple() == empty

    def test_add_runs_equals_individual_adds(self):
        link = Link("s1", "s2")
        runs_form, singles = LabelDigest(), LabelDigest()
        runs_form.add_runs(link, [(2, 5), (9, 11)])
        for atom in (2, 3, 4, 9, 10):
            singles.add(link, atom)
        assert runs_form.as_tuple() == singles.as_tuple()

    def test_same_atom_on_different_links_differs(self):
        one, other = LabelDigest(), LabelDigest()
        one.add(Link("a", "b"), 3)
        other.add(Link("b", "a"), 3)
        assert one.as_tuple() != other.as_tuple()

    def test_boundary_entries_are_position_sensitive(self):
        one, other = BoundaryDigest(), BoundaryDigest()
        one.add(10, 2)
        other.add(2, 10)
        assert one.as_tuple() != other.as_tuple()


class TestDigestStrings:
    def test_format_parse_roundtrip(self):
        text = format_digest("xorsum1", [(3, 0xDEAD, 0xBEEF), (1, 2, 3)])
        scheme, parts = parse_digest(text)
        assert scheme == "xorsum1"
        assert parts == [(3, 0xDEAD, 0xBEEF), (1, 2, 3)]

    @pytest.mark.parametrize("junk", [
        "", "xorsum1", "xorsum1:1.2", "xorsum1:x.y.z", "nocolonhere",
        "xorsum1:1.2.3.4",
    ])
    def test_parse_rejects_junk(self, junk):
        with pytest.raises(ValueError):
            parse_digest(junk)

    def test_combine_is_componentwise(self):
        a = format_digest("xorsum1", [(1, 0b1010, 5)])
        b = format_digest("xorsum1", [(2, 0b0110, 7)])
        combined = combine_digests([a, b])
        assert parse_digest(combined)[1] == [(3, 0b1100, 12)]

    def test_combine_propagates_none(self):
        a = format_digest("xorsum1", [(1, 2, 3)])
        assert combine_digests([a, None]) is None
        assert combine_digests([]) is None

    def test_combine_rejects_mixed_schemes(self):
        a = format_digest("xorsum1", [(1, 2, 3)])
        b = format_digest("rules1", [(1, 2, 3)])
        with pytest.raises(ValueError):
            combine_digests([a, b])

    def test_rules_digest_is_order_independent(self):
        rules = random_rules(random.Random(3), 12, width=8, switches=4)
        states = [rule.to_state() for rule in rules]
        assert rules_digest(states) == rules_digest(reversed(states))
        assert rules_digest(states) != rules_digest(states[1:])


class TestDeltaNetDigest:
    def test_digest_is_deterministic_across_builds(self):
        # Atom identities depend on creation order, so the digest is a
        # fingerprint of the *representation*: identical op sequences
        # must digest identically (that is what snapshot trailers and
        # worker audits compare), and with GC a fully retracted rule
        # returns the representation — and the digest — to its prior
        # value.
        rules = random_rules(random.Random(7), 20, width=8, switches=4)
        one, other = DeltaNet(width=8), DeltaNet(width=8)
        one.apply(rules, ())
        other.apply(rules, ())
        assert one.state_digest() == other.state_digest()

        collected = DeltaNet(width=8, gc=True)
        collected.apply(rules, ())
        before = collected.state_digest()
        extra = Rule.forward(999, 0, 64, 3, "x", "y")
        collected.apply([extra], ())
        assert collected.state_digest() != before
        collected.apply((), [999])
        assert collected.state_digest() == before

    def test_mutation_moves_the_digest(self):
        net = DeltaNet(width=8)
        rules = random_rules(random.Random(9), 10, width=8, switches=4)
        net.apply(rules, ())
        before = net.state_digest()
        net.apply((), [rules[0].rid])
        assert net.state_digest() != before

    def test_live_digest_matches_recomputation(self):
        net = DeltaNet(width=8)
        rng = random.Random(11)
        rules = random_rules(rng, 30, width=8, switches=5)
        alive = []
        for rule in rules:
            net.apply([rule], ())
            alive.append(rule.rid)
            if len(alive) > 5 and rng.random() < 0.3:
                net.apply((), [alive.pop(rng.randrange(len(alive)))])
        assert net.state_digest() == net.recompute_state_digest()

    def test_restore_preserves_the_digest(self):
        net = DeltaNet(width=8)
        net.apply(random_rules(random.Random(13), 15, width=8, switches=4),
                  ())
        clone = DeltaNet.from_state(net.state_dict())
        assert clone.state_digest() == net.state_digest()

    def test_disabled_digests_return_none(self, monkeypatch):
        monkeypatch.setenv("DELTANET_DIGESTS", "0")
        assert not digests_enabled()
        net = DeltaNet(width=8)
        net.apply(random_rules(random.Random(1), 5, width=8, switches=3),
                  ())
        assert net.state_digest() is None
        # Recomputation still works — it never depends on the live
        # accumulators, so audits can run even on digest-free nets.
        assert net.recompute_state_digest() is not None


class TestBackendDigests:
    def test_sharded_digest_combines_per_net(self):
        from repro.api.registry import create_backend

        backend = create_backend("sharded", width=8)
        for rule in random_rules(random.Random(5), 12, width=8, switches=4):
            backend.insert(rule)
        native = backend.native
        assert backend.state_digest() == combine_digests(
            net.state_digest() for net in native.nets)

    def test_generic_backend_rules_digest(self):
        from repro.api.registry import create_backend

        backend = create_backend("deltanet", width=8)
        rules = random_rules(random.Random(5), 8, width=8, switches=4)
        for rule in rules:
            backend.insert(rule)
        # The generic adapter path digests the rule store; it must be
        # stable across calls and sensitive to membership.
        from repro.api.registry import BackendAdapter

        generic = BackendAdapter.state_digest(backend)
        assert generic == BackendAdapter.state_digest(backend)
        backend.remove(rules[0].rid)
        assert BackendAdapter.state_digest(backend) != generic

    def test_session_digest_survives_snapshot_roundtrip(self):
        import io

        from repro.api.properties import LoopProperty
        from repro.api.session import VerificationSession
        from repro.persist.snapshot import load_session, save_session

        session = VerificationSession("deltanet", width=8,
                                      properties=[LoopProperty()])
        for rule in random_rules(random.Random(2), 10, width=8, switches=4):
            session.insert(rule)
        buffer = io.BytesIO()
        save_session(session, buffer)
        buffer.seek(0)
        restored = load_session(buffer)
        assert restored.state_digest() == session.state_digest()
        restored.close()
        session.close()
