"""Regression tests: every reply is flushed before the daemon blocks again.

The transports' contract (docs/protocol.md, "Framing") is that a
response — *especially* a backpressure refusal — is written and
flushed before the loop goes back to blocking on the next request
frame.  A transport that buffers the refusal while it blocks reading
deadlocks the very client it refused.  These tests wedge each
transport on its next read and assert the previous (error) reply has
already reached the client.

Also pinned here: the frame cap counts UTF-8 *bytes*, not characters
(a 100-character, 300-byte line must not slip under a 256-byte cap).
"""

import io
import json
import socket
import threading

import pytest

from repro.serve import (
    AsyncSessionHub, SessionManager, StreamServer, serve_hub_stdio,
    serve_socket, serve_stdio,
)


class BlockingIn:
    """A text stream that serves scripted lines, then blocks forever.

    ``blocked`` is set the moment the transport asks for input it does
    not have — i.e. after it finished handling every scripted request.
    """

    def __init__(self, lines):
        self._lines = list(lines)
        self.blocked = threading.Event()
        self._release = threading.Event()

    def readline(self, _limit=-1):
        if self._lines:
            return self._lines.pop(0)
        self.blocked.set()
        self._release.wait(10)
        return ""  # EOF once released

    def release(self):
        self._release.set()


class RecordingOut:
    """A text stream that records what was flushed (vs merely written)."""

    def __init__(self):
        self._pending = []
        self.flushed = []

    def write(self, text):
        self._pending.append(text)

    def flush(self):
        self.flushed.extend(self._pending)
        self._pending.clear()

    def unflushed(self):
        return list(self._pending)

    def responses(self):
        return [json.loads(line)
                for line in "".join(self.flushed).splitlines()]


@pytest.fixture
def server(tmp_path):
    instance = StreamServer(str(tmp_path / "store"), width=8, properties=(),
                            max_line_bytes=256, max_queue=0)
    yield instance
    instance.close()


def run_stdio_until_blocked(target, in_stream, out_stream):
    thread = threading.Thread(
        target=target, args=(in_stream, out_stream), daemon=True)
    thread.start()
    assert in_stream.blocked.wait(10), "transport never blocked on read"
    in_stream.release()
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestStdioFlush:
    def test_error_replies_flush_before_blocking(self, server):
        stdin = BlockingIn([
            "this is not json\n",                      # bad JSON
            json.dumps({"cmd": "insert",
                        "rule": {"rid": 1, "lo": 0, "hi": 1,
                                 "priority": 1, "source": "a",
                                 "target": "b"}}) + "\n",  # overloaded
            "x" * 4096 + "\n",                         # frame too large
        ])
        stdout = RecordingOut()
        run_stdio_until_blocked(
            lambda i, o: serve_stdio(server, i, o), stdin, stdout)
        responses = stdout.responses()
        assert stdout.unflushed() == []
        assert "bad JSON" in responses[0]["error"]
        assert responses[1]["error"] == "overloaded"
        assert responses[2]["error"] == "frame too large"

    def test_flush_happens_per_reply_not_at_exit(self, tmp_path):
        plain = StreamServer(str(tmp_path / "plain"), width=8,
                             properties=())
        stdin = BlockingIn(['{"cmd": "ping"}\n'])
        stdout = RecordingOut()
        thread = threading.Thread(
            target=serve_stdio, args=(plain, stdin, stdout), daemon=True)
        thread.start()
        try:
            # While the daemon is *still blocked* reading, the ping
            # reply must already have been flushed.
            assert stdin.blocked.wait(10)
            assert stdout.responses()[0]["ok"] is True
            assert stdout.unflushed() == []
        finally:
            stdin.release()
            thread.join(timeout=10)
            plain.close()


class TestHubStdioFlush:
    def test_error_replies_flush_before_blocking(self, tmp_path):
        manager = SessionManager(str(tmp_path / "root"),
                                 defaults=dict(width=8, properties=(),
                                               max_queue=0))
        hub = AsyncSessionHub(manager, max_line_bytes=256)
        stdin = BlockingIn([
            "not json\n",
            json.dumps({"cmd": "open", "session": "red"}) + "\n",
            json.dumps({"cmd": "insert",
                        "rule": {"rid": 1, "lo": 0, "hi": 1,
                                 "priority": 1, "source": "a",
                                 "target": "b"}}) + "\n",  # overloaded
            "€" * 100 + "\n",                          # 300 bytes > 256
        ])
        stdout = RecordingOut()
        run_stdio_until_blocked(
            lambda i, o: serve_hub_stdio(hub, i, o), stdin, stdout)
        responses = stdout.responses()
        assert stdout.unflushed() == []
        assert "bad JSON" in responses[0]["error"]
        assert responses[1]["ok"] is True
        assert responses[2]["error"] == "overloaded"
        assert responses[3]["error"] == "frame too large"


class TestSocketFlush:
    def test_refusals_reach_a_client_that_keeps_the_connection(
            self, server):
        ready = threading.Event()
        bound = {}

        def on_ready(host, port):
            bound["address"] = (host, port)
            ready.set()

        thread = threading.Thread(
            target=serve_socket, args=(server,),
            kwargs=dict(port=0, ready=on_ready), daemon=True)
        thread.start()
        assert ready.wait(10)
        sock = socket.create_connection(bound["address"])
        rfile = sock.makefile("r", encoding="utf-8")
        try:
            # The client pipelines nothing: it sends one request and
            # *waits*.  If the server buffered the refusal while
            # blocking on the next read, this readline would hang.
            sock.settimeout(10)
            sock.sendall(b"x" * 4096 + b"\n")
            assert json.loads(rfile.readline())["error"] == "frame too large"
            sock.sendall(b"not json\n")
            assert "bad JSON" in json.loads(rfile.readline())["error"]
            sock.sendall(json.dumps(
                {"cmd": "insert",
                 "rule": {"rid": 1, "lo": 0, "hi": 1, "priority": 1,
                          "source": "a", "target": "b"}}).encode() + b"\n")
            assert json.loads(rfile.readline())["error"] == "overloaded"
            # A draining refusal must flush too — and it is also how
            # this max_queue=0 daemon (which refuses even "shutdown")
            # gets stopped.
            server.request_drain()
            sock.sendall(b'{"cmd": "ping"}\n')
            assert json.loads(rfile.readline())["error"] == "draining"
        finally:
            rfile.close()
            sock.close()
            thread.join(timeout=10)
            assert not thread.is_alive()


class TestByteAccurateFrameCap:
    def test_multibyte_line_is_measured_in_bytes(self, server):
        # 100 chars, 300 utf-8 bytes: over the 256-byte cap even
        # though the *character* count is far under it.
        response, keep = server.handle_line("€" * 100)
        assert keep
        assert response["error"] == "frame too large"
        assert response["max_line_bytes"] == 256

    def test_ascii_line_under_cap_still_passes(self, server):
        response, _ = server.handle_line('{"cmd": "health"}')
        assert response["ok"] is True

    def test_ascii_line_at_exact_cap_passes(self, tmp_path):
        server = StreamServer(str(tmp_path / "exact"), width=8,
                              properties=(), max_line_bytes=256)
        try:
            base = json.dumps({"cmd": "ping", "pad": ""})
            padded = json.dumps(
                {"cmd": "ping", "pad": "x" * (256 - len(base))})
            assert len(padded.encode()) == 256
            response, _ = server.handle_line(padded + "\n")
            assert response["ok"] is True
        finally:
            server.close()
