"""The serving layer's metrics: instruments, exposition, server wiring."""

import pytest

from repro.serve import MetricsRegistry, StreamServer
from repro.serve.metrics import DEFAULT_BUCKETS


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_value_and_default_zero(self, registry):
        counter = registry.counter("c_total", "help", ("verb",))
        assert counter.value(verb="ping") == 0
        counter.inc(verb="ping")
        counter.inc(3, verb="ping")
        assert counter.value(verb="ping") == 4

    def test_label_sets_are_independent(self, registry):
        counter = registry.counter("c_total", "help", ("verb",))
        counter.inc(verb="insert")
        counter.inc(verb="query")
        assert counter.samples() == [(("insert",), 1), (("query",), 1)]

    def test_wrong_labels_are_refused(self, registry):
        counter = registry.counter("c_total", "help", ("verb",))
        with pytest.raises(ValueError):
            counter.inc(oops="x")
        with pytest.raises(ValueError):
            counter.inc()

    def test_render_escapes_label_values(self, registry):
        counter = registry.counter("c_total", "help", ("verb",))
        counter.inc(verb='we"ird\\nam\ne')
        (line,) = [l for l in counter.render() if not l.startswith("#")]
        assert line == r'c_total{verb="we\"ird\\nam\ne"} 1'


class TestHistogram:
    def test_buckets_are_cumulative(self, registry):
        histogram = registry.histogram("h_seconds", "help", ("verb",),
                                       buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value, verb="q")
        snap = histogram.snapshot(verb="q")
        assert snap["buckets"] == [1, 2, 3]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)

    def test_render_has_inf_sum_and_count(self, registry):
        histogram = registry.histogram("h_seconds", "help", (),
                                       buckets=(0.5,))
        histogram.observe(0.25)
        histogram.observe(2.0)
        text = "\n".join(histogram.render())
        assert 'h_seconds_bucket{le="0.5"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        assert "h_seconds_sum 2.25" in text
        assert "h_seconds_count 2" in text

    def test_default_buckets_cover_serving_latencies(self):
        assert DEFAULT_BUCKETS[0] <= 0.0001
        assert DEFAULT_BUCKETS[-1] >= 1.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestGauge:
    def test_watch_reports_live_values(self, registry):
        state = {"depth": 0}
        gauge = registry.gauge("g", "help", ("session",))
        gauge.watch(("red",), lambda: state["depth"])
        state["depth"] = 7
        assert 'g{session="red"} 7' in "\n".join(gauge.render())

    def test_failing_callback_skips_sample_not_scrape(self, registry):
        gauge = registry.gauge("g", "help", ("session",))
        gauge.watch(("dead",), lambda: 1 / 0)
        gauge.watch(("live",), lambda: 2)
        text = "\n".join(gauge.render())
        assert 'g{session="live"} 2' in text
        assert "dead" not in text

    def test_unwatch_removes_sample(self, registry):
        gauge = registry.gauge("g", "help", ("session",))
        gauge.watch(("red",), lambda: 1)
        gauge.unwatch(("red",))
        gauge.unwatch(("red",))  # no-op
        assert "red" not in "\n".join(gauge.render())

    def test_watch_arity_is_checked(self, registry):
        gauge = registry.gauge("g", "help", ("a", "b"))
        with pytest.raises(ValueError):
            gauge.watch(("only-one",), lambda: 0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, registry):
        first = registry.counter("c_total", "help", ("verb",))
        again = registry.counter("c_total", "ignored", ("verb",))
        assert again is first
        assert registry.get("c_total") is first

    def test_type_and_label_collisions_are_refused(self, registry):
        registry.counter("c_total", "help", ("verb",))
        with pytest.raises(ValueError):
            registry.gauge("c_total", "help", ("verb",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "help", ("other",))

    def test_render_text_is_sorted_and_newline_terminated(self, registry):
        registry.counter("z_total", "last", ()).inc()
        registry.counter("a_total", "first", ()).inc()
        text = registry.render_text()
        assert text.endswith("\n")
        assert text.index("a_total") < text.index("z_total")
        assert registry.render_text() == text  # stable

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_text() == ""


class TestServerInstrumentation:
    @pytest.fixture
    def server(self, tmp_path):
        instance = StreamServer(str(tmp_path / "store"), width=8,
                                properties=(), name="red")
        yield instance
        instance.close()

    def test_requests_and_latency_are_counted_per_verb(self, server):
        server.handle_line('{"cmd": "ping"}')
        server.handle_line('{"cmd": "ping"}')
        server.handle_line('{"cmd": "stats"}')
        text = server.metrics.render_text()
        assert 'deltanet_requests_total{session="red",verb="ping"} 2' in text
        assert 'deltanet_requests_total{session="red",verb="stats"} 1' in text
        assert ('deltanet_request_seconds_count'
                '{session="red",verb="ping"} 2') in text

    def test_rejections_and_errors_are_counted(self, server):
        server.handle_line("this is not json")
        response, _ = server.handle_line('{"cmd": "insert"}')
        assert not response["ok"]
        text = server.metrics.render_text()
        assert ('deltanet_rejected_total{session="red",reason="bad-json"} 1'
                in text)
        assert 'deltanet_errors_total{session="red",verb="insert"} 1' in text

    def test_metrics_verb_returns_exposition(self, server):
        server.handle_line('{"cmd": "ping"}')
        response, keep = server.handle_line('{"cmd": "metrics"}')
        assert keep and response["ok"]
        assert 'deltanet_requests_total{session="red",verb="ping"} 1' in (
            response["metrics"])

    def test_sequence_gauge_tracks_updates_and_close_unwatches(
            self, tmp_path):
        server = StreamServer(str(tmp_path / "store"), width=8,
                              properties=(), name="red")
        try:
            server.handle_line(
                '{"cmd": "insert", "rule": {"rid": 1, "lo": 0, "hi": 1, '
                '"priority": 1, "source": "a", "target": "b"}}')
            text = server.metrics.render_text()
            assert 'deltanet_session_sequence{session="red"} 1' in text
        finally:
            server.close()
        assert 'deltanet_session_sequence{session="red"}' not in (
            server.metrics.render_text())
