"""Lint: nothing in ``src/`` may call the deprecated query shims.

The Query API redesign kept ``session.flows_on`` /
``session.reachable`` / ``session.what_if_link_down`` /
``session.find_loops`` alive as :class:`DeprecationWarning` shims for
external callers — but internal code must be fully migrated to
``session.query(...)``.  This test tokenizes every source file (so
docstrings and comments may still *mention* the old names) and fails if
any session-like receiver calls a shimmed method outside the shims'
own home, ``src/repro/api/session.py``.
"""

import io
import pathlib
import re
import tokenize

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: The only file allowed to reference the shimmed methods in code: the
#: module that defines (and deprecates) them.
ALLOWED = {SRC / "repro" / "api" / "session.py"}

#: A call of a shimmed method on a session-like receiver.  Backend
#: adapters and natives legitimately expose same-named *primitives*
#: (``backend.flows_on``, ``net.find_loops``) — those are the Query
#: API's own building blocks, so the lint keys on the receiver name.
SHIM_CALL = re.compile(
    r"\b(?:\w*session|sess|child|parent)\s*\.\s*"
    r"(?:flows_on|reachable|what_if_link_down|find_loops)\s*\(")


def _code_text(path):
    """The file's source with string literals and comments blanked."""
    out = []
    with open(path, "rb") as handle:
        try:
            tokens = list(tokenize.tokenize(handle.readline))
        except tokenize.TokenError:  # pragma: no cover
            return path.read_text()
    for token in tokens:
        if token.type in (tokenize.STRING, tokenize.COMMENT):
            continue
        out.append(token.string)
    return " ".join(out)


def test_no_internal_callers_of_deprecated_query_shims():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        for match in SHIM_CALL.finditer(_code_text(path)):
            offenders.append(f"{path.relative_to(SRC)}: "
                             f"{match.group(0).strip()}...")
    assert not offenders, (
        "internal code must use session.query(...) instead of the "
        "deprecated per-method shims:\n  " + "\n  ".join(offenders))
