"""Property-based equivalence: ``apply_batch`` vs sequential Delta-net.

The batched engine must be indistinguishable from looping the single-op
algorithms: identical atom ids and boundaries, identical label maps,
identical owner structure (checked via the §3.2 invariants), identical
loop/blackhole verdicts, and a delta-graph whose net effect maps the
pre-state flows exactly onto the post-state flows.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkers.blackholes import find_blackholes
from repro.checkers.loops import find_forwarding_loops
from repro.core.atomset import atoms_to_interval_set
from repro.core.deltanet import DeltaNet
from repro.core.intervals import IntervalSet
from repro.core.rules import Rule

from tests.conftest import deltanet_label_intervals, random_rules


def label_snapshot(net):
    return {link: sorted(atoms) for link, atoms in net.label.items() if atoms}


def loop_verdict(net):
    return {(loop.atom, loop.cycle) for loop in find_forwarding_loops(net)}


def blackhole_verdict(net):
    return {node: atoms_to_interval_set(atoms, net.atoms)
            for node, atoms in find_blackholes(net).items()}


def random_batches(seed, count=40, width=8, switches=4):
    """A randomized mixed insert/remove batch schedule."""
    rng = random.Random(seed)
    rules = random_rules(rng, count, width=width, switches=switches,
                         drop_fraction=0.15)
    live, index = [], 0
    while index < len(rules):
        chunk = rules[index:index + rng.randint(1, 6)]
        index += len(chunk)
        removals = []
        while live and rng.random() < 0.4:
            removals.append(live.pop(rng.randrange(len(live))).rid)
        live.extend(chunk)
        yield chunk, removals


class TestBatchEquivalence:
    @pytest.mark.parametrize("gc", [False, True])
    @pytest.mark.parametrize("seed", range(12))
    def test_bit_identical_to_sequential(self, seed, gc):
        sequential = DeltaNet(width=8, gc=gc)
        batched = DeltaNet(width=8, gc=gc)
        for inserts, removals in random_batches(seed):
            sequential.apply(inserts, removals)
            batched.apply_batch(inserts, removals)
            assert sequential.atoms.boundaries() == batched.atoms.boundaries()
            if not gc:
                # Without GC even the atom *identifiers* match; with GC a
                # batch skips the collect-then-recreate churn of a bound
                # shared by a removed and an inserted rule, so recycled
                # ids may differ while the intervals stay identical.
                assert label_snapshot(sequential) == label_snapshot(batched)
            assert deltanet_label_intervals(sequential) == \
                deltanet_label_intervals(batched)
            batched.check_invariants()
        assert {frozenset(l[1]) for l in loop_verdict(sequential)} == \
            {frozenset(l[1]) for l in loop_verdict(batched)}
        assert blackhole_verdict(sequential) == blackhole_verdict(batched)

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_one_shot_batch_matches_sequential(self, seed):
        rng = random.Random(seed)
        rules = random_rules(rng, rng.randint(1, 25), width=8, switches=3,
                             drop_fraction=0.2)
        sequential = DeltaNet(width=8)
        batched = DeltaNet(width=8)
        for rule in rules:
            sequential.insert_rule(rule)
        batched.apply_batch(rules)
        assert label_snapshot(sequential) == label_snapshot(batched)
        assert sequential.atoms.boundaries() == batched.atoms.boundaries()
        batched.check_invariants()

    def test_delta_graph_net_effect_is_exact(self):
        """pre-flows + added - removed == post-flows, per link, in spans."""
        for seed in range(8):
            net = DeltaNet(width=8)
            for inserts, removals in random_batches(seed, count=30):
                pre = {link: IntervalSet(spans) for link, spans in
                       deltanet_label_intervals(net).items()}
                delta = net.apply_batch(inserts, removals)
                post = deltanet_label_intervals(net)
                links = set(pre) | set(delta.added) | set(delta.removed)
                for link in links:
                    expected = pre.get(link, IntervalSet())
                    expected |= IntervalSet(
                        atoms_to_interval_set(delta.added.get(link, ()),
                                              net.atoms))
                    expected -= IntervalSet(
                        atoms_to_interval_set(delta.removed.get(link, ()),
                                              net.atoms))
                    assert expected.spans == post.get(link, []), (seed, link)

    def test_remove_then_reinsert_same_rid(self):
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(7, 0, 128, 1, "a", "b"))
        delta = net.apply_batch(
            [Rule.forward(7, 0, 128, 1, "a", "c")], [7])
        assert net.rules[7].target == "c"
        assert net.flows_on(("a", "c")) == [(0, 128)]
        assert net.flows_on(("a", "b")) == []
        # net effect: one link lost the flow, the other gained it
        assert set(delta.added) == {("a", "c")}
        assert set(delta.removed) == {("a", "b")}

    def test_insert_then_shadow_within_batch_emits_no_edge(self):
        """A rule fully shadowed by a same-batch higher-priority rule on
        the same link leaves no trace in the aggregated delta-graph."""
        net = DeltaNet(width=8)
        low = Rule.forward(0, 0, 64, 1, "a", "b")
        high = Rule.forward(1, 0, 64, 9, "a", "b")
        delta = net.apply_batch([low, high])
        assert list(delta.added) == [("a", "b")]
        assert not delta.removed
        # shadowing on a *different* link cancels the shadowed add
        net2 = DeltaNet(width=8)
        other = Rule.forward(1, 0, 64, 9, "a", "c")
        delta2 = net2.apply_batch([low, other])
        assert list(delta2.added) == [("a", "c")]
        assert not delta2.removed


class TestBatchValidation:
    def test_rejected_batch_leaves_no_trace(self):
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
        before = (net.atoms.boundaries(), label_snapshot(net), dict(net.rules))
        good = Rule.forward(1, 32, 64, 1, "a", "b")
        with pytest.raises(ValueError):
            net.apply_batch([good, Rule.forward(0, 0, 8, 2, "a", "b")])
        with pytest.raises(KeyError):
            net.apply_batch([good], [99])
        with pytest.raises(ValueError):
            net.apply_batch([good, good])
        with pytest.raises(KeyError):
            net.apply_batch((), [0, 0])
        assert before == (net.atoms.boundaries(), label_snapshot(net),
                          dict(net.rules))

    def test_out_of_range_interval_rejected(self):
        net = DeltaNet(width=8)
        with pytest.raises(ValueError):
            net.apply_batch([Rule.forward(0, 0, 512, 1, "a", "b")])
        assert net.num_rules == 0

    def test_empty_batch(self):
        net = DeltaNet(width=8)
        delta = net.apply_batch()
        assert delta.is_empty() and not delta.splits


class TestSatelliteRegressions:
    def test_label_of_returns_immutable_snapshot(self):
        """Mutating what label_of returns must not corrupt the verifier."""
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(0, 0, 128, 1, "a", "b"))
        view = net.label_of(("a", "b"))
        assert isinstance(view, frozenset)
        with pytest.raises(AttributeError):
            view.add(999)
        # a stale snapshot does not alias live state
        net.insert_rule(Rule.forward(1, 0, 128, 9, "a", "c"))
        assert view  # old snapshot unchanged
        assert net.label_of(("a", "b")) == frozenset()
        net.check_invariants()

    def test_label_of_empty_is_falsy_frozenset(self):
        net = DeltaNet(width=8)
        assert net.label_of(("x", "y")) == frozenset()
        assert not net.label_of(("x", "y"))

    def test_atom_table_overlapping_is_public(self):
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(0, 8, 16, 1, "a", "b"))
        net.insert_rule(Rule.forward(1, 12, 24, 2, "a", "c"))
        direct = list(net.atoms.overlapping(6, 20))
        assert direct == list(net.atoms_overlapping(6, 20))
        covered = set()
        for atom in direct:
            lo, hi = net.atoms.atom_interval(atom)
            covered.add((lo, hi))
            assert lo < 20 and hi > 6  # really overlaps the query
        with pytest.raises(ValueError):
            list(net.atoms.overlapping(20, 6))
