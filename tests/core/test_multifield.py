"""Tests for composite-match node encoding (§4.1)."""

import pytest

from repro.core.multifield import FieldSchema, MultiFieldDeltaNet
from repro.core.rules import Action


class TestFieldSchema:
    def test_requires_fields(self):
        with pytest.raises(ValueError):
            FieldSchema([])

    def test_domains_align(self):
        with pytest.raises(ValueError):
            FieldSchema(["port"], domains=[[1], [2]])

    def test_observe_grows_domain(self):
        schema = FieldSchema(["port"])
        schema.observe([3])
        schema.observe([5])
        assert schema.domains[0] == {3, 5}
        schema.observe([None])  # wildcard observes nothing
        assert schema.domains[0] == {3, 5}

    def test_expand_concrete(self):
        schema = FieldSchema(["port", "vlan"])
        assert schema.expand([1, "a"]) == [(1, "a")]

    def test_expand_wildcard(self):
        schema = FieldSchema(["port"], domains=[[1, 2, 3]])
        assert schema.expand([None]) == [(1,), (2,), (3,)]

    def test_expand_wildcard_empty_domain_rejected(self):
        schema = FieldSchema(["port"])
        with pytest.raises(ValueError):
            schema.expand([None])

    def test_expand_cross_product(self):
        schema = FieldSchema(["port", "vlan"], domains=[[1, 2], [10]])
        assert schema.expand([None, None]) == [(1, 10), (2, 10)]

    def test_arity_mismatch(self):
        schema = FieldSchema(["port"])
        with pytest.raises(ValueError):
            schema.observe([1, 2])


class TestMultiFieldDeltaNet:
    def make(self, ports=(1, 2, 3)):
        schema = FieldSchema(["in_port"], domains=[ports])
        return MultiFieldDeltaNet(schema, width=8)

    def test_concrete_rule_single_node(self):
        mf = self.make()
        mf.insert_rule(0, 0, 16, 1, "s1", [1], target="s2")
        assert mf.flows_on("s1", (1,), "s2") == [(0, 16)]
        assert mf.flows_on("s1", (2,), "s2") == []

    def test_wildcard_rule_replicated_per_port(self):
        """The paper: a switch matching three input ports becomes three
        graph nodes."""
        mf = self.make(ports=(1, 2, 3))
        mf.insert_rule(0, 0, 16, 1, "s1", [None], target="s2")
        for port in (1, 2, 3):
            assert mf.flows_on("s1", (port,), "s2") == [(0, 16)]
        assert mf.num_rules == 1
        assert mf.num_nodes == 6  # 3 s1-nodes + 3 s2-nodes

    def test_priority_interaction_per_node(self):
        mf = self.make(ports=(1, 2))
        mf.insert_rule(0, 0, 16, 1, "s1", [None], target="s2")
        mf.insert_rule(1, 4, 8, 9, "s1", [1], target="s3")
        assert mf.flows_on("s1", (1,), "s3") == [(4, 8)]
        assert mf.flows_on("s1", (1,), "s2") == [(0, 4), (8, 16)]
        # Port 2 is unaffected by the port-1 override.
        assert mf.flows_on("s1", (2,), "s2") == [(0, 16)]

    def test_remove_wildcard_rule_removes_all_replicas(self):
        mf = self.make(ports=(1, 2))
        mf.insert_rule(0, 0, 16, 1, "s1", [None], target="s2")
        mf.remove_rule(0)
        assert mf.num_rules == 0
        for port in (1, 2):
            assert mf.flows_on("s1", (port,), "s2") == []

    def test_drop_action(self):
        mf = self.make(ports=(1,))
        mf.insert_rule(0, 0, 16, 1, "s1", [1], action=Action.DROP)
        from repro.core.rules import DROP

        link = (("s1", (1,)), (DROP, (1,)))
        # Drop rules target the DROP sink directly (not field-encoded).
        assert mf.net.flows_on(
            (("s1", (1,)), DROP)) == [(0, 16)]

    def test_duplicate_and_unknown_rids(self):
        mf = self.make()
        mf.insert_rule(0, 0, 16, 1, "s1", [1], target="s2")
        with pytest.raises(ValueError):
            mf.insert_rule(0, 0, 8, 2, "s1", [1], target="s2")
        with pytest.raises(KeyError):
            mf.remove_rule(42)

    def test_forward_needs_target(self):
        mf = self.make()
        with pytest.raises(ValueError):
            mf.insert_rule(0, 0, 16, 1, "s1", [1])

    def test_atoms_shared_across_field_nodes(self):
        """Field encoding multiplies nodes, not atoms: one atom table."""
        mf = self.make(ports=(1, 2, 3))
        mf.insert_rule(0, 0, 16, 1, "s1", [None], target="s2")
        mf.insert_rule(1, 4, 8, 2, "s1", [None], target="s3")
        single = MultiFieldDeltaNet(FieldSchema(["p"], domains=[[1]]), width=8)
        single.insert_rule(0, 0, 16, 1, "s1", [1], target="s2")
        single.insert_rule(1, 4, 8, 2, "s1", [1], target="s3")
        assert mf.num_atoms == single.num_atoms
