"""Tests for the Boolean lattice of atoms (Appendix A, Figure 9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import AtomTable
from repro.core.lattice import AtomLattice, interval_atoms


def figure9_table() -> AtomTable:
    """Atoms of Figure 5 in a 4-bit space: [0:10), [10:12), [12:16)."""
    table = AtomTable(width=4)
    table.create_atoms(10, 12)
    table.create_atoms(0, 16)
    return table


class TestFigure9:
    def test_lattice_has_eight_elements(self):
        """Three atoms induce the 2^3-element Boolean lattice of Fig. 9."""
        lattice = AtomLattice.from_table(figure9_table())
        assert len(lattice.all_elements()) == 8
        assert lattice.height() == 3

    def test_top_is_universe_bottom_is_empty(self):
        table = figure9_table()
        lattice = AtomLattice.from_table(table)
        assert lattice.top == frozenset({0, 1, 2})
        assert lattice.bottom == frozenset()

    def test_hasse_diagram_edge_count(self):
        """Figure 9's Hasse diagram has 3 * 2^2 = 12 covering pairs."""
        lattice = AtomLattice.from_table(figure9_table())
        assert len(lattice.hasse_edges()) == 12

    def test_mid_layer_elements_match_figure(self):
        """{[0:12)} == atoms {0,1}; {[0:10),[12:16)} == atoms {0,2}; etc."""
        table = figure9_table()
        assert interval_atoms(table, 0, 12) == {0, 1}
        assert interval_atoms(table, 0, 10) == {0}
        assert interval_atoms(table, 10, 16) == {1, 2}


class TestLatticeOperations:
    def setup_method(self):
        self.lattice = AtomLattice(range(4))

    def test_join_meet(self):
        a, b = frozenset({0, 1}), frozenset({1, 2})
        assert self.lattice.join(a, b) == {0, 1, 2}
        assert self.lattice.meet(a, b) == {1}

    def test_complement(self):
        assert self.lattice.complement(frozenset({0})) == {1, 2, 3}

    def test_leq(self):
        assert self.lattice.leq(frozenset({0}), frozenset({0, 1}))
        assert not self.lattice.leq(frozenset({2}), frozenset({0, 1}))

    def test_atoms_of(self):
        assert self.lattice.atoms_of(frozenset({2, 0})) == \
            [frozenset({0}), frozenset({2})]

    def test_is_atom(self):
        assert self.lattice.is_atom(frozenset({1}))
        assert not self.lattice.is_atom(frozenset({1, 2}))
        assert not self.lattice.is_atom(frozenset())

    def test_covers(self):
        assert self.lattice.covers(frozenset({0}), frozenset({0, 1}))
        assert not self.lattice.covers(frozenset({0}), frozenset({0, 1, 2}))
        assert not self.lattice.covers(frozenset({0, 1}), frozenset({0}))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sets(st.integers(0, 5)), min_size=1, max_size=5))
    def test_boolean_axioms_hold(self, raw_elements):
        lattice = AtomLattice(range(6))
        lattice.verify_boolean_axioms(frozenset(e) for e in raw_elements)
