"""Tests for half-closed intervals and interval sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalSet, normalize

spans = st.lists(
    st.tuples(st.integers(0, 64), st.integers(0, 64)).map(
        lambda p: (min(p), max(p))),
    max_size=8)


def points_of(interval_set: IntervalSet) -> set:
    return {p for lo, hi in interval_set.spans for p in range(lo, hi)}


class TestInterval:
    def test_construction(self):
        iv = Interval(10, 12)
        assert iv.lo == 10 and iv.hi == 12
        assert len(iv) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 5)
        with pytest.raises(ValueError):
            Interval(7, 3)

    def test_membership(self):
        iv = Interval(10, 12)
        assert 10 in iv and 11 in iv
        assert 12 not in iv and 9 not in iv

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(5, 12))
        assert not Interval(0, 10).overlaps(Interval(10, 12))

    def test_contains_interval(self):
        assert Interval(0, 16).contains_interval(Interval(10, 12))
        assert not Interval(10, 12).contains_interval(Interval(0, 16))

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 12)) == Interval(5, 10)
        with pytest.raises(ValueError):
            Interval(0, 5).intersect(Interval(5, 10))

    def test_repr_matches_paper_notation(self):
        assert repr(Interval(10, 12)) == "[10:12)"


class TestNormalize:
    def test_merges_overlaps_and_adjacency(self):
        assert normalize([(0, 5), (5, 10), (20, 30), (25, 28)]) == \
            [(0, 10), (20, 30)]

    def test_drops_empty(self):
        assert normalize([(5, 5), (7, 3)]) == []

    def test_sorts(self):
        assert normalize([(10, 12), (0, 2)]) == [(0, 2), (10, 12)]


class TestIntervalSet:
    def test_paper_example_operations(self):
        """[[interval(rL)]] - [[interval(rH)]] from §3.1."""
        r_l = IntervalSet([(0, 16)])
        r_h = IntervalSet([(10, 12)])
        assert (r_l - r_h).spans == [(0, 10), (12, 16)]

    def test_membership(self):
        s = IntervalSet([(0, 5), (10, 15)])
        assert 0 in s and 4 in s and 10 in s
        assert 5 not in s and 9 not in s and 15 not in s

    def test_len_counts_points(self):
        assert len(IntervalSet([(0, 5), (10, 15)])) == 10

    def test_universe_and_complement(self):
        u = IntervalSet.universe(4)
        assert u.spans == [(0, 16)]
        s = IntervalSet([(3, 7)])
        assert s.complement(4).spans == [(0, 3), (7, 16)]

    def test_equality_and_hash(self):
        assert IntervalSet([(0, 5), (5, 8)]) == IntervalSet([(0, 8)])
        assert hash(IntervalSet([(0, 8)])) == hash(IntervalSet([(0, 5), (5, 8)]))

    def test_empty(self):
        assert IntervalSet().is_empty()
        assert not IntervalSet()
        assert IntervalSet([(1, 2)])

    @settings(max_examples=200, deadline=None)
    @given(spans, spans)
    def test_boolean_ops_against_point_sets(self, a_spans, b_spans):
        a, b = IntervalSet(a_spans), IntervalSet(b_spans)
        assert points_of(a | b) == points_of(a) | points_of(b)
        assert points_of(a & b) == points_of(a) & points_of(b)
        assert points_of(a - b) == points_of(a) - points_of(b)

    @settings(max_examples=100, deadline=None)
    @given(spans)
    def test_canonical_form(self, raw):
        s = IntervalSet(raw)
        # Spans are sorted, disjoint, non-adjacent, non-empty.
        for lo, hi in s.spans:
            assert lo < hi
        for (l1, h1), (l2, h2) in zip(s.spans, s.spans[1:]):
            assert h1 < l2

    @settings(max_examples=100, deadline=None)
    @given(spans)
    def test_complement_involution(self, raw):
        s = IntervalSet(raw) & IntervalSet.universe(6)
        assert s.complement(6).complement(6) == s

    def test_boundaries_and_samples(self):
        s = IntervalSet([(2, 4), (8, 16)])
        assert s.boundaries() == [2, 4, 8, 16]
        assert s.sample_points() == [2, 8]
