"""Tests for Algorithms 1 and 2 — including randomized oracle checks.

The key property: after any sequence of insertions and removals, the
edge-labelled graph's ``label[link]`` (lowered to header intervals) must
equal what a naive full recomputation over all rules produces.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deltanet import DeltaNet
from repro.core.rules import Action, DROP, Link, Rule

from tests.conftest import BruteForceDataPlane, deltanet_label_intervals, random_rules


class TestBasicInsert:
    def test_single_rule(self):
        net = DeltaNet(width=4)
        delta = net.insert_rule(Rule.forward(0, 4, 8, 1, "s1", "s2"))
        assert net.label_of(("s1", "s2")) == set(net.atoms.atoms_in(4, 8))
        assert delta.added
        assert not delta.removed
        net.check_invariants()

    def test_duplicate_rid_rejected(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 4, 8, 1, "s1", "s2"))
        with pytest.raises(ValueError):
            net.insert_rule(Rule.forward(0, 0, 4, 2, "s1", "s2"))

    def test_higher_priority_steals_atoms(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        net.insert_rule(Rule.forward(1, 4, 8, 2, "s1", "s3"))
        assert net.flows_on(("s1", "s2")) == [(0, 4), (8, 16)]
        assert net.flows_on(("s1", "s3")) == [(4, 8)]
        net.check_invariants()

    def test_lower_priority_hides_behind(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 9, "s1", "s2"))
        delta = net.insert_rule(Rule.forward(1, 4, 8, 1, "s1", "s3"))
        assert net.flows_on(("s1", "s2")) == [(0, 16)]
        assert net.label_of(("s1", "s3")) == set()
        assert not delta  # nothing visible changed
        net.check_invariants()

    def test_same_link_reinforcement_no_delta(self):
        """A higher-priority rule with the *same* link changes nothing."""
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        delta = net.insert_rule(Rule.forward(1, 4, 8, 2, "s1", "s2"))
        assert not delta
        assert net.flows_on(("s1", "s2")) == [(0, 16)]
        net.check_invariants()

    def test_drop_rule_flows_to_sink(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        net.insert_rule(Rule.drop(1, 4, 8, 2, "s1"))
        assert net.flows_on(("s1", DROP)) == [(4, 8)]
        net.check_invariants()

    def test_rules_on_different_switches_are_independent(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 5, "s1", "s2"))
        net.insert_rule(Rule.forward(1, 0, 16, 1, "s2", "s3"))
        assert net.flows_on(("s1", "s2")) == [(0, 16)]
        assert net.flows_on(("s2", "s3")) == [(0, 16)]


class TestPaperWalkthrough:
    """The full §3.2.1 example: rL, rH, then rM in Table 1's switch."""

    def test_insertion_order_rl_rh_rm(self):
        net = DeltaNet()  # 32-bit, as in the paper
        r_l = net.make_rule(0, "0.0.0.0/28", 10, "s", "next_l")
        r_h = net.make_rule(1, "0.0.0.10/31", 30, "s", "next_h")
        r_m = net.make_rule(2, "0.0.0.8/30", 20, "s", "next_m")
        net.insert_rule(r_l)
        net.insert_rule(r_h)
        net.insert_rule(r_m)
        assert net.flows_on(("s", "next_h")) == [(10, 12)]
        assert net.flows_on(("s", "next_m")) == [(8, 10)]
        assert net.flows_on(("s", "next_l")) == [(0, 8), (12, 16)]
        net.check_invariants()

    def test_any_insertion_order_same_labels(self):
        results = []
        for order in ([0, 1, 2], [2, 1, 0], [1, 0, 2], [0, 2, 1]):
            net = DeltaNet()
            rules = {
                0: net.make_rule(0, "0.0.0.0/28", 10, "s", "next_l"),
                1: net.make_rule(1, "0.0.0.10/31", 30, "s", "next_h"),
                2: net.make_rule(2, "0.0.0.8/30", 20, "s", "next_m"),
            }
            for rid in order:
                net.insert_rule(rules[rid])
            results.append(deltanet_label_intervals(net))
        assert all(r == results[0] for r in results)


class TestRemove:
    def test_remove_unknown_raises(self):
        net = DeltaNet(width=4)
        with pytest.raises(KeyError):
            net.remove_rule(7)

    def test_remove_restores_previous_owner(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        net.insert_rule(Rule.forward(1, 4, 8, 2, "s1", "s3"))
        delta = net.remove_rule(1)
        assert net.flows_on(("s1", "s2")) == [(0, 16)]
        assert net.label_of(("s1", "s3")) == set()
        assert delta.added and delta.removed
        net.check_invariants()

    def test_remove_last_rule_clears_labels(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        net.remove_rule(0)
        assert net.label_of(("s1", "s2")) == set()
        assert net.num_rules == 0
        net.check_invariants()

    def test_insert_remove_roundtrip_is_identity(self):
        net = DeltaNet(width=8)
        base = Rule.forward(0, 0, 256, 1, "s1", "s2")
        net.insert_rule(base)
        before = deltanet_label_intervals(net)
        probe = Rule.forward(1, 16, 32, 9, "s1", "s3")
        net.insert_rule(probe)
        net.remove_rule(1)
        assert deltanet_label_intervals(net) == before
        net.check_invariants()

    def test_delta_graphs_of_insert_and_remove_cancel(self):
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(0, 0, 256, 1, "s1", "s2"))
        insert_delta = net.insert_rule(Rule.forward(1, 16, 32, 9, "s1", "s3"))
        remove_delta = net.remove_rule(1)
        insert_delta.merge(remove_delta)
        assert not insert_delta


class TestBatchApply:
    def test_aggregated_delta(self):
        net = DeltaNet(width=8)
        rule_a = Rule.forward(0, 0, 128, 1, "s1", "s2")
        rule_b = Rule.forward(1, 0, 128, 2, "s1", "s3")
        net.insert_rule(rule_a)
        delta = net.apply(rules_to_insert=[rule_b], rids_to_remove=[0])
        assert net.flows_on(("s1", "s3")) == [(0, 128)]
        assert Link("s1", "s2") in delta.removed


class TestOracle:
    """Randomized cross-checks against the brute-force data plane."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_insertions_match_oracle(self, seed):
        rng = random.Random(seed)
        net, oracle = DeltaNet(width=8), BruteForceDataPlane(width=8)
        for rule in random_rules(rng, 40, width=8):
            net.insert_rule(rule)
            oracle.insert(rule)
        assert deltanet_label_intervals(net) == oracle.expected_labels()
        net.check_invariants()

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("gc", [False, True])
    def test_random_churn_matches_oracle(self, seed, gc):
        rng = random.Random(1000 + seed)
        net, oracle = DeltaNet(width=8, gc=gc), BruteForceDataPlane(width=8)
        live = []
        rules = random_rules(rng, 80, width=8, switches=5)
        for rule in rules:
            if live and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                net.remove_rule(victim.rid)
                oracle.remove(victim.rid)
            net.insert_rule(rule)
            oracle.insert(rule)
            live.append(rule)
        assert deltanet_label_intervals(net) == oracle.expected_labels()
        net.check_invariants()

    @pytest.mark.parametrize("gc", [False, True])
    def test_remove_everything_returns_to_empty(self, gc):
        rng = random.Random(77)
        net = DeltaNet(width=8, gc=gc)
        rules = random_rules(rng, 50, width=8)
        for rule in rules:
            net.insert_rule(rule)
        rng.shuffle(rules)
        for rule in rules:
            net.remove_rule(rule.rid)
        assert net.num_rules == 0
        assert all(not atoms for atoms in net.label.values())
        if gc:
            # Every rule-induced boundary was collected.
            assert net.num_atoms == 1

    def test_gc_keeps_oracle_equivalence_through_interleaving(self):
        rng = random.Random(31337)
        net, oracle = DeltaNet(width=6, gc=True), BruteForceDataPlane(width=6)
        live = []
        next_rid = 0
        for _ in range(150):
            if live and rng.random() < 0.5:
                victim = live.pop(rng.randrange(len(live)))
                net.remove_rule(victim.rid)
                oracle.remove(victim.rid)
            else:
                rule = random_rules(rng, 1, width=6, rid_start=next_rid)[0]
                next_rid += 1
                net.insert_rule(rule)
                oracle.insert(rule)
                live.append(rule)
            assert deltanet_label_intervals(net) == oracle.expected_labels()


class TestQueries:
    def test_atoms_overlapping(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 4, 8, 1, "s1", "s2"))
        net.insert_rule(Rule.forward(1, 8, 12, 1, "s2", "s3"))
        overlapping = set(net.atoms_overlapping(6, 10))
        spans = [net.atoms.atom_interval(a) for a in overlapping]
        assert sorted(spans) == [(4, 8), (8, 12)]

    def test_owner_rule(self):
        net = DeltaNet(width=4)
        low = Rule.forward(0, 0, 16, 1, "s1", "s2")
        high = Rule.forward(1, 0, 16, 2, "s1", "s3")
        net.insert_rule(low)
        net.insert_rule(high)
        atom = net.atoms.atom_at(5)
        assert net.owner_rule(atom, "s1") == high
        assert net.owner_rule(atom, "nowhere") is None

    def test_label_of_accepts_tuples(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        assert net.label_of(("s1", "s2")) == net.label_of(Link("s1", "s2"))

    def test_make_rule_drop(self):
        net = DeltaNet(width=32)
        rule = net.make_rule(0, "10.0.0.0/8", 1, "s1", action=Action.DROP)
        assert rule.action is Action.DROP

    def test_make_rule_forward_requires_target(self):
        net = DeltaNet(width=32)
        with pytest.raises(ValueError):
            net.make_rule(0, "10.0.0.0/8", 1, "s1")

    def test_repr(self):
        net = DeltaNet(width=4)
        assert "rules=0" in repr(net)
