"""Tests for atom-set <-> bitmask conversions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import AtomTable
from repro.core.atomset import (
    atoms_to_bitmask, atoms_to_interval_set, bitmask_to_atoms, iter_bits,
    label_map_to_bitmasks, popcount,
)

atom_sets = st.sets(st.integers(min_value=0, max_value=300), max_size=40)


class TestBitmasks:
    def test_empty(self):
        assert atoms_to_bitmask([]) == 0
        assert bitmask_to_atoms(0) == set()
        assert popcount(0) == 0

    def test_simple(self):
        assert atoms_to_bitmask([0, 2]) == 0b101
        assert bitmask_to_atoms(0b101) == {0, 2}
        assert popcount(0b101) == 2

    def test_sentinel_rejected(self):
        with pytest.raises(ValueError):
            atoms_to_bitmask([-1])
        with pytest.raises(ValueError):
            bitmask_to_atoms(-5)

    @settings(max_examples=200, deadline=None)
    @given(atom_sets)
    def test_roundtrip(self, atoms):
        mask = atoms_to_bitmask(atoms)
        assert bitmask_to_atoms(mask) == atoms
        assert popcount(mask) == len(atoms)
        assert list(iter_bits(mask)) == sorted(atoms)

    @settings(max_examples=100, deadline=None)
    @given(atom_sets, atom_sets)
    def test_bit_ops_mirror_set_ops(self, a, b):
        ma, mb = atoms_to_bitmask(a), atoms_to_bitmask(b)
        assert bitmask_to_atoms(ma | mb) == a | b
        assert bitmask_to_atoms(ma & mb) == a & b
        assert bitmask_to_atoms(ma & ~mb) == a - b

    def test_cross_word_boundary(self):
        atoms = {0, 63, 64, 127, 128, 200}
        assert bitmask_to_atoms(atoms_to_bitmask(atoms)) == atoms


class TestLabelHelpers:
    def test_label_map_to_bitmasks_skips_empty(self):
        masks = label_map_to_bitmasks({"a": {1, 2}, "b": set()})
        assert masks == {"a": 0b110}

    def test_atoms_to_interval_set_merges_adjacent(self):
        table = AtomTable(width=4)
        table.create_atoms(4, 8)
        table.create_atoms(8, 12)
        atoms = set(table.atoms_in(4, 12))
        assert len(atoms) == 2
        assert atoms_to_interval_set(atoms, table) == [(4, 12)]

    def test_atoms_to_interval_set_keeps_gaps(self):
        table = AtomTable(width=4)
        table.create_atoms(2, 4)
        table.create_atoms(8, 12)
        atoms = set(table.atoms_in(2, 4)) | set(table.atoms_in(8, 12))
        assert atoms_to_interval_set(atoms, table) == [(2, 4), (8, 12)]
