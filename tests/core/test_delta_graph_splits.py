"""Tests for delta-graph split/GC bookkeeping (touched_atoms)."""

from repro.core.delta_graph import DeltaGraph
from repro.core.deltanet import DeltaNet
from repro.core.rules import Link, Rule


class TestSplitsRecorded:
    def test_insert_records_its_splits(self):
        net = DeltaNet(width=8)
        delta = net.insert_rule(Rule.forward(0, 10, 20, 1, "a", "b"))
        assert len(delta.splits) == 2  # bounds 10 and 20 both fresh
        olds = {old for old, _new in delta.splits}
        news = {new for _old, new in delta.splits}
        assert 0 in olds
        assert news <= set(a for a, _ in net.atoms.intervals())

    def test_reusing_bounds_records_no_splits(self):
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(0, 10, 20, 1, "a", "b"))
        delta = net.insert_rule(Rule.forward(1, 10, 20, 2, "a", "c"))
        assert delta.splits == []

    def test_touched_includes_splits_even_when_no_flow_change(self):
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(0, 0, 256, 9, "a", "b"))
        # Lower-priority rule: no label change, but it splits two atoms.
        delta = net.insert_rule(Rule.forward(1, 10, 20, 1, "a", "c"))
        assert delta.affected_atoms() == set()
        assert len(delta.touched_atoms()) == 2

    def test_gc_removal_records_collected(self):
        net = DeltaNet(width=8, gc=True)
        net.insert_rule(Rule.forward(0, 10, 20, 1, "a", "b"))
        delta = net.remove_rule(0)
        assert len(delta.collected) == 2
        assert set(delta.collected) <= delta.touched_atoms()

    def test_non_gc_removal_collects_nothing(self):
        net = DeltaNet(width=8, gc=False)
        net.insert_rule(Rule.forward(0, 10, 20, 1, "a", "b"))
        delta = net.remove_rule(0)
        assert delta.collected == []

    def test_merge_concatenates_bookkeeping(self):
        first, second = DeltaGraph(), DeltaGraph()
        first.splits.append((0, 1))
        second.splits.append((1, 2))
        second.collected.append(7)
        first.merge(second)
        assert first.splits == [(0, 1), (1, 2)]
        assert first.collected == [7]

    def test_touched_is_superset_of_affected(self):
        delta = DeltaGraph()
        delta.record_add(Link("a", "b"), 3)
        delta.splits.append((0, 5))
        delta.collected.append(9)
        assert delta.affected_atoms() == {3}
        assert delta.touched_atoms() == {3, 5, 9}
