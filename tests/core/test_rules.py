"""Tests for rules, links, and actions."""

import pytest

from repro.core.rules import Action, DROP, Link, Rule


class TestLink:
    def test_fields(self):
        link = Link("s1", "s2")
        assert link.source == "s1" and link.target == "s2"

    def test_equality_and_hash(self):
        assert Link("a", "b") == Link("a", "b")
        assert Link("a", "b") != Link("b", "a")
        assert len({Link("a", "b"), Link("a", "b")}) == 1

    def test_repr(self):
        assert repr(Link("s1", "s2")) == "s1->s2"


class TestRule:
    def test_forward_constructor(self):
        rule = Rule.forward(1, 10, 12, 5, "s1", "s2")
        assert rule.action is Action.FORWARD
        assert rule.source == "s1" and rule.target == "s2"
        assert rule.interval == (10, 12)
        assert rule.link == Link("s1", "s2")

    def test_drop_constructor(self):
        rule = Rule.drop(2, 0, 16, 9, "s1")
        assert rule.action is Action.DROP
        assert rule.target == DROP

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Rule.forward(1, 12, 12, 5, "s1", "s2")
        with pytest.raises(ValueError):
            Rule.forward(1, 13, 12, 5, "s1", "s2")

    def test_negative_priority_rejected(self):
        with pytest.raises(ValueError):
            Rule.forward(1, 0, 4, -1, "s1", "s2")

    def test_tuple_link_coerced(self):
        rule = Rule(1, 0, 4, 0, ("s1", "s2"))
        assert isinstance(rule.link, Link)

    def test_matches(self):
        rule = Rule.forward(1, 10, 12, 5, "s1", "s2")
        assert rule.matches(10) and rule.matches(11)
        assert not rule.matches(12) and not rule.matches(9)

    def test_overlaps(self):
        a = Rule.forward(1, 0, 16, 1, "s1", "s2")
        b = Rule.forward(2, 10, 12, 2, "s1", "s3")
        c = Rule.forward(3, 16, 32, 3, "s1", "s3")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_sort_key_orders_by_priority_then_rid(self):
        low = Rule.forward(9, 0, 4, 1, "s", "t")
        high = Rule.forward(1, 0, 4, 2, "s", "t")
        assert high.sort_key > low.sort_key
        tie_a = Rule.forward(1, 0, 4, 5, "s", "t")
        tie_b = Rule.forward(2, 0, 4, 5, "s", "t")
        assert tie_b.sort_key > tie_a.sort_key

    def test_identity_is_rid(self):
        a = Rule.forward(1, 0, 4, 1, "s", "t")
        b = Rule.forward(1, 8, 12, 9, "x", "y")
        assert a == b
        assert hash(a) == hash(b)

    def test_prefix_text(self):
        assert Rule.forward(1, 10, 12, 0, "s", "t").prefix_text() == "0.0.0.10/31"
        assert Rule.forward(1, 0, 10, 0, "s", "t").prefix_text() is None

    def test_repr_mentions_kind(self):
        assert "fwd" in repr(Rule.forward(1, 0, 4, 0, "s", "t"))
        assert "drop" in repr(Rule.drop(2, 0, 4, 0, "s"))
