"""Tests for delta-graph recording and aggregation."""

from repro.core.delta_graph import DeltaGraph
from repro.core.rules import Link

AB = Link("a", "b")
AC = Link("a", "c")


class TestRecording:
    def test_empty(self):
        dg = DeltaGraph()
        assert dg.is_empty()
        assert not dg
        assert dg.affected_atoms() == set()
        assert dg.affected_links() == set()

    def test_add_and_remove_tracked_separately(self):
        dg = DeltaGraph()
        dg.record_add(AB, 1)
        dg.record_remove(AC, 1)
        assert dg.added == {AB: {1}}
        assert dg.removed == {AC: {1}}
        assert dg.affected_atoms() == {1}
        assert dg.affected_links() == {AB, AC}
        assert dg.affected_sources() == {"a"}

    def test_add_then_remove_same_pair_cancels(self):
        dg = DeltaGraph()
        dg.record_add(AB, 1)
        dg.record_remove(AB, 1)
        assert dg.is_empty()

    def test_remove_then_add_same_pair_cancels(self):
        dg = DeltaGraph()
        dg.record_remove(AB, 1)
        dg.record_add(AB, 1)
        assert dg.is_empty()

    def test_changes_view(self):
        dg = DeltaGraph()
        dg.record_add(AB, 1)
        dg.record_remove(AC, 2)
        assert set(dg.changes()) == {(AB, 1, +1), (AC, 2, -1)}


class TestMerge:
    def test_merge_cancels_across_updates(self):
        first, second = DeltaGraph(), DeltaGraph()
        first.record_add(AB, 1)
        second.record_remove(AB, 1)
        second.record_add(AC, 2)
        first.merge(second)
        assert first.added == {AC: {2}}
        assert not first.removed

    def test_merge_accumulates(self):
        first, second = DeltaGraph(), DeltaGraph()
        first.record_add(AB, 1)
        second.record_add(AB, 2)
        first.merge(second)
        assert first.added == {AB: {1, 2}}

    def test_repr(self):
        dg = DeltaGraph()
        dg.record_add(AB, 1)
        assert "+1" in repr(dg)
