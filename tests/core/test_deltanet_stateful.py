"""Hypothesis stateful (model-based) testing of DeltaNet.

The state machine performs arbitrary interleavings of rule insertions
and removals (with and without GC) and checks after every step that the
incrementally maintained edge labels equal a from-scratch recomputation
— the strongest invariant the paper's Algorithms 1/2 must preserve.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    Bundle, RuleBasedStateMachine, consumes, initialize, invariant, rule,
)

from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule

from tests.conftest import BruteForceDataPlane, deltanet_label_intervals

WIDTH = 5
SPACE = 1 << WIDTH
SWITCHES = ("s0", "s1", "s2")


class DeltaNetMachine(RuleBasedStateMachine):
    live_rules = Bundle("live_rules")

    @initialize(gc=st.booleans())
    def setup(self, gc):
        self.net = DeltaNet(width=WIDTH, gc=gc)
        self.oracle = BruteForceDataPlane(width=WIDTH)
        self.next_rid = 0
        self.next_priority = 0

    @rule(target=live_rules,
          lo=st.integers(0, SPACE - 1),
          span=st.integers(1, SPACE),
          source=st.sampled_from(SWITCHES),
          target_switch=st.sampled_from(SWITCHES),
          drop=st.booleans())
    def insert(self, lo, span, source, target_switch, drop):
        hi = min(lo + span, SPACE)
        rid = self.next_rid
        self.next_rid += 1
        priority = self.next_priority  # unique priorities, as §3.2 assumes
        self.next_priority += 1
        if drop:
            new_rule = Rule.drop(rid, lo, hi, priority, source)
        else:
            if target_switch == source:
                target_switch = SWITCHES[(SWITCHES.index(source) + 1) % 3]
            new_rule = Rule.forward(rid, lo, hi, priority, source,
                                    target_switch)
        self.net.insert_rule(new_rule)
        self.oracle.insert(new_rule)
        return rid

    @rule(rid=consumes(live_rules))
    def remove(self, rid):
        self.net.remove_rule(rid)
        self.oracle.remove(rid)

    @invariant()
    def labels_match_recomputation(self):
        if not hasattr(self, "net"):
            return
        assert deltanet_label_intervals(self.net) == \
            self.oracle.expected_labels()

    @invariant()
    def structure_invariants_hold(self):
        if not hasattr(self, "net"):
            return
        self.net.check_invariants()

    @invariant()
    def atom_count_bounded_by_boundaries(self):
        if not hasattr(self, "net"):
            return
        # #atoms == |M| - 1 (§3.1), and at most 2 per live rule + 1.
        assert self.net.num_atoms == len(self.net.atoms.boundaries()) - 1
        if self.net.gc:
            assert self.net.num_atoms <= 2 * self.net.num_rules + 1


TestDeltaNetStateful = DeltaNetMachine.TestCase
TestDeltaNetStateful.settings = settings(
    max_examples=40, stateful_step_count=25, deadline=None)
