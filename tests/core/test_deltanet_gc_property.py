"""Property-based testing of the atom-GC path (§3.2.2 remark).

A ``DeltaNet(gc=True)`` instance runs the same interleaved stream of
single-op and batched updates as a ``gc=False`` twin.  Garbage
collection may merge atoms and recycle identifiers (so raw atom ids
diverge), but the *semantics* must not move: every link carries exactly
the same packet space, the forwarding index stays consistent with the
labels, and the per-update loop verdicts agree.  This exercises
``DeltaNet._collect_atom`` under both ``remove_rule`` and the batched
``apply_batch`` removal phase.
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.checkers.loops import LoopChecker, find_forwarding_loops
from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule

from tests.conftest import deltanet_label_intervals, random_rules

WIDTH = 5
SPACE = 1 << WIDTH
SWITCHES = ("s0", "s1", "s2")


def _assert_twins_agree(gc_net: DeltaNet, plain_net: DeltaNet) -> None:
    """Semantic equivalence: flows, loops, index consistency."""
    assert deltanet_label_intervals(gc_net) == \
        deltanet_label_intervals(plain_net)
    gc_net.check_invariants()      # includes findex.check_consistency()
    plain_net.check_invariants()
    gc_loops = {loop.cycle for loop in find_forwarding_loops(gc_net)}
    plain_loops = {loop.cycle for loop in find_forwarding_loops(plain_net)}
    assert gc_loops == plain_loops


class GcTwinMachine(RuleBasedStateMachine):
    """gc=True and gc=False twins fed identical update streams."""

    @initialize()
    def setup(self):
        self.gc_net = DeltaNet(width=WIDTH, gc=True)
        self.plain_net = DeltaNet(width=WIDTH, gc=False)
        self.live = []
        self.next_rid = 0
        self.next_priority = 0

    def _new_rule(self, lo, span, source, target_switch, drop):
        hi = min(lo + span, SPACE)
        rid = self.next_rid
        self.next_rid += 1
        priority = self.next_priority
        self.next_priority += 1
        if drop:
            return Rule.drop(rid, lo, hi, priority, source)
        if target_switch == source:
            target_switch = SWITCHES[(SWITCHES.index(source) + 1) % 3]
        return Rule.forward(rid, lo, hi, priority, source, target_switch)

    @rule(lo=st.integers(0, SPACE - 1), span=st.integers(1, SPACE),
          source=st.sampled_from(SWITCHES),
          target_switch=st.sampled_from(SWITCHES), drop=st.booleans())
    def insert_single(self, lo, span, source, target_switch, drop):
        new_rule = self._new_rule(lo, span, source, target_switch, drop)
        self.gc_net.insert_rule(new_rule)
        self.plain_net.insert_rule(new_rule)
        self.live.append(new_rule.rid)

    @rule(index=st.integers(0, 1 << 30))
    def remove_single(self, index):
        if not self.live:
            return
        rid = self.live.pop(index % len(self.live))
        self.gc_net.remove_rule(rid)
        self.plain_net.remove_rule(rid)

    @rule(specs=st.lists(
        st.tuples(st.integers(0, SPACE - 1), st.integers(1, SPACE),
                  st.sampled_from(SWITCHES), st.sampled_from(SWITCHES),
                  st.booleans()),
        min_size=0, max_size=4),
        removal_picks=st.lists(st.integers(0, 1 << 30), max_size=3))
    def batched(self, specs, removal_picks):
        removals = []
        for pick in removal_picks:
            if not self.live:
                break
            removals.append(self.live.pop(pick % len(self.live)))
        inserts = [self._new_rule(*spec) for spec in specs]
        self.gc_net.apply_batch(inserts, removals)
        self.plain_net.apply_batch(inserts, removals)
        self.live.extend(rule.rid for rule in inserts)

    @invariant()
    def twins_agree(self):
        if not hasattr(self, "gc_net"):
            return
        _assert_twins_agree(self.gc_net, self.plain_net)

    @invariant()
    def gc_actually_bounds_atoms(self):
        if not hasattr(self, "gc_net"):
            return
        # With GC on, only boundaries referenced by live rules survive.
        assert self.gc_net.num_atoms <= 2 * self.gc_net.num_rules + 1


TestGcTwinStateful = GcTwinMachine.TestCase
TestGcTwinStateful.settings = settings(
    max_examples=30, stateful_step_count=20, deadline=None)


class TestGcRandomizedTraces:
    """Deterministic randomized traces — denser than the state machine."""

    @pytest.mark.parametrize("seed", range(4))
    def test_interleaved_stream_keeps_twins_equivalent(self, seed):
        rng = random.Random(0x6C0 + seed)
        gc_net = DeltaNet(width=8, gc=True)
        plain_net = DeltaNet(width=8, gc=False)
        gc_checker = LoopChecker(gc_net)
        plain_checker = LoopChecker(plain_net)
        rules = random_rules(rng, 60, width=8, switches=4)
        live = []
        pending = list(rules)
        while pending or live:
            roll = rng.random()
            if pending and (roll < 0.45 or not live):
                new_rule = pending.pop()
                gc_delta = gc_net.insert_rule(new_rule)
                plain_delta = plain_net.insert_rule(new_rule)
                live.append(new_rule.rid)
            elif roll < 0.75 and live:
                rid = live.pop(rng.randrange(len(live)))
                gc_delta = gc_net.remove_rule(rid)
                plain_delta = plain_net.remove_rule(rid)
            else:
                inserts = [pending.pop()
                           for _ in range(min(len(pending), rng.randrange(4)))]
                removals = [live.pop(rng.randrange(len(live)))
                            for _ in range(min(len(live), rng.randrange(3)))]
                gc_delta = gc_net.apply_batch(inserts, removals)
                plain_delta = plain_net.apply_batch(inserts, removals)
                live.extend(rule.rid for rule in inserts)
            # Per-update verdicts are *sound* in each twin: every loop an
            # incremental check reports is genuinely live in its net.
            # (The two twins' per-update reports may legitimately differ:
            # GC recycles atom ids, so a pre-existing loop can resurface
            # in one twin's delta-graph as a fresh (link, atom) add while
            # the other twin's label never changed.)
            for net, checker, delta in ((gc_net, gc_checker, gc_delta),
                                        (plain_net, plain_checker,
                                         plain_delta)):
                reported = {loop.cycle for loop in checker.check_update(delta)}
                live_cycles = {loop.cycle
                               for loop in find_forwarding_loops(net)}
                assert reported <= live_cycles
            if rng.random() < 0.2:
                _assert_twins_agree(gc_net, plain_net)
        _assert_twins_agree(gc_net, plain_net)
        # Everything was removed: GC must have collapsed the atom table
        # back to the initial single atom, and all labels must be gone.
        assert gc_net.num_atoms == 1
        assert not gc_net.label
        assert not gc_net.findex.by_source
