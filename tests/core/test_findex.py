"""ForwardingIndex: the persistent check-path view of the labels."""

import random

import pytest

from repro.core.deltanet import DeltaNet
from repro.core.findex import ForwardingIndex
from repro.core.rules import Link, Rule

from tests.conftest import random_rules


class TestStandalone:
    def test_add_registers_both_views(self):
        index = ForwardingIndex()
        link = Link("a", "b")
        index.add(link, 3)
        index.add(link, 4)
        assert set(index.by_link[link]) == {3, 4}
        assert index.by_source["a"][link] is index.by_link[link]
        index.check_consistency()

    def test_discard_drops_empty_entries(self):
        index = ForwardingIndex()
        link = Link("a", "b")
        index.add(link, 3)
        index.discard(link, 3)
        assert link not in index.by_link
        assert "a" not in index.by_source
        index.check_consistency()

    def test_discard_unknown_is_noop(self):
        index = ForwardingIndex()
        index.discard(Link("a", "b"), 7)
        index.check_consistency()

    def test_next_hop_resolution(self):
        index = ForwardingIndex()
        index.add(Link("a", "b"), 1)
        index.add(Link("a", "c"), 2)
        assert index.next_hop("a", 1) == "b"
        assert index.next_hop("a", 2) == "c"
        assert index.next_hop("a", 9) is None
        assert index.next_hop("unknown", 1) is None

    def test_resolver_memoizes_current_state_only(self):
        index = ForwardingIndex()
        index.add(Link("a", "b"), 1)
        resolver = index.resolver()
        assert resolver("a", 1) == "b"
        index.discard(Link("a", "b"), 1)
        # The old resolver is stale by contract; a fresh one is correct.
        assert resolver("a", 1) == "b"
        assert index.resolver()("a", 1) is None

    def test_out_links_empty_for_unknown_node(self):
        assert ForwardingIndex().out_links("nowhere") == {}

    def test_from_labels_and_stats(self):
        index = ForwardingIndex.from_labels([
            (Link("a", "b"), [0, 1, 2]),
            (Link("b", "c"), [5]),
        ])
        stats = index.label_stats()
        assert stats == {"links": 2, "label_atoms": 4, "label_runs": 2}

    def test_apply_delta_mirrors_deltanet(self):
        net = DeltaNet(width=8)
        mirror = ForwardingIndex()
        rng = random.Random(0xF17)
        live = []
        for new_rule in random_rules(rng, 40, width=8):
            mirror.apply_delta(net.insert_rule(new_rule))
            live.append(new_rule.rid)
            if rng.random() < 0.4:
                mirror.apply_delta(
                    net.remove_rule(live.pop(rng.randrange(len(live)))))
            assert {link: set(runs) for link, runs in mirror.by_link.items()} \
                == {link: set(runs) for link, runs in net.label.items()}
            mirror.check_consistency()


class TestInsideDeltaNet:
    def test_label_aliases_index(self):
        net = DeltaNet(width=8)
        assert net.label is net.findex.by_link
        net.insert_rule(Rule.forward(0, 0, 64, 1, "s1", "s2"))
        assert set(net.findex.out_links("s1")) == {Link("s1", "s2")}
        net.check_invariants()

    def test_index_follows_batched_updates(self):
        net = DeltaNet(width=8)
        rng = random.Random(0xB0B)
        rules = random_rules(rng, 30, width=8)
        net.apply_batch(rules[:20], ())
        net.apply_batch(rules[20:], [rule.rid for rule in rules[:10]])
        net.check_invariants()
        # Per-source view agrees with a from-scratch rebuild.
        rebuilt = ForwardingIndex.from_labels(
            (link, list(atoms)) for link, atoms in net.label.items())
        assert {source: {link: set(runs) for link, runs in bucket.items()}
                for source, bucket in rebuilt.by_source.items()} == \
               {source: {link: set(runs) for link, runs in bucket.items()}
                for source, bucket in net.findex.by_source.items()}

    def test_next_hop_matches_owner_rule(self):
        net = DeltaNet(width=8)
        rng = random.Random(0xCAFE)
        for new_rule in random_rules(rng, 50, width=8):
            net.insert_rule(new_rule)
        for atom, (lo, _hi) in net.atoms.intervals():
            for source in list(net.nodes):
                owner = net.owner_rule(atom, source)
                expected = owner.target if owner is not None else None
                assert net.findex.next_hop(source, atom) == expected
