"""Tests for CIDR <-> interval conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prefix import (
    format_ipv4, format_ipv6, format_prefix, interval_plen,
    interval_to_prefixes, is_prefix_interval, make_interval, parse_ipv4,
    parse_ipv6, prefix_to_interval,
)


class TestIPv4:
    def test_parse(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("0.0.0.10") == 10
        assert parse_ipv4("255.255.255.255") == (1 << 32) - 1
        assert parse_ipv4("10.0.0.1") == (10 << 24) + 1

    def test_parse_rejects_malformed(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.0", "-1.0.0.0", "a.b.c.d"):
            with pytest.raises(ValueError):
                parse_ipv4(bad)

    def test_format_roundtrip(self):
        for text in ("0.0.0.0", "10.1.2.3", "192.168.0.255", "255.255.255.255"):
            assert format_ipv4(parse_ipv4(text)) == text

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(1 << 32)


class TestIPv6:
    def test_parse_full(self):
        assert parse_ipv6("0:0:0:0:0:0:0:1") == 1

    def test_parse_compressed(self):
        assert parse_ipv6("::1") == 1
        assert parse_ipv6("2001:db8::") == 0x20010DB8 << 96
        assert parse_ipv6("fe80::1:2") == (0xFE80 << 112) + (1 << 16) + 2

    def test_roundtrip(self):
        value = (0x20010DB8 << 96) | 0x42
        assert parse_ipv6(format_ipv6(value)) == value

    def test_rejects_malformed(self):
        for bad in ("::1::2", "1:2:3", "zzzz::"):
            with pytest.raises(ValueError):
                parse_ipv6(bad)


class TestPrefixToInterval:
    def test_paper_examples(self):
        """§3: 0.0.0.10/31 == [10:12) and 0.0.0.0/28 == [0:16)."""
        assert prefix_to_interval("0.0.0.10/31") == (10, 12)
        assert prefix_to_interval("0.0.0.0/28") == (0, 16)

    def test_rm_example(self):
        """§3.2.1: 0.0.0.8/30 == [8:12)."""
        assert prefix_to_interval("0.0.0.8/30") == (8, 12)

    def test_host_route_default_plen(self):
        assert prefix_to_interval("0.0.0.7") == (7, 8)

    def test_unaligned_address_is_masked(self):
        assert prefix_to_interval("0.0.0.13/30") == (12, 16)

    def test_abstract_width(self):
        assert prefix_to_interval("4/2", width=4) == (4, 8)

    def test_ipv6(self):
        lo, hi = prefix_to_interval("2001:db8::/32")
        assert lo == 0x20010DB8 << 96
        assert hi - lo == 1 << 96

    def test_bad_plen(self):
        with pytest.raises(ValueError):
            prefix_to_interval("0.0.0.0/33")


class TestIntervalProperties:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, (1 << 32) - 1), st.integers(0, 32))
    def test_make_interval_is_prefix(self, value, plen):
        lo, hi = make_interval(value, plen)
        assert is_prefix_interval(lo, hi)
        assert interval_plen(lo, hi) == plen
        assert lo <= value % (1 << 32) or True  # lo is the masked base
        assert hi - lo == 1 << (32 - plen)

    def test_is_prefix_interval_negative_cases(self):
        assert not is_prefix_interval(0, 10)   # span not a power of two
        assert not is_prefix_interval(2, 6)    # misaligned
        assert not is_prefix_interval(5, 5)    # empty
        assert is_prefix_interval(8, 12)

    def test_interval_plen_rejects_non_prefix(self):
        with pytest.raises(ValueError):
            interval_plen(0, 10)
        with pytest.raises(ValueError):
            interval_plen(2, 6)

    def test_format_prefix(self):
        assert format_prefix(10, 31) == "0.0.0.10/31"
        assert format_prefix(0, 28) == "0.0.0.0/28"
        assert format_prefix(4, 2, width=4) == "4/2"


class TestIntervalToPrefixes:
    def test_atom_needs_multiple_prefixes(self):
        """§5: atom [0:10) is not one prefix — needs at least two."""
        cover = interval_to_prefixes(0, 10, width=4)
        assert len(cover) >= 2
        assert cover == [(0, 1), (8, 3)]

    def test_single_prefix_stays_single(self):
        assert interval_to_prefixes(8, 12, width=4) == [(8, 2)]

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_cover_is_exact_partition(self, a, b):
        lo, hi = min(a, b), max(a, b) + 1
        cover = interval_to_prefixes(lo, hi, width=8)
        cursor = lo
        for value, plen in cover:
            span_lo, span_hi = make_interval(value, plen, width=8)
            assert span_lo == cursor
            cursor = span_hi
        assert cursor == hi

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_cover_is_minimal_greedy(self, a, b):
        """The greedy aligned cover is the minimal CIDR cover: no two
        adjacent blocks of the result can be merged into one prefix."""
        lo, hi = min(a, b), max(a, b) + 1
        cover = interval_to_prefixes(lo, hi, width=8)
        for (v1, p1), (v2, p2) in zip(cover, cover[1:]):
            if p1 == p2:
                merged_lo, merged_hi = v1, make_interval(v2, p2, 8)[1]
                assert not is_prefix_interval(merged_lo, merged_hi) or \
                    merged_hi - merged_lo != 2 * (1 << (8 - p1))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            interval_to_prefixes(0, 17, width=4)
