"""Tests for stateless packet rewriting (§6 future-work extension)."""

import pytest

from repro.checkers.reachability import reachable_atoms
from repro.core.deltanet import DeltaNet
from repro.core.intervals import IntervalSet
from repro.core.rewrite import (
    PrefixRewrite, RewriteTable, reachable_intervals_with_rewrites,
)
from repro.core.rules import Rule


class TestPrefixRewrite:
    def test_translation(self):
        rewrite = PrefixRewrite(0, 8, 16)
        assert rewrite.apply(IntervalSet([(2, 6)])) == IntervalSet([(18, 22)])

    def test_unmatched_passes_through(self):
        rewrite = PrefixRewrite(0, 8, 16)
        flows = IntervalSet([(4, 12)])
        assert rewrite.apply(flows) == IntervalSet([(8, 12), (20, 24)])

    def test_invert_roundtrip(self):
        rewrite = PrefixRewrite(0, 8, 16)
        flows = IntervalSet([(1, 7)])
        assert rewrite.invert().apply(rewrite.apply(flows)) == flows

    def test_empty_match_rejected(self):
        with pytest.raises(ValueError):
            PrefixRewrite(8, 8, 0)


class TestRewriteTable:
    def test_add_and_transform(self):
        table = RewriteTable()
        table.add(("a", "b"), PrefixRewrite(0, 8, 8))
        from repro.core.rules import Link

        out = table.transform(Link("a", "b"), IntervalSet([(0, 4)]))
        assert out == IntervalSet([(8, 12)])
        assert len(table) == 1

    def test_chained_rewrites_compose_in_order(self):
        table = RewriteTable()
        table.add(("a", "b"), PrefixRewrite(0, 8, 8))
        table.add(("a", "b"), PrefixRewrite(8, 16, 16))
        from repro.core.rules import Link

        out = table.transform(Link("a", "b"), IntervalSet([(0, 4)]))
        assert out == IntervalSet([(16, 20)])

    def test_remove_link(self):
        table = RewriteTable()
        table.add(("a", "b"), PrefixRewrite(0, 8, 8))
        table.remove_link(("a", "b"))
        assert len(table) == 0


class TestRewriteReachability:
    def make_nat_chain(self):
        """s1 forwards [0:8) to s2; the s1->s2 link NATs into [16:24);
        s2 forwards [16:24) to s3."""
        net = DeltaNet(width=5)
        net.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))
        net.insert_rule(Rule.forward(1, 16, 24, 1, "s2", "s3"))
        rewrites = RewriteTable()
        rewrites.add(("s1", "s2"), PrefixRewrite(0, 8, 16))
        return net, rewrites

    def test_without_rewrites_matches_atom_reachability(self):
        net = DeltaNet(width=5)
        net.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))
        net.insert_rule(Rule.forward(1, 0, 4, 1, "s2", "s3"))
        answer = reachable_intervals_with_rewrites(
            net, RewriteTable(), "s1", "s3")
        atoms = reachable_atoms(net, "s1", "s3")
        assert answer == IntervalSet(net.atoms.atom_interval(a) for a in atoms)

    def test_nat_enables_downstream_match(self):
        """Without the rewrite no packet reaches s3; with it, [0:8) does."""
        net, rewrites = self.make_nat_chain()
        without = reachable_intervals_with_rewrites(
            net, RewriteTable(), "s1", "s3")
        assert without.is_empty()
        with_nat = reachable_intervals_with_rewrites(net, rewrites, "s1", "s3")
        assert with_nat == IntervalSet([(0, 8)])

    def test_answer_is_in_original_coordinates(self):
        net, rewrites = self.make_nat_chain()
        answer = reachable_intervals_with_rewrites(net, rewrites, "s1", "s3")
        # The packets *sent* are 0..7, even though they *arrive* as 16..23.
        assert 0 in answer and 16 not in answer

    def test_partial_rewrite_match(self):
        net = DeltaNet(width=5)
        net.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))
        net.insert_rule(Rule.forward(1, 16, 20, 1, "s2", "s3"))
        rewrites = RewriteTable()
        rewrites.add(("s1", "s2"), PrefixRewrite(0, 4, 16))  # only [0:4) NATed
        answer = reachable_intervals_with_rewrites(net, rewrites, "s1", "s3")
        assert answer == IntervalSet([(0, 4)])

    def test_rewrite_loop_terminates(self):
        net = DeltaNet(width=5)
        net.insert_rule(Rule.forward(0, 0, 32, 1, "a", "b"))
        net.insert_rule(Rule.forward(1, 0, 32, 1, "b", "a"))
        rewrites = RewriteTable()
        rewrites.add(("a", "b"), PrefixRewrite(0, 16, 16))
        rewrites.add(("b", "a"), PrefixRewrite(16, 32, 0))
        answer = reachable_intervals_with_rewrites(net, rewrites, "a", "b",
                                                   max_visits=4)
        assert answer  # everything still reaches b; and we terminated
