"""Tests for the atom table (§3.1, Figures 5 and 6)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import ATOM_INF, AtomTable
from repro.core.prefix import prefix_to_interval


def interval_strategy(width):
    space = 1 << width
    return st.tuples(st.integers(0, space - 1), st.integers(0, space)).map(
        lambda p: (min(p), max(p) if max(p) > min(p) else min(p) + 1))


class TestInitialState:
    def test_one_initial_atom(self):
        table = AtomTable(width=4)
        assert table.num_atoms == 1
        assert table.atom_interval(0) == (0, 16)
        assert table.boundaries() == [0, 16]

    def test_bad_width(self):
        with pytest.raises(ValueError):
            AtomTable(width=0)


class TestPaperExample:
    """Table 1 / Figures 5-6: rules rH=[10:12), rL=[0:16), then rM=[8:12)."""

    def setup_method(self):
        self.table = AtomTable(width=4)

    def test_rh_then_rl_yields_figure5_atoms(self):
        """With a 4-bit space, Figure 5's three atoms appear exactly."""
        self.table.create_atoms(10, 12)   # rH
        self.table.create_atoms(0, 16)    # rL ([0:16) is the whole space)
        atoms = dict(self.table.intervals())
        assert atoms == {0: (0, 10), 1: (10, 12), 2: (12, 16)}
        assert self.table.num_atoms == 3

    def test_rh_rl_atom_ids_with_32bit_space(self):
        table = AtomTable(width=32)
        delta_h = table.create_atoms(10, 12)
        delta_l = table.create_atoms(0, 16)
        # rH splits [0, MAX) twice: at 10 and at 12.
        assert delta_h == [(0, 1), (1, 2)]
        # rL adds only the boundary 16 (0 already present).
        assert delta_l == [(2, 3)]
        assert set(table.atoms_in(10, 12)) == {1}
        # After the split at 16, [12:16) keeps id 2 and [16:MAX) is new id 3.
        assert set(table.atoms_in(0, 16)) == {0, 1, 2}
        assert table.atom_interval(3) == (16, 1 << 32)

    def test_rm_split_matches_figure6(self):
        """CREATE_ATOMS+(rM) returns exactly {alpha0 -> alpha4}."""
        table = AtomTable(width=32)
        table.create_atoms(10, 12)
        table.create_atoms(0, 16)
        delta_m = table.create_atoms(8, 12)
        assert delta_m == [(0, 4)]
        assert table.atom_interval(0) == (0, 8)
        assert table.atom_interval(4) == (8, 10)


class TestCreateAtoms:
    def test_at_most_two_deltas(self):
        table = AtomTable(width=8)
        rng = random.Random(1)
        for _ in range(200):
            lo = rng.randrange(256)
            hi = rng.randrange(lo + 1, 257)
            assert len(table.create_atoms(lo, hi)) <= 2

    def test_idempotent(self):
        table = AtomTable(width=8)
        assert len(table.create_atoms(10, 20)) == 2
        assert table.create_atoms(10, 20) == []

    def test_shared_lower_bound_paper_remark(self):
        """1.2.0.0/16 and 1.2.0.0/24 share a lower bound => 3 atoms, not 4."""
        table = AtomTable(width=32)
        table.create_atoms(*prefix_to_interval("1.2.0.0/16"))
        table.create_atoms(*prefix_to_interval("1.2.0.0/24"))
        assert table.num_atoms == 4  # [0:lo), /24, rest-of-/16, [hi16:MAX)

    def test_out_of_range_rejected(self):
        table = AtomTable(width=4)
        with pytest.raises(ValueError):
            table.create_atoms(0, 17)
        with pytest.raises(ValueError):
            table.create_atoms(5, 5)

    def test_full_universe_interval_no_new_atoms(self):
        table = AtomTable(width=4)
        assert table.create_atoms(0, 16) == []

    @settings(max_examples=100, deadline=None)
    @given(st.lists(interval_strategy(6), min_size=1, max_size=30))
    def test_final_boundaries_order_invariant(self, intervals):
        """§3.1: the generated atom *set* is insertion-order invariant."""
        forward, backward = AtomTable(width=6), AtomTable(width=6)
        for lo, hi in intervals:
            forward.create_atoms(lo, hi)
        for lo, hi in reversed(intervals):
            backward.create_atoms(lo, hi)
        assert forward.boundaries() == backward.boundaries()

    @settings(max_examples=100, deadline=None)
    @given(st.lists(interval_strategy(6), min_size=1, max_size=30))
    def test_atoms_partition_universe(self, intervals):
        table = AtomTable(width=6)
        for lo, hi in intervals:
            table.create_atoms(lo, hi)
        covered = []
        for _atom, (lo, hi) in table.intervals():
            covered.append((lo, hi))
        covered.sort()
        assert covered[0][0] == 0
        assert covered[-1][1] == 64
        for (l1, h1), (l2, h2) in zip(covered, covered[1:]):
            assert h1 == l2  # contiguous, disjoint

    @settings(max_examples=100, deadline=None)
    @given(st.lists(interval_strategy(6), min_size=1, max_size=20))
    def test_atoms_in_covers_exactly(self, intervals):
        table = AtomTable(width=6)
        for lo, hi in intervals:
            table.create_atoms(lo, hi)
        for lo, hi in intervals:
            atoms = list(table.atoms_in(lo, hi))
            assert ATOM_INF not in atoms
            spans = sorted(table.atom_interval(a) for a in atoms)
            assert spans[0][0] == lo and spans[-1][1] == hi
            for (l1, h1), (l2, h2) in zip(spans, spans[1:]):
                assert h1 == l2


class TestAtomQueries:
    def test_atom_at(self):
        table = AtomTable(width=4)
        table.create_atoms(4, 8)
        assert table.atom_at(0) == 0
        assert table.atom_at(5) == table.atom_at(7)
        assert table.atom_at(5) != table.atom_at(8)
        with pytest.raises(ValueError):
            table.atom_at(16)

    def test_num_atoms_is_map_size_minus_one(self):
        """§3.1: number of atoms == |M| - 1."""
        table = AtomTable(width=8)
        table.create_atoms(10, 20)
        table.create_atoms(15, 30)
        assert table.num_atoms == len(table.boundaries()) - 1


class TestGarbageCollection:
    def test_refcounting(self):
        table = AtomTable(width=8)
        table.create_atoms(10, 20)
        table.ref_bounds(10, 20)
        table.ref_bounds(10, 30)
        assert table.unref_bounds(10, 20) == [20]
        assert table.unref_bounds(10, 30) == [10, 30]

    def test_collect_merges_into_predecessor(self):
        table = AtomTable(width=8)
        table.create_atoms(10, 20)
        dead, survivor = table.collect(10)
        assert survivor == 0
        assert table.atom_interval(0) == (0, 20)
        with pytest.raises(KeyError):
            table.atom_interval(dead)

    def test_collect_rejects_min_max(self):
        table = AtomTable(width=8)
        with pytest.raises(KeyError):
            table.collect(0)
        with pytest.raises(KeyError):
            table.collect(256)

    def test_recycled_id_reused(self):
        table = AtomTable(width=8)
        (_, new_atom), = table.create_atoms(10, 256)
        dead, _ = table.collect(10)
        assert dead == new_atom
        (_, reused), = table.create_atoms(99, 256)
        assert reused == dead
