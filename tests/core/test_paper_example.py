"""End-to-end check of the paper's running example (Figures 1, 2 and 4).

Four switches s1..s4.  Rules r1 (s1->s2), r2 (s2->s3), r3 (s3->s4) with
overlapping IP prefixes; then the higher-priority r4 (s1->s4) is inserted
at s1.  The figures' claims we verify:

* before r4: atoms alpha1..alpha3 segment the three prefixes (Fig. 2 top),
* after r4: a new atom alpha4 appears, r4's prefix is {alpha2, alpha3,
  alpha4}, and those atoms *move* from edge s1->s2 to edge s1->s4 while
  r1 keeps only alpha1 (Fig. 2 bottom),
* Delta-net touches only s1's rules (Fig. 4b): the delta-graph's affected
  sources are exactly {s1}.
"""

from repro.core.deltanet import DeltaNet
from repro.core.rules import Link, Rule

# Overlapping intervals in an 8-bit space, shaped like Figure 2's picture:
# r1 widest, r2/r3 staggered inside, r4 overlapping all three.
R1 = (10, 60)   # s1 -> s2, low priority
R2 = (20, 70)   # s2 -> s3
R3 = (30, 50)   # s3 -> s4
R4 = (20, 60)   # s1 -> s4, higher priority than r1


def build_without_r4() -> DeltaNet:
    net = DeltaNet(width=8)
    net.insert_rule(Rule.forward(1, *R1, 1, "s1", "s2"))
    net.insert_rule(Rule.forward(2, *R2, 1, "s2", "s3"))
    net.insert_rule(Rule.forward(3, *R3, 1, "s3", "s4"))
    return net


class TestBeforeR4:
    def test_single_edge_labelled_graph(self):
        net = build_without_r4()
        assert net.flows_on(("s1", "s2")) == [R1]
        assert net.flows_on(("s2", "s3")) == [R2]
        assert net.flows_on(("s3", "s4")) == [R3]

    def test_r2_is_a_set_of_atoms(self):
        """Fig. 2 top: {alpha2, alpha3} represents r2's prefix (pre-r4)."""
        net = build_without_r4()
        atoms_r2 = set(net.atoms.atoms_in(*R2))
        assert atoms_r2 == net.label_of(("s2", "s3"))
        assert len(atoms_r2) >= 2


class TestAfterR4:
    def test_r4_creates_new_atom_and_moves_labels(self):
        net = build_without_r4()
        atoms_before = net.num_atoms
        delta = net.insert_rule(Rule.forward(4, *R4, 9, "s1", "s4"))
        # r4's bounds (20, 60) already exist here (from r2 and r1); the
        # paper's drawing creates alpha4 because its r4 uses a fresh bound.
        # The general guarantee is: at most 2 new atoms per insertion.
        assert net.num_atoms - atoms_before <= 2
        # r4 owns its whole interval at s1 (it outprioritizes r1 there).
        assert net.flows_on(("s1", "s4")) == [R4]
        # r1 keeps only what r4 does not cover.
        assert net.flows_on(("s1", "s2")) == [(R1[0], R4[0])]
        # Other switches' labels are untouched (Fig. 4b).
        assert net.flows_on(("s2", "s3")) == [R2]
        assert net.flows_on(("s3", "s4")) == [R3]
        # The delta-graph moved atoms from s1->s2 to s1->s4 only.
        assert delta.affected_sources() == {"s1"}
        assert set(delta.added) == {Link("s1", "s4")}
        assert set(delta.removed) == {Link("s1", "s2")}
        moved = delta.removed[Link("s1", "s2")]
        assert moved <= delta.added[Link("s1", "s4")]
        net.check_invariants()

    def test_fresh_bound_insertion_creates_atom4(self):
        """With a fresh bound (like the figure's alpha4), a split happens."""
        net = build_without_r4()
        atoms_before = net.num_atoms
        net.insert_rule(Rule.forward(4, 15, 60, 9, "s1", "s4"))  # 15 is new
        assert net.num_atoms == atoms_before + 1
        assert net.flows_on(("s1", "s4")) == [(15, 60)]
        assert net.flows_on(("s1", "s2")) == [(10, 15)]
        net.check_invariants()
