"""Tests for the naive two-field multi-range verifier (§6)."""

import random
from typing import Dict, List, Optional, Tuple

import pytest

from repro.core.multirange import Rule2D, TwoFieldDeltaNet
from repro.core.rules import Action, Link

WIDTHS = (4, 4)
SPACE = (1 << WIDTHS[0], 1 << WIDTHS[1])


class Oracle2D:
    """Brute-force 2-D data plane over all (point0, point1) pairs."""

    def __init__(self):
        self.rules: Dict[int, Rule2D] = {}

    def insert(self, rule):
        self.rules[rule.rid] = rule

    def remove(self, rid):
        del self.rules[rid]

    def owner_at(self, source, p0, p1) -> Optional[Rule2D]:
        best = None
        for rule in self.rules.values():
            if rule.source == source and rule.matches(p0, p1):
                if best is None or rule.sort_key > best.sort_key:
                    best = rule
        return best

    def expected_links(self) -> Dict[Tuple[object, int, int], Link]:
        out = {}
        sources = {r.source for r in self.rules.values()}
        for source in sources:
            for p0 in range(SPACE[0]):
                for p1 in range(SPACE[1]):
                    owner = self.owner_at(source, p0, p1)
                    if owner is not None:
                        out[(source, p0, p1)] = owner.link
        return out


def net_links(net: TwoFieldDeltaNet) -> Dict[Tuple[object, int, int], Link]:
    out = {}
    sources = {r.source for r in net.rules.values()}
    for source in sources:
        for p0 in range(SPACE[0]):
            for p1 in range(SPACE[1]):
                owner = net.owner_rule_at(source, p0, p1)
                if owner is not None:
                    out[(source, p0, p1)] = owner.link
    return out


def random_rules_2d(rng, count, switches=3):
    priorities = rng.sample(range(count * 10), count)
    rules = []
    for rid in range(count):
        ranges = []
        for width in WIDTHS:
            lo = rng.randrange(1 << width)
            hi = rng.randrange(lo + 1, (1 << width) + 1)
            ranges.append((lo, hi))
        src = f"s{rng.randrange(switches)}"
        dst = f"s{rng.randrange(switches)}"
        while dst == src:
            dst = f"s{rng.randrange(switches)}"
        rules.append(Rule2D(rid, ranges[0], ranges[1], priorities[rid],
                            Link(src, dst)))
    return rules


class TestBasics:
    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Rule2D(0, (4, 4), (0, 8), 1, Link("a", "b"))

    def test_single_rule_box(self):
        net = TwoFieldDeltaNet(widths=WIDTHS)
        net.insert_rule(Rule2D(0, (0, 8), (4, 12), 1, Link("a", "b")))
        boxes = net.flows_on(("a", "b"))
        assert boxes == [((0, 8), (4, 12))]

    def test_priority_override_in_both_dimensions(self):
        net = TwoFieldDeltaNet(widths=WIDTHS)
        net.insert_rule(Rule2D(0, (0, 16), (0, 16), 1, Link("a", "b")))
        net.insert_rule(Rule2D(1, (4, 8), (4, 8), 9, Link("a", "c")))
        assert net.owner_rule_at("a", 5, 5).rid == 1
        assert net.owner_rule_at("a", 5, 9).rid == 0
        assert net.owner_rule_at("a", 9, 5).rid == 0

    def test_duplicate_and_unknown(self):
        net = TwoFieldDeltaNet(widths=WIDTHS)
        net.insert_rule(Rule2D(0, (0, 4), (0, 4), 1, Link("a", "b")))
        with pytest.raises(ValueError):
            net.insert_rule(Rule2D(0, (0, 4), (0, 4), 2, Link("a", "b")))
        with pytest.raises(KeyError):
            net.remove_rule(5)

    def test_pair_atom_counts_multiply(self):
        """The §6 point: pair atoms ~ product of per-axis atoms."""
        net = TwoFieldDeltaNet(widths=WIDTHS)
        for rid in range(4):
            net.insert_rule(Rule2D(rid, (rid, rid + 4), (rid * 2, rid * 2 + 3),
                                   rid, Link("a", "b")))
        atoms0, atoms1 = net.num_axis_atoms
        assert net.num_pair_atoms > max(atoms0, atoms1)

    def test_overlap_degree(self):
        net = TwoFieldDeltaNet(widths=WIDTHS)
        assert net.overlap_degree() == 0.0
        net.insert_rule(Rule2D(0, (0, 16), (0, 16), 1, Link("a", "b")))
        net.insert_rule(Rule2D(1, (0, 16), (0, 16), 2, Link("a", "c")))
        assert net.overlap_degree() == pytest.approx(2.0)


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_insertions_match_oracle(self, seed):
        rng = random.Random(seed * 3 + 1)
        net = TwoFieldDeltaNet(widths=WIDTHS)
        oracle = Oracle2D()
        for rule in random_rules_2d(rng, 15):
            net.insert_rule(rule)
            oracle.insert(rule)
        assert net_links(net) == oracle.expected_links()

    @pytest.mark.parametrize("seed", range(4))
    def test_churn_matches_oracle(self, seed):
        rng = random.Random(seed * 13 + 2)
        net = TwoFieldDeltaNet(widths=WIDTHS)
        oracle = Oracle2D()
        live = []
        for rule in random_rules_2d(rng, 25):
            if live and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                net.remove_rule(victim.rid)
                oracle.remove(victim.rid)
            net.insert_rule(rule)
            oracle.insert(rule)
            live.append(rule)
        assert net_links(net) == oracle.expected_links()

    def test_label_consistency_with_owner_view(self):
        rng = random.Random(7)
        net = TwoFieldDeltaNet(widths=WIDTHS)
        for rule in random_rules_2d(rng, 12):
            net.insert_rule(rule)
        # Every labelled pair's owner must have that link.
        for link, pairs in net.label.items():
            for pair in pairs:
                owners = net._owner[pair]
                best = max((max(bucket, key=lambda r: r.sort_key)
                            for bucket in owners.values()
                            if bucket), key=lambda r: r.sort_key,
                           default=None)
                matching = [max(bucket, key=lambda r: r.sort_key)
                            for bucket in owners.values() if bucket]
                assert any(r.link == link for r in matching)
