"""docs/protocol.md conformance: replay every example against a live daemon.

Every fenced block tagged ``protocol``, ``protocol-backpressure`` or
``protocol-multi`` holds ``> request`` / ``< expected-response``
pairs.  Each tag maps to one live fixture (a real daemon served over
TCP); all blocks with the same tag replay in document order against
that one fixture, so sequence numbers in the examples line up exactly
as a reader following along would see them.  ``"..."`` in an expected
response is a wildcard; everything else — including the exact key set
— must match.
"""

import json
import re
import threading
from pathlib import Path

import pytest

from repro.serve import StreamServer, serve_socket

from tests.test_serve_hub import Client, HubFixture

DOC = Path(__file__).resolve().parent.parent / "docs" / "protocol.md"

FIXTURES = ("protocol", "protocol-backpressure", "protocol-multi")

_FENCE = re.compile(r"^```(\S*)\s*$")


def extract_examples(tag):
    """The ``(request_line, expected_response)`` pairs for one tag."""
    pairs = []
    inside = False
    pending = None
    for lineno, line in enumerate(DOC.read_text(encoding="utf-8")
                                  .splitlines(), 1):
        fence = _FENCE.match(line)
        if fence:
            inside = fence.group(1) == tag and not inside
            continue
        if not inside:
            continue
        if line.startswith("> "):
            assert pending is None, f"{DOC}:{lineno}: request without reply"
            pending = line[2:]
        elif line.startswith("< "):
            assert pending is not None, f"{DOC}:{lineno}: reply " \
                                        f"without request"
            pairs.append((pending, json.loads(line[2:]), lineno))
            pending = None
    assert pending is None, f"{DOC}: trailing request without reply"
    return pairs


def assert_matches(expected, actual, where):
    """Structural equality with ``"..."`` wildcards and exact key sets."""
    if expected == "...":
        return
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{where}: expected object, " \
                                         f"got {actual!r}"
        assert set(expected) == set(actual), (
            f"{where}: keys differ — documented {sorted(expected)}, "
            f"live daemon sent {sorted(actual)}")
        for key, value in expected.items():
            assert_matches(value, actual[key], f"{where}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(expected) == len(actual), (
            f"{where}: documented {expected!r}, live daemon sent {actual!r}")
        for index, (exp, act) in enumerate(zip(expected, actual)):
            assert_matches(exp, act, f"{where}[{index}]")
    else:
        assert expected == actual, (
            f"{where}: documented {expected!r}, live daemon sent {actual!r}")


def replay(client, pairs):
    for request_line, expected, lineno in pairs:
        client.send_raw(request_line.encode("utf-8") + b"\n")
        actual = client.recv()
        assert_matches(expected, actual, f"{DOC.name}:{lineno}")


def test_examples_exist_for_every_fixture():
    for tag in FIXTURES:
        assert extract_examples(tag), f"no {tag!r} examples in {DOC}"


def test_single_session_examples_against_live_tcp_daemon(tmp_path):
    pairs = extract_examples("protocol")
    server = StreamServer(str(tmp_path / "store"), width=32,
                          properties=("loops",))
    ready = threading.Event()
    bound = {}

    def on_ready(host, port):
        bound["address"] = (host, port)
        ready.set()

    thread = threading.Thread(target=serve_socket, args=(server,),
                              kwargs=dict(port=0, ready=on_ready),
                              daemon=True)
    thread.start()
    try:
        assert ready.wait(10)
        client = Client(bound["address"])
        try:
            replay(client, pairs)
        finally:
            client.close()
        # the last documented example is "shutdown" — the daemon exits
        thread.join(timeout=10)
        assert not thread.is_alive(), \
            "protocol.md must end its examples with shutdown"
    finally:
        server.close()


def test_backpressure_examples_against_live_tcp_daemon(tmp_path):
    pairs = extract_examples("protocol-backpressure")
    server = StreamServer(str(tmp_path / "store"), width=32,
                          properties=(), max_queue=0, max_line_bytes=128)
    ready = threading.Event()
    bound = {}

    def on_ready(host, port):
        bound["address"] = (host, port)
        ready.set()

    thread = threading.Thread(target=serve_socket, args=(server,),
                              kwargs=dict(port=0, ready=on_ready),
                              daemon=True)
    thread.start()
    try:
        assert ready.wait(10)
        client = Client(bound["address"])
        try:
            replay(client, pairs)
            # a max_queue=0 daemon refuses even "shutdown": stop it by
            # draining (the SIGTERM path), which also proves the
            # draining envelope documented above
            server.request_drain()
            refusal = client.request(cmd="ping")
            assert refusal["error"] == "draining"
        finally:
            client.close()
        thread.join(timeout=10)
        assert not thread.is_alive()
    finally:
        server.close()


def test_multi_tenant_examples_against_live_hub(tmp_path):
    pairs = extract_examples("protocol-multi")
    fixture = HubFixture(str(tmp_path / "root"),
                         defaults=dict(width=32, properties=()))
    try:
        client = fixture.client()
        try:
            replay(client, pairs)
        finally:
            client.close()
        # the last documented example is hub-wide "shutdown"
        fixture.thread.join(timeout=10)
        assert not fixture.thread.is_alive(), \
            "protocol.md must end its multi examples with shutdown"
    finally:
        fixture.stop()


@pytest.mark.parametrize("tag", FIXTURES)
def test_every_expected_response_is_valid_json(tag):
    # extract_examples already json.loads every "<" line; this test
    # exists so a malformed example names the tag that broke.
    extract_examples(tag)
