"""The tagged binary codec: roundtrip, determinism, malformed input."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.persist.codec import (
    CodecError, decode, decode_stream, encode, encode_stream,
)

SAMPLES = [
    None,
    True,
    False,
    0,
    -1,
    1,
    2 ** 130,            # wider than the 64-bit header space
    -(2 ** 130),
    3.14159,
    float("inf"),
    "",
    "atoms",
    "uniçode \U0001f40d",
    b"",
    b"\x00\xff" * 7,
    (),
    (1, ("nested", -2), None),
    [],
    [1, [2, [3]]],
    {},
    {"a": 1, ("lo", "hi"): [2, 3]},
    set(),
    {1, 2, 3},
    frozenset({("loop", ("a", "b"))}),
]


@pytest.mark.parametrize("value", SAMPLES, ids=[repr(s)[:40] for s in SAMPLES])
def test_roundtrip(value):
    assert decode(encode(value)) == value


def test_roundtrip_preserves_types():
    assert decode(encode((1, 2))) == (1, 2)
    assert isinstance(decode(encode((1, 2))), tuple)
    assert isinstance(decode(encode([1, 2])), list)
    assert isinstance(decode(encode({1})), set)
    assert isinstance(decode(encode(frozenset({1}))), frozenset)
    assert decode(encode(True)) is True
    assert decode(encode(1)) == 1 and decode(encode(1)) is not True


def test_dict_preserves_insertion_order():
    value = {"z": 1, "a": 2, "m": 3}
    assert list(decode(encode(value))) == ["z", "a", "m"]


def test_deterministic_for_sets():
    # Sets have no order; the codec must still emit stable bytes.
    a = encode({"x", "y", "z", 1, 2, 3})
    b = encode({3, "z", 2, "y", 1, "x"})
    assert a == b


def test_unencodable_value_raises():
    with pytest.raises(CodecError):
        encode(object())
    with pytest.raises(CodecError):
        encode({"ok": object()})


def test_trailing_bytes_rejected():
    with pytest.raises(CodecError):
        decode(encode(1) + b"\x00")


def test_truncated_bytes_rejected():
    blob = encode(("hello", [1, 2, 3]))
    for cut in range(len(blob)):
        with pytest.raises(CodecError):
            decode(blob[:cut])


def test_unknown_tag_rejected():
    with pytest.raises(CodecError, match="unknown tag"):
        decode(b"\x7f")


def test_stream_framing_roundtrip():
    buffer = io.BytesIO()
    values = ["one", {"two": 2}, (3, 3, 3)]
    for value in values:
        encode_stream(buffer, value)
    buffer.seek(0)
    assert list(decode_stream(buffer)) == values


def test_stream_torn_tail_raises():
    buffer = io.BytesIO()
    encode_stream(buffer, "complete")
    encode_stream(buffer, ["torn", "away"])
    data = buffer.getvalue()[:-3]
    stream = io.BytesIO(data)
    reader = decode_stream(stream)
    assert next(reader) == "complete"
    with pytest.raises(CodecError):
        next(reader)


_leaves = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-(2 ** 80), max_value=2 ** 80),
    st.text(max_size=12), st.binary(max_size=12),
)
_values = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
        st.frozensets(st.integers(min_value=0, max_value=100), max_size=4),
    ),
    max_leaves=20,
)


@given(_values)
def test_roundtrip_property(value):
    blob = encode(value)
    assert decode(blob) == value
    # Deterministic: re-encoding the decoded value gives the same bytes.
    assert encode(decode(blob)) == blob
