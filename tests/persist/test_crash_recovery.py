"""Crash-recovery property test (hypothesis).

For a random trace and a random crash point: snapshot the session at
the crash point, reload it, replay the suffix, and require the
loops/blackholes/reachability results — both the one-shot queries and
the per-update violation deliveries — to equal the uninterrupted run's,
on all three Delta-net backends (deltanet, sharded, parallel).
"""

import io
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    BlackholeProperty, LoopProperty, ReachabilityProperty,
    VerificationSession,
)
from repro.persist.snapshot import dumps_session, load_session
from tests.conftest import random_rules

BACKENDS = [
    ("deltanet", {}),
    ("sharded", {"shards": 2}),
    # Inline shard servers: identical semantics to process workers,
    # without a fork per hypothesis example.
    ("parallel", {"shards": 2, "force_inline": True}),
]


def build_trace(seed: int, count: int):
    rng = random.Random(seed)
    rules = random_rules(rng, count, width=8, switches=4)
    trace = []
    live = []
    for rule in rules:
        trace.append(("+", rule))
        live.append(rule.rid)
        if live and rng.random() < 0.35:
            trace.append(("-", live.pop(rng.randrange(len(live)))))
    return trace


def fresh_properties():
    return (LoopProperty(), BlackholeProperty(),
            ReachabilityProperty("s0", "s2"))


def run_ops(session, trace):
    deliveries = []
    for kind, payload in trace:
        result = (session.insert(payload) if kind == "+"
                  else session.remove(payload))
        deliveries.extend(v.signature for v in result.violations)
    return deliveries


def final_verdicts(session):
    return {
        "loops": sorted(map(repr, session.find_loops())),
        "blackholes": sorted(
            (repr(node), tuple(map(tuple, spans)))
            for node, spans in session.find_blackholes().items()),
        "reachable": session.reachable("s0", "s2"),
        "deliveries": [v.signature for v in session.violations()],
        "rules": sorted(session.rules()),
    }


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
       count=st.integers(min_value=4, max_value=24),
       crash_fraction=st.floats(min_value=0.0, max_value=1.0))
@pytest.mark.parametrize("backend,options", BACKENDS,
                         ids=[b for b, _ in BACKENDS])
def test_crash_anywhere_recovers_exactly(backend, options, seed, count,
                                         crash_fraction):
    trace = build_trace(seed, count)
    crash_at = round(crash_fraction * len(trace))

    uninterrupted = VerificationSession(
        backend, width=8, properties=fresh_properties(), **options)
    log_full = run_ops(uninterrupted, trace)

    crashing = VerificationSession(
        backend, width=8, properties=fresh_properties(), **options)
    log_prefix = run_ops(crashing, trace[:crash_at])
    blob = dumps_session(crashing)
    crashing.close()

    recovered = load_session(io.BytesIO(blob))
    log_suffix = run_ops(recovered, trace[crash_at:])

    assert log_prefix + log_suffix == log_full
    assert final_verdicts(recovered) == final_verdicts(uninterrupted)
    recovered.check_invariants()
    uninterrupted.close()
    recovered.close()
