"""SessionStore: atomic checkpoints, journal tails, crash recovery."""

import os

import pytest

from repro.api import LoopProperty, VerificationSession
from repro.datasets.format import Op
from repro.persist import SessionStore


def looping_pair(session):
    return (session.make_rule(1, "128/1", 5, "a", "b"),
            session.make_rule(2, "128/1", 4, "b", "a"))


def test_record_requires_a_checkpoint(tmp_path):
    store = SessionStore(tmp_path / "state")
    session = VerificationSession("deltanet", width=8)
    with pytest.raises(RuntimeError, match="checkpoint"):
        store.record(Op.remove(1), 1)


def test_checkpoint_then_journal_tail_recovers(tmp_path):
    store = SessionStore(tmp_path / "state")
    session = VerificationSession("deltanet", width=8,
                                  properties=(LoopProperty(),))
    r1, r2 = looping_pair(session)
    session.insert(r1)
    store.checkpoint(session)
    # One op beyond the checkpoint, journaled but never snapshotted.
    op = Op.insert(r2)
    result = session.apply(op)
    store.record(op, session.sequence)
    assert len(result.violations) == 1

    recovered, info = SessionStore(tmp_path / "state").recover(verify=True)
    assert info.snapshot_sequence == 1
    assert info.replayed == 1
    assert not info.torn_tail
    assert recovered.sequence == 2
    assert [v.signature for v in recovered.violations()] == \
        [v.signature for v in session.violations()]
    assert sorted(recovered.rules()) == [1, 2]


def test_recovery_skips_records_the_snapshot_covers(tmp_path):
    """A kill between snapshot rename and journal rotation is safe."""
    store = SessionStore(tmp_path / "state")
    session = VerificationSession("deltanet", width=8)
    r1, r2 = looping_pair(session)
    session.insert(r1)
    store.checkpoint(session)
    op = Op.insert(r2)
    session.apply(op)
    store.record(op, session.sequence)
    # Simulate the crash window: snapshot updated, journal NOT rotated.
    from repro.persist.snapshot import save_session
    save_session(session, store.snapshot_path)

    recovered, info = SessionStore(tmp_path / "state").recover()
    assert info.snapshot_sequence == 2
    assert info.replayed == 0  # the tail record was already covered
    assert sorted(recovered.rules()) == [1, 2]


def test_checkpoint_rotates_journal(tmp_path):
    store = SessionStore(tmp_path / "state")
    session = VerificationSession("deltanet", width=8)
    r1, r2 = looping_pair(session)
    session.insert(r1)
    store.checkpoint(session)
    op = Op.insert(r2)
    session.apply(op)
    store.record(op, session.sequence)
    size_before = os.path.getsize(store.journal_path)
    store.checkpoint(session)
    assert os.path.getsize(store.journal_path) < size_before
    _recovered, info = SessionStore(tmp_path / "state").recover()
    assert info.snapshot_sequence == 2 and info.replayed == 0


def test_batch_records_recover_through_batched_path(tmp_path):
    """A journaled batch whose intermediate state loops must not alert
    during recovery — exactly as it did not alert live."""
    store = SessionStore(tmp_path / "state")
    session = VerificationSession("deltanet", width=8,
                                  properties=(LoopProperty(),))
    r1, r2 = looping_pair(session)
    session.insert(r1)
    store.checkpoint(session)
    # Batch: complete the loop AND break it again, atomically.
    result = session.apply_batch([r2], [1])
    assert result.violations == []
    ops = [Op.remove(1), Op.insert(r2)]
    store.record_batch(ops, session.sequence)

    recovered, info = SessionStore(tmp_path / "state").recover()
    assert info.replayed == 2
    assert recovered.violations() == []
    assert sorted(recovered.rules()) == [2]


def test_torn_journal_tail_is_reported_and_survivable(tmp_path):
    store = SessionStore(tmp_path / "state")
    session = VerificationSession("deltanet", width=8)
    r1, r2 = looping_pair(session)
    session.insert(r1)
    store.checkpoint(session)
    op = Op.insert(r2)
    session.apply(op)
    store.record(op, session.sequence)
    with open(store.journal_path, "ab") as handle:
        handle.write(b"\xfftorn")
    recovered, info = SessionStore(tmp_path / "state").recover()
    assert info.torn_tail
    assert info.replayed == 1
    assert sorted(recovered.rules()) == [1, 2]


def test_exists_and_repr(tmp_path):
    store = SessionStore(tmp_path / "state")
    assert not store.exists()
    assert "checkpoint=no" in repr(store)
    session = VerificationSession("deltanet", width=8)
    store.checkpoint(session)
    assert store.exists()
    assert "checkpoint=yes" in repr(store)
