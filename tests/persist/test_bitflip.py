"""Exhaustive single-bit-flip sweeps over snapshot and journal bytes.

The invariant under test is the corruption contract: a flipped bit must
either fail loudly (``SnapshotError`` / ``JournalCorruption`` / a
reported truncation) or be provably harmless — a session that loads to
the *same* digest and rule set, or a journal whose surviving records are
a reported prefix of the original.  What must never happen is a load
that silently succeeds with different state.
"""

import random

from repro.api.properties import LoopProperty
from repro.api.session import VerificationSession
from repro.datasets.format import Op
from repro.persist.journal import (
    Journal, JournalCorruption, read_journal,
)
from repro.persist.snapshot import SnapshotError, dumps_session, load_session

from tests.conftest import random_rules


def build_session():
    session = VerificationSession("deltanet", width=8,
                                  properties=[LoopProperty()])
    for rule in random_rules(random.Random(21), 4, width=8, switches=3):
        session.insert(rule)
    return session


def flipped(data: bytes, offset: int) -> bytes:
    mutated = bytearray(data)
    mutated[offset] ^= 1 << (offset % 8)
    return bytes(mutated)


def test_snapshot_bitflip_sweep(tmp_path):
    import io

    session = build_session()
    try:
        original = dumps_session(session)
        want_digest = session.state_digest()
        want_rules = set(session.rules())
        want_props = len(session.properties)
    finally:
        session.close()
    assert want_digest is not None
    assert want_props == 1

    silent = []
    for offset in range(len(original)):
        blob = flipped(original, offset)
        try:
            restored = load_session(io.BytesIO(blob))
        except (SnapshotError, JournalCorruption, ValueError, KeyError,
                TypeError, IndexError, EOFError, MemoryError,
                UnicodeDecodeError):
            continue
        try:
            got_digest = restored.state_digest()
            got_rules = set(restored.rules())
            # Subscriptions must survive too: a flip that demotes the
            # "properties" section to an ignorable unknown name would
            # load with identical backend state yet answer without its
            # watchers — the silent failure mode the name CRC closes.
            got_props = len(restored.properties)
        finally:
            restored.close()
        if (got_digest != want_digest or got_rules != want_rules
                or got_props != want_props):
            silent.append((offset, got_digest))
    assert not silent, (
        f"{len(silent)} flips loaded silently with divergent state: "
        f"{silent[:5]}")


def test_journal_bitflip_sweep(tmp_path):
    path = tmp_path / "journal.bin"
    with Journal.create(path, base_sequence=0) as journal:
        for sequence, rule in enumerate(
                random_rules(random.Random(22), 4, width=8, switches=3),
                start=1):
            journal.append(Op.insert(rule), sequence)
        journal.append(Op.remove(0), 5)
    original = path.read_bytes()
    clean = read_journal(path)
    want = [(seq, repr(entry)) for seq, entry in clean.records]

    silent = []
    for offset in range(len(original)):
        path.write_bytes(flipped(original, offset))
        try:
            data = read_journal(path)
        except JournalCorruption:
            continue
        got = [(seq, repr(entry)) for seq, entry in data.records]
        if got == want and data.base == clean.base:
            continue  # CRC or scan shrugged the flip off entirely.
        if got == want[:len(got)] and data.base == clean.base:
            # A surviving prefix is fine only when the loss is *reported*
            # so recovery knows the journal does not reach its last
            # sequence.
            if data.torn or data.corrupt_records or data.valid < len(
                    original):
                continue
        silent.append((offset, data.base, len(got)))
    path.write_bytes(original)
    assert not silent, (
        f"{len(silent)} flips read back silently wrong: {silent[:5]}")


def test_flip_helper_changes_one_bit():
    data = bytes(range(64))
    for offset in (0, 17, 63):
        mutated = flipped(data, offset)
        assert len(mutated) == len(data)
        diff = [i for i in range(len(data)) if mutated[i] != data[i]]
        assert diff == [offset]
        assert bin(mutated[offset] ^ data[offset]).count("1") == 1
