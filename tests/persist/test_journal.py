"""The append-only journal: framing, batches, torn tails, recovery."""

import pytest

from repro.core.rules import Rule
from repro.datasets.format import Op
from repro.persist.journal import (
    Journal, JournalCorruption, journal_records, read_journal,
)


def ops_fixture():
    return [
        Op.insert(Rule.forward(1, 0, 128, 5, "a", "b")),
        Op.insert(Rule.drop(2, 64, 128, 9, "b")),
        Op.remove(1),
    ]


def test_create_append_read(tmp_path):
    path = tmp_path / "journal.bin"
    with Journal.create(path, base_sequence=7) as journal:
        for offset, op in enumerate(ops_fixture(), start=8):
            journal.append(op, offset)
    data = read_journal(path)
    assert data.base == 7
    assert not data.torn
    assert data.corrupt_records == 0
    assert data.valid == path.stat().st_size
    assert [seq for seq, _op in data.records] == [8, 9, 10]
    ops = [op for _seq, op in data.records]
    assert [op.kind for op in ops] == ["+", "+", "-"]
    assert ops[0].rule.to_state() == Rule.forward(1, 0, 128, 5, "a", "b").to_state()
    assert ops[1].rule.action.value == "drop"
    assert ops[2].rid == 1


def test_batch_records_roundtrip(tmp_path):
    path = tmp_path / "journal.bin"
    batch = ops_fixture()
    with Journal.create(path, base_sequence=0) as journal:
        journal.append_batch(batch, sequence=3)
        journal.append(Op.remove(2), sequence=4)
    data = read_journal(path)
    assert not data.torn
    seq, entry = data.records[0]
    assert seq == 3 and isinstance(entry, list) and len(entry) == 3
    assert data.records[1][1].rid == 2


def test_journal_records_filters_by_sequence(tmp_path):
    path = tmp_path / "journal.bin"
    with Journal.create(path, base_sequence=0) as journal:
        for offset, op in enumerate(ops_fixture(), start=1):
            journal.append(op, offset)
    assert [seq for seq, _ in journal_records(path)] == [1, 2, 3]
    assert [seq for seq, _ in journal_records(path, after_sequence=2)] == [3]


def test_sequence_must_advance(tmp_path):
    path = tmp_path / "journal.bin"
    with Journal.create(path, base_sequence=5) as journal:
        journal.append(Op.remove(1), 6)
        with pytest.raises(ValueError, match="not after"):
            journal.append(Op.remove(2), 6)
        with pytest.raises(ValueError, match="not after"):
            journal.append(Op.remove(2), 4)


def test_torn_tail_detected_and_prior_records_survive(tmp_path):
    path = tmp_path / "journal.bin"
    with Journal.create(path, base_sequence=0) as journal:
        journal.append(ops_fixture()[0], 1)
        journal.append(ops_fixture()[1], 2)
    whole = path.read_bytes()
    for cut in range(len(whole) - 1, len(whole) - 12, -1):
        path.write_bytes(whole[:cut])
        data = read_journal(path)
        assert data.base == 0
        assert data.torn
        assert data.corrupt_records == 0
        assert [seq for seq, _ in data.records] == [1]
        assert data.valid <= cut


def test_open_truncates_torn_tail_then_appends(tmp_path):
    path = tmp_path / "journal.bin"
    with Journal.create(path, base_sequence=0) as journal:
        journal.append(ops_fixture()[0], 1)
    path.write_bytes(path.read_bytes() + b"\x99torn-garbage")
    with Journal.open(path) as journal:
        assert journal.last_sequence == 1
        journal.append(ops_fixture()[2], 2)
    data = read_journal(path)
    assert not data.torn
    assert [seq for seq, _ in data.records] == [1, 2]


def test_crc_corruption_truncates_from_the_damage(tmp_path):
    path = tmp_path / "journal.bin"
    with Journal.create(path, base_sequence=0) as journal:
        journal.append(ops_fixture()[0], 1)
        journal.append(ops_fixture()[1], 2)
    data = bytearray(path.read_bytes())
    data[-3] ^= 0xFF  # corrupt the final record's CRC region
    path.write_bytes(bytes(data))
    data = read_journal(path)
    assert data.torn
    assert [seq for seq, _ in data.records] == [1]


def test_unreadable_header_raises(tmp_path):
    path = tmp_path / "journal.bin"
    path.write_bytes(b"\x00")
    with pytest.raises(JournalCorruption):
        read_journal(path)
    path.write_bytes(b"")
    with pytest.raises(JournalCorruption):
        read_journal(path)
