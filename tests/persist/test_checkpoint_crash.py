"""Crashes *inside* checkpoint rotation (the tmp+rename windows).

``SessionStore.checkpoint`` promises that at every instant the
directory holds a loadable snapshot plus a journal tail that
reconstructs the session.  These tests aim an injected kill at each
window of that promise — tmp written but not renamed, snapshot renamed
but journal not rotated, fresh journal staged but not in place — on all
three Delta-net backends, and require recovery plus a replayed suffix
to deliver the exact violation stream of an uninterrupted run.
"""

import random

import pytest

from repro.api import LoopProperty, VerificationSession
from repro.datasets.format import Op
from repro.faults.chaos import CHECKPOINT_WINDOWS
from repro.faults.injector import Fault, FaultInjector, InjectedCrash, \
    crash, installed
from repro.persist.store import SessionStore
from tests.conftest import random_rules

BACKENDS = [
    ("deltanet", {}),
    ("sharded", {"shards": 2}),
    ("parallel", {"shards": 2, "force_inline": True}),
]


def build_ops(seed, count=30):
    rng = random.Random(seed)
    rules = random_rules(rng, count, width=8, switches=4)
    ops, live = [], []
    for rule in rules:
        ops.append(Op.insert(rule))
        live.append(rule.rid)
        if live and rng.random() < 0.3:
            ops.append(Op.remove(live.pop(rng.randrange(len(live)))))
    return ops


def stream_of(session, ops, store=None):
    """Apply ops (journaling when a store is given); per-op signatures."""
    delivered = []
    for op in ops:
        result = session.apply(op)
        delivered.append(frozenset(v.signature for v in result.violations))
        if store is not None:
            store.record(op, session.sequence)
    return delivered


def fault_free_stream(backend, options, ops):
    with VerificationSession(backend, width=8, properties=[LoopProperty()],
                             **options) as session:
        return stream_of(session, ops)


@pytest.mark.parametrize("backend,options", BACKENDS,
                         ids=[name for name, _ in BACKENDS])
@pytest.mark.parametrize("window", CHECKPOINT_WINDOWS)
def test_crash_in_rotation_window_recovers_exactly(backend, options,
                                                   window, tmp_path, seed=9):
    ops = build_ops(seed)
    crash_at = len(ops) // 2
    expected = fault_free_stream(backend, options, ops)

    store = SessionStore(str(tmp_path))
    session = VerificationSession(backend, width=8,
                                  properties=[LoopProperty()], **options)
    store.checkpoint(session)
    delivered = stream_of(session, ops[:crash_at], store)

    injector = FaultInjector([Fault("store.checkpoint." + window, crash)])
    with installed(injector):
        with pytest.raises(InjectedCrash):
            store.checkpoint(session)
    # The "process" dies inside the window: no teardown, no final sync.
    session.close()
    store.close()

    store = SessionStore(str(tmp_path))
    session, info = store.recover(**options)
    # Whichever side of the rename the crash landed on, the snapshot on
    # disk is loadable and the journal fills the gap to the crash point.
    assert info.sequence == crash_at
    if window == "tmp-written":
        # Not yet renamed: the recovery snapshot is the *initial* one.
        assert info.snapshot_sequence == 0
        assert info.replayed == crash_at
    else:
        # Renamed: the new snapshot took; stale/absent journal records
        # must not double-apply (filtered by sequence).
        assert info.snapshot_sequence == crash_at

    delivered += stream_of(session, ops[crash_at:], store)
    session.close()
    store.close()
    assert delivered == expected


@pytest.mark.parametrize("backend,options", BACKENDS,
                         ids=[name for name, _ in BACKENDS])
def test_torn_tail_during_rotation_crash(backend, options, tmp_path):
    """A torn journal record *and* an unrenamed snapshot tmp at once."""
    from repro.faults.chaos import _tear_journal

    ops = build_ops(31)
    crash_at = 2 * len(ops) // 3
    expected = fault_free_stream(backend, options, ops)

    store = SessionStore(str(tmp_path))
    session = VerificationSession(backend, width=8,
                                  properties=[LoopProperty()], **options)
    store.checkpoint(session)
    delivered = stream_of(session, ops[:crash_at], store)
    store.sync()
    injector = FaultInjector([Fault("store.checkpoint.tmp-written", crash)])
    with installed(injector):
        with pytest.raises(InjectedCrash):
            store.checkpoint(session)
    session.close()
    store.close()
    assert _tear_journal(str(tmp_path / "journal.bin"))

    store = SessionStore(str(tmp_path))
    session, info = store.recover(**options)
    assert info.torn_tail
    # The torn record lost exactly one op; recovery stops one short.
    assert info.sequence == crash_at - 1
    delivered = delivered[:info.sequence]
    delivered += stream_of(session, ops[info.sequence:], store)
    session.close()
    store.close()
    assert delivered == expected
