"""Snapshot exactness: ``load(save(session))`` is the same session.

The contract under test (ISSUE acceptance): after restoring a snapshot,
replaying the remaining trace yields *identical* check results to the
uninterrupted session — on deltanet, sharded and parallel backends —
and saving the restored session reproduces the snapshot byte for byte.
"""

import io
import random

import pytest

from repro.api import (
    BlackholeProperty, LoopProperty, ReachabilityProperty,
    VerificationSession,
)
from repro.persist.snapshot import (
    SnapshotError, dumps_session, load_session, read_snapshot,
    snapshot_info, write_snapshot,
)
from tests.conftest import random_rules

BACKENDS = [
    ("deltanet", {}),
    ("deltanet", {"gc": True}),
    ("sharded", {"shards": 3}),
    ("parallel", {"shards": 2, "force_inline": True}),
]


def make_ops(seed, count=30, width=8):
    """An insert/remove trace over a small rule set."""
    rng = random.Random(seed)
    rules = random_rules(rng, count, width=width, switches=4)
    ops = []
    live = []
    for rule in rules:
        ops.append(("+", rule))
        live.append(rule.rid)
        if live and rng.random() < 0.3:
            ops.append(("-", live.pop(rng.randrange(len(live)))))
    return ops


def apply_ops(session, ops):
    deliveries = []
    for kind, payload in ops:
        if kind == "+":
            result = session.insert(payload)
        else:
            result = session.remove(payload)
        deliveries.extend(v.signature for v in result.violations)
    return deliveries


def fresh_properties():
    return (LoopProperty(), BlackholeProperty(),
            ReachabilityProperty("s0", "s1"))


def observable_state(session):
    return {
        "loops": sorted(map(repr, session.find_loops())),
        "blackholes": {repr(node): spans for node, spans
                       in session.find_blackholes().items()},
        "reach": session.reachable("s0", "s1"),
        "rules": sorted(session.rules()),
        "violations": [v.signature for v in session.violations()],
        "sequence": session.sequence,
    }


@pytest.mark.parametrize("backend,options", BACKENDS,
                         ids=[f"{b}-{sorted(o)}" for b, o in BACKENDS])
def test_roundtrip_then_identical_suffix(backend, options):
    ops = make_ops(0xA11CE)
    split = len(ops) // 2

    uninterrupted = VerificationSession(
        backend, width=8, properties=fresh_properties(), **options)
    log_a = apply_ops(uninterrupted, ops)

    session = VerificationSession(
        backend, width=8, properties=fresh_properties(), **options)
    apply_ops(session, ops[:split])
    blob = dumps_session(session)
    session.close()

    restored = load_session(io.BytesIO(blob))
    assert restored.backend_name == backend
    log_b = apply_ops(restored, ops[split:])

    assert observable_state(restored) == observable_state(uninterrupted)
    # The suffix deliveries must match the uninterrupted run's suffix.
    assert log_b == log_a[len(log_a) - len(log_b):]
    restored.check_invariants()
    uninterrupted.close()
    restored.close()


@pytest.mark.parametrize("backend,options", BACKENDS,
                         ids=[f"{b}-{sorted(o)}" for b, o in BACKENDS])
def test_save_load_save_is_byte_identical(backend, options):
    session = VerificationSession(
        backend, width=8, properties=fresh_properties(), **options)
    apply_ops(session, make_ops(0xBEE)[:25])
    blob = dumps_session(session)
    restored = load_session(io.BytesIO(blob))
    assert dumps_session(restored) == blob
    session.close()
    restored.close()


def test_generic_backend_fallback_roundtrip():
    session = VerificationSession("veriflow", width=8,
                                  properties=(LoopProperty(),))
    apply_ops(session, make_ops(0xFACE)[:20])
    restored = load_session(io.BytesIO(dumps_session(session)))
    assert restored.backend_name == "veriflow"
    assert sorted(restored.rules()) == sorted(session.rules())
    assert sorted(map(repr, restored.find_loops())) == \
        sorted(map(repr, session.find_loops()))
    assert restored.sequence == session.sequence


def test_generic_backend_constructor_options_survive_restore():
    session = VerificationSession("veriflow", width=8, check_loops=False)
    session.insert(session.make_rule(1, "0/1", 5, "a", "b"))
    restored = load_session(io.BytesIO(dumps_session(session)))
    assert restored.backend._check_loops is False


def test_violation_log_and_dedup_survive_restore():
    session = VerificationSession("deltanet", width=8,
                                  properties=(LoopProperty(),))
    session.insert(session.make_rule(1, "128/1", 5, "a", "b"))
    result = session.insert(session.make_rule(2, "128/1", 4, "b", "a"))
    assert len(result.violations) == 1
    restored = load_session(io.BytesIO(dumps_session(session)))
    assert [v.signature for v in restored.violations()] == \
        [v.signature for v in session.violations()]
    # The loop is already reported: re-checking must not re-alert, but
    # breaking and re-creating it must.
    restored.remove(2)
    again = restored.insert(restored.make_rule(2, "128/1", 4, "b", "a"))
    assert len(again.violations) == 1


def test_load_with_supplied_property_instances():
    session = VerificationSession("deltanet", width=8,
                                  properties=(LoopProperty(),))
    session.insert(session.make_rule(1, "0/1", 5, "a", "b"))
    blob = dumps_session(session)
    prop = LoopProperty()
    restored = load_session(io.BytesIO(blob), properties=[prop])
    assert restored.properties == (prop,)
    with pytest.raises(SnapshotError, match="supplied"):
        load_session(io.BytesIO(blob), properties=[])


def test_snapshot_info_reads_meta_only():
    session = VerificationSession("deltanet", width=8)
    session.insert(session.make_rule(1, "0/2", 5, "a", "b"))
    meta = snapshot_info(io.BytesIO(dumps_session(session)))
    assert meta["backend"] == "deltanet"
    assert meta["width"] == 8
    assert meta["sequence"] == 1


def test_backend_overrides_apply_on_load():
    session = VerificationSession("parallel", width=8, shards=2,
                                  force_inline=True)
    session.insert(session.make_rule(1, "0/2", 5, "a", "b"))
    restored = load_session(io.BytesIO(dumps_session(session)),
                            force_inline=True)
    assert restored.native.parallel is False
    assert restored.flows_on(("a", "b")) == session.flows_on(("a", "b"))
    session.close()
    restored.close()


# -- container-level failure modes ---------------------------------------------


def test_bad_magic_rejected():
    with pytest.raises(SnapshotError, match="not a DNETSNAP"):
        read_snapshot(io.BytesIO(b"NOTASNAPxxxx"))


def test_newer_version_rejected():
    buffer = io.BytesIO()
    write_snapshot(buffer, [("meta", {"x": 1})])
    data = bytearray(buffer.getvalue())
    data[8:10] = (0xFF, 0xFF)  # fake a far-future version
    with pytest.raises(SnapshotError, match="newer than supported"):
        read_snapshot(io.BytesIO(bytes(data)))


def test_corrupted_payload_rejected():
    buffer = io.BytesIO()
    write_snapshot(buffer, [("meta", {"key": "value" * 10})])
    data = bytearray(buffer.getvalue())
    data[len(data) // 2] ^= 0xFF
    with pytest.raises(SnapshotError):
        read_snapshot(io.BytesIO(bytes(data)))


def test_corrupted_section_name_rejected():
    # The v2 CRC covers the name: a flipped bit that turns "meta" into
    # the *valid* unknown name "eeta" must fail the CRC, not demote the
    # section to an ignorable unknown one (which load_session would
    # then silently skip — the exact hole the corruption fuzzer found).
    buffer = io.BytesIO()
    write_snapshot(buffer, [("meta", {"x": 1})])
    data = bytearray(buffer.getvalue())
    name_at = data.index(b"meta")
    data[name_at] ^= 0x08  # "m" -> "e": still valid UTF-8
    with pytest.raises(SnapshotError, match="CRC mismatch"):
        read_snapshot(io.BytesIO(bytes(data)))


def test_version1_payload_only_crc_still_reads():
    import struct
    import zlib

    from repro.persist.codec import encode

    payload = encode({"a": 1})
    buffer = io.BytesIO()
    buffer.write(b"DNETSNAP" + struct.pack(">H", 1))
    buffer.write(bytes([4]) + b"meta")
    buffer.write(bytes([len(payload)]) + payload)
    buffer.write(struct.pack(">I", zlib.crc32(payload)))
    buffer.write(bytes([0]))
    assert read_snapshot(io.BytesIO(buffer.getvalue())) == {"meta": {"a": 1}}


def test_truncated_snapshot_rejected():
    buffer = io.BytesIO()
    write_snapshot(buffer, [("meta", {"key": list(range(50))})])
    with pytest.raises(SnapshotError):
        read_snapshot(io.BytesIO(buffer.getvalue()[:-6]))


def test_unknown_sections_are_ignored():
    buffer = io.BytesIO()
    write_snapshot(buffer, [("meta", {"a": 1}), ("from_the_future", [1])])
    sections = read_snapshot(io.BytesIO(buffer.getvalue()))
    assert sections["meta"] == {"a": 1}
    assert "from_the_future" in sections  # delivered, caller may skip
