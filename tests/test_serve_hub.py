"""The asyncio multi-session hub, exercised over real TCP connections."""

import asyncio
import io
import json
import socket
import threading
import time

import pytest

from repro.serve import (
    AsyncSessionHub, SessionManager, serve_hub_stdio, serve_hub_tcp,
)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def rule(rid, priority=None, lo=0, hi=10, source="a", target="b"):
    return {"rid": rid, "lo": lo, "hi": hi,
            "priority": rid if priority is None else priority,
            "source": source, "target": target}


class HubFixture:
    """A hub served over TCP from a background thread."""

    def __init__(self, root, defaults=None, **hub_kwargs):
        self.manager = SessionManager(
            root, defaults=defaults or dict(width=8, properties=()))
        self.hub = AsyncSessionHub(self.manager, **hub_kwargs)
        self.loop = None
        self.address = None
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(10), "hub did not come up"

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()

        def on_ready(host, port):
            self.address = (host, port)
            self._ready.set()

        await serve_hub_tcp(self.hub, ready=on_ready)

    def client(self):
        return Client(self.address)

    def stop(self):
        if self.thread.is_alive() and self.loop is not None:
            self.loop.call_soon_threadsafe(self.hub.request_stop)
        self.thread.join(timeout=10)
        assert not self.thread.is_alive(), "hub thread did not stop"


class Client:
    """One ndjson controller connection."""

    def __init__(self, address):
        self.sock = socket.create_connection(address)
        self.rfile = self.sock.makefile("r", encoding="utf-8")

    def send(self, **request):
        self.sock.sendall((json.dumps(request) + "\n").encode("utf-8"))

    def send_raw(self, data):
        self.sock.sendall(data)

    def recv(self):
        line = self.rfile.readline()
        assert line, "connection closed while expecting a response"
        return json.loads(line)

    def request(self, **request):
        self.send(**request)
        return self.recv()

    def close(self):
        try:
            self.rfile.close()
            self.sock.close()
        except OSError:
            pass


@pytest.fixture
def hub(tmp_path):
    fixture = HubFixture(str(tmp_path / "root"))
    yield fixture
    fixture.stop()


class TestHubVerbs:
    def test_open_insert_query_roundtrip(self, hub):
        client = hub.client()
        opened = client.request(cmd="open", session="red")
        assert opened == {"ok": True, "session": "red", "seq": 0,
                          "backend": "deltanet", "recovered": False}
        assert client.request(cmd="insert", rule=rule(1))["ok"]
        response = client.request(cmd="query", what="rules")
        assert response["result"] == [1]
        client.close()

    def test_sessions_listing_covers_all_tenants(self, hub):
        client = hub.client()
        client.request(cmd="open", session="red")
        client.request(cmd="open", session="blue")
        listing = client.request(cmd="sessions")["sessions"]
        assert [s["session"] for s in listing] == ["blue", "red"]
        assert all(s["open"] for s in listing)
        client.close()

    def test_per_request_session_override(self, hub):
        client = hub.client()
        client.request(cmd="open", session="red")
        client.request(cmd="open", session="blue")  # now attached to blue
        client.request(cmd="insert", rule=rule(1), session="red")
        assert client.request(cmd="query", what="rules",
                              session="red")["result"] == [1]
        assert client.request(cmd="query", what="rules")["result"] == []
        client.close()

    def test_detach_and_unattached_verbs_are_refused(self, hub):
        client = hub.client()
        client.request(cmd="open", session="red")
        assert client.request(cmd="detach") == {"ok": True,
                                                "detached": "red"}
        refused = client.request(cmd="stats")
        assert not refused["ok"]
        assert "no session attached" in refused["error"]
        client.close()

    def test_unknown_session_error_keeps_connection(self, hub):
        client = hub.client()
        refused = client.request(cmd="stats", session="ghost")
        assert not refused["ok"] and "unknown session" in refused["error"]
        assert client.request(cmd="sessions")["ok"]  # still alive
        client.close()

    def test_attach_refuses_what_open_would_create(self, hub):
        client = hub.client()
        refused = client.request(cmd="attach", session="ghost")
        assert not refused["ok"] and "unknown session" in refused["error"]
        client.close()

    def test_hub_health_detached_session_health_attached(self, hub):
        client = hub.client()
        client.request(cmd="open", session="red")
        hub_health = client.request(cmd="health", session=None)
        session_health = client.request(cmd="health")
        client.close()
        # "session": None is absent after JSON round-trip?  No: json
        # keeps the key with null, and the hub treats null as detached.
        assert hub_health["hub"] is True
        assert hub_health["sessions"] == ["red"]
        assert session_health["session"] == "red"
        assert "hub" not in session_health

    def test_hub_metrics_exposition(self, hub):
        client = hub.client()
        client.request(cmd="open", session="red")
        client.request(cmd="detach")
        text = client.request(cmd="metrics")["metrics"]
        client.close()
        assert "deltanet_open_sessions 1" in text
        assert ('deltanet_requests_total{session="_hub",verb="open"} 1'
                in text)
        assert 'deltanet_connections_total{transport="tcp"} 1' in text

    def test_bad_json_and_bad_request_keep_connection(self, hub):
        client = hub.client()
        client.send_raw(b"not json at all\n")
        assert "bad JSON" in client.recv()["error"]
        client.send_raw(b'"just a string"\n')
        assert "bad request" in client.recv()["error"]
        client.send_raw(b'{"cmd": 7}\n')
        assert "bad request" in client.recv()["error"]
        assert client.request(cmd="sessions")["ok"]
        client.close()

    def test_shutdown_reports_sessions_and_stops_hub(self, hub, tmp_path):
        client = hub.client()
        client.request(cmd="open", session="red")
        client.request(cmd="insert", rule=rule(1))
        closing = client.request(cmd="shutdown")
        assert closing == {"ok": True, "closing": True, "sessions": ["red"]}
        assert client.rfile.readline() == ""  # hub closed the connection
        client.close()
        hub.thread.join(timeout=10)
        assert not hub.thread.is_alive()
        # the final checkpoint made the session recoverable
        fresh = SessionManager(str(tmp_path / "root"),
                               defaults=dict(width=8, properties=()))
        try:
            assert fresh.attach("red").session.sequence == 1
        finally:
            fresh.close_all()


class TestHubFraming:
    @pytest.fixture
    def hub(self, tmp_path):
        fixture = HubFixture(str(tmp_path / "root"), max_line_bytes=256)
        yield fixture
        fixture.stop()

    def test_oversized_frame_is_refused_and_stream_stays_framed(self, hub):
        client = hub.client()
        client.send_raw(b"x" * 4096 + b"\n")
        refused = client.recv()
        assert refused["error"] == "frame too large"
        assert refused["max_line_bytes"] == 256
        assert client.request(cmd="sessions")["ok"]
        client.close()

    def test_multibyte_frame_cap_is_measured_in_bytes(self, hub):
        client = hub.client()
        # 100 euro signs = 100 chars but 300 utf-8 bytes > 256.
        client.send_raw(("€" * 100 + "\n").encode("utf-8"))
        assert client.recv()["error"] == "frame too large"
        assert client.request(cmd="sessions")["ok"]
        client.close()


class TestBackpressure:
    def test_zero_queue_session_answers_overloaded(self, tmp_path):
        fixture = HubFixture(str(tmp_path / "root"),
                             defaults=dict(width=8, properties=(),
                                           max_queue=0))
        try:
            client = fixture.client()
            client.request(cmd="open", session="red")
            refused = client.request(cmd="insert", rule=rule(1))
            assert refused["error"] == "overloaded"
            assert refused["retry_after"] > 0
            client.close()
        finally:
            fixture.stop()

    def test_full_writer_queue_refuses_immediately(self, tmp_path):
        fixture = HubFixture(str(tmp_path / "root"),
                             defaults=dict(width=8, properties=(),
                                           max_queue=1))
        try:
            opener = fixture.client()
            opener.request(cmd="open", session="red")
            server = fixture.manager.get("red")
            writer_queue = fixture.hub._writers["red"].queue

            assert server._lock.acquire(timeout=5)  # wedge the session
            try:
                first = fixture.client()
                first.send(cmd="open", session="red")
                first.recv()
                first.send(cmd="insert", rule=rule(1))
                # the writer task dequeues it and blocks on the wedge
                assert wait_until(lambda: server._waiters >= 1)

                second = fixture.client()
                second.send(cmd="open", session="red")
                second.recv()
                second.send(cmd="insert", rule=rule(2))
                assert wait_until(lambda: writer_queue.qsize() >= 1)

                third = fixture.client()
                third.send(cmd="open", session="red")
                third.recv()
                refused = third.request(cmd="insert", rule=rule(3))
                assert refused["error"] == "overloaded"
                assert refused["retry_after"] > 0
            finally:
                server._lock.release()
            assert first.recv()["ok"]   # wedged write completes
            assert second.recv()["ok"]  # queued write follows
            for client in (first, second, third, opener):
                client.close()
        finally:
            fixture.stop()


class TestStdioCompatibility:
    def test_stdio_multi_tenant_script(self, tmp_path):
        manager = SessionManager(str(tmp_path / "root"),
                                 defaults=dict(width=8, properties=()))
        hub = AsyncSessionHub(manager)
        script = "\n".join([
            json.dumps({"cmd": "open", "session": "red"}),
            json.dumps({"cmd": "insert", "rule": rule(1)}),
            json.dumps({"cmd": "open", "session": "blue"}),
            json.dumps({"cmd": "query", "what": "rules",
                        "session": "red"}),
            json.dumps({"cmd": "query", "what": "rules"}),
            json.dumps({"cmd": "shutdown"}),
            json.dumps({"cmd": "never-reached"}),
        ]) + "\n"
        out = io.StringIO()
        served = serve_hub_stdio(hub, io.StringIO(script), out)
        responses = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        assert served == 6
        assert [r["ok"] for r in responses] == [True] * 6
        assert responses[3]["result"] == [1]   # red has the rule
        assert responses[4]["result"] == []    # blue does not
        assert responses[5]["closing"] is True
