"""Tests for ddmin-style trace shrinking."""

from repro.core.rules import Rule
from repro.datasets.format import Op
from repro.fuzz import shrink_trace
from repro.scenarios import validate_trace


def _insert(rid, source="a", target="b"):
    return Op.insert(Rule.forward(rid, 0, 16, rid, source, target))


def _trace(n=40):
    ops = [_insert(rid) for rid in range(n)]
    # Interleave some removals/re-inserts for repair coverage.
    ops += [Op.remove(0), Op.remove(1), _insert(0, source="c")]
    return ops


class TestShrinkTrace:
    def test_shrinks_to_single_essential_op(self):
        trace = _trace()

        def needs_rid_7(candidate):
            return any(op.is_insert and op.rid == 7 for op in candidate)

        shrunk = shrink_trace(trace, needs_rid_7)
        assert len(shrunk) == 1
        assert shrunk[0].rid == 7

    def test_keeps_dependencies_via_repair(self):
        trace = _trace()

        def needs_removal_of_0(candidate):
            return any(not op.is_insert and op.rid == 0
                       for op in candidate)

        shrunk = shrink_trace(trace, needs_removal_of_0)
        validate_trace(shrunk)  # the insert of rid 0 must survive
        assert any(not op.is_insert and op.rid == 0 for op in shrunk)
        assert len(shrunk) == 2

    def test_every_probe_sees_a_valid_trace(self):
        trace = _trace()
        probed = []

        def predicate(candidate):
            validate_trace(candidate)
            probed.append(len(candidate))
            return any(op.is_insert and op.rid == 3 for op in candidate)

        shrink_trace(trace, predicate)
        assert probed

    def test_probe_budget_respected(self):
        trace = _trace(200)
        calls = []

        def predicate(candidate):
            calls.append(1)
            return any(op.is_insert and op.rid == 199 for op in candidate)

        shrink_trace(trace, predicate, max_probes=10)
        assert len(calls) <= 10

    def test_unshrinkable_pair_stays(self):
        trace = _trace()

        def needs_two(candidate):
            rids = {op.rid for op in candidate if op.is_insert}
            return {2, 9} <= rids

        shrunk = shrink_trace(trace, needs_two)
        assert sorted(op.rid for op in shrunk) == [2, 9]
