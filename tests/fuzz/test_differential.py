"""Tests for the differential fuzzing campaign loop."""

import os

import pytest

from repro.api import register_backend, unregister_backend
from repro.api.backends import DeltaNetBackend
from repro.fuzz import fuzz, load_repro, replay_repro


class _LossyBackend(DeltaNetBackend):
    """Delta-net that swallows the last loop report of every commit."""

    def loops_for_commit(self, updates, delta):
        return super().loops_for_commit(updates, delta)[:-1]


@pytest.fixture
def lossy_backend():
    register_backend("lossy-test", _LossyBackend, replace=True)
    yield "lossy-test"
    unregister_backend("lossy-test")


class TestHealthyCampaign:
    def test_small_campaign_agrees(self):
        report = fuzz(budget=3, seed=21, backends=["deltanet", "sharded"])
        assert report.ok
        assert report.attempted == report.passed == 3
        assert "OK" in report.describe()

    def test_campaign_is_seed_reproducible(self):
        first = fuzz(budget=2, seed=33, backends=["deltanet"])
        second = fuzz(budget=2, seed=33, backends=["deltanet"])
        assert first.ok and second.ok
        assert first.passed == second.passed == 2

    def test_time_budget_stops_early(self):
        report = fuzz(budget=500, seed=1, backends=["deltanet"],
                      time_budget=0.0)
        assert report.stopped_early
        assert report.attempted < 500


class TestFailingCampaign:
    def test_lossy_backend_found_minimized_and_saved(self, tmp_path,
                                                     lossy_backend):
        artifacts = str(tmp_path / "artifacts")
        report = fuzz(budget=6, seed=5,
                      backends=["deltanet", lossy_backend],
                      families=["deaggregation", "table-fill"],
                      artifacts_dir=artifacts, shrink_probes=60)
        assert not report.ok
        failure = report.failures[0]
        assert lossy_backend in failure.diverging
        assert len(failure.shrunk_ops) <= failure.scenario.num_ops
        assert failure.repro_path and os.path.exists(failure.repro_path)
        assert failure.ops_path and os.path.exists(failure.ops_path)
        # The minimized repro still reproduces against the lossy
        # backend and passes on the healthy one.
        saved = load_repro(failure.repro_path)
        assert lossy_backend in saved.diverging
        still_failing = replay_repro(failure.repro_path,
                                     backends=[lossy_backend])
        assert not still_failing.ok
        healthy = replay_repro(failure.repro_path, backends=["deltanet"])
        assert healthy.ok

    def test_failure_description_is_readable(self, lossy_backend):
        report = fuzz(budget=6, seed=5,
                      backends=["deltanet", lossy_backend],
                      families=["deaggregation", "table-fill"],
                      shrink_probes=40)
        assert not report.ok
        text = report.failures[0].describe()
        assert "FAILURE" in text and "minimized" in text
        assert "oracle" in text


class TestChaosCampaign:
    def test_chaos_traces_survive_and_annotate(self):
        report = fuzz(budget=2, seed=21, backends=["deltanet"],
                      families=["deaggregation"], chaos=True,
                      chaos_faults=2)
        assert report.ok, [f.describe() for f in report.failures]
        assert report.chaos
        assert "chaos fuzz" in report.describe()

    def test_chaos_failures_skip_shrinking_and_carry_the_plan(
            self, tmp_path, lossy_backend):
        artifacts = str(tmp_path / "artifacts")
        report = fuzz(budget=6, seed=5, backends=[lossy_backend],
                      families=["deaggregation", "table-fill"],
                      chaos=True, chaos_faults=1, artifacts_dir=artifacts)
        assert not report.ok
        failure = report.failures[0]
        assert failure.chaos_plan is not None
        # Un-shrunk: the fault schedule is keyed to op indices.
        assert len(failure.shrunk_ops) == failure.scenario.num_ops
        assert "chaos plan" in failure.describe()
        assert failure.repro_path and os.path.exists(failure.repro_path)
        saved = load_repro(failure.repro_path)
        assert "chaos plan" in saved.notes
