"""Tests for codec-backed fuzzer repro files."""

import pytest

from repro.datasets.format import load_ops
from repro.fuzz import REPRO_VERSION, load_repro, save_repro
from repro.scenarios import PropertySpec, Scenario, ScenarioError, build_scenario


def _scenario():
    return build_scenario("acl-injection", seed=8, scale=0.25)


class TestReproRoundTrip:
    def test_save_then_load(self, tmp_path):
        scenario = _scenario()
        path = str(tmp_path / "case.repro")
        repro_path, ops_path = save_repro(
            path, scenario, backends=["deltanet", "veriflow"],
            diverging=["veriflow"], notes="first diff at op 3")
        loaded = load_repro(repro_path)
        assert loaded.family == scenario.family
        assert loaded.seed == scenario.seed
        assert loaded.scale == scenario.scale
        assert loaded.width == scenario.width
        assert loaded.backends == ["deltanet", "veriflow"]
        assert loaded.diverging == ["veriflow"]
        assert loaded.notes == "first diff at op 3"
        assert loaded.property_specs == scenario.property_specs
        assert [op.to_line() for op in loaded.ops] == \
               [op.to_line() for op in scenario.ops]

    def test_ops_twin_matches_text_format(self, tmp_path):
        scenario = _scenario()
        _repro, ops_path = save_repro(str(tmp_path / "case.repro"),
                                      scenario, ["deltanet"], [])
        twin = load_ops(ops_path)
        assert [op.to_line() for op in twin] == \
               [op.to_line() for op in scenario.ops]

    def test_shrunk_ops_override(self, tmp_path):
        scenario = _scenario()
        shrunk = scenario.ops[:2]
        repro_path, _ops = save_repro(str(tmp_path / "case.repro"),
                                      scenario, ["deltanet"], [],
                                      ops=shrunk)
        assert len(load_repro(repro_path).ops) == 2

    def test_scenario_rebuild_is_replayable(self, tmp_path):
        scenario = _scenario()
        repro_path, _ops = save_repro(str(tmp_path / "case.repro"),
                                      scenario, ["deltanet"], [])
        rebuilt = load_repro(repro_path).scenario()
        rebuilt.validate()
        assert rebuilt.topology is None
        assert rebuilt.name.startswith("repro:")


class TestReproErrors:
    def test_not_a_repro_file(self, tmp_path):
        path = tmp_path / "junk.repro"
        path.write_bytes(b"hello world")
        with pytest.raises(ScenarioError, match="not a deltanet repro"):
            load_repro(str(path))

    def test_version_mismatch_rejected(self, tmp_path, monkeypatch):
        import repro.fuzz.reprofile as reprofile

        scenario = Scenario(family="f", name="f/0", seed=0, scale=1.0,
                            topology=None, ops=_scenario().ops[:1],
                            property_specs=[PropertySpec.of("loops")])
        path = str(tmp_path / "case.repro")
        monkeypatch.setattr(reprofile, "REPRO_VERSION", REPRO_VERSION + 1)
        save_repro(path, scenario, ["deltanet"], [])
        monkeypatch.undo()
        with pytest.raises(ScenarioError, match="repro version"):
            load_repro(path)
