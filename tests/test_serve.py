"""The streaming verification daemon: protocol, recovery, transports."""

import json
import threading

import pytest

from repro.serve import (
    StreamServer, attach_controller, request_over_socket, serve_socket,
    serve_stdio,
)


def rule_payload(rid, prefix, priority, source, target=None, action=None):
    payload = {"rid": rid, "prefix": prefix, "priority": priority,
               "source": source}
    if target is not None:
        payload["target"] = target
    if action is not None:
        payload["action"] = action
    return payload


def send(server, request):
    response, keep_going = server.handle_line(json.dumps(request))
    return response, keep_going


@pytest.fixture
def server(tmp_path):
    instance = StreamServer(str(tmp_path / "state"), width=8,
                            checkpoint_every=100)
    yield instance
    instance.close()


def test_insert_remove_and_violation_stream(server):
    response, _ = send(server, {
        "cmd": "insert",
        "rule": rule_payload(1, "128/1", 5, "a", "b")})
    assert response["ok"] and response["seq"] == 1
    assert response["violations"] == []
    response, _ = send(server, {
        "cmd": "insert",
        "rule": rule_payload(2, "128/1", 4, "b", "a")})
    assert response["seq"] == 2
    assert response["violations"][0]["property"] == "loops"
    response, _ = send(server, {"cmd": "remove", "rid": 2})
    assert response["ok"] and response["seq"] == 3
    response, _ = send(server, {"cmd": "query", "what": "loops"})
    assert response["result"] == []


def test_batch_and_queries(server):
    response, _ = send(server, {"cmd": "batch", "insert": [
        rule_payload(1, "0/1", 5, "a", "b"),
        rule_payload(2, "0/1", 4, "b", "c"),
        rule_payload(3, "0/2", 9, "c", None, action="drop"),
    ]})
    assert response["ok"] and response["seq"] == 3
    response, _ = send(server, {"cmd": "query", "what": "reachable",
                                "src": "a", "dst": "c"})
    assert response["result"] == [[0, 128]]
    response, _ = send(server, {"cmd": "query", "what": "flows_on",
                                "source": "a", "target": "b"})
    assert response["result"] == [[0, 128]]
    response, _ = send(server, {"cmd": "query", "what": "rules"})
    assert response["result"] == [1, 2, 3]
    response, _ = send(server, {"cmd": "stats"})
    assert response["stats"]["rules"] == 3
    assert response["stats"]["sequence"] == 3


def test_watch_checkpoint_shutdown_and_errors(server):
    response, _ = send(server, {"cmd": "watch", "property": "reachability",
                                "args": {"src": "a", "dst": "b"}})
    assert response["ok"]
    assert "reachability" in response["watching"]
    response, _ = send(server, {"cmd": "watch", "property": "nope"})
    assert not response["ok"] and "unknown property" in response["error"]
    response, _ = send(server, {"cmd": "checkpoint"})
    assert response["ok"]
    response, _ = send(server, {"cmd": "nonsense"})
    assert not response["ok"]
    response, keep_going = send(server, {"cmd": "shutdown"})
    assert response["ok"] and not keep_going


def test_rewatch_is_idempotent(server):
    response, _ = send(server, {"cmd": "watch", "property": "loops"})
    assert response["watching"] == ["loops"]  # not doubled
    send(server, {"cmd": "insert",
                  "rule": rule_payload(1, "128/1", 5, "a", "b")})
    response, _ = send(server, {"cmd": "insert",
                                "rule": rule_payload(2, "128/1", 4, "b", "a")})
    assert len(response["violations"]) == 1  # delivered once, not twice
    # A *different* spec of the same property class is a new subscription.
    response, _ = send(server, {"cmd": "watch", "property": "reachability",
                                "args": {"src": "a", "dst": "b"}})
    response, _ = send(server, {"cmd": "watch", "property": "reachability",
                                "args": {"src": "b", "dst": "a"}})
    assert response["watching"].count("reachability") == 2


def test_empty_batch_is_a_legal_noop(server):
    response, keep_going = send(server, {"cmd": "batch"})
    assert response["ok"] and keep_going
    assert response["seq"] == 0 and response["violations"] == []
    response, _ = send(server, {"cmd": "ping"})
    assert response["seq"] == 0


def test_malformed_and_failing_requests_do_not_kill_the_daemon(server):
    response, keep_going = server.handle_line("{not json")
    assert not response["ok"] and keep_going
    response, keep_going = send(server, {"cmd": "remove", "rid": 999})
    assert not response["ok"] and "KeyError" in response["error"]
    assert keep_going
    response, _ = send(server, {"cmd": "ping"})
    assert response["ok"]


def test_recovery_after_hard_kill(tmp_path):
    state = str(tmp_path / "state")
    first = StreamServer(state, width=8, checkpoint_every=1)
    send(first, {"cmd": "insert",
                 "rule": rule_payload(1, "128/1", 5, "a", "b")})
    send(first, {"cmd": "insert",
                 "rule": rule_payload(2, "128/1", 4, "b", "a")})
    # No close(): the daemon dies here.  checkpoint_every=1 means the
    # journal/snapshot already cover both ops.
    second = StreamServer(state, width=8)
    assert second.recovery is not None
    assert second.recovery.sequence == 2
    response, _ = send(second, {"cmd": "query", "what": "loops"})
    assert response["result"] == [["a", "b"]]
    response, _ = send(second, {"cmd": "violations"})
    assert [v["property"] for v in response["violations"]] == ["loops"]
    second.close()


def test_recovery_adds_missing_requested_properties(tmp_path):
    state = str(tmp_path / "state")
    first = StreamServer(state, width=8, properties=("loops",))
    send(first, {"cmd": "insert",
                 "rule": rule_payload(1, "128/1", 5, "a", "b")})
    first.close()
    second = StreamServer(state, width=8,
                          properties=("loops", "blackholes"))
    names = [p.name for p in second.session.properties]
    assert names == ["loops", "blackholes"]
    # ... and the addition was checkpointed: a third start still has it.
    second.close()
    third = StreamServer(state, width=8)
    assert [p.name for p in third.session.properties] == \
        ["loops", "blackholes"]
    third.close()


def test_recovery_replays_journal_tail(tmp_path):
    state = str(tmp_path / "state")
    first = StreamServer(state, width=8, checkpoint_every=1000)
    send(first, {"cmd": "insert",
                 "rule": rule_payload(1, "128/1", 5, "a", "b")})
    send(first, {"cmd": "insert",
                 "rule": rule_payload(2, "128/1", 4, "b", "a")})
    # cadence 1000 -> both ops live only in the journal tail
    second = StreamServer(state, width=8)
    assert second.recovery.replayed == 2
    response, _ = send(second, {"cmd": "stats"})
    assert response["stats"]["sequence"] == 2
    assert response["stats"]["rules"] == 2
    second.close()


def test_serve_stdio_loop(tmp_path):
    import io

    server = StreamServer(str(tmp_path / "state"), width=8)
    requests = "\n".join(json.dumps(r) for r in [
        {"cmd": "insert", "rule": rule_payload(1, "0/1", 5, "a", "b")},
        {"cmd": "ping"},
        {"cmd": "shutdown"},
        {"cmd": "never-reached"},
    ])
    out = io.StringIO()
    served = serve_stdio(server, io.StringIO(requests + "\n"), out)
    server.close()
    lines = [json.loads(line) for line in out.getvalue().splitlines()]
    assert served == 3
    assert [line["ok"] for line in lines] == [True, True, True]


def test_serve_socket_roundtrip(tmp_path):
    server = StreamServer(str(tmp_path / "state"), width=8)
    address = {}
    ready = threading.Event()

    def on_ready(host, port):
        address["host"], address["port"] = host, port
        ready.set()

    thread = threading.Thread(target=serve_socket, args=(server,),
                              kwargs=dict(port=0, ready=on_ready),
                              daemon=True)
    thread.start()
    assert ready.wait(10)
    responses = request_over_socket(address["host"], address["port"], [
        {"cmd": "insert", "rule": rule_payload(1, "0/1", 5, "a", "b")},
        {"cmd": "query", "what": "links"},
        {"cmd": "shutdown"},
    ])
    thread.join(10)
    server.close()
    assert [r["ok"] for r in responses] == [True, True, True]
    assert responses[1]["result"] == [["a", "b"]]


def test_sdn_controller_bridge(tmp_path):
    from repro.sdn.controller import Controller
    from repro.topology.graph import Topology

    topology = Topology()
    for pair in (("a", "b"), ("b", "a")):
        topology.add_link(*pair)
    controller = Controller(topology)
    server = StreamServer(str(tmp_path / "state"), width=8,
                          checkpoint_every=1)
    alerts = []
    attach_controller(controller, server, on_violation=alerts.append)
    controller.install_forward("a", "b", 128, 256, 5)
    controller.install_forward("b", "a", 128, 256, 4)
    assert server.session.num_rules == 2
    assert [a["property"] for a in alerts] == ["loops"]
    server.close()
    # The bridged ops were journaled: a restart still knows them.
    recovered = StreamServer(str(tmp_path / "state"), width=8)
    assert recovered.session.num_rules == 2
    recovered.close()

def test_oversized_frame_is_refused_not_buffered(tmp_path):
    server = StreamServer(str(tmp_path / "state"), width=8,
                          max_line_bytes=256)
    try:
        response, keep_going = server.handle_line("x" * 300)
        assert keep_going
        assert response == {"ok": False, "error": "frame too large",
                            "max_line_bytes": 256}
        # The daemon is still fully functional afterwards.
        response, _ = send(server, {"cmd": "ping"})
        assert response["ok"]
    finally:
        server.close()


def test_serve_stdio_survives_a_giant_line(tmp_path):
    import io

    server = StreamServer(str(tmp_path / "state"), width=8,
                          max_line_bytes=256)
    requests = "\n".join([
        "y" * 4096,
        json.dumps({"cmd": "insert",
                    "rule": rule_payload(1, "0/1", 5, "a", "b")}),
        json.dumps({"cmd": "shutdown"}),
    ])
    out = io.StringIO()
    served = serve_stdio(server, io.StringIO(requests + "\n"), out)
    server.close()
    lines = [json.loads(line) for line in out.getvalue().splitlines()]
    assert served == 3
    assert [line["ok"] for line in lines] == [False, True, True]
    assert lines[0]["error"] == "frame too large"


def test_serve_socket_survives_a_giant_line(tmp_path):
    import socket

    server = StreamServer(str(tmp_path / "state"), width=8,
                          max_line_bytes=256)
    address = {}
    ready = threading.Event()

    def on_ready(host, port):
        address["host"], address["port"] = host, port
        ready.set()

    thread = threading.Thread(target=serve_socket, args=(server,),
                              kwargs=dict(port=0, ready=on_ready),
                              daemon=True)
    thread.start()
    assert ready.wait(10)
    with socket.create_connection(
            (address["host"], address["port"]), timeout=10) as conn:
        stream = conn.makefile("rwb")
        stream.write(b"z" * 4096 + b"\n")
        stream.write(json.dumps({"cmd": "ping"}).encode() + b"\n")
        stream.write(json.dumps({"cmd": "shutdown"}).encode() + b"\n")
        stream.flush()
        responses = [json.loads(stream.readline()) for _ in range(3)]
    thread.join(10)
    server.close()
    assert [r["ok"] for r in responses] == [False, True, True]
    assert responses[0]["error"] == "frame too large"


def test_audit_verb_and_health_scrub_counters(server):
    response, _ = send(server, {
        "cmd": "insert", "rule": rule_payload(1, "128/1", 5, "a", "b")})
    assert response["ok"]
    response, _ = send(server, {"cmd": "audit"})
    assert response["ok"]
    assert response["clean"] is True
    assert isinstance(response["digest"], str)
    assert response["report"]["pass_complete"]
    assert response["scrub"]["passes"] >= 1
    health, _ = send(server, {"cmd": "health"})
    assert health["ok"]
    assert health["scrub"]["passes"] >= 1
    assert health["scrub"]["mismatches"] == 0
    assert health["scrub"]["last_pass_clean"] is True


def test_background_scrub_ticker(tmp_path):
    import time

    server = StreamServer(str(tmp_path / "state"), width=8,
                          scrub_interval=0.02)
    try:
        response, _ = send(server, {
            "cmd": "insert", "rule": rule_payload(1, "0/1", 5, "a", "b")})
        assert response["ok"]
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if server.scrubber.counters["steps"] > 0:
                break
            time.sleep(0.02)
        assert server.scrubber.counters["steps"] > 0
        # Serving continues while the scrubber ticks in the background.
        response, _ = send(server, {"cmd": "ping"})
        assert response["ok"]
    finally:
        server.close()
    assert not server._scrub_ticker.is_alive()
