"""Tests for latency statistics."""

import pytest

from repro.analysis.stats import fraction_below, percentile, summarize


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [5, 1, 9]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_sample(self):
        assert percentile([7], 99) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestFractionBelow:
    def test_basic(self):
        assert fraction_below([1, 2, 3, 4], 3) == 0.5

    def test_strict(self):
        assert fraction_below([3, 3, 3], 3) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fraction_below([], 1)


class TestSummarize:
    def test_keys_and_consistency(self):
        samples = [1e-6, 2e-6, 3e-6, 1e-3]
        summary = summarize(samples)
        assert summary["count"] == 4
        assert summary["min"] == 1e-6 and summary["max"] == 1e-3
        assert summary["mean"] == pytest.approx(sum(samples) / 4)
        assert summary["median"] == pytest.approx(2.5e-6)
        assert summary["frac_below_threshold"] == 0.75  # default 250us

    def test_custom_threshold(self):
        summary = summarize([1.0, 2.0], threshold=1.5)
        assert summary["frac_below_threshold"] == 0.5
        assert summary["threshold"] == 1.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
