"""Tests for text table rendering."""

import pytest

from repro.analysis.tables import render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("name", "n"), [("alpha", 1), ("b", 22)])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular
        assert "alpha" in lines[2]

    def test_title(self):
        text = render_table(("a",), [(1,)], title="Table 3")
        assert text.splitlines()[0] == "Table 3"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [(1,)])

    def test_empty_rows_ok(self):
        text = render_table(("a", "b"), [])
        assert "a" in text and "b" in text
