"""Tests for CDF computation and ASCII rendering."""

import pytest

from repro.analysis.cdf import ascii_cdf, cdf_at, cdf_points


class TestCdfPoints:
    def test_simple(self):
        assert cdf_points([1, 2, 3, 4]) == \
            [(1, 0.25), (2, 0.5), (3, 0.75), (4, 1.0)]

    def test_duplicates_collapse(self):
        points = cdf_points([1, 1, 2])
        assert points == [(1, 2 / 3), (2, 1.0)]

    def test_monotone_and_ends_at_one(self):
        points = cdf_points([5, 3, 9, 3, 7])
        fractions = [f for _v, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestCdfAt:
    def test_values(self):
        samples = [1, 2, 3, 4]
        assert cdf_at(samples, 0) == 0
        assert cdf_at(samples, 2) == 0.5
        assert cdf_at(samples, 10) == 1.0


class TestAsciiCdf:
    def test_renders_all_series(self):
        art = ascii_cdf({"fast": [1e-6, 2e-6], "slow": [1e-3, 2e-3]})
        assert "A = fast" in art and "B = slow" in art
        assert "CDF" in art

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_cdf({})
        with pytest.raises(ValueError):
            ascii_cdf({"zeros": [0.0]})

    def test_single_value_series(self):
        assert "A = only" in ascii_cdf({"only": [1e-5]})
