"""Tests for the markdown experiment-report writer."""

import pytest

from repro.analysis.report import ExperimentReport


class TestExperimentReport:
    def test_title_and_sections(self):
        report = ExperimentReport("My Report")
        report.section("Results", "Some body text.")
        text = report.render()
        assert text.startswith("# My Report\n")
        assert "## Results" in text
        assert "Some body text." in text

    def test_table_rendering(self):
        report = ExperimentReport("R")
        report.table(("a", "b"), [(1, 2), (3, 4)], caption="numbers")
        text = report.render()
        assert "| a | b |" in text
        assert "|---|---|" in text
        assert "| 3 | 4 |" in text
        assert "*numbers*" in text

    def test_table_width_validation(self):
        report = ExperimentReport("R")
        with pytest.raises(ValueError):
            report.table(("a", "b"), [(1,)])

    def test_shape_checks(self):
        report = ExperimentReport("R")
        report.shape_check("thing holds", True)
        report.shape_check("thing fails", False)
        report.end_checks()
        text = report.render()
        assert "- **[PASS]** thing holds" in text
        assert "- **[FAIL]** thing fails" in text

    def test_code_block(self):
        report = ExperimentReport("R")
        report.code_block("x = 1\n", language="python")
        assert "```python\nx = 1\n```" in report.render()

    def test_save(self, tmp_path):
        report = ExperimentReport("R")
        report.paragraph("hello")
        path = str(tmp_path / "out.md")
        assert report.save(path) == path
        with open(path) as handle:
            assert "hello" in handle.read()
