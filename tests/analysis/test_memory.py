"""Tests for deep memory accounting."""

from repro.analysis.memory import deep_size, format_bytes
from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule
from repro.structures import ptreap


class TestDeepSize:
    def test_counts_nested_containers(self):
        flat = deep_size([1])
        nested = deep_size([[1], [2], [3]])
        assert nested > flat

    def test_cycles_terminate(self):
        a = []
        a.append(a)
        assert deep_size(a) > 0

    def test_shared_objects_counted_once(self):
        shared = list(range(1000))
        assert deep_size([shared, shared]) < 2 * deep_size([shared])

    def test_slots_objects(self):
        rule = Rule.forward(0, 0, 16, 1, "s1", "s2")
        assert deep_size(rule) > deep_size(0)

    def test_persistent_sharing_visible(self):
        """Two owner maps sharing a treap cost barely more than one."""
        root = None
        for priority in range(200):
            root = ptreap.insert(root, (priority, 0), priority)
        one = deep_size({"a": {"s": root}})
        two = deep_size({"a": {"s": root}, "b": {"s": root}})
        assert two < one * 1.2

    def test_deltanet_grows_with_rules(self):
        net = DeltaNet(width=8)
        empty = deep_size(net)
        for rid in range(50):
            net.insert_rule(Rule.forward(rid, rid, rid + 10, rid, "s1", "s2"))
        assert deep_size(net) > empty


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(5 * 1024 * 1024) == "5.0 MiB"
        assert "GiB" in format_bytes(3 * 1024 ** 3)
