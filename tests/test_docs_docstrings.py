"""The documented-API bar: public surface of the serve/api modules.

CI additionally runs ruff's pydocstyle rules (D101/D102/D103) over the
same modules; this test enforces the identical bar inside the tier-1
suite, so the requirement holds even where ruff is not installed.
"""

import importlib
import inspect

import pytest

#: The modules the documentation bar covers (ISSUE 9 satellite): the
#: public API façade and the whole serving package.
DOCUMENTED_MODULES = [
    "repro.api.session",
    "repro.api.registry",
    "repro.serve",
    "repro.serve.stream",
    "repro.serve.sessions",
    "repro.serve.aio",
    "repro.serve.metrics",
]


def _public_members(container, module_name):
    for name, obj in vars(container).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented where they live
        yield name, obj


def _missing_docstrings(module):
    missing = []
    if not (module.__doc__ or "").strip():
        missing.append(module.__name__)
    for name, obj in _public_members(module, module.__name__):
        if inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
        elif inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
            for attr, member in vars(obj).items():
                if attr.startswith("_"):
                    continue
                target = None
                if inspect.isfunction(member):
                    target = member
                elif isinstance(member, property):
                    target = member.fget
                elif isinstance(member, (staticmethod, classmethod)):
                    target = member.__func__
                if target is not None and not (target.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}.{attr}")
    return missing


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_public_surface_is_documented(module_name):
    module = importlib.import_module(module_name)
    missing = _missing_docstrings(module)
    assert not missing, (
        f"public API without a docstring (the bar docs/architecture.md "
        f"promises): {', '.join(missing)}")
