"""Link checker over ``docs/*.md``: relative links and anchors resolve.

External (``http(s)://``) links are out of scope — CI must not depend
on the network — but every relative link must point at a real file,
and every fragment (``file.md#anchor``) at a real heading in it.
"""

import re
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"
REPO = DOCS.parent

#: [text](target) — excluding images; target split from an optional title.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def markdown_files():
    files = sorted(DOCS.glob("*.md"))
    assert files, f"no markdown files under {DOCS}"
    return files


def github_anchor(heading):
    """GitHub's anchor slug for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path):
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_anchor(match) for match in _HEADING.findall(text)}


def links_of(path):
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    return _LINK.findall(text)


@pytest.mark.parametrize("doc", markdown_files(),
                         ids=lambda path: path.name)
def test_relative_links_resolve(doc):
    broken = []
    for target in links_of(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part \
            else doc
        if not resolved.exists():
            broken.append(f"{target} -> missing file {resolved}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                broken.append(f"{target} -> no heading #{fragment} "
                              f"in {resolved.name}")
    assert not broken, f"{doc.name}: broken links:\n  " + \
        "\n  ".join(broken)


def test_docs_stay_inside_the_repository():
    for doc in markdown_files():
        for target in links_of(doc):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (doc.parent / target.partition("#")[0]).resolve()
            assert REPO in resolved.parents or resolved == REPO, (
                f"{doc.name}: {target} escapes the repository")


def test_index_links_every_document():
    index = (DOCS / "README.md").read_text(encoding="utf-8")
    missing = [path.name for path in markdown_files()
               if path.name != "README.md" and path.name not in index]
    assert not missing, f"docs/README.md does not link: {missing}"
