"""Failure injection and robustness: malformed inputs, misuse, recovery.

A verifier wired into a controller must survive garbage (truncated ops
files, out-of-order removals) without corrupting its state: after a
rejected operation, the data plane view must be exactly what it was.
"""

import io
import random

import pytest

from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule
from repro.datasets.format import Op, parse_line, read_ops
from repro.replay.engine import DeltaNetEngine, replay
from repro.veriflow.verifier import VeriflowRI

from tests.conftest import deltanet_label_intervals, random_rules


class TestMalformedOpsFiles:
    def test_truncated_insert_line(self):
        with pytest.raises(ValueError):
            parse_line("+\t1\ts1\ts2\t0")

    def test_garbage_kind(self):
        with pytest.raises(ValueError):
            parse_line("*\t1")

    def test_non_integer_fields(self):
        with pytest.raises(ValueError):
            parse_line("+\tx\ts1\ts2\t0\t4\t1")

    def test_invalid_interval_rejected_at_rule_construction(self):
        with pytest.raises(ValueError):
            parse_line("+\t1\ts1\ts2\t9\t4\t1")  # lo > hi

    def test_stream_with_bad_line_raises_cleanly(self):
        stream = io.StringIO("+\t0\ta\tb\t0\t4\t1\nBROKEN\n")
        with pytest.raises(ValueError):
            list(read_ops(stream))


class TestStateAfterRejectedOperations:
    def snapshot(self, net):
        return (deltanet_label_intervals(net), net.num_atoms, net.num_rules)

    def test_duplicate_insert_leaves_state_unchanged(self):
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(0, 0, 128, 1, "a", "b"))
        before = self.snapshot(net)
        with pytest.raises(ValueError):
            net.insert_rule(Rule.forward(0, 0, 64, 2, "a", "c"))
        assert self.snapshot(net) == before
        net.check_invariants()

    def test_unknown_removal_leaves_state_unchanged(self):
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(0, 0, 128, 1, "a", "b"))
        before = self.snapshot(net)
        with pytest.raises(KeyError):
            net.remove_rule(99)
        assert self.snapshot(net) == before
        net.check_invariants()

    def test_out_of_range_rule_rejected_before_any_mutation(self):
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(0, 0, 128, 1, "a", "b"))
        before = self.snapshot(net)
        bad = Rule.forward(1, 0, 1 << 20, 1, "a", "b")  # beyond 8-bit space
        with pytest.raises(ValueError):
            net.insert_rule(bad)
        assert self.snapshot(net) == before
        # The rejected rid stays usable for a corrected retry.
        net.insert_rule(Rule.forward(1, 0, 256, 1, "a", "b"))
        net.check_invariants()

    def test_veriflow_duplicate_and_unknown(self):
        veriflow = VeriflowRI(width=8)
        veriflow.insert_rule(Rule.forward(0, 0, 128, 1, "a", "b"))
        with pytest.raises(ValueError):
            veriflow.insert_rule(Rule.forward(0, 0, 64, 1, "a", "b"))
        with pytest.raises(KeyError):
            veriflow.remove_rule(7)
        assert veriflow.num_rules == 1


class TestRecoveryMidReplay:
    def test_replay_continues_after_engine_survives_bad_op(self):
        """A controller feed with one bogus removal: skip and continue."""
        rng = random.Random(5)
        rules = random_rules(rng, 20, width=8)
        ops = [Op.insert(r) for r in rules[:10]]
        ops.append(Op.remove(9999))            # bogus
        ops.extend(Op.insert(r) for r in rules[10:])
        engine = DeltaNetEngine(width=8)
        processed = failed = 0
        for op in ops:
            try:
                engine.process(op)
                processed += 1
            except KeyError:
                failed += 1
        assert failed == 1 and processed == 20
        engine.deltanet.check_invariants()

    def test_interleaved_duplicate_priorities_on_disjoint_rules(self):
        """Equal priorities are fine when rules don't overlap (§3.2 only
        requires distinct priorities for *overlapping* rules)."""
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(0, 0, 64, 5, "a", "b"))
        net.insert_rule(Rule.forward(1, 64, 128, 5, "a", "c"))
        assert net.flows_on(("a", "b")) == [(0, 64)]
        assert net.flows_on(("a", "c")) == [(64, 128)]
        net.check_invariants()

    def test_equal_priority_overlap_is_deterministic(self):
        """Outside the paper's assumption the tie-break (rule id) still
        yields deterministic, internally consistent state."""
        net = DeltaNet(width=8)
        net.insert_rule(Rule.forward(0, 0, 64, 5, "a", "b"))
        net.insert_rule(Rule.forward(1, 0, 64, 5, "a", "c"))
        assert net.flows_on(("a", "c")) == [(0, 64)]  # higher rid wins ties
        assert net.flows_on(("a", "b")) == []
        net.check_invariants()


class TestWidthVariants:
    def test_ipv6_width_end_to_end(self):
        net = DeltaNet(width=128)
        r1 = net.make_rule(0, "2001:db8::/32", 10, "s1", "s2")
        r2 = net.make_rule(1, "2001:db8:1::/48", 20, "s1", "s3")
        net.insert_rule(r1)
        net.insert_rule(r2)
        assert net.num_atoms >= 3
        lo, hi = r2.lo, r2.hi
        assert net.flows_on(("s1", "s3")) == [(lo, hi)]
        net.check_invariants()

    def test_tiny_width(self):
        net = DeltaNet(width=1)
        net.insert_rule(Rule.forward(0, 0, 1, 1, "a", "b"))
        net.insert_rule(Rule.forward(1, 1, 2, 1, "a", "c"))
        assert net.flows_on(("a", "b")) == [(0, 1)]
        assert net.flows_on(("a", "c")) == [(1, 2)]

    def test_full_space_rule_any_width(self):
        for width in (1, 8, 32, 128):
            net = DeltaNet(width=width)
            net.insert_rule(Rule.forward(0, 0, 1 << width, 1, "a", "b"))
            assert net.flows_on(("a", "b")) == [(0, 1 << width)]
