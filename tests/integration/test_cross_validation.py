"""Cross-validation: Delta-net vs Veriflow-RI vs APV vs brute force.

These are the repository's strongest correctness arguments: three
independently implemented verifiers (incremental atoms, trie+ECs,
minimal atomic predicates) and a naive recomputation oracle must agree
on every semantic question over randomized workloads, including full
dataset replays through the SDN emulation.
"""

import random

import pytest

from repro.apv.verifier import APVerifier
from repro.checkers.loops import find_forwarding_loops
from repro.checkers.reachability import reachable_atoms
from repro.checkers.whatif import link_failure_impact
from repro.core.deltanet import DeltaNet
from repro.core.intervals import IntervalSet, normalize
from repro.datasets.builders import build_airtel1, build_four_switch
from repro.veriflow.verifier import VeriflowRI

from tests.conftest import (
    BruteForceDataPlane, deltanet_label_intervals, random_rules,
)


@pytest.mark.parametrize("seed", range(5))
def test_three_verifiers_agree_on_random_workloads(seed):
    rng = random.Random(seed * 71)
    rules = random_rules(rng, 30, width=6, switches=4, drop_fraction=0.0)
    net = DeltaNet(width=6)
    veriflow = VeriflowRI(width=6)
    oracle = BruteForceDataPlane(width=6)
    for rule in rules:
        net.insert_rule(rule)
        veriflow.insert_rule(rule, check_loops=False)
        oracle.insert(rule)
    apv = APVerifier(rules, width=6)

    # 1. Labels match the oracle exactly.
    assert deltanet_label_intervals(net) == oracle.expected_labels()

    # 2. Reachability agrees between Delta-net and APV.
    for src in ("s0", "s1", "s2"):
        for dst in ("s1", "s2", "s3"):
            if src == dst:
                continue
            atoms = reachable_atoms(net, src, dst)
            deltanet_space = IntervalSet(
                net.atoms.atom_interval(a) for a in atoms)
            assert apv.reachable(src, dst) == deltanet_space

    # 3. What-if affected space agrees between Delta-net and Veriflow-RI.
    for link in list(net.label)[:5]:
        impact = link_failure_impact(net, link)
        delta_space = normalize(net.atoms.atom_interval(a)
                                for a in impact.affected_atoms)
        veriflow_space = normalize(
            g.interval for g in veriflow.whatif_link_failure(link))
        assert delta_space == veriflow_space


@pytest.mark.parametrize("seed", range(3))
def test_churn_equivalence_between_deltanet_and_veriflow(seed):
    """Insert/remove interleavings leave both with the same data plane."""
    rng = random.Random(seed * 13 + 7)
    net = DeltaNet(width=6)
    veriflow = VeriflowRI(width=6)
    oracle = BruteForceDataPlane(width=6)
    live = []
    for rule in random_rules(rng, 60, width=6, switches=4, drop_fraction=0.1):
        if live and rng.random() < 0.45:
            victim = live.pop(rng.randrange(len(live)))
            net.remove_rule(victim.rid)
            veriflow.remove_rule(victim.rid, check_loops=False)
            oracle.remove(victim.rid)
        net.insert_rule(rule)
        veriflow.insert_rule(rule, check_loops=False)
        oracle.insert(rule)
        live.append(rule)
    assert deltanet_label_intervals(net) == oracle.expected_labels()
    # Spot-check Veriflow's view: per segment, the matched next hop at
    # every switch equals the oracle's.
    for lo, _hi in oracle.segments():
        for switch in oracle.sources():
            expected = oracle.owner_at(switch, lo)
            got = veriflow.match_at(switch, lo)
            assert (got.rid if got else None) == \
                (expected.rid if expected else None)


def test_dataset_replay_consistency_4switch():
    """Replaying an SDN-generated dataset leaves Delta-net's edge-labelled
    graph equivalent to the flow tables the controller holds."""
    dataset = build_four_switch(scale=0.3, rounds=1)
    net = DeltaNet()
    oracle = BruteForceDataPlane(width=32)
    for op in dataset.ops:
        assert op.is_insert
        net.insert_rule(op.rule)
        oracle.insert(op.rule)
    assert deltanet_label_intervals(net) == oracle.expected_labels()


def test_dataset_replay_consistency_airtel_with_failures():
    dataset = build_airtel1(scale=0.2)
    net = DeltaNet(gc=True)
    oracle = BruteForceDataPlane(width=32)
    for op in dataset.ops:
        if op.is_insert:
            net.insert_rule(op.rule)
            oracle.insert(op.rule)
        else:
            net.remove_rule(op.rid)
            oracle.remove(op.rid)
    assert deltanet_label_intervals(net) == oracle.expected_labels()
    # SDN-IP reroute churn must never leave a persistent forwarding loop.
    assert find_forwarding_loops(net) == []
