"""End-to-end scenario tests: the full Figure 7 pipeline in one place.

BGP peers -> RIB -> SDN-IP -> (OpenFlow) controller -> Delta-net, with
per-update loop checking, steady-state intent verification, what-if
sweeps, and Algorithm 3 — the complete workflow a network operator would
run, exercised as one story per test.
"""

import pytest

from repro.bgp.prefixes import PrefixPool
from repro.bgp.updates import UpdateStream
from repro.checkers.allpairs import all_pairs_reachability, loops_from_closure
from repro.checkers.blackholes import find_blackholes
from repro.checkers.intents import check_intents
from repro.checkers.loops import LoopChecker, find_forwarding_loops
from repro.checkers.whatif import link_failure_impact
from repro.core.deltanet import DeltaNet
from repro.sdn.controller import Controller
from repro.sdn.events import EventInjector
from repro.sdn.sdnip import SdnIp
from repro.topology.generators import airtel


@pytest.fixture(scope="module")
def deployment():
    """A verified SDN-IP deployment over the Airtel topology."""
    topology = airtel()
    controller = Controller(topology)
    net = DeltaNet(gc=True)
    checker = LoopChecker(net)
    transient_loops = []

    def verify(op):
        if op.is_insert:
            delta = net.insert_rule(op.rule)
        else:
            delta = net.remove_rule(op.rid)
        transient_loops.extend(checker.check_update(delta))

    controller.subscribe(verify)
    peers = {f"bgp{i}": i for i in range(topology.num_nodes)}
    sdnip = SdnIp(controller, peers)
    stream = UpdateStream(list(peers), PrefixPool(seed=77),
                          prefixes_per_peer=4, seed=77)
    sdnip.handle_updates(stream.initial_announcements())
    return controller, sdnip, net, peers, transient_loops


class TestSteadyState:
    def test_data_plane_mirrors_controller(self, deployment):
        controller, _sdnip, net, _peers, _loops = deployment
        assert net.num_rules == controller.num_installed > 0

    def test_no_steady_state_loops(self, deployment):
        _c, _s, net, _p, _loops = deployment
        assert find_forwarding_loops(net) == []

    def test_no_blackholes_besides_peers(self, deployment):
        _c, _s, net, peers, _loops = deployment
        holes = find_blackholes(net, expected_sinks=set(peers))
        assert holes == {}

    def test_intents_hold(self, deployment):
        _c, sdnip, net, peers, _loops = deployment
        assert check_intents(net, sdnip.rib, peers) == []

    def test_algorithm3_diagonal_clean(self, deployment):
        _c, _s, net, _p, _loops = deployment
        closure = all_pairs_reachability(net)
        assert loops_from_closure(closure) == {}


class TestOperationalQueries:
    def test_every_link_failure_query_answers(self, deployment):
        _c, _s, net, _p, _loops = deployment
        for link in list(net.label)[:20]:
            impact = link_failure_impact(net, link)
            assert impact.num_affected_flows == len(net.label_of(link))

    def test_failure_campaign_keeps_invariants(self, deployment):
        controller, sdnip, net, peers, _loops = deployment
        injector = EventInjector(sdnip)
        # Fail/recover a handful of links (full sweep covered elsewhere).
        for u, v in injector._inter_switch_links()[:4]:
            injector.fail(u, v)
            assert check_intents(net, sdnip.rib, peers) == []
            injector.recover(u, v)
        assert check_intents(net, sdnip.rib, peers) == []
        assert find_forwarding_loops(net) == []
        assert net.num_rules == controller.num_installed
