"""Chaos plans and the crash-replay harness.

The harness's contract: faults cost recovery time, never correctness —
after every injected crash, torn tail or killed worker, the delivered
per-op violation stream still equals the fault-free sweep oracle's.
"""

from repro.faults.chaos import (
    CHAOS_KINDS, CHECKPOINT_WINDOWS, ChaosPlan, FaultEvent, _tear_journal,
    chaos_replay,
)
from repro.scenarios import SweepOracle, build_scenario, diff_streams
from repro.scenarios.runner import run_chaos_scenario


def small_scenario(seed=3):
    return build_scenario("table-fill", seed=seed, scale=0.25)


class TestChaosPlan:
    def test_same_seed_same_plan(self):
        assert (ChaosPlan.random(11, 200).events
                == ChaosPlan.random(11, 200).events)

    def test_different_seeds_differ(self):
        plans = {tuple(ChaosPlan.random(seed, 500, faults=6).events)
                 for seed in range(8)}
        assert len(plans) > 1

    def test_state_roundtrip(self):
        plan = ChaosPlan.random(7, 300, faults=6)
        clone = ChaosPlan.from_state(plan.to_state())
        assert clone.seed == plan.seed and clone.events == plan.events

    def test_events_stay_in_range_and_known(self):
        plan = ChaosPlan.random(5, 40, faults=10)
        assert len(plan.events) == 10
        for event in plan.events:
            assert 0 <= event.op_index < 40
            assert event.kind in CHAOS_KINDS
            if event.kind == "checkpoint-crash":
                assert event.detail in CHECKPOINT_WINDOWS

    def test_more_faults_than_ops_is_clamped(self):
        assert len(ChaosPlan.random(1, 3, faults=10).events) == 3

    def test_describe_mentions_every_event(self):
        plan = ChaosPlan(seed=1, events=[
            FaultEvent(op_index=4, kind="torn-tail"),
            FaultEvent(op_index=9, kind="checkpoint-crash", shard=1,
                       detail="journal-tmp")])
        text = plan.describe()
        assert "torn-tail" in text and "journal-tmp" in text


class TestTearJournal:
    def test_refuses_missing_or_empty_journal(self, tmp_path):
        assert not _tear_journal(str(tmp_path / "absent.bin"))

    def test_tears_the_last_record(self, tmp_path):
        from repro.core.rules import Rule
        from repro.datasets.format import Op
        from repro.persist.journal import Journal, read_journal

        path = str(tmp_path / "journal.bin")
        journal = Journal.create(path, 0)
        for index in range(3):
            journal.append(Op.insert(Rule.forward(
                index, 0, 16, 1, "a", "b")), index + 1)
        journal.close()
        assert _tear_journal(path)
        data = read_journal(path)
        assert data.torn
        assert [seq for seq, _ in data.records] == [1, 2]


class TestChaosReplay:
    def test_durability_faults_preserve_the_stream(self, tmp_path):
        scenario = small_scenario()
        oracle = SweepOracle(scenario.property_specs, width=scenario.width)
        oracle_stream = oracle.stream(scenario.ops)
        plan = ChaosPlan(seed=0, events=[
            FaultEvent(op_index=9, kind="crash-recover"),
            FaultEvent(op_index=17, kind="torn-tail"),
            FaultEvent(op_index=23, kind="checkpoint-crash",
                       detail="tmp-written"),
            FaultEvent(op_index=29, kind="checkpoint-crash",
                       detail="snapshot-renamed"),
            FaultEvent(op_index=34, kind="checkpoint-crash",
                       detail="journal-tmp"),
        ])
        run = chaos_replay(scenario, "deltanet", plan, str(tmp_path / "s"),
                           checkpoint_every=10)
        assert run.error is None
        assert run.chaos["recoveries"] == 5
        assert diff_streams("deltanet", scenario.ops, oracle_stream,
                            run.delivered) == []

    def test_process_faults_are_skipped_without_workers(self, tmp_path):
        scenario = small_scenario()
        plan = ChaosPlan(seed=0, events=[
            FaultEvent(op_index=5, kind="kill-worker"),
            FaultEvent(op_index=11, kind="blackhole-pipe")])
        run = chaos_replay(scenario, "deltanet", plan, str(tmp_path / "s"))
        assert run.error is None
        assert run.chaos["recoveries"] == 0
        assert len(run.chaos["skipped"]) == 2

    def test_event_past_the_trace_end_still_fires(self, tmp_path):
        scenario = small_scenario()
        plan = ChaosPlan(seed=0, events=[
            FaultEvent(op_index=10 ** 9, kind="crash-recover")])
        run = chaos_replay(scenario, "deltanet", plan, str(tmp_path / "s"))
        assert run.error is None
        assert run.chaos["recoveries"] == 1

    def test_run_chaos_scenario_diffs_against_fault_free_oracle(
            self, tmp_path):
        scenario = small_scenario()
        plan = ChaosPlan.random(scenario.seed, scenario.num_ops, faults=3,
                                kinds=("crash-recover", "torn-tail",
                                       "checkpoint-crash"))
        report = run_chaos_scenario(scenario, ["deltanet", "sharded"],
                                    plan, str(tmp_path))
        assert report.ok, report.describe()
        for run in report.runs:
            assert run.chaos is not None
            assert run.chaos["plan"] == plan.to_state()

    def test_worker_kills_on_the_parallel_backend(self, tmp_path):
        scenario = small_scenario()
        plan = ChaosPlan(seed=0, events=[
            FaultEvent(op_index=8, kind="kill-worker", shard=1),
            FaultEvent(op_index=20, kind="kill-worker-midflight"),
            FaultEvent(op_index=26, kind="blackhole-pipe")])
        run = chaos_replay(scenario, "parallel", plan, str(tmp_path / "s"),
                           shards=2, deadline=10.0)
        assert run.error is None, run.error
        oracle = SweepOracle(scenario.property_specs, width=scenario.width)
        assert diff_streams("parallel", scenario.ops,
                            oracle.stream(scenario.ops),
                            run.delivered) == []
        assert run.chaos["injected"], "no fault actually landed"
