"""The fault injector: arming, matching, and the stock actions."""

import pytest

from repro.faults.injector import (
    DropMessage, Fault, FaultInjector, InjectedCrash, crash, delay, drop,
    fire, installed, kill_endpoint,
)


class TestFirePoint:
    def test_noop_when_nothing_installed(self):
        # The production path: a bare global read, no effect.
        fire("store.checkpoint.tmp-written", sequence=7)

    def test_installed_scopes_the_injector(self):
        injector = FaultInjector([Fault("p", crash)])
        with installed(injector):
            with pytest.raises(InjectedCrash):
                fire("p")
        fire("p")  # uninstalled again: back to a no-op

    def test_installed_nests_and_restores(self):
        outer, inner = FaultInjector(), FaultInjector()
        with installed(outer):
            with installed(inner):
                fire("p", shard=1)
            fire("p", shard=2)
        assert [ctx["shard"] for _pt, ctx in inner.fired] == []
        assert inner.faults == [] and outer.faults == []


class TestFaultMatching:
    def test_triggers_on_nth_hit_only(self):
        fault = Fault("p", crash, at=3)
        injector = FaultInjector([fault])
        injector.fire("p")
        injector.fire("p")
        assert fault.triggered == 0
        with pytest.raises(InjectedCrash):
            injector.fire("p")
        # once=True (the default): disarmed after the trigger.
        injector.fire("p")
        assert fault.triggered == 1
        assert fault.hits == 4

    def test_every_hit_when_not_once(self):
        fault = Fault("p", lambda ctx: None, at=2, once=False)
        injector = FaultInjector([fault])
        for _ in range(4):
            injector.fire("p")
        assert fault.triggered == 3  # hits 2, 3, 4

    def test_shard_restriction(self):
        fault = Fault("p", crash, shard=2)
        injector = FaultInjector([fault])
        injector.fire("p", shard=0)
        injector.fire("p", shard=1)
        assert fault.hits == 0
        with pytest.raises(InjectedCrash):
            injector.fire("p", shard=2)

    def test_point_names_are_exact(self):
        injector = FaultInjector([Fault("parallel.pipe.send", crash)])
        injector.fire("parallel.pipe.sent", shard=0)  # different point
        assert injector.fired == []

    def test_fired_log_keeps_scalars_only(self):
        injector = FaultInjector([Fault("p", lambda ctx: None)])
        injector.fire("p", shard=3, endpoint=object(), note="x")
        (point, context), = injector.fired
        assert point == "p"
        assert context == {"point": "p", "shard": 3, "note": "x"}


class TestStockActions:
    def test_crash_is_not_swallowed_by_except_exception(self):
        # The whole point of InjectedCrash deriving from BaseException:
        # recovery code under test catches Exception, and must not be
        # able to absorb a simulated kill -9.
        with pytest.raises(InjectedCrash):
            try:
                crash({"point": "p"})
            except Exception:  # pragma: no cover - must not run
                pytest.fail("recovery code swallowed the injected crash")

    def test_drop_is_an_ordinary_exception(self):
        # Pipe-send fault points catch DropMessage deliberately.
        with pytest.raises(DropMessage):
            drop({"point": "p"})
        assert issubclass(DropMessage, Exception)

    def test_delay_returns_a_sleeper(self):
        delay(0.0)({"point": "p"})  # returns, no raise

    def test_kill_endpoint_without_process_is_a_noop(self):
        kill_endpoint({"point": "p"})
        kill_endpoint({"point": "p", "endpoint": object()})
