"""Corruption plans and the corruption-replay harness.

The contract is stricter than chaos: a flipped snapshot or journal byte
may cost a rebuild, a desynchronized shard may cost a scrub-and-repair
cycle, but the delivered per-op violation stream must still equal the
fault-free sweep oracle's — loud failure or correct answers, never a
silently wrong stream.
"""

import random

import pytest

from repro.faults import (
    CORRUPTION_KINDS, ChaosPlan, FaultEvent, corruption_plan,
    corruption_replay,
)
from repro.faults.corruption import flip_byte
from repro.scenarios import SweepOracle, build_scenario, diff_streams
from repro.scenarios.runner import run_corruption_scenario


def small_scenario(seed=3):
    return build_scenario("table-fill", seed=seed, scale=0.25)


class TestPlansAndPrimitives:
    def test_corruption_plan_uses_corruption_kinds(self):
        plan = corruption_plan(9, 60, faults=8)
        assert plan.events
        assert all(event.kind in CORRUPTION_KINDS for event in plan.events)
        assert corruption_plan(9, 60, faults=8).events == plan.events

    def test_flip_byte_changes_exactly_one_bit(self, tmp_path):
        path = str(tmp_path / "blob.bin")
        original = bytes(range(200))
        with open(path, "wb") as stream:
            stream.write(original)
        offset = flip_byte(path, random.Random(5))
        mutated = open(path, "rb").read()
        assert 0 <= offset < len(original)
        assert len(mutated) == len(original)
        delta = [i for i in range(len(original))
                 if mutated[i] != original[i]]
        assert delta == [offset]
        assert bin(mutated[offset] ^ original[offset]).count("1") == 1

    def test_flip_byte_on_empty_region_reports_miss(self, tmp_path):
        path = str(tmp_path / "empty.bin")
        open(path, "wb").close()
        assert flip_byte(path, random.Random(0)) == -1


class TestCorruptionReplay:
    def test_file_corruption_never_corrupts_the_stream(self, tmp_path):
        scenario = small_scenario()
        oracle = SweepOracle(scenario.property_specs, width=scenario.width)
        oracle_stream = oracle.stream(scenario.ops)
        plan = ChaosPlan(seed=0, events=[
            FaultEvent(op_index=8, kind="flip_snapshot_byte"),
            FaultEvent(op_index=16, kind="flip_journal_payload"),
            FaultEvent(op_index=27, kind="flip_snapshot_byte"),
        ])
        run = corruption_replay(scenario, "deltanet", plan,
                                str(tmp_path / "s"), checkpoint_every=10)
        assert run.error is None, run.error
        assert run.chaos["injected"], "no corruption actually landed"
        assert (run.chaos["recoveries"] + run.chaos["rebuilds"]) >= 1
        assert diff_streams("deltanet", scenario.ops, oracle_stream,
                            run.delivered) == []

    def test_desync_is_repaired_and_stream_matches_oracle(self, tmp_path):
        # The acceptance scenario: an injected desync on the parallel
        # backend must be caught by the scrubber within one pass,
        # repaired via re-seed, and the post-repair stream must match
        # the fault-free oracle byte for byte.
        scenario = small_scenario(seed=5)
        plan = ChaosPlan(seed=0, events=[
            FaultEvent(op_index=scenario.num_ops // 2,
                       kind="desync_shard", shard=0)])
        run = corruption_replay(scenario, "parallel", plan,
                                str(tmp_path / "s"), shards=2,
                                force_inline=True, deadline=10.0)
        assert run.error is None, run.error
        assert run.chaos["repairs"] >= 1
        oracle = SweepOracle(scenario.property_specs, width=scenario.width)
        assert diff_streams("parallel", scenario.ops,
                            oracle.stream(scenario.ops),
                            run.delivered) == []

    def test_run_corruption_scenario_reports_ok(self, tmp_path):
        scenario = small_scenario(seed=7)
        plan = corruption_plan(scenario.seed, scenario.num_ops, faults=3)
        report = run_corruption_scenario(scenario, ["deltanet"], plan,
                                         str(tmp_path))
        assert report.ok, report.describe()
        for run in report.runs:
            assert run.chaos is not None
            assert run.chaos["plan"] == plan.to_state()


class TestFrameMutation:
    def test_protocol_surface_holds_under_mutation(self, tmp_path):
        from repro.fuzz.frames import frame_mutation_trial

        scenario = small_scenario(seed=11)
        problems = frame_mutation_trial(scenario, "deltanet",
                                        str(tmp_path / "frames"),
                                        random.Random(11),
                                        mutation_rate=0.5)
        assert problems == []


class TestCorruptFuzzCampaign:
    def test_small_campaign_is_clean(self, tmp_path):
        from repro.fuzz import fuzz

        report = fuzz(budget=2, seed=17, backends=["deltanet"],
                      corrupt=True)
        assert report.ok, report.describe()
        assert report.corrupt
        assert report.frame_trials == 2

    def test_chaos_and_corrupt_are_exclusive(self):
        from repro.fuzz import fuzz

        with pytest.raises(ValueError):
            fuzz(budget=1, chaos=True, corrupt=True)
