"""The unified Query API: typed queries, envelopes, codecs, and shims.

The redesign's contract in executable form: every backend answers the
four first-class queries through ``session.query`` with one uniform
:class:`~repro.query.QueryResult` envelope, the legacy per-method
surface (``flows_on`` / ``reachable`` / ``what_if_link_down`` /
``find_loops``) still returns bit-identical values while warning, and
the wire codecs round-trip every query type.
"""

import warnings

import pytest

from repro.api import (
    FlowsOn, LinkDown, Loops, QueryResult, Reachable, VerificationSession,
    available_backends, query_from_payload, query_to_payload,
)
from repro.core.rules import Rule
from repro.query import QUERY_KINDS, QueryPayloadError, as_link

ALL = sorted(available_backends())
WIDTH = 8


def _spans(value):
    """Normalize a spans container (each backend keeps its native type)."""
    return tuple(tuple(span) for span in value)


def _options(backend):
    return {"force_inline": True, "shards": 2} if backend == "parallel" else {}


def ring_session(backend):
    """Three rules: a ring on [0, 128) once rid 3 closes it, plus a
    disjoint a->c span on [128, 256)."""
    session = VerificationSession(backend, width=WIDTH, **_options(backend))
    session.insert(Rule.forward(0, 0, 128, 1, "a", "b"))
    session.insert(Rule.forward(1, 0, 128, 1, "b", "c"))
    session.insert(Rule.forward(2, 128, 256, 1, "a", "c"))
    return session


class TestTypedQueries:
    @pytest.mark.parametrize("backend", ALL)
    def test_flows_on_envelope(self, backend):
        session = ring_session(backend)
        result = session.query(FlowsOn(("a", "b")))
        assert isinstance(result, QueryResult)
        assert result.kind == "flows_on"
        assert result.backend == backend
        assert _spans(result.spans) == ((0, 128),)
        assert not result.violations
        assert result.seconds >= 0
        session.close()

    @pytest.mark.parametrize("backend", ALL)
    def test_reachable_and_link_down(self, backend):
        session = ring_session(backend)
        assert _spans(session.query(Reachable("a", "c")).spans) \
            == ((0, 256),)
        down = session.query(LinkDown(("a", "c")))
        assert down.kind == "link_down"
        assert _spans(down.spans) == ((128, 256),)
        session.close()

    @pytest.mark.parametrize("backend", ALL)
    def test_loops_query_reports_cycle(self, backend):
        session = ring_session(backend)
        assert not session.query(Loops()).violations
        session.insert(Rule.forward(3, 0, 128, 1, "c", "a"))
        cycles = session.query(Loops()).violations
        assert len(cycles) == 1
        assert set(cycles[0]) == {"a", "b", "c"}
        session.close()

    def test_deltanet_fills_atom_currency(self):
        session = ring_session("deltanet")
        result = session.query(LinkDown(("a", "b")))
        assert result.atoms is not None and len(result.atoms) >= 1
        assert result.subgraph is not None
        for link, atoms in result.subgraph.items():
            assert isinstance(link, tuple) and len(link) == 2
            assert set(atoms) <= set(result.atoms)
        session.close()

    def test_generic_backends_leave_atoms_none(self):
        session = ring_session("veriflow")
        result = session.query(LinkDown(("a", "b")))
        assert result.atoms is None and result.subgraph is None
        session.close()

    def test_unknown_query_type_is_an_error(self):
        session = ring_session("deltanet")
        with pytest.raises(TypeError):
            session.query("loops")
        session.close()


class TestDeprecatedShims:
    """The old surface: identical answers, loud DeprecationWarning."""

    @pytest.mark.parametrize("backend", ALL)
    def test_shims_match_query_results(self, backend):
        session = ring_session(backend)
        session.insert(Rule.forward(3, 0, 128, 1, "c", "a"))
        links = sorted(set(session.links()), key=repr)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for link in links:
                assert session.flows_on(link) \
                    == session.query(FlowsOn(link)).spans
                assert session.what_if_link_down(link) \
                    == session.query(LinkDown(link)).spans
            assert session.reachable("a", "c") \
                == session.query(Reachable("a", "c")).spans
            assert sorted(session.find_loops()) \
                == sorted(session.query(Loops()).violations)
        session.close()

    @pytest.mark.parametrize(
        "call", [lambda s: s.flows_on(("a", "b")),
                 lambda s: s.reachable("a", "c"),
                 lambda s: s.what_if_link_down(("a", "b")),
                 lambda s: s.find_loops()])
    def test_shims_warn(self, call):
        session = ring_session("deltanet")
        with pytest.warns(DeprecationWarning):
            call(session)
        session.close()


class TestWireCodecs:
    @pytest.mark.parametrize(
        "query", [FlowsOn(as_link(("a", "b"))), Reachable("a", "c"),
                  LinkDown(as_link(("a", "b"))),
                  LinkDown(as_link(("a", "b")), loops=True), Loops()])
    def test_round_trip(self, query):
        payload = query_to_payload(query)
        assert payload["kind"] in QUERY_KINDS.values()
        assert query_from_payload(payload) == query

    def test_bad_payloads_raise(self):
        for payload in ({}, {"kind": "nope"}, {"kind": "flows_on"},
                        {"kind": "reachable", "src": "a"}, "loops", 7):
            with pytest.raises(QueryPayloadError):
                query_from_payload(payload)

    def test_result_payload_shape(self):
        session = ring_session("deltanet")
        payload = session.query(LinkDown(("a", "b"))).to_payload()
        assert payload["kind"] == "link_down"
        assert payload["backend"] == "deltanet"
        assert payload["spans"] == [[0, 128]]
        assert isinstance(payload["micros"], int)
        session.close()
