"""Registry round-trip: names resolve, typos fail helpfully."""

import pytest

from repro.api import (
    BackendAdapter, UnknownBackendError, VerificationSession,
    available_backends, backend_description, create_backend,
    register_backend, unregister_backend,
)
from repro.core.rules import Rule

FIVE = ("apv", "deltanet", "netplumber", "sharded", "veriflow")


class TestAvailableBackends:
    def test_lists_all_five(self):
        assert set(FIVE) <= set(available_backends())

    def test_sorted(self):
        names = available_backends()
        assert list(names) == sorted(names)

    def test_descriptions_nonempty(self):
        for name in FIVE:
            assert backend_description(name)


class TestCreateBackend:
    @pytest.mark.parametrize("name", FIVE)
    def test_round_trip(self, name):
        backend = create_backend(name, width=8)
        assert isinstance(backend, BackendAdapter)
        assert backend.name == name
        assert backend.width == 8
        backend.insert(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        assert backend.num_rules == 1
        assert backend.flows_on(("s1", "s2")) == [(0, 16)]

    def test_unknown_name_raises_with_suggestion(self):
        with pytest.raises(UnknownBackendError, match="deltanet"):
            create_backend("deltane")

    def test_unknown_name_lists_available(self):
        with pytest.raises(UnknownBackendError, match="available"):
            create_backend("no-such-backend-at-all")

    def test_unknown_is_a_value_error(self):
        with pytest.raises(ValueError):
            VerificationSession("nope")

    def test_options_forwarded(self):
        backend = create_backend("sharded", width=8, shards=2)
        assert backend.native.num_shards == 2
        gc = create_backend("deltanet", width=8, gc=True)
        assert gc.native.gc is True


class TestRegisterBackend:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("deltanet")(type("X", (), {}))

    def test_custom_registration_and_removal(self):
        @register_backend("test-custom")
        class Custom(BackendAdapter):  # pragma: no cover - trivial
            def _do_insert(self, rule):
                raise NotImplementedError

            def _do_remove(self, rule):
                raise NotImplementedError

            def links(self):
                return []

            def flows_on(self, link):
                return []

            def reachable(self, src, dst):
                return []

            def find_loops(self):
                return []

        try:
            assert "test-custom" in available_backends()
            assert Custom.name == "test-custom"
        finally:
            unregister_backend("test-custom")
        assert "test-custom" not in available_backends()


class TestUniformErrors:
    @pytest.mark.parametrize("name", FIVE)
    def test_duplicate_rid(self, name):
        backend = create_backend(name, width=8)
        backend.insert(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        with pytest.raises(ValueError, match="duplicate"):
            backend.insert(Rule.forward(0, 0, 8, 2, "s1", "s3"))

    @pytest.mark.parametrize("name", FIVE)
    def test_unknown_rid(self, name):
        backend = create_backend(name, width=8)
        with pytest.raises(KeyError):
            backend.remove(99)


class _SameRepr:
    """Distinct node objects whose reprs collide (regression fixture)."""

    def __repr__(self):
        return "node"


class TestCanonicalCycle:
    def test_rotation_invariant_under_repr_collisions(self):
        from repro.api.registry import canonical_cycle

        a, b = _SameRepr(), _SameRepr()
        cycle = (a, b, "z")
        rotations = [cycle[i:] + cycle[:i] for i in range(len(cycle))]
        assert len({canonical_cycle(rotation) for rotation in rotations}) == 1
