"""The batched update path through the unified API.

``BackendAdapter.apply_batch`` must land every backend in exactly the
state that per-op updates produce, ``VerificationSession.apply_batch``
must deliver the same property verdicts as per-op sessions (modulo
transient violations that an aggregated batch legitimately cancels), and
the batched replay path must agree with sequential replay end-state.
"""

import random

import pytest

from repro.api import (
    BackendBatch, LoopProperty, VerificationSession, available_backends,
    create_backend,
)
from repro.core.intervals import IntervalSet
from repro.core.rules import Rule

from tests.conftest import random_rules


def backend_flow_state(backend):
    return {link: tuple(backend.flows_on(link))
            for link in backend.links() if backend.flows_on(link)}


def make_workload(seed, count=24):
    rng = random.Random(seed)
    rules = random_rules(rng, count, width=8, switches=4, drop_fraction=0.1)
    removals = [rules[i].rid for i in
                rng.sample(range(count), count // 4)]
    return rules, removals


NATIVE_BATCH = ("deltanet", "sharded", "parallel")
FALLBACK = ("veriflow", "apv", "netplumber")


class TestBackendApplyBatch:
    @pytest.mark.parametrize("name", sorted(available_backends()))
    def test_matches_per_op_state(self, name):
        options = {"force_inline": True} if name == "parallel" else {}
        rules, removals = make_workload(3, count=18)
        sequential = create_backend(name, width=8, **options)
        batched = create_backend(name, width=8, **options)
        for rule in rules:
            sequential.insert(rule)
        for rid in removals:
            sequential.remove(rid)
        batched.apply_batch(rules)          # one insert batch
        batched.apply_batch((), removals)   # one removal batch
        assert backend_flow_state(sequential) == backend_flow_state(batched)
        assert sequential.rules() == batched.rules()
        assert sorted(map(repr, sequential.find_loops())) == \
            sorted(map(repr, batched.find_loops()))
        sequential.close(), batched.close()

    @pytest.mark.parametrize("name", NATIVE_BATCH)
    def test_native_batch_capability(self, name):
        options = {"force_inline": True} if name == "parallel" else {}
        backend = create_backend(name, width=8, **options)
        assert backend.supports_batch
        backend.close()

    @pytest.mark.parametrize("name", FALLBACK)
    def test_fallback_batch_capability(self, name):
        backend = create_backend(name, width=8)
        assert not backend.supports_batch
        batch = backend.apply_batch(
            [Rule.forward(0, 0, 64, 1, "a", "b")])
        assert isinstance(batch, BackendBatch)
        assert backend.num_rules == 1

    def test_sharded_nocheck_reports_loops_none(self):
        """check_loops=False must report loops=None (sweep-fallback
        signal), and --no-check must actually reach the backend."""
        backend = create_backend("sharded", width=8, check_loops=False)
        update = backend.insert(Rule.forward(0, 0, 64, 1, "a", "b"))
        assert update.loops is None
        from repro.replay.engine import SessionEngine

        engine = SessionEngine("sharded", width=8, check_loops=False)
        assert engine.session.backend._check_loops is False

    def test_batch_validation_rejects_upfront(self):
        backend = create_backend("deltanet", width=8)
        backend.insert(Rule.forward(0, 0, 16, 1, "a", "b"))
        with pytest.raises(ValueError):
            backend.apply_batch([Rule.forward(0, 0, 8, 2, "a", "c")])
        with pytest.raises(KeyError):
            backend.apply_batch((), [5])
        assert backend.num_rules == 1

    def test_remove_and_reinsert_same_rid_in_one_batch(self):
        backend = create_backend("deltanet", width=8)
        backend.insert(Rule.forward(3, 0, 32, 1, "a", "b"))
        batch = backend.apply_batch(
            [Rule.forward(3, 0, 32, 1, "a", "c")], [3])
        assert [(u.rid, u.inserted) for u in batch.updates] == \
            [(3, False), (3, True)]
        assert backend.rules()[3].target == "c"


class TestSessionApplyBatch:
    def test_loop_violation_delivered_once_per_batch(self):
        session = VerificationSession("deltanet", width=8,
                                      properties=(LoopProperty(),))
        rules = [Rule.forward(i, 0, 256, 1, f"s{i}", f"s{(i + 1) % 3}")
                 for i in range(3)]
        result = session.apply_batch(rules)
        assert result.num_ops == 3
        assert len(result.violations) == 1
        assert result.latency > 0
        # per-op records carry the amortized batch time
        assert all(op.seconds == result.ops[0].seconds for op in result.ops)

    def test_end_state_matches_per_op_session(self):
        rules, removals = make_workload(7)
        one_by_one = VerificationSession("deltanet", width=8,
                                         properties=(LoopProperty(),))
        batched = VerificationSession("deltanet", width=8,
                                      properties=(LoopProperty(),))
        for rule in rules:
            one_by_one.insert(rule)
        for rid in removals:
            one_by_one.remove(rid)
        batched.apply_batch(rules)
        batched.apply_batch((), removals)
        for link in one_by_one.links():
            assert batched.flows_on(link) == one_by_one.flows_on(link)
        assert sorted(map(repr, batched.find_loops())) == \
            sorted(map(repr, one_by_one.find_loops()))
        assert batched.find_blackholes() == one_by_one.find_blackholes()

    def test_merged_delta_reaches_the_result(self):
        session = VerificationSession("deltanet", width=8)
        result = session.apply_batch(
            [Rule.forward(0, 0, 64, 1, "a", "b"),
             Rule.forward(1, 0, 64, 9, "a", "b")])
        assert result.delta is not None
        spans = IntervalSet()
        for atoms in result.delta.added.values():
            spans |= IntervalSet(
                session.native.atoms.atom_interval(a) for a in atoms)
        assert spans.spans == [(0, 64)]

    def test_apply_batch_inside_batch_rejected(self):
        session = VerificationSession("deltanet", width=8)
        with session.batch():
            with pytest.raises(RuntimeError):
                session.apply_batch([Rule.forward(0, 0, 8, 1, "a", "b")])

    def test_duck_typed_backend_without_batch_capability(self):
        class Minimal:
            """Bare adapter surface, no apply_batch."""

            name = "minimal"
            width = 8

            def __init__(self):
                from repro.api.backends import DeltaNetBackend

                self._inner = DeltaNetBackend(width=8)

            def insert(self, rule):
                return self._inner.insert(rule)

            def remove(self, rid):
                return self._inner.remove(rid)

            def flows_on(self, link):
                return self._inner.flows_on(link)

            def links(self):
                return self._inner.links()

        session = VerificationSession(Minimal())
        result = session.apply_batch([Rule.forward(0, 0, 64, 1, "a", "b")])
        assert result.num_ops == 1
        assert session.flows_on(("a", "b")) == [(0, 64)]

    def test_parallel_nocheck_still_reports_loops_via_sweep(self):
        """With native checking off the backend must report loops=None,
        so a watched LoopProperty falls back to the full sweep instead of
        trusting an empty 'checked, clean' result."""
        with VerificationSession("parallel", width=8, shards=2,
                                 check_loops=False, force_inline=True,
                                 properties=(LoopProperty(),)) as session:
            rules = [Rule.forward(i, 0, 256, 1, f"s{i}", f"s{(i + 1) % 3}")
                     for i in range(3)]
            result = session.apply_batch(rules)
            assert len(result.violations) == 1
            per_op = VerificationSession("parallel", width=8, shards=2,
                                         check_loops=False, force_inline=True,
                                         properties=(LoopProperty(),))
            for rule in rules:
                per_op.insert(rule)
            assert len(per_op.violations()) == 1
            per_op.close()

    def test_parallel_backend_through_session(self):
        with VerificationSession("parallel", width=8, shards=2,
                                 properties=(LoopProperty(),)) as session:
            rules = [Rule.forward(i, 0, 256, 1, f"s{i}", f"s{(i + 1) % 3}")
                     for i in range(3)]
            result = session.apply_batch(rules)
            assert len(result.violations) == 1
            assert session.stats()["shards"] == 2


class TestBatchedReplay:
    def test_batched_replay_matches_sequential_end_state(self):
        from repro.datasets.builders import build_dataset
        from repro.replay.engine import make_engine, replay

        ops = build_dataset("4Switch", scale=0.3).ops
        sequential = make_engine("deltanet")
        batched = make_engine("deltanet")
        r_seq = replay(ops, sequential)
        r_bat = replay(ops, batched, batch_size=64)
        assert r_bat.num_ops == r_seq.num_ops == len(ops)
        assert len(r_bat.times) == len(ops)
        for link in sequential.session.links():
            assert batched.session.flows_on(link) == \
                sequential.session.flows_on(link)
        assert batched.session.find_loops() == sequential.session.find_loops()

    def test_iter_batches_splits_conflicts(self):
        from repro.datasets.format import Op
        from repro.replay.engine import iter_batches

        r = [Rule.forward(i, 0, 16, i + 1, "a", "b") for i in range(4)]
        stream = [Op.insert(r[0]), Op.insert(r[1]), Op.remove(1),
                  Op.insert(r[2]), Op.remove(0), Op.insert(r[3])]
        batches = list(iter_batches(stream, 100))
        # remove(1) follows insert(1) -> flush; remove(0) follows the
        # earlier batch's insert(0), fine; no further conflicts.
        assert [[op.kind + str(op.rid) for op in b] for b in batches] == \
            [["+0", "+1"], ["-1", "+2", "-0", "+3"]]
        for size in (1, 2, 3):
            chunks = list(iter_batches(stream, size))
            assert [op for chunk in chunks for op in chunk] == stream
            assert all(len(chunk) <= size for chunk in chunks)

    def test_batched_replay_equals_sequential_on_conflicting_stream(self):
        from repro.datasets.format import Op
        from repro.replay.engine import make_engine, replay

        rng = random.Random(11)
        rules = random_rules(rng, 30, width=8, switches=3)
        stream, live = [], []
        for rule in rules:
            stream.append(Op.insert(rule))
            live.append(rule.rid)
            if live and rng.random() < 0.5:
                stream.append(Op.remove(live.pop(rng.randrange(len(live)))))
        sequential = make_engine("deltanet")
        batched = make_engine("deltanet")
        replay(stream, sequential)
        replay(stream, batched, batch_size=7)
        for link in sequential.session.links():
            assert batched.session.flows_on(link) == \
                sequential.session.flows_on(link)
