"""Cross-backend equivalence: five verifiers, one truth.

Replays the same small workload (a shrunken 4Switch-style campaign plus
hand-built loop/shadowing scenarios) through every registered backend
and checks they agree on flows, reachability, black holes and loop
violations — the acceptance gate for the pluggable-backend redesign.
"""

import random

import pytest

from repro.api import LoopProperty, VerificationSession, available_backends
from repro.core.rules import Rule

ALL = sorted(available_backends())
WIDTH = 8


def random_workload(seed=7, n_rules=30, n_removes=8):
    """A deterministic mixed insert/remove workload on a 5-switch net."""
    rng = random.Random(seed)
    switches = ["s1", "s2", "s3", "s4", "s5"]
    ops = []
    rids = []
    for rid in range(n_rules):
        lo = rng.randrange(0, 250)
        hi = rng.randrange(lo + 1, 256)
        source = rng.choice(switches)
        target = rng.choice([s for s in switches if s != source])
        if rng.random() < 0.15:
            ops.append(("+", Rule.drop(rid, lo, hi, rng.randrange(1, 50),
                                       source)))
        else:
            ops.append(("+", Rule.forward(rid, lo, hi, rng.randrange(1, 50),
                                          source, target)))
        rids.append(rid)
    for rid in rng.sample(rids, n_removes):
        ops.append(("-", rid))
    return ops


def run_workload(backend, ops):
    session = VerificationSession(backend, width=WIDTH)
    session.watch(LoopProperty())
    for kind, payload in ops:
        if kind == "+":
            session.insert(payload)
        else:
            session.remove(payload)
    return session


@pytest.fixture(scope="module")
def sessions():
    ops = random_workload()
    return {backend: run_workload(backend, ops) for backend in ALL}


class TestCrossBackendEquivalence:
    def test_flows_agree_on_every_link(self, sessions):
        reference = sessions["deltanet"]
        links = sorted(set(reference.links()), key=repr)
        assert links, "workload produced no labelled links"
        for backend, session in sessions.items():
            for link in links:
                assert session.flows_on(link) == reference.flows_on(link), \
                    f"{backend} disagrees on {link}"

    def test_reachability_agrees_on_every_pair(self, sessions):
        reference = sessions["deltanet"]
        switches = ["s1", "s2", "s3", "s4", "s5"]
        for backend, session in sessions.items():
            for src in switches:
                for dst in switches:
                    if src == dst:
                        continue
                    assert (session.reachable(src, dst)
                            == reference.reachable(src, dst)), \
                        f"{backend} disagrees on {src}->{dst}"

    def test_blackholes_agree(self, sessions):
        reference = sessions["deltanet"].find_blackholes()
        for backend, session in sessions.items():
            assert session.find_blackholes() == reference, backend

    def test_whatif_agrees(self, sessions):
        reference = sessions["deltanet"]
        for link in sorted(set(reference.links()), key=repr):
            expected = reference.what_if_link_down(link)
            for backend, session in sessions.items():
                assert session.what_if_link_down(link) == expected, \
                    f"{backend} disagrees on failing {link}"

    def test_loop_violations_agree(self, sessions):
        """Same canonical loop cycles delivered on every backend."""
        reference = {v.signature for v in sessions["deltanet"].violations()}
        for backend, session in sessions.items():
            delivered = {v.signature for v in session.violations()}
            assert delivered == reference, backend

    def test_full_sweep_loops_agree(self, sessions):
        reference = set(sessions["deltanet"].find_loops())
        for backend, session in sessions.items():
            assert set(session.find_loops()) == reference, backend


class TestDeltanetVeriflowOnDataset:
    """The acceptance-criteria pairing on a real (tiny) Table 2 workload."""

    def test_same_violations_on_4switch(self):
        from repro.datasets.builders import build_dataset

        ops = build_dataset("4Switch", scale=0.05).ops
        results = {}
        for backend in ("deltanet", "veriflow"):
            session = VerificationSession(backend)
            session.watch(LoopProperty())
            for op in ops:
                session.apply(op)
            results[backend] = {v.signature for v in session.violations()}
        assert results["deltanet"] == results["veriflow"]

    def test_sharded_matches_monolithic_on_4switch(self):
        from repro.datasets.builders import build_dataset

        ops = build_dataset("4Switch", scale=0.05).ops
        mono = VerificationSession("deltanet")
        shard = VerificationSession("sharded", shards=4)
        for op in ops:
            mono.apply(op)
            shard.apply(op)
        for link in mono.links():
            assert shard.flows_on(link) == mono.flows_on(link)
        assert set(shard.find_loops()) == set(mono.find_loops())
