"""Property protocol: generic propagation vs the native checkers."""

import pytest

from repro.api import (
    IsolationProperty, LoopProperty, ReachabilityProperty,
    VerificationSession, WaypointProperty, available_backends,
    propagate_intervals,
)
from repro.core.rules import Rule


def chain(session):
    """a -[0:16)-> b -[0:8)-> c, with b's upper half dying."""
    session.insert(Rule.forward(0, 0, 16, 1, "a", "b"))
    session.insert(Rule.forward(1, 0, 8, 1, "b", "c"))
    return session


class TestPropagateIntervals:
    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_matches_uniform_reachable(self, backend):
        session = chain(VerificationSession(backend, width=8))
        reached = propagate_intervals(session.backend, "a")
        assert reached["c"].spans == session.reachable("a", "c") == [(0, 8)]

    def test_avoid_cuts_the_path(self):
        session = chain(VerificationSession("deltanet", width=8))
        reached = propagate_intervals(session.backend, "a", avoid=("b",))
        assert "c" not in reached


class TestWaypointProperty:
    def test_matches_native_checker(self):
        """WaypointProperty (generic intervals) == checkers.check_waypoint
        (Delta-net atoms) on a bypass scenario."""
        from repro.checkers.waypoint import check_waypoint
        from repro.core.atomset import atoms_to_interval_set

        session = VerificationSession("deltanet", width=8)
        # Two paths a->d: through the waypoint w and around it via x.
        session.insert(Rule.forward(0, 0, 16, 1, "a", "w"))
        session.insert(Rule.forward(1, 0, 16, 1, "w", "d"))
        session.insert(Rule.forward(2, 16, 32, 1, "a", "x"))
        session.insert(Rule.forward(3, 0, 32, 1, "x", "d"))
        violations = session.check(WaypointProperty("a", "d", "w"))
        assert len(violations) == 1
        native = check_waypoint(session.native, "a", "d", "w")
        assert violations[0].data == atoms_to_interval_set(
            native, session.native.atoms) == [(16, 32)]

    def test_holds_when_all_traffic_waypointed(self):
        session = chain(VerificationSession("veriflow", width=8))
        assert session.check(WaypointProperty("a", "c", "b")) == []

    def test_endpoint_waypoint_rejected(self):
        with pytest.raises(ValueError):
            WaypointProperty("a", "b", "a")


class TestIsolationProperty:
    def test_matches_native_checker(self):
        from repro.checkers.isolation import check_isolation

        session = VerificationSession("deltanet", width=8)
        session.insert(Rule.forward(0, 0, 8, 1, "t1", "core"))
        session.insert(Rule.forward(1, 8, 16, 1, "t2", "core"))
        session.insert(Rule.forward(2, 0, 16, 1, "core", "out"))
        slice_a, slice_b = [(0, 8)], [(8, 16)]
        violations = session.check(IsolationProperty(slice_a, slice_b))
        offenders = check_isolation(session.native, slice_a, slice_b)
        assert {v.signature[1] for v in violations} == set(offenders)
        assert len(violations) == 1  # only core->out carries both

    def test_isolated_slices_pass(self):
        session = VerificationSession("netplumber", width=8)
        session.insert(Rule.forward(0, 0, 8, 1, "t1", "a"))
        session.insert(Rule.forward(1, 8, 16, 1, "t2", "b"))
        assert session.check(IsolationProperty([(0, 8)], [(8, 16)])) == []


class TestReachabilityProperty:
    def test_expect_unreachable_mode(self):
        session = chain(VerificationSession("deltanet", width=8))
        violations = session.check(
            ReachabilityProperty("a", "c", expect_reachable=False))
        assert len(violations) == 1
        assert violations[0].data == [(0, 8)]

    def test_violation_str_is_readable(self):
        session = VerificationSession("deltanet", width=8)
        session.watch(ReachabilityProperty("a", "z"))
        result = session.insert(Rule.forward(0, 0, 8, 1, "a", "b"))
        assert "unreachable" in str(result.violations[0])


class TestLoopPropertyIncrementalVsSweep:
    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_subscription_equals_sweep(self, backend):
        session = VerificationSession(backend, width=8)
        session.watch(LoopProperty())
        session.insert(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        session.insert(Rule.forward(1, 0, 16, 1, "s2", "s3"))
        session.insert(Rule.forward(2, 0, 16, 1, "s3", "s1"))
        delivered = {v.signature[1] for v in session.violations()}
        assert delivered == set(session.find_loops())
