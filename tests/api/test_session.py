"""VerificationSession: updates, batches, subscriptions, queries."""

import pytest

from repro.api import (
    BlackholeProperty, LoopProperty, ReachabilityProperty, UpdateResult,
    VerificationSession, available_backends,
)
from repro.core.rules import Action, Rule


def ring(width=8):
    return [
        Rule.forward(0, 0, 16, 1, "s1", "s2"),
        Rule.forward(1, 0, 16, 1, "s2", "s3"),
        Rule.forward(2, 0, 16, 1, "s3", "s1"),
    ]


class TestUpdates:
    def test_insert_returns_result_with_latency(self):
        session = VerificationSession("deltanet", width=8)
        result = session.insert(ring()[0])
        assert isinstance(result, UpdateResult)
        assert result.num_ops == 1
        assert result.ops[0].kind == "+" and result.ops[0].rid == 0
        assert result.latency > 0
        assert result.backend == "deltanet"

    def test_deltanet_result_carries_delta(self):
        session = VerificationSession("deltanet", width=8)
        result = session.insert(ring()[0])
        assert result.delta is not None and result.delta.added

    def test_remove(self):
        session = VerificationSession("deltanet", width=8)
        session.insert(ring()[0])
        result = session.remove(0)
        assert result.ops[0].kind == "-"
        assert session.num_rules == 0

    def test_apply_dataset_op(self):
        from repro.datasets.format import Op

        session = VerificationSession("deltanet", width=8)
        session.apply(Op.insert(ring()[0]))
        assert session.num_rules == 1
        session.apply(Op.remove(0))
        assert session.num_rules == 0

    def test_make_rule(self):
        session = VerificationSession("deltanet")
        rule = session.make_rule(7, "10.0.0.0/8", 5, "a", "b")
        assert rule.rid == 7 and rule.hi - rule.lo == 1 << 24
        drop = session.make_rule(8, "10.0.0.0/8", 9, "a", action=Action.DROP)
        assert drop.action is Action.DROP


class TestBatch:
    def test_batch_aggregates_one_result(self):
        session = VerificationSession("deltanet", width=8)
        session.watch(LoopProperty())
        with session.batch() as txn:
            for rule in ring():
                record = session.insert(rule)
                assert not isinstance(record, UpdateResult)
        assert txn.result.num_ops == 3
        assert len(txn.result.ops) == 3
        assert all(op.seconds >= 0 for op in txn.result.ops)
        # The ring closes inside the batch: one loop violation delivered
        # on the aggregated result.
        assert [v.property_name for v in txn.result.violations] == ["loops"]

    def test_batch_equals_sequential_state(self):
        batched = VerificationSession("deltanet", width=8)
        sequential = VerificationSession("deltanet", width=8)
        rules = [Rule.forward(0, 0, 32, 1, "a", "b"),
                 Rule.forward(1, 16, 48, 2, "a", "c"),
                 Rule.forward(2, 0, 64, 1, "b", "c")]
        with batched.batch():
            for rule in rules:
                batched.insert(rule)
            batched.remove(1)
        seq_deltas = []
        for rule in rules:
            seq_deltas.append(sequential.insert(rule).delta)
        seq_deltas.append(sequential.remove(1).delta)
        for link in sequential.links():
            assert batched.flows_on(link) == sequential.flows_on(link)
        assert batched.num_rules == sequential.num_rules
        # The merged delta-graph equals the in-order merge of the
        # per-op delta-graphs (adds cancelling removes).
        merged = seq_deltas[0]
        for delta in seq_deltas[1:]:
            merged.merge(delta)
        with batched.batch():
            pass  # empty batch is fine

    def test_batch_delta_merge_cancels(self):
        session = VerificationSession("deltanet", width=8)
        with session.batch() as txn:
            session.insert(Rule.forward(0, 0, 16, 1, "a", "b"))
            session.remove(0)
        assert txn.result.delta is not None
        assert txn.result.delta.is_empty()

    def test_batches_do_not_nest(self):
        session = VerificationSession("deltanet", width=8)
        with session.batch():
            with pytest.raises(RuntimeError):
                with session.batch():
                    pass

    def test_failed_batch_propagates_and_resets(self):
        session = VerificationSession("deltanet", width=8)
        with pytest.raises(ValueError):
            with session.batch() as txn:
                session.insert(Rule.forward(0, 0, 16, 1, "a", "b"))
                session.insert(Rule.forward(0, 0, 16, 1, "a", "b"))  # dup
        # The op applied before the error is still covered by the result.
        assert txn.result is not None and txn.result.num_ops == 1
        # The session is usable again (not stuck in batch mode).
        result = session.insert(Rule.forward(1, 0, 16, 1, "b", "c"))
        assert isinstance(result, UpdateResult)

    def test_failed_batch_still_delivers_violations(self):
        session = VerificationSession("deltanet", width=8)
        session.watch(LoopProperty())
        with pytest.raises(KeyError):
            with session.batch() as txn:
                for rule in ring():
                    session.insert(rule)  # closes a loop...
                session.remove(99)        # ...then the batch fails
        assert [v.property_name for v in txn.result.violations] == ["loops"]
        assert session.violations() == txn.result.violations


class TestSubscriptions:
    def test_loop_property_fires_once(self):
        session = VerificationSession("deltanet", width=8)
        session.watch(LoopProperty())
        violations = []
        for rule in ring():
            violations.extend(session.insert(rule).violations)
        assert len(violations) == 1
        assert violations[0].property_name == "loops"
        assert set(violations[0].data) == {"s1", "s2", "s3"}
        # Breaking and re-checking does not re-deliver (cumulative dedup).
        assert session.violations() == violations

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_reintroduced_loop_fires_again(self, backend):
        session = VerificationSession(backend, width=8)
        session.watch(LoopProperty())
        for rule in ring():
            session.insert(rule)
        assert len(session.violations()) == 1
        session.remove(2)                    # break the loop
        session.insert(ring()[2])            # ...and close it again
        assert len(session.violations()) == 2
        assert (session.violations()[0].signature
                == session.violations()[1].signature)

    def test_blackhole_property(self):
        session = VerificationSession("deltanet", width=8)
        session.watch(BlackholeProperty())
        result = session.insert(Rule.forward(0, 0, 16, 1, "a", "b"))
        assert any(v.signature == ("blackhole", "b")
                   for v in result.violations)

    def test_expected_sinks_suppressed(self):
        session = VerificationSession("deltanet", width=8)
        session.watch(BlackholeProperty(expected_sinks=["b"]))
        result = session.insert(Rule.forward(0, 0, 16, 1, "a", "b"))
        assert result.violations == []

    def test_reachability_property_clears_and_refires(self):
        session = VerificationSession("deltanet", width=8)
        session.watch(ReachabilityProperty("a", "c"))
        # c not reachable yet: the very first update raises the alert.
        first = session.insert(Rule.forward(0, 0, 16, 1, "a", "b"))
        assert [v.property_name for v in first.violations] == ["reachability"]
        # Completing the path satisfies the property (and re-arms it).
        fixed = session.insert(Rule.forward(1, 0, 16, 1, "b", "c"))
        assert fixed.violations == []
        # Breaking the path again re-fires the same violation.
        broken = session.remove(1)
        assert [v.property_name for v in broken.violations] == ["reachability"]

    def test_unwatch(self):
        session = VerificationSession("deltanet", width=8)
        prop = session.watch(LoopProperty())
        session.unwatch(prop)
        for rule in ring():
            assert session.insert(rule).violations == []

    def test_properties_constructor_arg(self):
        session = VerificationSession("deltanet", width=8,
                                      properties=(LoopProperty(),))
        assert [p.name for p in session.properties] == ["loops"]

    def test_watch_rejects_non_property(self):
        session = VerificationSession("deltanet", width=8)
        with pytest.raises(TypeError):
            session.watch(object())

    def test_one_shot_check_has_no_dedup(self):
        session = VerificationSession("deltanet", width=8)
        for rule in ring():
            session.insert(rule)
        first = session.check(LoopProperty())
        second = session.check(LoopProperty())
        assert len(first) == len(second) == 1


class TestQueriesEveryBackend:
    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_uniform_query_surface(self, backend):
        session = VerificationSession(backend, width=8)
        for rule in ring()[:2]:
            session.insert(rule)
        assert session.flows_on(("s1", "s2")) == [(0, 16)]
        assert session.reachable("s1", "s3") == [(0, 16)]
        assert session.what_if_link_down(("s1", "s2")) == [(0, 16)]
        assert session.find_loops() == []
        assert ("s3" in session.find_blackholes())
        assert session.num_rules == 2
        assert session.stats()["rules"] == 2
        session.check_invariants()

    def test_backend_instance_accepted(self):
        from repro.api import create_backend

        backend = create_backend("deltanet", width=8)
        session = VerificationSession(backend)
        assert session.backend is backend
        with pytest.raises(ValueError):
            VerificationSession(backend, gc=True)

    def test_native_escape_hatch(self):
        from repro.core.deltanet import DeltaNet

        session = VerificationSession("deltanet", width=8)
        assert isinstance(session.native, DeltaNet)
