"""Speculative sessions: CoW forks must be indistinguishable from clones.

The tentpole correctness property, stated adversarially: for a random
base trace and ``k`` random candidate batches, every speculative child
must answer queries bit-identically to a fresh session built by
clone-then-apply (replay base + candidate from scratch), commits must
land exactly the child-observed state on the parent, discards must
leave no trace, and siblings of a committed child must refuse to answer
(:class:`StaleSpeculationError`) rather than answer stale.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    FlowsOn, LoopProperty, Loops, Reachable, StaleSpeculationError,
    VerificationSession,
)
from repro.core.rules import Rule

WIDTH = 8
NODES = ["a", "b", "c", "d"]
SPEC_BACKENDS = ["deltanet", "sharded", "parallel"]


def _options(backend):
    return {"force_inline": True, "shards": 2} if backend == "parallel" else {}


def _trace(rng, n_ops, rid_base=0):
    """A deterministic op list: mostly inserts, some removes of live rids."""
    ops, live = [], []
    for offset in range(n_ops):
        rid = rid_base + offset
        if live and rng.random() < 0.25:
            victim = live.pop(rng.randrange(len(live)))
            ops.append(("-", victim))
            continue
        lo = rng.randrange(0, 250)
        hi = rng.randrange(lo + 1, 256)
        source = rng.choice(NODES)
        target = rng.choice([n for n in NODES if n != source])
        ops.append(("+", Rule.forward(rid, lo, hi, rng.randrange(1, 9),
                                      source, target)))
        live.append(rid)
    return ops


def _apply(session, ops):
    for kind, payload in ops:
        if kind == "+":
            session.insert(payload)
        else:
            session.remove(payload)


def _fingerprint(session):
    """Every queryable currency, normalized for == across sessions."""
    links = sorted(set(session.links()), key=repr)
    return {
        "loops": sorted(session.query(Loops()).violations, key=repr),
        "flows": {link: [tuple(span) for span in
                         session.query(FlowsOn(link)).spans]
                  for link in links},
        "reach": {(src, dst): [tuple(span) for span in
                               session.query(Reachable(src, dst)).spans]
                  for src in NODES for dst in NODES if src != dst},
        "rules": sorted(session.rules()),
    }


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 2**31), backend=st.sampled_from(SPEC_BACKENDS),
       k=st.integers(1, 3))
def test_speculative_children_match_clone_then_apply(seed, backend, k):
    rng = random.Random(seed)
    base = _trace(rng, rng.randrange(4, 14))
    candidates = [_trace(rng, rng.randrange(1, 6), rid_base=100 * (i + 1))
                  for i in range(k)]
    parent = VerificationSession(backend, width=WIDTH, **_options(backend))
    try:
        parent.watch(LoopProperty())
        _apply(parent, base)
        before = _fingerprint(parent)
        children = [parent.speculate() for _ in range(k)]
        try:
            for child, candidate in zip(children, candidates):
                _apply(child, candidate)
            # Each child == a fresh clone replaying base + its candidate.
            for child, candidate in zip(children, candidates):
                clone = VerificationSession(backend, width=WIDTH,
                                            **_options(backend))
                try:
                    _apply(clone, base)
                    _apply(clone, candidate)
                    assert _fingerprint(child) == _fingerprint(clone)
                finally:
                    clone.close()
            # The parent never saw any of it.
            assert _fingerprint(parent) == before
            # Commit one winner; its effects land exactly; siblings stale.
            winner = rng.randrange(k)
            expected = _fingerprint(children[winner])
            children[winner].commit()
            assert _fingerprint(parent) == expected
            for index, child in enumerate(children):
                if index == winner:
                    continue
                with pytest.raises(StaleSpeculationError):
                    child.query(Loops())
        finally:
            for child in children:
                child.discard()
        # Discarded children changed nothing beyond the committed ops.
        assert _fingerprint(parent) == expected
    finally:
        parent.close()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31), backend=st.sampled_from(SPEC_BACKENDS))
def test_discard_is_invisible_and_parent_update_stales_children(seed, backend):
    rng = random.Random(seed)
    parent = VerificationSession(backend, width=WIDTH, **_options(backend))
    try:
        _apply(parent, _trace(rng, rng.randrange(3, 10)))
        before = _fingerprint(parent)
        child = parent.speculate()
        _apply(child, _trace(rng, rng.randrange(1, 5), rid_base=500))
        child.discard()
        assert _fingerprint(parent) == before
        child2 = parent.speculate()
        parent.insert(Rule.forward(900, 0, 64, 1, "a", "b"))
        with pytest.raises(StaleSpeculationError):
            child2.insert(Rule.forward(901, 0, 64, 1, "b", "c"))
        child2.discard()
    finally:
        parent.close()


class TestSpeculationUnit:
    def test_clone_fallback_backends_speculate(self):
        for backend in ("veriflow", "apv", "netplumber"):
            parent = VerificationSession(backend, width=WIDTH)
            parent.insert(Rule.forward(0, 0, 128, 1, "a", "b"))
            child = parent.speculate()
            child.insert(Rule.forward(1, 0, 128, 1, "b", "a"))
            assert len(child.query(Loops()).violations) == 1
            assert not parent.query(Loops()).violations
            child.commit()
            assert len(parent.query(Loops()).violations) == 1
            parent.close()

    def test_commit_returns_parent_results_and_buffered_ops_order(self):
        parent = VerificationSession("deltanet", width=WIDTH)
        parent.insert(Rule.forward(0, 0, 128, 1, "a", "b"))
        child = parent.speculate()
        child.apply_batch([Rule.forward(1, 0, 128, 1, "b", "c")], [0])
        ops = child.buffered_ops()
        assert [op.kind for op in ops] == ["-", "+"]  # removals first
        results = child.commit()
        assert len(results) == 2
        assert sorted(parent.rules()) == [1]
        parent.close()

    def test_save_refused_and_double_commit_stale(self):
        parent = VerificationSession("deltanet", width=WIDTH)
        child = parent.speculate()
        with pytest.raises(RuntimeError):
            child.save("/tmp/nope")
        child.insert(Rule.forward(0, 0, 128, 1, "a", "b"))
        child.commit()
        with pytest.raises(StaleSpeculationError):
            child.commit()
        parent.close()
