"""Run the usage examples embedded in library docstrings.

Keeps every ``>>>`` example in the public API honest — they are the
first thing a downstream user copies.
"""

import doctest

import pytest

import repro.core.atomset
import repro.core.intervals
import repro.core.prefix
import repro.structures.ptreap
import repro.structures.treap

MODULES = [
    repro.core.intervals,
    repro.core.prefix,
    repro.structures.ptreap,
    repro.structures.treap,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tests = doctest.testmod(module, verbose=False).failed, \
        doctest.testmod(module, verbose=False).attempted
    assert tests > 0, f"{module.__name__} has no doctests to run"
    assert failures == 0
