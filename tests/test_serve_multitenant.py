"""Concurrent multi-session isolation: no cross-tenant contamination.

Two sessions receive interleaved batches from four concurrent clients
(two per tenant).  Afterwards each session's rule set and
``state_digest()`` must equal a *serial replay* of just that tenant's
operations — any rule or digest contribution that leaked across the
session boundary breaks the equality.
"""

import threading

import pytest

from repro.serve import SessionManager, StreamServer

from tests.test_serve_hub import HubFixture

#: (session, client) -> the rid range that client inserts.
CLIENTS = [
    ("red", 0), ("red", 1),
    ("blue", 0), ("blue", 1),
]
BATCHES_PER_CLIENT = 8
RULES_PER_BATCH = 5
WIDTH = 16


def client_rules(client_index):
    """The rules one client inserts: unique rids/priorities per client."""
    base = client_index * 10_000
    rules = []
    for batch in range(BATCHES_PER_CLIENT):
        rules.append([
            rule(base + batch * RULES_PER_BATCH + i,
                 priority=base + batch * RULES_PER_BATCH + i,
                 lo=(batch * 7 + i) % 50, hi=(batch * 7 + i) % 50 + 5,
                 source=f"s{client_index}", target=f"t{batch % 3}")
            for i in range(RULES_PER_BATCH)
        ])
    return rules


def rule(rid, priority, lo, hi, source, target):
    return {"rid": rid, "lo": lo, "hi": hi, "priority": priority,
            "source": source, "target": target}


def serial_replay(tmp_path, name, client_indices):
    """Apply the named clients' batches serially; return (digest, rules)."""
    server = StreamServer(str(tmp_path / f"replay-{name}"), width=WIDTH,
                          properties=())
    try:
        for client_index in client_indices:
            for batch in client_rules(client_index):
                response, _ = server.handle_request(
                    {"cmd": "batch", "insert": batch})
                assert response["ok"], response
        stats, _ = server.handle_request({"cmd": "stats"})
        return stats["stats"].get("state_digest"), sorted(
            server.session.rules())
    finally:
        server.close()


def expected_state(tmp_path):
    """Serial ground truth per session: red gets clients 0-1, blue 2-3."""
    return {
        "red": serial_replay(tmp_path, "red", [0, 1]),
        "blue": serial_replay(tmp_path, "blue", [2, 3]),
    }


class TestManagerThreads:
    """Four threads straight into SessionManager-owned servers."""

    def test_interleaved_batches_never_cross_contaminate(self, tmp_path):
        manager = SessionManager(str(tmp_path / "root"),
                                 defaults=dict(width=WIDTH, properties=()))
        try:
            servers = {name: manager.open(name) for name in ("red", "blue")}
            start = threading.Barrier(len(CLIENTS))
            failures = []

            def run(session_name, client_index):
                try:
                    start.wait(10)
                    server = servers[session_name]
                    for batch in client_rules(client_index):
                        response, _ = server.handle_request(
                            {"cmd": "batch", "insert": batch})
                        assert response["ok"], response
                except Exception as exc:  # surface in the main thread
                    failures.append(exc)

            threads = [
                threading.Thread(target=run, args=(name, 2 * i + j))
                for i, name in enumerate(("red", "blue"))
                for j in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not failures, failures

            expected = expected_state(tmp_path)
            for name in ("red", "blue"):
                digest, rules = expected[name]
                session = servers[name].session
                assert sorted(session.rules()) == rules
                if digest is not None:
                    assert session.state_digest() == digest
        finally:
            manager.close_all()


class TestHubTcp:
    """Four real TCP clients through the asyncio hub."""

    def test_interleaved_batches_never_cross_contaminate(self, tmp_path):
        fixture = HubFixture(str(tmp_path / "root"),
                             defaults=dict(width=WIDTH, properties=()))
        try:
            opener = fixture.client()
            opener.request(cmd="open", session="red")
            opener.request(cmd="open", session="blue")
            start = threading.Barrier(len(CLIENTS))
            failures = []

            def run(session_name, client_index):
                client = fixture.client()
                try:
                    start.wait(10)
                    attached = client.request(cmd="attach",
                                              session=session_name)
                    assert attached["ok"], attached
                    for batch in client_rules(client_index):
                        response = client.request(cmd="batch", insert=batch)
                        assert response["ok"], response
                        # interleave a read per batch: readers must not
                        # perturb (or block) the other tenant's writes
                        stats = client.request(cmd="stats")
                        assert stats["ok"], stats
                except Exception as exc:
                    failures.append(exc)
                finally:
                    client.close()

            threads = [
                threading.Thread(target=run, args=(name, 2 * i + j))
                for i, name in enumerate(("red", "blue"))
                for j in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not failures, failures

            expected = expected_state(tmp_path)
            for name in ("red", "blue"):
                digest, rules = expected[name]
                stats = opener.request(cmd="stats", session=name)
                assert stats["ok"], stats
                listed = opener.request(cmd="query", what="rules",
                                        session=name)
                assert listed["result"] == rules
                if digest is not None:
                    assert stats["stats"]["state_digest"] == digest
            opener.close()
        finally:
            fixture.stop()


class TestDigestSanity:
    def test_different_states_have_different_digests(self, tmp_path):
        """Guard against the isolation test vacuously passing."""
        red_digest, red_rules = serial_replay(tmp_path, "red2", [0, 1])
        blue_digest, blue_rules = serial_replay(tmp_path, "blue2", [2, 3])
        assert set(red_rules).isdisjoint(blue_rules)
        if red_digest is None:
            pytest.skip("digests disabled (DELTANET_DIGESTS=0)")
        assert red_digest != blue_digest
