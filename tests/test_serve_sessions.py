"""SessionManager: named per-tenant sessions under one root."""

import pytest

from repro.serve import (
    MetricsRegistry, SessionError, SessionManager, validate_session_name,
)


@pytest.fixture
def manager(tmp_path):
    instance = SessionManager(str(tmp_path / "root"),
                              defaults=dict(width=8, properties=()))
    yield instance
    instance.close_all()


class TestNames:
    @pytest.mark.parametrize("name", [
        "red", "tenant-1", "net.backbone", "a" * 64, "0day",
    ])
    def test_legal_names_pass(self, name):
        assert validate_session_name(name) == name

    @pytest.mark.parametrize("name", [
        "", "..", "../evil", "a/b", "a\\b", ".hidden", "-flag",
        "a" * 65, None, 7, "white space", "newline\n",
    ])
    def test_path_tricks_and_junk_are_refused(self, name):
        with pytest.raises(SessionError):
            validate_session_name(name)

    def test_open_refuses_bad_names_without_touching_disk(self, manager,
                                                          tmp_path):
        with pytest.raises(SessionError):
            manager.open("../escape")
        assert not (tmp_path / "escape").exists()


class TestLifecycle:
    def test_open_is_idempotent(self, manager):
        first = manager.open("red")
        assert manager.open("red") is first

    def test_sessions_are_isolated_stores(self, manager, tmp_path):
        red = manager.open("red")
        blue = manager.open("blue")
        red.handle_line('{"cmd": "insert", "rule": {"rid": 1, "lo": 0, '
                        '"hi": 10, "priority": 1, "source": "a", '
                        '"target": "b"}}')
        assert red.session.num_rules == 1
        assert blue.session.num_rules == 0
        assert (tmp_path / "root" / "red" / "snapshot.bin").exists()
        assert (tmp_path / "root" / "blue" / "snapshot.bin").exists()

    def test_attach_unknown_session_is_refused(self, manager):
        with pytest.raises(SessionError):
            manager.attach("ghost")

    def test_attach_recovers_a_closed_session_from_disk(self, tmp_path):
        root = str(tmp_path / "root")
        manager = SessionManager(root, defaults=dict(width=8, properties=()))
        server = manager.open("red")
        response, _ = server.handle_line(
            '{"cmd": "insert", "rule": {"rid": 5, "lo": 0, "hi": 3, '
            '"priority": 1, "source": "a", "target": "b"}}')
        assert response["ok"]
        manager.close_all()

        fresh = SessionManager(root, defaults=dict(width=8, properties=()))
        try:
            assert fresh.discover() == ["red"]
            recovered = fresh.attach("red")
            assert recovered.session.sequence == 1
            assert recovered.recovery is not None
        finally:
            fresh.close_all()

    def test_get_requires_an_open_session(self, manager):
        manager.open("red")
        assert manager.get("red") is manager.open("red")
        with pytest.raises(SessionError):
            manager.get("blue")

    def test_listing_marks_open_and_on_disk_sessions(self, tmp_path):
        root = str(tmp_path / "root")
        manager = SessionManager(root, defaults=dict(width=8, properties=()))
        manager.open("red")
        manager.open("blue")
        manager.close_all()
        fresh = SessionManager(root, defaults=dict(width=8, properties=()))
        try:
            fresh.open("blue")
            listing = {entry["session"]: entry for entry in fresh.sessions()}
            assert listing["blue"]["open"] is True
            assert listing["blue"]["seq"] == 0
            assert listing["red"] == {"session": "red", "open": False}
        finally:
            fresh.close_all()

    def test_close_all_refuses_further_opens(self, manager):
        manager.open("red")
        manager.close_all()
        manager.close_all()  # idempotent
        with pytest.raises(SessionError):
            manager.open("blue")

    def test_close_one_session_writes_its_final_checkpoint(self, tmp_path):
        root = str(tmp_path / "root")
        manager = SessionManager(
            root, defaults=dict(width=8, properties=(),
                                checkpoint_every=10_000))
        server = manager.open("red")
        server.handle_line('{"cmd": "insert", "rule": {"rid": 1, "lo": 0, '
                           '"hi": 1, "priority": 1, "source": "a", '
                           '"target": "b"}}')
        assert manager.close("red")
        assert not manager.close("red")
        recovered = manager.attach("red")
        assert recovered.session.sequence == 1
        manager.close_all()


class TestSharedMetrics:
    def test_all_sessions_export_through_one_registry(self, tmp_path):
        registry = MetricsRegistry()
        manager = SessionManager(str(tmp_path / "root"), metrics=registry,
                                 defaults=dict(width=8, properties=()))
        try:
            for name in ("red", "blue"):
                server = manager.open(name)
                response, _ = server.handle_line('{"cmd": "ping"}')
                assert response["ok"]
            text = registry.render_text()
            assert ('deltanet_requests_total{session="red",verb="ping"} 1'
                    in text)
            assert ('deltanet_requests_total{session="blue",verb="ping"} 1'
                    in text)
            assert 'deltanet_session_sequence{session="red"} 0' in text
        finally:
            manager.close_all()
