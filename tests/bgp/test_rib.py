"""Tests for the BGP RIB and best-route selection."""

from repro.bgp.rib import Rib, Route
from repro.bgp.updates import BgpUpdate

P1 = (0, 8)
P2 = (1 << 24, 8)


class TestRib:
    def test_first_announce_becomes_best(self):
        rib = Rib()
        change = rib.apply(BgpUpdate("announce", P1, "r1", 3))
        assert change is not None
        assert change.old is None
        assert change.new.peer == "r1"
        assert rib.best(P1).peer == "r1"

    def test_shorter_as_path_wins(self):
        rib = Rib()
        rib.apply(BgpUpdate("announce", P1, "r1", 3))
        change = rib.apply(BgpUpdate("announce", P1, "r2", 1))
        assert change.new.peer == "r2"

    def test_longer_as_path_ignored(self):
        rib = Rib()
        rib.apply(BgpUpdate("announce", P1, "r1", 1))
        assert rib.apply(BgpUpdate("announce", P1, "r2", 5)) is None
        assert rib.best(P1).peer == "r1"

    def test_tie_broken_by_peer_repr(self):
        rib = Rib()
        rib.apply(BgpUpdate("announce", P1, "r2", 2))
        change = rib.apply(BgpUpdate("announce", P1, "r1", 2))
        assert change.new.peer == "r1"  # 'r1' < 'r2'

    def test_withdraw_falls_back(self):
        rib = Rib()
        rib.apply(BgpUpdate("announce", P1, "r1", 1))
        rib.apply(BgpUpdate("announce", P1, "r2", 2))
        change = rib.apply(BgpUpdate("withdraw", P1, "r1", 1))
        assert change.new.peer == "r2"

    def test_withdraw_last_route_clears(self):
        rib = Rib()
        rib.apply(BgpUpdate("announce", P1, "r1", 1))
        change = rib.apply(BgpUpdate("withdraw", P1, "r1", 1))
        assert change.new is None
        assert rib.best(P1) is None
        assert rib.num_prefixes == 0

    def test_redundant_withdraw_no_change(self):
        rib = Rib()
        assert rib.apply(BgpUpdate("withdraw", P1, "r1", 1)) is None

    def test_prefixes_independent(self):
        rib = Rib()
        rib.apply(BgpUpdate("announce", P1, "r1", 1))
        rib.apply(BgpUpdate("announce", P2, "r2", 1))
        assert rib.num_prefixes == 2
        assert rib.best_routes()[P1].peer == "r1"
        assert rib.best_routes()[P2].peer == "r2"

    def test_route_preference_key(self):
        assert Route(P1, "r1", 1).preference_key < Route(P1, "r1", 2).preference_key
