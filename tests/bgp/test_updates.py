"""Tests for BGP update streams."""

import pytest

from repro.bgp.prefixes import PrefixPool
from repro.bgp.updates import BgpUpdate, UpdateStream


class TestBgpUpdate:
    def test_kinds_validated(self):
        with pytest.raises(ValueError):
            BgpUpdate("flap", (0, 8), "peer", 1)

    def test_fields(self):
        update = BgpUpdate("announce", (0, 8), "r1", 3)
        assert update.kind == "announce"
        assert update.as_path_length == 3


class TestUpdateStream:
    def setup_method(self):
        self.stream = UpdateStream(["r1", "r2"], PrefixPool(seed=1),
                                   prefixes_per_peer=10, seed=1)

    def test_requires_peers(self):
        with pytest.raises(ValueError):
            UpdateStream([], PrefixPool(seed=1))

    def test_initial_announcements_cover_all_peers(self):
        updates = list(self.stream.initial_announcements())
        assert len(updates) == 20
        assert all(u.kind == "announce" for u in updates)
        assert {u.peer for u in updates} == {"r1", "r2"}

    def test_flaps_are_withdraw_then_reannounce(self):
        flaps = list(self.stream.flaps(5))
        assert len(flaps) == 10
        for withdraw, announce in zip(flaps[0::2], flaps[1::2]):
            assert withdraw.kind == "withdraw"
            assert announce.kind == "announce"
            assert withdraw.prefix == announce.prefix
            assert withdraw.peer == announce.peer

    def test_churn_mix(self):
        churn = list(self.stream.churn(200, announce_bias=0.7))
        announces = sum(1 for u in churn if u.kind == "announce")
        assert len(churn) == 200
        assert 100 < announces < 180  # roughly 70%

    def test_deterministic(self):
        other = UpdateStream(["r1", "r2"], PrefixPool(seed=1),
                             prefixes_per_peer=10, seed=1)
        assert list(other.flaps(3)) == list(
            UpdateStream(["r1", "r2"], PrefixPool(seed=1),
                         prefixes_per_peer=10, seed=1).flaps(3))
