"""Tests for the synthetic Route-Views-style prefix pool."""

import pytest

from repro.bgp.prefixes import DEFAULT_LENGTH_MASS, PrefixPool, overlap_fraction
from repro.core.prefix import make_interval


class TestPrefixPool:
    def test_deterministic(self):
        assert PrefixPool(seed=7).sample(100) == PrefixPool(seed=7).sample(100)
        assert PrefixPool(seed=7).sample(50) != PrefixPool(seed=8).sample(50)

    def test_prefixes_are_valid(self):
        for lo, plen in PrefixPool(seed=1).sample(500):
            assert 0 <= plen <= 32
            span = 1 << (32 - plen)
            assert lo & (span - 1) == 0, "network address must be aligned"
            assert 0 <= lo < (1 << 32)

    def test_unique_sampling(self):
        pool = PrefixPool(seed=2)
        drawn = pool.sample(300)
        assert len(set(drawn)) == 300
        more = pool.sample(100)
        assert not set(drawn) & set(more)

    def test_non_unique_sampling_allowed(self):
        pool = PrefixPool(seed=3)
        assert len(pool.sample(50, unique=False)) == 50

    def test_length_distribution_shape(self):
        """Mode at /24; /16-/24 dominate — the global-table shape."""
        drawn = PrefixPool(seed=4).sample(3000)
        histogram = {}
        for _lo, plen in drawn:
            histogram[plen] = histogram.get(plen, 0) + 1
        assert max(histogram, key=histogram.get) == 24
        mid_mass = sum(count for plen, count in histogram.items()
                       if 16 <= plen <= 24)
        assert mid_mass / len(drawn) > 0.75

    def test_heavy_overlap(self):
        """Delta-net's premise: prefixes overlap a lot (atoms << rules)."""
        drawn = PrefixPool(seed=5).sample(2000)
        assert overlap_fraction(drawn) > 0.5

    def test_to_interval_and_text(self):
        lo, plen = (10 << 24, 8)
        assert PrefixPool.to_interval((lo, plen)) == make_interval(lo, plen)
        assert PrefixPool.to_text((lo, plen)) == "10.0.0.0/8"

    def test_length_mass_sums_to_about_one(self):
        assert abs(sum(DEFAULT_LENGTH_MASS.values()) - 1.0) < 0.05


class TestOverlapFraction:
    def test_disjoint(self):
        assert overlap_fraction([(0, 8), (1 << 24, 8)]) == 0.0

    def test_nested(self):
        assert overlap_fraction([(0, 8), (0, 16)]) == 1.0

    def test_empty(self):
        assert overlap_fraction([]) == 0.0
