"""Shared test fixtures and oracles.

The central oracle is :class:`BruteForceDataPlane`: a deliberately naive
model of the data plane that recomputes everything from scratch — the
ground truth against which Delta-net's incrementally maintained state,
Veriflow-RI's per-EC graphs, and the atomic-predicates verifier are all
cross-checked.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

import pytest

from repro.core.rules import DROP, Link, Rule


class BruteForceDataPlane:
    """Ground-truth data plane: plain rule list, full recomputation."""

    def __init__(self, width: int = 8) -> None:
        self.width = width
        self.rules: Dict[int, Rule] = {}

    def insert(self, rule: Rule) -> None:
        assert rule.rid not in self.rules
        self.rules[rule.rid] = rule

    def remove(self, rid: int) -> None:
        del self.rules[rid]

    def boundaries(self) -> List[int]:
        points = {0, 1 << self.width}
        for rule in self.rules.values():
            points.add(rule.lo)
            points.add(rule.hi)
        return sorted(points)

    def segments(self) -> List[Tuple[int, int]]:
        """The finest partition induced by all rule boundaries."""
        bounds = self.boundaries()
        return list(zip(bounds, bounds[1:]))

    def owner_at(self, source: object, point: int) -> Optional[Rule]:
        """Highest-priority rule matching ``point`` at ``source``."""
        best: Optional[Rule] = None
        for rule in self.rules.values():
            if rule.source == source and rule.matches(point):
                if best is None or rule.sort_key > best.sort_key:
                    best = rule
        return best

    def sources(self) -> Set[object]:
        return {rule.source for rule in self.rules.values()}

    def expected_labels(self) -> Dict[Link, List[Tuple[int, int]]]:
        """``link -> canonical interval list`` of packets flowing on it."""
        from repro.core.intervals import normalize

        raw: Dict[Link, List[Tuple[int, int]]] = {}
        for lo, hi in self.segments():
            for source in self.sources():
                owner = self.owner_at(source, lo)
                if owner is not None:
                    raw.setdefault(owner.link, []).append((lo, hi))
        return {link: normalize(spans) for link, spans in raw.items()}

    def next_hop(self, source: object, point: int) -> Optional[object]:
        owner = self.owner_at(source, point)
        return owner.target if owner else None

    def has_loop(self, point: int) -> bool:
        """Does any switch start a forwarding loop for ``point``?"""
        for start in self.sources():
            seen: Set[object] = set()
            node: Optional[object] = start
            while node is not None and node != DROP:
                if node in seen:
                    return True
                seen.add(node)
                node = self.next_hop(node, point)
        return False

    def loop_points(self) -> List[int]:
        """One representative point of every looping segment."""
        return [lo for lo, _hi in self.segments() if self.has_loop(lo)]


def random_rules(rng: random.Random, count: int, width: int = 8,
                 switches: int = 4, drop_fraction: float = 0.1,
                 rid_start: int = 0) -> List[Rule]:
    """Random overlapping prefix rules over a small switch set.

    Priorities are globally unique so the paper's distinct-priority
    assumption holds for any overlap pattern.
    """
    space = 1 << width
    priorities = rng.sample(range(count * 10), count)
    rules: List[Rule] = []
    for index in range(count):
        plen = rng.randint(0, width)
        span = 1 << (width - plen)
        lo = rng.randrange(space) & ~(span - 1)
        source = f"s{rng.randrange(switches)}"
        if rng.random() < drop_fraction:
            rule = Rule.drop(rid_start + index, lo, lo + span,
                             priorities[index], source)
        else:
            target = f"s{rng.randrange(switches)}"
            while target == source:
                target = f"s{rng.randrange(switches)}"
            rule = Rule.forward(rid_start + index, lo, lo + span,
                                priorities[index], source, target)
        rules.append(rule)
    return rules


def deltanet_label_intervals(net) -> Dict[Link, List[Tuple[int, int]]]:
    """Delta-net's labels, lowered to canonical interval lists."""
    from repro.core.atomset import atoms_to_interval_set

    return {link: atoms_to_interval_set(atoms, net.atoms)
            for link, atoms in net.label.items() if atoms}


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
