"""Tests for the `deltanet` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "Berkeley", "-o", "x.ops", "--scale", "0.5"])
        assert args.dataset == "Berkeley" and args.scale == 0.5

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "Nope", "-o", "x"])


class TestCommands:
    def test_datasets_lists_table2(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("Berkeley", "INET", "Airtel1", "4Switch"):
            assert name in out

    def test_generate_then_replay(self, tmp_path, capsys):
        path = str(tmp_path / "ops.txt")
        assert main(["generate", "4Switch", "-o", path, "--scale", "0.2"]) == 0
        assert main(["replay", path, "--engine", "deltanet"]) == 0
        out = capsys.readouterr().out
        assert "median" in out and "atoms=" in out

    def test_replay_veriflow_engine(self, tmp_path, capsys):
        path = str(tmp_path / "ops.txt")
        main(["generate", "4Switch", "-o", path, "--scale", "0.1"])
        assert main(["replay", path, "--engine", "veriflow"]) == 0
        assert "veriflow" in capsys.readouterr().out

    def test_replay_with_cdf(self, tmp_path, capsys):
        path = str(tmp_path / "ops.txt")
        main(["generate", "4Switch", "-o", path, "--scale", "0.1"])
        assert main(["replay", path, "--cdf"]) == 0
        assert "CDF" in capsys.readouterr().out

    def test_whatif(self, capsys):
        assert main(["whatif", "4Switch", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "link-failure queries" in out

    def test_allpairs(self, capsys):
        assert main(["allpairs", "4Switch", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 3" in out and "reachable" in out

    def test_blackholes(self, capsys):
        assert main(["blackholes", "4Switch", "--scale", "0.1"]) == 0
        assert "black-hole" in capsys.readouterr().out

    def test_report_parser(self):
        args = build_parser().parse_args(["report", "-o", "x.md"])
        assert args.output == "x.md"
