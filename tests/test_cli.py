"""Tests for the `deltanet` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "Berkeley", "-o", "x.ops", "--scale", "0.5"])
        assert args.dataset == "Berkeley" and args.scale == 0.5

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "Nope", "-o", "x"])


class TestCommands:
    def test_datasets_lists_table2(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("Berkeley", "INET", "Airtel1", "4Switch"):
            assert name in out

    def test_generate_then_replay(self, tmp_path, capsys):
        path = str(tmp_path / "ops.txt")
        assert main(["generate", "4Switch", "-o", path, "--scale", "0.2"]) == 0
        assert main(["replay", path, "--engine", "deltanet"]) == 0
        out = capsys.readouterr().out
        assert "median" in out and "atoms=" in out

    def test_replay_veriflow_engine(self, tmp_path, capsys):
        path = str(tmp_path / "ops.txt")
        main(["generate", "4Switch", "-o", path, "--scale", "0.1"])
        assert main(["replay", path, "--engine", "veriflow"]) == 0
        assert "veriflow" in capsys.readouterr().out

    def test_replay_with_cdf(self, tmp_path, capsys):
        path = str(tmp_path / "ops.txt")
        main(["generate", "4Switch", "-o", path, "--scale", "0.1"])
        assert main(["replay", path, "--cdf"]) == 0
        assert "CDF" in capsys.readouterr().out

    def test_replay_checkpoint_then_resume(self, tmp_path, capsys):
        path = str(tmp_path / "ops.txt")
        state = str(tmp_path / "ckpt")
        main(["generate", "4Switch", "-o", path, "--scale", "0.1"])
        assert main(["replay", path, "--checkpoint", state,
                     "--checkpoint-every", "50"]) == 0
        first = capsys.readouterr().out
        assert "cumulative_violations=" in first
        # Resume after a clean run: everything is already applied.
        assert main(["replay", path, "--checkpoint", state,
                     "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed at sequence" in out
        assert "0 ops" in out

    def test_replay_crash_resume_matches_uninterrupted(self, tmp_path):
        import os
        import re
        import subprocess
        import sys

        path = str(tmp_path / "ops.txt")
        state = str(tmp_path / "ckpt")
        main(["generate", "4Switch", "-o", path, "--scale", "0.1"])

        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))

        def run_cli(*argv):
            proc = subprocess.run(
                [sys.executable, "-m", "repro"] + list(argv),
                capture_output=True, text=True,
                env={**os.environ, "PYTHONPATH": src_dir})
            assert proc.returncode == 0, proc.stderr
            return proc.stdout

        uninterrupted = run_cli("replay", path)
        total = re.search(r"(\d+) loops found", uninterrupted).group(1)
        crash = run_cli("replay", path, "--checkpoint", state,
                        "--checkpoint-every", "40", "--stop-after", "90")
        assert "simulated crash" in crash
        resumed = run_cli("replay", path, "--checkpoint", state, "--resume")
        assert f"cumulative_violations={total}" in resumed

    def test_replay_resume_requires_checkpoint_dir(self, tmp_path, capsys):
        path = str(tmp_path / "ops.txt")
        main(["generate", "4Switch", "-o", path, "--scale", "0.1"])
        assert main(["replay", path, "--resume"]) == 2

    def test_replay_refuses_to_clobber_existing_checkpoint(
            self, tmp_path, capsys):
        path = str(tmp_path / "ops.txt")
        state = str(tmp_path / "ckpt")
        main(["generate", "4Switch", "-o", path, "--scale", "0.1"])
        assert main(["replay", path, "--checkpoint", state]) == 0
        capsys.readouterr()
        assert main(["replay", path, "--checkpoint", state]) == 2
        assert "pass --resume" in capsys.readouterr().err

    def test_serve_parser(self):
        args = build_parser().parse_args(
            ["serve", "--store", "/tmp/x", "--checkpoint-every", "5",
             "--listen", "127.0.0.1:0"])
        assert args.store == "/tmp/x"
        assert args.checkpoint_every == 5
        assert args.listen == "127.0.0.1:0"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])  # --store is required

    def test_whatif(self, capsys):
        assert main(["whatif", "4Switch", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "link-failure queries" in out

    def test_allpairs(self, capsys):
        assert main(["allpairs", "4Switch", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 3" in out and "reachable" in out

    def test_blackholes(self, capsys):
        assert main(["blackholes", "4Switch", "--scale", "0.1"]) == 0
        assert "black-hole" in capsys.readouterr().out

    def test_report_parser(self):
        args = build_parser().parse_args(["report", "-o", "x.md"])
        assert args.output == "x.md"


class TestScenarioCommands:
    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for family in ("link-flaps", "failover-storm", "bgp-reset",
                       "deaggregation", "acl-injection"):
            assert family in out

    def test_scenario_run_agreeing_backends(self, tmp_path, capsys):
        save = str(tmp_path / "trace.ops")
        assert main(["scenario", "run", "table-fill", "--seed", "4",
                     "--scale", "0.25", "--backends", "deltanet,sharded",
                     "--save", save]) == 0
        out = capsys.readouterr().out
        assert "agree with the sweep oracle" in out
        # The saved trace replays through the plain replay command.
        assert main(["replay", save, "--engine", "deltanet"]) == 0

    def test_scenario_run_unknown_family_readable(self, capsys):
        assert main(["scenario", "run", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario family" in err
        assert "Traceback" not in err

    def test_scenario_run_unknown_backend_readable(self, capsys):
        assert main(["scenario", "run", "table-fill", "--backends",
                     "warpdrive"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend" in err

    def test_scenario_run_divergence_exits_nonzero(self, tmp_path,
                                                   capsys):
        from repro.api import register_backend, unregister_backend
        from repro.api.backends import DeltaNetBackend

        class Lossy(DeltaNetBackend):
            def loops_for_commit(self, updates, delta):
                return super().loops_for_commit(updates, delta)[:-1]

        register_backend("lossy-cli", Lossy, replace=True)
        try:
            artifacts = str(tmp_path / "artifacts")
            code = main(["scenario", "run", "deaggregation", "--seed",
                         "3", "--scale", "0.3", "--backends",
                         "deltanet,lossy-cli", "--artifacts", artifacts,
                         "--shrink-probes", "40"])
            captured = capsys.readouterr()
            assert code == 1
            assert "diverges from the sweep oracle" in captured.out
            assert "minimized repro" in captured.out
            assert "FAIL" in captured.err
            import os

            assert any(name.endswith(".repro")
                       for name in os.listdir(artifacts))
        finally:
            unregister_backend("lossy-cli")

    def test_replay_diff_oracle_ok(self, tmp_path, capsys):
        path = str(tmp_path / "ops.txt")
        main(["generate", "4Switch", "-o", path, "--scale", "0.1"])
        assert main(["replay", path, "--diff-oracle"]) == 0
        assert "matches the oracle" in capsys.readouterr().out

    def test_replay_diff_oracle_flag_conflicts(self, tmp_path, capsys):
        path = str(tmp_path / "ops.txt")
        main(["generate", "4Switch", "-o", path, "--scale", "0.1"])
        assert main(["replay", path, "--diff-oracle", "--batch",
                     "16"]) == 2
        assert "--diff-oracle is incompatible" in capsys.readouterr().err


class TestFuzzCommand:
    def test_fuzz_small_budget(self, capsys):
        assert main(["fuzz", "--budget", "2", "--seed", "9",
                     "--backends", "deltanet,sharded", "-q"]) == 0
        out = capsys.readouterr().out
        assert "2/2 traces" in out and "OK" in out

    def test_fuzz_replay_missing_file_readable(self, capsys):
        assert main(["fuzz", "--replay", "/nonexistent.repro"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_fuzz_finds_and_replays_lossy_backend(self, tmp_path,
                                                  capsys):
        from repro.api import register_backend, unregister_backend
        from repro.api.backends import DeltaNetBackend

        class Lossy(DeltaNetBackend):
            def loops_for_commit(self, updates, delta):
                return super().loops_for_commit(updates, delta)[:-1]

        register_backend("lossy-fuzz", Lossy, replace=True)
        try:
            artifacts = str(tmp_path / "artifacts")
            code = main(["fuzz", "--budget", "6", "--seed", "5",
                         "--families", "deaggregation,table-fill",
                         "--backends", "deltanet,lossy-fuzz",
                         "--artifacts", artifacts,
                         "--shrink-probes", "40", "-q"])
            assert code == 1
            out = capsys.readouterr().out
            assert "FAILURE" in out
            import os

            repro_files = [name for name in os.listdir(artifacts)
                           if name.endswith(".repro")]
            assert repro_files
            # With the lossy backend gone the repro no longer diverges.
            path = os.path.join(artifacts, repro_files[0])
            assert main(["fuzz", "--replay", path, "--backends",
                         "deltanet"]) == 0
        finally:
            unregister_backend("lossy-fuzz")
