"""Cross-shard integrity audits: detection, re-seed repair, escalation.

A desynchronized shard answers queries silently wrong — no crash, no
exception, just bad state.  These tests inject exactly that
(:meth:`desync_shard` toggles a label entry behind the digest's back)
and require the audit machinery to quarantine the shard, rebuild it
through the re-seed path, and leave the fleet byte-identical to a
monolithic :class:`DeltaNet` that saw the same history.
"""

import random

import pytest

from repro.core.deltanet import DeltaNet
from repro.integrity import Scrubber
from repro.libra.parallel import ParallelShardedDeltaNet
from repro.libra.sharding import even_shards

from tests.conftest import deltanet_label_intervals, random_rules

KNOBS = dict(deadline=15.0, max_restarts=3, restart_backoff=0.01,
             reseed_every=8)


def mono_flows(net):
    return {link: spans for link, spans in
            deltanet_label_intervals(net).items() if spans}


def make_pair(force_inline, seed=31, count=24):
    par = ParallelShardedDeltaNet(even_shards(2, 8), width=8,
                                  force_inline=force_inline, **KNOBS)
    if not force_inline and not par.parallel:
        par.close()
        pytest.skip("worker processes unavailable on this platform")
    mono = DeltaNet(width=8)
    rules = random_rules(random.Random(seed), count, width=8, switches=4)
    for start in range(0, len(rules), 4):
        chunk = rules[start:start + 4]
        par.apply_batch(chunk, ())
        mono.apply(chunk, ())
    return par, mono


def desync_some_shard(par) -> int:
    for index in range(par.num_shards):
        if par.desync_shard(index):
            return index
    pytest.fail("no shard accepted the desync injection")


class TestAuditCycle:
    def test_clean_fleet_audits_clean(self):
        par, _mono = make_pair(force_inline=True)
        with par:
            results = par.audit()
            assert all(r["clean"] for r in results)
            assert par.audits == par.num_shards
            assert par.audit_mismatches == 0

    @pytest.mark.parametrize("force_inline", [True, False],
                             ids=["inline", "process"])
    def test_desync_is_detected_and_repaired(self, force_inline):
        par, mono = make_pair(force_inline)
        with par:
            victim = desync_some_shard(par)
            results = par.audit()
            bad = results[victim]
            assert not bad["clean"]
            assert bad["repaired"] and not bad["escalated"]
            assert par.audit_mismatches == 1
            assert par.audit_repairs == 1
            assert par.audit_escalations == 0
            kinds = [event["kind"] for event in par.events]
            assert "quarantine" in kinds and "repair" in kinds
            # The repaired fleet must be byte-identical to the monolith.
            assert par.dump_flows() == mono_flows(mono)
            par.check_invariants()
            assert all(r["clean"] for r in par.audit())

    def test_audit_without_repair_only_quarantines(self):
        par, _mono = make_pair(force_inline=True)
        with par:
            victim = desync_some_shard(par)
            results = par.audit(repair=False)
            assert not results[victim]["clean"]
            assert not results[victim]["repaired"]
            assert par.audit_repairs == 0
            # The damage is still there for a later repairing audit.
            assert not par.audit_shard(victim, repair=False)["clean"]

    def test_failed_repair_escalates_to_degraded(self, monkeypatch):
        par, _mono = make_pair(force_inline=True)
        with par:
            victim = desync_some_shard(par)
            rebuild = par._rebuild_server

            def sabotaged(index):
                server = rebuild(index)
                server.do_desync()
                return server

            monkeypatch.setattr(par, "_rebuild_server", sabotaged)
            result = par.audit_shard(victim)
            assert result["escalated"] and not result["repaired"]
            assert par.audit_escalations == 1
            assert victim in par.degraded_shards
            assert any(event["kind"] == "degraded" for event in par.events)

    def test_disabled_digests_skip_the_audit(self, monkeypatch):
        monkeypatch.setenv("DELTANET_DIGESTS", "0")
        par, _mono = make_pair(force_inline=True)
        with par:
            results = par.audit()
            assert all(r.get("skipped") == "digests-disabled"
                       for r in results)
            assert par.audit_mismatches == 0


class TestScrubberIntegration:
    def make_session(self):
        from repro.api.session import VerificationSession

        session = VerificationSession("parallel", width=8, shards=2,
                                      force_inline=True, **KNOBS)
        for rule in random_rules(random.Random(33), 24, width=8,
                                 switches=4):
            session.insert(rule)
        return session

    def test_scrub_pass_detects_and_repairs_desync(self):
        session = self.make_session()
        try:
            native = session.backend.native
            victim = desync_some_shard(native)
            scrubber = Scrubber(session)
            report = scrubber.run_full()
            assert report["mode"] == "parallel"
            assert victim in report["repaired"]
            assert not report["escalated"]
            # Repaired within the pass, so the pass verdict is clean.
            assert report.ok
            assert scrubber.counters["mismatches"] == 1
            assert scrubber.counters["repairs"] == 1
            follow_up = scrubber.run_full()
            assert follow_up.ok and not follow_up["mismatches"]
        finally:
            session.close()

    def test_health_surfaces_audit_counters(self):
        session = self.make_session()
        try:
            native = session.backend.native
            desync_some_shard(native)
            Scrubber(session).run_full()
            health = session.backend.health()
            assert health["audits"] >= native.num_shards
            assert health["audit_mismatches"] == 1
            assert health["audit_repairs"] == 1
            assert health["audit_escalations"] == 0
        finally:
            session.close()
