"""ParallelShardedDeltaNet: process workers must be invisible semantically.

Every verdict — flows, loops, blackholes, reachability — must be
bit-identical (in the canonical interval/cycle currency) to a monolithic
sequential Delta-net over the same rule history.  Most cases run in the
inline fallback mode for speed; a representative subset exercises real
worker processes end to end.
"""

import random

import pytest

from repro.checkers.blackholes import find_blackholes
from repro.checkers.loops import find_forwarding_loops
from repro.checkers.reachability import reachable_atoms
from repro.core.atomset import atoms_to_interval_set
from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule
from repro.libra.parallel import ParallelShardedDeltaNet
from repro.libra.sharding import even_shards

from tests.conftest import deltanet_label_intervals, random_rules


def mono_flows(net):
    return {link: spans for link, spans in
            deltanet_label_intervals(net).items() if spans}


def drive(par, mono, seed, count=35):
    """Apply the same randomized batch schedule to both verifiers."""
    rng = random.Random(seed)
    rules = random_rules(rng, count, width=8, switches=4, drop_fraction=0.1)
    live, index = [], 0
    while index < len(rules):
        chunk = rules[index:index + rng.randint(1, 5)]
        index += len(chunk)
        removals = []
        while live and rng.random() < 0.3:
            removals.append(live.pop(rng.randrange(len(live))).rid)
        live.extend(chunk)
        par.apply_batch(chunk, removals)
        mono.apply(chunk, removals)


class TestParallelEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_flows_match_monolithic(self, seed, n_shards):
        mono = DeltaNet(width=8)
        with ParallelShardedDeltaNet(even_shards(n_shards, 8), width=8,
                                     force_inline=True) as par:
            drive(par, mono, seed)
            assert par.dump_flows() == mono_flows(mono)
            par.check_invariants()

    @pytest.mark.parametrize("seed", range(4))
    def test_loop_and_blackhole_verdicts_match(self, seed):
        mono = DeltaNet(width=8)
        with ParallelShardedDeltaNet(even_shards(4, 8), width=8,
                                     force_inline=True) as par:
            drive(par, mono, seed)
            assert ({frozenset(c) for c in par.find_loops()} ==
                    {frozenset(l.cycle) for l in find_forwarding_loops(mono)})
            expected_holes = {
                node: atoms_to_interval_set(atoms, mono.atoms)
                for node, atoms in find_blackholes(mono).items()}
            assert par.find_blackholes() == expected_holes

    @pytest.mark.parametrize("seed", range(3))
    def test_reachability_matches_monolithic(self, seed):
        mono = DeltaNet(width=8)
        with ParallelShardedDeltaNet(even_shards(2, 8), width=8,
                                     force_inline=True) as par:
            drive(par, mono, seed, count=25)
            for src in ("s0", "s1"):
                for dst in ("s2", "s3"):
                    expected = atoms_to_interval_set(
                        reachable_atoms(mono, src, dst), mono.atoms)
                    assert par.reachable(src, dst) == expected, (src, dst)

    def test_real_worker_processes(self):
        """End-to-end with actual OS processes (the default mode)."""
        mono = DeltaNet(width=8)
        with ParallelShardedDeltaNet(even_shards(4, 8), width=8) as par:
            drive(par, mono, seed=99)
            assert par.dump_flows() == mono_flows(mono)
            assert ({frozenset(c) for c in par.find_loops()} ==
                    {frozenset(l.cycle) for l in find_forwarding_loops(mono)})
            par.check_invariants()

    def test_spanning_rule_loop_detected_once(self):
        with ParallelShardedDeltaNet(even_shards(4, 8), width=8,
                                     force_inline=True) as par:
            rules = [Rule.forward(rid, 96, 160, 1, src, dst)  # spans 2 shards
                     for rid, (src, dst) in enumerate(
                         (("a", "b"), ("b", "c"), ("c", "a")))]
            loops = par.apply_batch(rules)
            assert len(loops) == 1
            assert frozenset(loops[0]) == {"a", "b", "c"}


class TestParallelLifecycle:
    def test_close_is_idempotent_and_workers_exit(self):
        par = ParallelShardedDeltaNet(even_shards(2, 8), width=8)
        was_parallel = par.parallel
        par.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
        par.close()
        par.close()
        if was_parallel:
            for endpoint in par._workers:
                assert not endpoint.process.is_alive()

    def test_errors_propagate_and_workers_survive(self):
        with ParallelShardedDeltaNet(even_shards(2, 8), width=8) as par:
            par.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
            with pytest.raises(ValueError):
                par.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
            with pytest.raises(KeyError):
                par.remove_rule(42)
            # the workers are still serving after the error
            par.insert_rule(Rule.forward(1, 16, 32, 1, "a", "c"))
            assert par.num_rules == 2
            assert par.flows_on(("a", "c")) == [(16, 32)]

    def test_worker_error_mid_fanout_does_not_skew_later_replies(self):
        """A failing worker must not leave other workers' replies queued
        in their pipes — the next command would read stale data."""
        with ParallelShardedDeltaNet(even_shards(4, 8), width=8) as par:
            # The spanning rule is clipped to rids 0..3, one per shard.
            par.insert_rule(Rule.forward(0, 0, 256, 1, "a", "b"))
            # Broadcast a removal of clipped rid 0: it exists only in
            # shard 0's Delta-net, so shards 1-3 raise KeyError.
            with pytest.raises(KeyError):
                par._fan_out("apply_batch", ([], [0], False))
            # Every reply was drained, so queries still pair up with
            # their own answers (a stale pipe would return loop lists
            # or the wrong shard's spans here).
            assert par.flows_on(("a", "b")) == [(64, 256)]
            assert [rules for rules, _atoms in par.shard_sizes()] == \
                [0, 1, 1, 1]

    def test_rejected_batch_leaves_shards_untouched(self):
        with ParallelShardedDeltaNet(even_shards(2, 8), width=8,
                                     force_inline=True) as par:
            par.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
            with pytest.raises(ValueError):
                par.apply_batch([Rule.forward(1, 16, 32, 1, "a", "c"),
                                 Rule.forward(0, 0, 8, 2, "a", "b")])
            assert par.num_rules == 1
            assert par.flows_on(("a", "c")) == []

    def test_owner_link_at_and_shard_sizes(self):
        with ParallelShardedDeltaNet(even_shards(2, 8), width=8,
                                     force_inline=True) as par:
            par.insert_rule(Rule.forward(0, 0, 256, 1, "s1", "s2"))
            par.insert_rule(Rule.forward(1, 100, 140, 9, "s1", "s3"))
            assert par.owner_link_at("s1", 50).target == "s2"
            assert par.owner_link_at("s1", 120).target == "s3"
            assert par.owner_link_at("s9", 50) is None
            sizes = par.shard_sizes()
            assert len(sizes) == 2 and all(r >= 1 for r, _a in sizes)
            assert par.total_atoms == sum(a for _r, a in sizes)

    def test_failed_batch_poisons_updates_but_not_queries(self):
        """A batch that errors inside a worker leaves shards possibly
        part-applied; further updates must refuse (no phantom-duplicate
        retries), while read-only queries stay available."""
        with ParallelShardedDeltaNet(even_shards(2, 8), width=8,
                                     force_inline=True) as par:
            par.insert_rule(Rule.forward(0, 0, 256, 1, "a", "b"))
            # Desync one shard server behind the router's back so its
            # sub-batch fails while validation at the router passes.
            par._workers[0].server.net.remove_rule(
                par._placement[0][0][1])
            with pytest.raises(KeyError):
                par.apply_batch((), [0])
            with pytest.raises(RuntimeError):
                par.apply_batch([Rule.forward(7, 0, 64, 5, "a", "c")])
            with pytest.raises(RuntimeError):
                par.insert_rule(Rule.forward(8, 0, 64, 6, "a", "c"))
            # Inspection of the partial state still works: shard 1 did
            # apply its half of the failed removal — exactly the
            # part-applied inconsistency the poison flag guards.
            assert par.flows_on(("a", "b")) == []

    def test_bad_tiling_rejected(self):
        with pytest.raises(ValueError):
            ParallelShardedDeltaNet([(0, 8), (9, 16)], width=4,
                                    force_inline=True)
