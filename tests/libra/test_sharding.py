"""Tests for Libra-style header-space sharding over Delta-net."""

import random

import pytest

from repro.checkers.loops import find_forwarding_loops
from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule
from repro.libra.sharding import ShardedDeltaNet, even_shards

from tests.conftest import deltanet_label_intervals, random_rules


class TestEvenShards:
    def test_tiles_the_space(self):
        shards = even_shards(4, width=8)
        assert shards == [(0, 64), (64, 128), (128, 192), (192, 256)]

    def test_single_shard(self):
        assert even_shards(1, width=4) == [(0, 16)]

    def test_uneven_division(self):
        shards = even_shards(3, width=4)
        assert shards[0][0] == 0 and shards[-1][1] == 16
        assert all(lo < hi for lo, hi in shards)

    def test_validation(self):
        with pytest.raises(ValueError):
            even_shards(0)
        with pytest.raises(ValueError):
            even_shards(32, width=4)


class TestShardedDeltaNet:
    def test_bad_tiling_rejected(self):
        with pytest.raises(ValueError):
            ShardedDeltaNet([(0, 8), (9, 16)], width=4)   # gap
        with pytest.raises(ValueError):
            ShardedDeltaNet([(0, 8)], width=4)             # short

    def test_rule_in_one_shard(self):
        sharded = ShardedDeltaNet(even_shards(4, 8), width=8)
        placed = sharded.insert_rule(Rule.forward(0, 0, 32, 1, "s1", "s2"))
        assert placed == [0]
        assert sharded.nets[0].num_rules == 1
        assert sharded.nets[1].num_rules == 0

    def test_rule_spanning_shards_is_clipped(self):
        sharded = ShardedDeltaNet(even_shards(4, 8), width=8)
        placed = sharded.insert_rule(Rule.forward(0, 32, 160, 1, "s1", "s2"))
        assert placed == [0, 1, 2]
        assert sharded.flows_on(("s1", "s2")) == [(32, 160)]

    def test_remove_spanning_rule(self):
        sharded = ShardedDeltaNet(even_shards(4, 8), width=8)
        sharded.insert_rule(Rule.forward(0, 32, 160, 1, "s1", "s2"))
        assert sharded.remove_rule(0) == [0, 1, 2]
        assert sharded.flows_on(("s1", "s2")) == []
        assert sharded.num_rules == 0

    def test_duplicate_and_unknown(self):
        sharded = ShardedDeltaNet(even_shards(2, 8), width=8)
        sharded.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))
        with pytest.raises(ValueError):
            sharded.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))
        with pytest.raises(KeyError):
            sharded.remove_rule(9)

    def test_shard_of_point(self):
        sharded = ShardedDeltaNet(even_shards(4, 8), width=8)
        assert sharded.shard_of_point(0) == 0
        assert sharded.shard_of_point(64) == 1
        assert sharded.shard_of_point(255) == 3
        with pytest.raises(ValueError):
            sharded.shard_of_point(256)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_matches_monolithic_deltanet(self, seed, n_shards):
        """Shape: sharding must not change any flow semantics."""
        rng = random.Random(seed * 11 + n_shards)
        rules = random_rules(rng, 35, width=8, switches=4, drop_fraction=0.1)
        sharded = ShardedDeltaNet(even_shards(n_shards, 8), width=8)
        mono = DeltaNet(width=8)
        live = []
        for rule in rules:
            if live and rng.random() < 0.3:
                victim = live.pop(rng.randrange(len(live)))
                sharded.remove_rule(victim.rid)
                mono.remove_rule(victim.rid)
            sharded.insert_rule(rule)
            mono.insert_rule(rule)
            live.append(rule)
        mono_labels = deltanet_label_intervals(mono)
        for link in set(mono_labels) | set(
                l for net in sharded.nets for l in net.label):
            assert sharded.flows_on(link) == mono_labels.get(link, [])

    def test_loop_detection_matches_monolithic(self):
        sharded = ShardedDeltaNet(even_shards(4, 8), width=8)
        mono = DeltaNet(width=8)
        for rid, (src, dst) in enumerate((("a", "b"), ("b", "c"), ("c", "a"))):
            rule = Rule.forward(rid, 96, 160, 1, src, dst)  # spans 2 shards
            sharded.insert_rule(rule)
            mono.insert_rule(rule)
        sharded_loops = sharded.find_loops()
        mono_loops = find_forwarding_loops(mono)
        assert bool(sharded_loops) == bool(mono_loops) == True  # noqa: E712
        assert {frozenset(l.cycle) for l in sharded_loops} == \
            {frozenset(l.cycle) for l in mono_loops}

    def test_owner_link_at(self):
        sharded = ShardedDeltaNet(even_shards(2, 8), width=8)
        sharded.insert_rule(Rule.forward(0, 0, 256, 1, "s1", "s2"))
        sharded.insert_rule(Rule.forward(1, 100, 140, 9, "s1", "s3"))
        assert sharded.owner_link_at("s1", 50).target == "s2"
        assert sharded.owner_link_at("s1", 120).target == "s3"
        assert sharded.owner_link_at("s9", 50) is None

    def test_shard_sizes_balance(self):
        rng = random.Random(4)
        sharded = ShardedDeltaNet(even_shards(4, 8), width=8)
        for rule in random_rules(rng, 60, width=8, switches=4):
            sharded.insert_rule(rule)
        sizes = sharded.shard_sizes()
        assert len(sizes) == 4
        assert sum(r for r, _a in sizes) >= 60  # clipping can add copies
