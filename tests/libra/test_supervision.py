"""Shard-worker supervision: crashes cost restarts, never answers.

Each test drives a process-mode :class:`ParallelShardedDeltaNet` and a
monolithic :class:`DeltaNet` through the same rule history, injures the
workers mid-way (SIGKILL, blackholed pipes, spawn failure), and
requires the parallel verdicts to stay bit-identical to the
monolith's — with the injury observable on ``events`` / ``degraded``,
never silent.
"""

import random

import pytest

from repro.core.deltanet import DeltaNet
from repro.faults.injector import (
    Fault, FaultInjector, drop, installed, kill_endpoint,
)
from repro.libra.parallel import (
    ParallelShardedDeltaNet, _InlineEndpoint, _ProcessEndpoint,
)
from repro.libra.sharding import even_shards

from tests.conftest import deltanet_label_intervals, random_rules

#: Tight supervision knobs: fast restarts, short (but not flaky-short)
#: hang deadlines, tiny replay buffers so re-seeding actually happens.
KNOBS = dict(deadline=15.0, max_restarts=3, restart_backoff=0.01,
             reseed_every=8)


def mono_flows(net):
    return {link: spans for link, spans in
            deltanet_label_intervals(net).items() if spans}


def make_pair(seed=0, n_shards=2, **overrides):
    knobs = dict(KNOBS, **overrides)
    par = ParallelShardedDeltaNet(even_shards(n_shards, 8), width=8,
                                  **knobs)
    if not par.parallel:  # sandbox without multiprocessing
        par.close()
        pytest.skip("worker processes unavailable on this platform")
    return par, DeltaNet(width=8)


def drive_both(par, mono, rules, batch=4):
    for start in range(0, len(rules), batch):
        chunk = rules[start:start + batch]
        par.apply_batch(chunk, ())
        mono.apply(chunk, ())


class TestCrashRecovery:
    def test_sigkill_between_batches_recovers(self):
        par, mono = make_pair()
        with par:
            rules = random_rules(random.Random(1), 30, width=8, switches=4)
            drive_both(par, mono, rules[:15])
            par._workers[0].process.kill()
            drive_both(par, mono, rules[15:])
            assert par.dump_flows() == mono_flows(mono)
            par.check_invariants()
            assert par.restarts >= 1
            assert not par.degraded
            assert any(e["kind"] == "restart" for e in par.events)

    def test_sigkill_mid_batch_applies_exactly_once(self):
        # Kill the worker right after the batch was sent: the supervisor
        # must re-seed the pre-batch state and re-issue, so the batch
        # lands exactly once (a double apply would raise on duplicate
        # rids; a lost one would diverge from the monolith).
        par, mono = make_pair()
        with par:
            rules = random_rules(random.Random(2), 30, width=8, switches=4)
            drive_both(par, mono, rules[:12])
            injector = FaultInjector([Fault(
                "parallel.pipe.sent", kill_endpoint, shard=0)])
            with installed(injector):
                drive_both(par, mono, rules[12:20])
            assert injector.fired, "the kill never landed"
            drive_both(par, mono, rules[20:])
            assert par.dump_flows() == mono_flows(mono)
            assert par.restarts >= 1

    def test_blackholed_pipe_becomes_a_hung_worker(self):
        # A dropped message never errors at send; only the deadline can
        # notice.  Short deadline => fast detection => restart.
        par, mono = make_pair(deadline=0.5)
        with par:
            rules = random_rules(random.Random(3), 24, width=8, switches=4)
            drive_both(par, mono, rules[:12])
            injector = FaultInjector([Fault("parallel.pipe.send", drop,
                                            shard=1)])
            with installed(injector):
                drive_both(par, mono, rules[12:16])
            assert injector.fired
            drive_both(par, mono, rules[16:])
            assert par.dump_flows() == mono_flows(mono)
            assert par.restarts >= 1
            assert any(e["kind"] == "restart" for e in par.events)

    def test_recovery_replays_from_snapshot_seed(self):
        # reseed_every=8 forces mid-run re-snapshots; a later crash must
        # recover from snapshot + replay buffer, not from genesis.
        par, mono = make_pair(reseed_every=8)
        with par:
            rules = random_rules(random.Random(4), 40, width=8, switches=4)
            drive_both(par, mono, rules[:32])
            assert any(seed is not None for seed in par._seeds), \
                "test premise broken: no shard ever re-seeded"
            for endpoint in par._workers:
                endpoint.process.kill()
            drive_both(par, mono, rules[32:])
            assert par.dump_flows() == mono_flows(mono)
            par.check_invariants()


class TestDegradedMode:
    def test_restart_storm_degrades_observably(self):
        par, mono = make_pair(max_restarts=0)
        with par:
            rules = random_rules(random.Random(5), 24, width=8, switches=4)
            drive_both(par, mono, rules[:12])
            par._workers[1].process.kill()
            drive_both(par, mono, rules[12:])
            # max_restarts=0: the first crash exhausts the budget.
            assert par.degraded
            assert 1 in par.degraded_shards
            assert isinstance(par._workers[1], _InlineEndpoint)
            assert any(e["kind"] == "degraded" for e in par.events)
            # ...and the degraded shard still answers correctly.
            assert par.dump_flows() == mono_flows(mono)
            assert "(degraded)" in repr(par)

    def test_healthy_instance_reports_nothing(self):
        par, mono = make_pair()
        with par:
            rules = random_rules(random.Random(6), 12, width=8, switches=4)
            drive_both(par, mono, rules)
            assert not par.degraded
            assert par.degraded_shards == ()
            assert par.events == []

    def test_log_callback_sees_supervision_events(self):
        lines = []
        par, mono = make_pair(max_restarts=0, log=lines.append)
        with par:
            rules = random_rules(random.Random(7), 12, width=8, switches=4)
            drive_both(par, mono, rules[:6])
            par._workers[0].process.kill()
            drive_both(par, mono, rules[6:])
            assert any("degraded" in line for line in lines)


class TestFallbackAndClose:
    def test_spawn_failure_falls_back_observably(self, monkeypatch):
        # Satellite fix: the constructor's inline fallback used to be
        # silent; now it must be recorded and flip `degraded`.
        import repro.libra.parallel as parallel_module

        def broken_get_context(method=None):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(parallel_module.multiprocessing, "get_context",
                            broken_get_context)
        with ParallelShardedDeltaNet(even_shards(2, 8), width=8) as par:
            assert not par.parallel
            assert par.degraded
            events = [e for e in par.events if e["kind"] == "inline-fallback"]
            assert events and "no processes" in events[0]["cause"]

    def test_forced_inline_is_not_degraded(self):
        with ParallelShardedDeltaNet(even_shards(2, 8), width=8,
                                     force_inline=True) as par:
            assert not par.degraded  # the caller asked for inline

    def test_close_is_idempotent_after_worker_death(self):
        par, _mono = make_pair()
        for endpoint in par._workers:
            endpoint.process.kill()
            endpoint.process.join(timeout=5)
        par.close()
        par.close()  # second close: no raise, nothing to reap twice
        assert all(not endpoint.process.is_alive()
                   for endpoint in par._workers
                   if isinstance(endpoint, _ProcessEndpoint))
