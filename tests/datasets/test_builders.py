"""Tests for the eight Table 2 dataset builders."""

import pytest

from repro.core.deltanet import DeltaNet
from repro.datasets.builders import (
    DATASET_BUILDERS, PAPER_TABLE2, Dataset, build_airtel1, build_airtel2,
    build_berkeley, build_dataset, build_four_switch, build_rf,
)


class TestRegistry:
    def test_all_paper_datasets_have_builders(self):
        assert set(DATASET_BUILDERS) == set(PAPER_TABLE2)

    def test_build_by_name(self):
        dataset = build_dataset("Berkeley", scale=0.1)
        assert isinstance(dataset, Dataset)
        assert dataset.name == "Berkeley"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_dataset("nope")


class TestSyntheticDatasets:
    def test_berkeley_insert_then_remove(self):
        dataset = build_berkeley(scale=0.2)
        assert dataset.num_ops == 2 * dataset.num_inserts
        assert dataset.topology.num_nodes == 23

    def test_rf_datasets_use_rocketfuel_topologies(self):
        dataset = build_rf(1755, scale=0.05)
        assert dataset.topology.num_nodes == 87
        assert dataset.name == "RF-1755"

    def test_scale_controls_size(self):
        small = build_berkeley(scale=0.1)
        large = build_berkeley(scale=0.3)
        assert large.num_ops > small.num_ops

    def test_determinism(self):
        a = build_berkeley(scale=0.1)
        b = build_berkeley(scale=0.1)
        assert [op.to_line() for op in a.ops] == [op.to_line() for op in b.ops]

    def test_replayable_through_deltanet(self):
        dataset = build_berkeley(scale=0.1)
        net = DeltaNet()
        for op in dataset.ops:
            if op.is_insert:
                net.insert_rule(op.rule)
            else:
                net.remove_rule(op.rid)
        assert net.num_rules == 0  # every insert had its removal


class TestSdnDatasets:
    def test_airtel1_balanced_churn(self):
        dataset = build_airtel1(scale=0.5)
        assert dataset.num_ops > 0
        inserts = dataset.num_inserts
        removals = dataset.num_ops - inserts
        # Initial programming is insert-only; the failure sweep is
        # insert/remove balanced, so inserts strictly exceed removals.
        assert inserts > removals > 0

    def test_airtel2_has_pair_failures(self):
        dataset = build_airtel2(scale=0.5, pair_limit=5)
        assert dataset.num_ops > 0
        assert dataset.name == "Airtel2"

    def test_four_switch_insert_only(self):
        dataset = build_four_switch(scale=0.5, rounds=2)
        assert dataset.num_ops == dataset.num_inserts
        assert dataset.topology.num_nodes == 4

    def test_airtel_replayable_with_loop_checks(self):
        from repro.replay import DeltaNetEngine

        dataset = build_airtel1(scale=0.25)
        engine = DeltaNetEngine()
        loops = sum(engine.process(op) for op in dataset.ops)
        # Transient reroute churn may or may not loop, but the replay must
        # complete and keep the data plane consistent.
        assert engine.deltanet.num_rules > 0
        assert loops >= 0


class TestDatasetStats:
    def test_stats_row_shape(self):
        dataset = build_four_switch(scale=0.2, rounds=1)
        name, nodes, links, ops = dataset.stats_row()
        assert name == "4Switch"
        assert nodes >= 4  # includes border-router handoff nodes
        assert links > 0 and ops == dataset.num_ops
