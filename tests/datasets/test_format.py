"""Tests for the replayable dataset text format."""

import io

import pytest

from repro.core.rules import Action, DROP, Rule
from repro.datasets.format import (
    Op, load_ops, parse_line, read_ops, save_ops, write_ops,
)


class TestOp:
    def test_insert_carries_rule(self):
        rule = Rule.forward(3, 0, 16, 5, "s1", "s2")
        op = Op.insert(rule)
        assert op.is_insert and op.rid == 3 and op.rule == rule

    def test_remove_has_no_rule(self):
        op = Op.remove(7)
        assert not op.is_insert and op.rule is None


class TestLineFormat:
    def test_insert_roundtrip(self):
        rule = Rule.forward(3, 10, 12, 5, "s1", "s2")
        op = parse_line(Op.insert(rule).to_line())
        assert op.is_insert
        assert op.rule.interval == (10, 12)
        assert op.rule.priority == 5
        assert op.rule.source == "s1" and op.rule.target == "s2"

    def test_remove_roundtrip(self):
        assert parse_line(Op.remove(42).to_line()).rid == 42

    def test_int_nodes_roundtrip_as_ints(self):
        rule = Rule.forward(0, 0, 4, 1, 7, 9)
        op = parse_line(Op.insert(rule).to_line())
        assert op.rule.source == 7 and isinstance(op.rule.source, int)

    def test_drop_rule_roundtrip(self):
        rule = Rule.drop(1, 0, 4, 1, "s1")
        op = parse_line(Op.insert(rule).to_line())
        assert op.rule.action is Action.DROP
        assert op.rule.target == DROP

    @pytest.mark.parametrize("bad", [
        "", "x\t1", "+\t1\ts\tt\t0", "-\t1\textra", "+\t1\ts\tt\t0\t4",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_line(bad)


class TestStreams:
    def make_ops(self):
        return [
            Op.insert(Rule.forward(0, 0, 16, 1, "a", "b")),
            Op.insert(Rule.drop(1, 4, 8, 9, "a")),
            Op.remove(0),
        ]

    def test_write_read_stream(self):
        ops = self.make_ops()
        buffer = io.StringIO()
        assert write_ops(ops, buffer) == 3
        buffer.seek(0)
        back = list(read_ops(buffer))
        assert [op.to_line() for op in back] == [op.to_line() for op in ops]

    def test_blank_lines_skipped(self):
        buffer = io.StringIO("\n" + Op.remove(5).to_line() + "\n\n")
        assert [op.rid for op in read_ops(buffer)] == [5]

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "ops.txt")
        ops = self.make_ops()
        assert save_ops(ops, path) == 3
        back = load_ops(path)
        assert [op.to_line() for op in back] == [op.to_line() for op in ops]
