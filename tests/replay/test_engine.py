"""Tests for the replay/measurement harness."""

import pytest

from repro.core.rules import Rule
from repro.datasets.format import Op
from repro.replay.engine import DeltaNetEngine, VeriflowEngine, replay


def ring_ops(close=True):
    ops = [
        Op.insert(Rule.forward(0, 0, 16, 1, "s1", "s2")),
        Op.insert(Rule.forward(1, 0, 16, 1, "s2", "s3")),
    ]
    if close:
        ops.append(Op.insert(Rule.forward(2, 0, 16, 1, "s3", "s1")))
    return ops


class TestDeltaNetEngine:
    def test_processes_and_counts_loops(self):
        engine = DeltaNetEngine(width=4)
        result = replay(ring_ops(), engine)
        assert result.num_ops == 3
        assert result.loops_found >= 1
        assert len(result.times) == 3
        assert result.total_time > 0

    def test_removal_ops(self):
        engine = DeltaNetEngine(width=4)
        replay(ring_ops(), engine)
        result = replay([Op.remove(2)], engine)
        assert result.loops_found == 0
        assert engine.deltanet.num_rules == 2

    def test_no_check_mode(self):
        engine = DeltaNetEngine(width=4, check_loops=False)
        result = replay(ring_ops(), engine)
        assert result.loops_found == 0

    def test_atom_count_exposed(self):
        engine = DeltaNetEngine(width=4)
        replay(ring_ops(close=False), engine)
        assert engine.num_atoms == engine.deltanet.num_atoms


class TestVeriflowEngine:
    def test_loop_agreement_with_deltanet(self):
        veriflow = VeriflowEngine(width=4)
        deltanet = DeltaNetEngine(width=4)
        v_result = replay(ring_ops(), veriflow)
        d_result = replay(ring_ops(), deltanet)
        assert (v_result.loops_found > 0) == (d_result.loops_found > 0)

    def test_max_affected_ecs_tracked(self):
        engine = VeriflowEngine(width=4)
        replay(ring_ops(), engine)
        assert engine.max_affected_ecs >= 1


class TestReplayResult:
    def test_summary_keys(self):
        engine = DeltaNetEngine(width=4)
        result = replay(ring_ops(), engine)
        summary = result.summary()
        for key in ("median", "mean", "p99", "max", "frac_below_threshold"):
            assert key in summary

    def test_progress_callback(self):
        engine = DeltaNetEngine(width=4)
        seen = []
        replay(ring_ops(), engine, progress_every=1, progress=seen.append)
        assert seen == [1, 2, 3]

    def test_engine_name(self):
        engine = DeltaNetEngine(width=4)
        assert replay([], engine).engine_name == "DeltaNetEngine"
        assert replay([], engine, engine_name="x").engine_name == "x"
