"""SessionEngine checkpointing: crash mid-replay, resume, same results."""

import random

import pytest

from repro.datasets.format import Op
from repro.persist import SessionStore
from repro.replay.engine import SessionEngine, iter_batches, make_engine, replay
from tests.conftest import random_rules


def make_ops(seed=0x5EED, count=60):
    rng = random.Random(seed)
    rules = random_rules(rng, count, width=8, switches=4)
    ops = []
    live = []
    for rule in rules:
        ops.append(Op.insert(rule))
        live.append(rule.rid)
        if live and rng.random() < 0.3:
            ops.append(Op.remove(live.pop(rng.randrange(len(live)))))
    return ops


@pytest.mark.parametrize("engine_name", ["deltanet", "sharded"])
@pytest.mark.parametrize("batch_size", [None, 7])
def test_crash_resume_equals_uninterrupted(tmp_path, engine_name, batch_size):
    ops = make_ops()
    if batch_size is None:
        crash_at = len(ops) // 2
    else:
        # Crash at a realized chunk boundary: batch aggregation makes
        # intra-batch transients invisible, so identical verdicts are
        # only promised when the resumed run re-chunks identically —
        # which checkpointing guarantees (snapshots land between
        # batches), and a mid-stream kill leaves the partial batch to
        # the journal, which also replays it as one batch.
        chunks = list(iter_batches(ops, batch_size))
        crash_at = sum(len(chunk) for chunk in chunks[:len(chunks) // 2])

    reference = make_engine(engine_name)
    replay(ops, reference, batch_size=batch_size)
    expected = [v.signature for v in reference.session.violations()]
    reference.close()

    # Crash: replay half, then drop the engine without close() — the
    # final checkpoint never happens, like a kill -9.
    state_dir = str(tmp_path / "ckpt")
    crashing = make_engine(engine_name, checkpoint_dir=state_dir,
                           checkpoint_every=13)
    replay(ops[:crash_at], crashing, batch_size=batch_size)
    crashing.session.close()  # reap backend workers only; store untouched

    resumed, info = SessionEngine.resume(state_dir)
    assert info.sequence == crash_at
    assert resumed.session.sequence == crash_at
    replay(ops[crash_at:], resumed, batch_size=batch_size)
    assert [v.signature for v in resumed.session.violations()] == expected
    assert resumed.session.sequence == len(ops)
    resumed.close()


def test_clean_close_checkpoints_everything(tmp_path):
    ops = make_ops(count=20)
    state_dir = str(tmp_path / "ckpt")
    engine = make_engine("deltanet", checkpoint_dir=state_dir,
                         checkpoint_every=1000)
    replay(ops, engine)
    engine.close()
    resumed, info = SessionEngine.resume(state_dir)
    assert info.replayed == 0  # the close() checkpoint covered the tail
    assert info.sequence == len(ops)
    resumed.close()


def test_resume_without_checkpoint_fails(tmp_path):
    with pytest.raises(FileNotFoundError):
        SessionEngine.resume(str(tmp_path / "nothing"))


def test_resume_forwards_backend_overrides(tmp_path):
    state_dir = str(tmp_path / "ckpt")
    engine = SessionEngine("parallel", width=8, shards=2,
                           force_inline=True, checkpoint_dir=state_dir)
    for op in make_ops(count=6)[:6]:
        engine.process(op)
    engine.close()
    resumed, _info = SessionEngine.resume(state_dir, force_inline=True)
    assert resumed.session.native.parallel is False
    resumed.close()


def test_resume_folds_journal_tail_into_snapshot(tmp_path):
    ops = make_ops(count=20)
    state_dir = str(tmp_path / "ckpt")
    engine = make_engine("deltanet", checkpoint_dir=state_dir,
                         checkpoint_every=7)
    replay(ops, engine)
    # simulate crash: no close()
    engine.session.close()
    resumed, info = SessionEngine.resume(state_dir)
    assert info.replayed > 0
    resumed.close()
    # The resume checkpointed the folded state: recovering again has
    # nothing left to replay.
    _session, info2 = SessionStore(state_dir).recover()
    assert info2.replayed == 0
    assert info2.sequence == info.sequence
