"""Tests for the incremental (delta-graph) variant of Algorithm 3."""

import random

import pytest

from repro.checkers.allpairs import (
    all_pairs_reachability, incremental_all_pairs, merge_closures,
)
from repro.core.atomset import atoms_to_bitmask
from repro.core.delta_graph import DeltaGraph
from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule

from tests.conftest import random_rules


def masked(closure, atoms):
    mask = atoms_to_bitmask(atoms)
    return {key: value & mask for key, value in closure.items()
            if value & mask}


class TestIncrementalAllPairs:
    def test_empty_delta_empty_result(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
        assert incremental_all_pairs(net, DeltaGraph()) == {}

    def test_equals_full_closure_masked_to_affected_atoms(self):
        net = DeltaNet(width=6)
        net.insert_rule(Rule.forward(0, 0, 64, 1, "a", "b"))
        net.insert_rule(Rule.forward(1, 0, 32, 1, "b", "c"))
        delta = net.insert_rule(Rule.forward(2, 16, 48, 9, "a", "d"))
        incremental = incremental_all_pairs(net, delta)
        full = all_pairs_reachability(net)
        assert incremental == masked(full, delta.touched_atoms())

    @pytest.mark.parametrize("seed", range(6))
    def test_merge_maintains_full_closure_under_churn(self, seed):
        """cached_closure + per-update increments == recompute-from-scratch."""
        rng = random.Random(seed * 17)
        net = DeltaNet(width=6)
        cached = {}
        live = []
        for rule in random_rules(rng, 30, width=6, switches=4,
                                 drop_fraction=0.1):
            if live and rng.random() < 0.3:
                victim = live.pop(rng.randrange(len(live)))
                delta = net.remove_rule(victim.rid)
            else:
                delta = net.insert_rule(rule)
                live.append(rule)
            incremental = incremental_all_pairs(net, delta)
            cached = merge_closures(cached, incremental,
                                    delta.touched_atoms())
            assert cached == all_pairs_reachability(net)

    @pytest.mark.parametrize("seed", range(3))
    def test_merge_with_gc_collected_atoms(self, seed):
        """GC recycles atom ids; the cached closure must drop their bits."""
        rng = random.Random(seed * 7 + 3)
        net = DeltaNet(width=6, gc=True)
        cached = {}
        live = []
        for rule in random_rules(rng, 25, width=6, switches=3,
                                 drop_fraction=0.0):
            if live and rng.random() < 0.5:
                victim = live.pop(rng.randrange(len(live)))
                delta = net.remove_rule(victim.rid)
            else:
                delta = net.insert_rule(rule)
                live.append(rule)
            cached = merge_closures(cached, incremental_all_pairs(net, delta),
                                    delta.touched_atoms())
            assert cached == all_pairs_reachability(net)

    def test_incremental_is_cheaper_on_atoms_touched(self):
        """The increment only looks at delta atoms, not the universe."""
        net = DeltaNet(width=8)
        for rid in range(20):
            net.insert_rule(Rule.forward(rid, rid * 8, rid * 8 + 16,
                                         rid, f"s{rid % 3}", f"s{(rid + 1) % 3}"))
        delta = net.insert_rule(Rule.forward(99, 0, 8, 999, "s0", "s9"))
        incremental = incremental_all_pairs(net, delta)
        touched = set()
        for _key, mask in incremental.items():
            from repro.core.atomset import bitmask_to_atoms

            touched |= bitmask_to_atoms(mask)
        assert touched <= delta.touched_atoms()
