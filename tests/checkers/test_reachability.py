"""Tests for atom-level reachability queries."""

import random

import pytest

from repro.checkers.reachability import find_path, reachable_atoms, reachable_nodes
from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule

from tests.conftest import BruteForceDataPlane, random_rules


def chain_net() -> DeltaNet:
    """s1 -[0:8)-> s2 -[0:4)-> s3; plus s1 -[8:16)-> s4."""
    net = DeltaNet(width=4)
    net.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))
    net.insert_rule(Rule.forward(1, 0, 4, 1, "s2", "s3"))
    net.insert_rule(Rule.forward(2, 8, 16, 1, "s1", "s4"))
    return net


def atoms_to_points(net, atoms):
    points = set()
    for atom in atoms:
        lo, hi = net.atoms.atom_interval(atom)
        points.update(range(lo, hi))
    return points


class TestReachableAtoms:
    def test_direct_hop(self):
        net = chain_net()
        atoms = reachable_atoms(net, "s1", "s2")
        assert atoms_to_points(net, atoms) == set(range(0, 8))

    def test_two_hops_intersect_labels(self):
        net = chain_net()
        atoms = reachable_atoms(net, "s1", "s3")
        assert atoms_to_points(net, atoms) == set(range(0, 4))

    def test_unreachable(self):
        net = chain_net()
        assert reachable_atoms(net, "s4", "s1") == set()
        assert reachable_atoms(net, "s2", "s4") == set()

    def test_cycle_terminates(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
        net.insert_rule(Rule.forward(1, 0, 16, 1, "b", "a"))
        atoms = reachable_atoms(net, "a", "b")
        assert atoms_to_points(net, atoms) == set(range(16))

    def test_drop_blocks_flow(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.drop(0, 0, 16, 9, "s1"))
        net.insert_rule(Rule.forward(1, 0, 16, 1, "s1", "s2"))
        assert reachable_atoms(net, "s1", "s2") == set()

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_pointwise_oracle(self, seed):
        rng = random.Random(seed)
        net, oracle = DeltaNet(width=6), BruteForceDataPlane(width=6)
        for rule in random_rules(rng, 25, width=6, switches=4):
            net.insert_rule(rule)
            oracle.insert(rule)
        for src, dst in (("s0", "s1"), ("s1", "s3"), ("s2", "s0")):
            got = atoms_to_points(net, reachable_atoms(net, src, dst))
            expected = set()
            for lo, hi in oracle.segments():
                # Chase the point from src; stop on revisit.
                node, seen = src, set()
                while node is not None and node not in seen:
                    seen.add(node)
                    if node == dst and node != src:
                        expected.update(range(lo, hi))
                        break
                    node = oracle.next_hop(node, lo)
            assert got == expected, (src, dst)


class TestPaths:
    def test_reachable_nodes_order(self):
        net = chain_net()
        atom = net.atoms.atom_at(1)
        assert reachable_nodes(net, "s1", atom) == ["s1", "s2", "s3"]

    def test_find_path(self):
        net = chain_net()
        atom = net.atoms.atom_at(1)
        assert find_path(net, "s1", "s3", atom) == ["s1", "s2", "s3"]
        assert find_path(net, "s1", "s4", atom) is None

    def test_reachable_nodes_terminates_on_loop(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
        net.insert_rule(Rule.forward(1, 0, 16, 1, "b", "a"))
        atom = net.atoms.atom_at(0)
        assert reachable_nodes(net, "a", atom) == ["a", "b"]
