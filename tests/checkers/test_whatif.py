"""Tests for what-if link-failure queries — incl. Veriflow-RI agreement."""

import random

import pytest

from repro.checkers.whatif import link_failure_impact, sweep_all_links
from repro.core.deltanet import DeltaNet
from repro.core.intervals import normalize
from repro.core.rules import Link, Rule
from repro.veriflow.verifier import VeriflowRI

from tests.conftest import random_rules


def chain_net() -> DeltaNet:
    net = DeltaNet(width=4)
    net.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))
    net.insert_rule(Rule.forward(1, 0, 4, 1, "s2", "s3"))
    net.insert_rule(Rule.forward(2, 8, 16, 1, "s1", "s4"))
    return net


class TestDeltaNetSide:
    def test_affected_atoms_are_the_links_label(self):
        net = chain_net()
        impact = link_failure_impact(net, ("s1", "s2"))
        assert impact.affected_atoms == net.label_of(("s1", "s2"))
        assert impact.num_affected_flows == len(impact.affected_atoms)

    def test_affected_intervals(self):
        net = chain_net()
        impact = link_failure_impact(net, ("s1", "s2"))
        assert impact.affected_intervals(net) == [(0, 8)]

    def test_subgraph_restricted_to_affected_atoms(self):
        net = chain_net()
        impact = link_failure_impact(net, ("s2", "s3"))
        assert set(impact.affected_subgraph) == {Link("s1", "s2"),
                                                 Link("s2", "s3")}
        for atoms in impact.affected_subgraph.values():
            assert atoms <= impact.affected_atoms

    def test_unused_link_has_no_impact(self):
        net = chain_net()
        impact = link_failure_impact(net, ("s9", "s8"))
        assert impact.num_affected_flows == 0
        assert impact.affected_subgraph == {}

    def test_loop_check_in_affected_subgraph(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
        net.insert_rule(Rule.forward(1, 0, 16, 1, "b", "a"))
        impact = link_failure_impact(net, ("a", "b"), check_loops=True)
        assert impact.loops

    def test_sweep_covers_all_labelled_links(self):
        net = chain_net()
        sweep = sweep_all_links(net)
        assert set(sweep) == set(net.label)


class TestAgreementWithVeriflow:
    @pytest.mark.parametrize("seed", range(6))
    def test_affected_packet_space_matches(self, seed):
        """Delta-net's affected atoms == Veriflow-RI's affected ECs,
        compared as canonical header-space interval unions."""
        rng = random.Random(seed)
        net, veriflow = DeltaNet(width=6), VeriflowRI(width=6)
        rules = random_rules(rng, 30, width=6, switches=4, drop_fraction=0.0)
        for rule in rules:
            net.insert_rule(rule)
            veriflow.insert_rule(rule, check_loops=False)
        for link in list(net.label):
            impact = link_failure_impact(net, link)
            delta_space = normalize(net.atoms.atom_interval(a)
                                    for a in impact.affected_atoms)
            veriflow_space = normalize(
                g.interval for g in veriflow.whatif_link_failure(link))
            assert delta_space == veriflow_space, link
