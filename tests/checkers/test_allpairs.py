"""Tests for Algorithm 3 (atom-labelled Floyd–Warshall closure)."""

import random

import pytest

from repro.checkers.allpairs import (
    all_pairs_reachability, all_pairs_reference, loops_from_closure,
    reachability_matrix,
)
from repro.checkers.reachability import reachable_atoms
from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule

from tests.conftest import random_rules


def chain_net() -> DeltaNet:
    net = DeltaNet(width=4)
    net.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))
    net.insert_rule(Rule.forward(1, 0, 4, 1, "s2", "s3"))
    net.insert_rule(Rule.forward(2, 8, 16, 1, "s1", "s4"))
    return net


class TestSmallCases:
    def test_chain_closure(self):
        net = chain_net()
        closure = all_pairs_reachability(net)
        assert reachability_matrix(closure, "s1", "s2") == \
            set(net.atoms.atoms_in(0, 8))
        assert reachability_matrix(closure, "s1", "s3") == \
            set(net.atoms.atoms_in(0, 4))
        assert reachability_matrix(closure, "s2", "s4") == set()

    def test_empty_network(self):
        assert all_pairs_reachability(DeltaNet(width=4)) == {}

    def test_loop_shows_on_diagonal(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
        net.insert_rule(Rule.forward(1, 0, 16, 1, "b", "a"))
        closure = all_pairs_reachability(net)
        looping = loops_from_closure(closure)
        assert set(looping) == {"a", "b"}

    def test_drop_edges_excluded(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.drop(0, 0, 16, 1, "a"))
        assert all_pairs_reachability(net) == {}


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_per_atom_bfs(self, seed):
        rng = random.Random(seed)
        net = DeltaNet(width=6)
        for rule in random_rules(rng, 30, width=6, switches=5,
                                 drop_fraction=0.1):
            net.insert_rule(rule)
        assert all_pairs_reachability(net) == all_pairs_reference(net)

    @pytest.mark.parametrize("seed", range(5))
    def test_consistent_with_single_pair_reachability(self, seed):
        """closure[src,dst] must contain the worklist algorithm's answer
        restricted to multi-hop flows (the closure starts from edges)."""
        rng = random.Random(50 + seed)
        net = DeltaNet(width=6)
        for rule in random_rules(rng, 25, width=6, switches=4,
                                 drop_fraction=0.0):
            net.insert_rule(rule)
        closure = all_pairs_reachability(net)
        for src in ("s0", "s1"):
            for dst in ("s2", "s3"):
                assert reachability_matrix(closure, src, dst) == \
                    reachable_atoms(net, src, dst)
