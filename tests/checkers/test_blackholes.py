"""Tests for black-hole detection."""

from repro.checkers.blackholes import find_blackholes
from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule


class TestBlackholes:
    def test_traffic_dies_at_ruleless_node(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        holes = find_blackholes(net)
        assert set(holes) == {"s2"}
        assert holes["s2"] == set(net.atoms.atoms_in(0, 16))

    def test_forwarded_traffic_is_not_blackholed(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        net.insert_rule(Rule.forward(1, 0, 16, 1, "s2", "s3"))
        holes = find_blackholes(net)
        assert "s2" not in holes
        assert set(holes) == {"s3"}

    def test_partial_coverage_blackholes_the_rest(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        net.insert_rule(Rule.forward(1, 0, 8, 1, "s2", "s3"))
        holes = find_blackholes(net, expected_sinks=["s3"])
        assert set(holes) == {"s2"}
        spans = sorted(net.atoms.atom_interval(a) for a in holes["s2"])
        assert spans[0][0] == 8 and spans[-1][1] == 16

    def test_explicit_drop_is_not_a_blackhole(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        net.insert_rule(Rule.drop(1, 0, 16, 1, "s2"))
        assert find_blackholes(net) == {}

    def test_expected_sinks_excluded(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "egress"))
        assert find_blackholes(net, expected_sinks=["egress"]) == {}

    def test_empty_network(self):
        assert find_blackholes(DeltaNet(width=4)) == {}
