"""Tests for incremental and exhaustive forwarding-loop detection."""

import random

import pytest

from repro.checkers.loops import Loop, LoopChecker, find_forwarding_loops
from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule

from tests.conftest import BruteForceDataPlane, random_rules


def make_ring_loop(width=4, lo=0, hi=16):
    """s1 -> s2 -> s3 -> s1 for the whole space."""
    net = DeltaNet(width=width)
    checker = LoopChecker(net)
    net.insert_rule(Rule.forward(0, lo, hi, 1, "s1", "s2"))
    net.insert_rule(Rule.forward(1, lo, hi, 1, "s2", "s3"))
    return net, checker


class TestIncremental:
    def test_no_loop_on_chain(self):
        net, checker = make_ring_loop()
        delta = net.insert_rule(Rule.forward(2, 0, 16, 1, "s3", "s4"))
        assert checker.check_update(delta) == []

    def test_loop_detected_on_closing_edge(self):
        net, checker = make_ring_loop()
        delta = net.insert_rule(Rule.forward(2, 0, 16, 1, "s3", "s1"))
        loops = checker.check_update(delta)
        assert loops
        assert set(loops[0].cycle) == {"s1", "s2", "s3"}

    def test_loop_only_for_overlapping_atoms(self):
        net, checker = make_ring_loop(lo=0, hi=8)
        delta = net.insert_rule(Rule.forward(2, 4, 12, 1, "s3", "s1"))
        loops = checker.check_update(delta)
        assert len(loops) >= 1
        for loop in loops:
            atom_lo, atom_hi = net.atoms.atom_interval(loop.atom)
            assert 4 <= atom_lo and atom_hi <= 8  # only the shared space loops

    def test_removal_never_reports_loops(self):
        net, checker = make_ring_loop()
        net.insert_rule(Rule.forward(2, 0, 16, 1, "s3", "s1"))
        delta = net.remove_rule(2)
        assert checker.check_update(delta) == []

    def test_self_resolving_update_no_loops(self):
        net, checker = make_ring_loop()
        # A higher-priority deviation at s2 breaks the would-be ring.
        net.insert_rule(Rule.forward(2, 0, 16, 9, "s2", "s5"))
        delta = net.insert_rule(Rule.forward(3, 0, 16, 1, "s3", "s1"))
        loops = checker.check_update(delta)
        assert loops == []

    def test_drop_breaks_loop(self):
        net, checker = make_ring_loop()
        net.insert_rule(Rule.drop(2, 0, 16, 9, "s3"))
        delta = net.insert_rule(Rule.forward(3, 0, 16, 1, "s3", "s1"))
        assert checker.check_update(delta) == []


class TestExhaustive:
    def test_finds_existing_loop(self):
        net, _checker = make_ring_loop()
        net.insert_rule(Rule.forward(2, 0, 16, 1, "s3", "s1"))
        loops = find_forwarding_loops(net)
        assert loops
        assert all(set(l.cycle) == {"s1", "s2", "s3"} for l in loops)

    def test_empty_when_no_loops(self):
        net, _checker = make_ring_loop()
        assert find_forwarding_loops(net) == []

    def test_atom_filter(self):
        net, _checker = make_ring_loop()
        net.insert_rule(Rule.forward(2, 0, 16, 1, "s3", "s1"))
        looping_atom = find_forwarding_loops(net)[0].atom
        other_atoms = [a for a, _ in net.atoms.intervals() if a != looping_atom]
        assert find_forwarding_loops(net, atoms=[looping_atom])
        # Filtering to other atoms of the same full-space rules still finds
        # their loops; filtering to nothing finds nothing.
        assert find_forwarding_loops(net, atoms=[]) == []

    def test_canonical_rotation_dedups(self):
        loop_a = Loop(1, ("s2", "s3", "s1")).canonical()
        loop_b = Loop(1, ("s1", "s2", "s3")).canonical()
        assert loop_a == loop_b


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(10))
    def test_exhaustive_matches_bruteforce(self, seed):
        rng = random.Random(seed)
        net, oracle = DeltaNet(width=6), BruteForceDataPlane(width=6)
        for rule in random_rules(rng, 30, width=6, switches=4,
                                 drop_fraction=0.05):
            net.insert_rule(rule)
            oracle.insert(rule)
        found = find_forwarding_loops(net)
        oracle_loops = oracle.loop_points()
        if oracle_loops:
            assert found, "oracle sees a loop Delta-net missed"
        else:
            assert not found, f"false loops: {found}"

    @pytest.mark.parametrize("seed", range(10))
    def test_incremental_agrees_with_exhaustive_presence(self, seed):
        """If an update creates the first loop, check_update must see it."""
        rng = random.Random(100 + seed)
        net = DeltaNet(width=6)
        checker = LoopChecker(net)
        had_loop = False
        for rule in random_rules(rng, 40, width=6, switches=4):
            delta = net.insert_rule(rule)
            incremental = checker.check_update(delta)
            now_has_loop = bool(find_forwarding_loops(net))
            if not had_loop and now_has_loop:
                assert incremental, "new loop missed by incremental check"
            had_loop = now_has_loop


class _SharedRepr:
    """Distinct node objects whose reprs collide (regression fixture)."""

    def __repr__(self):
        return "node"


class TestCanonicalPivot:
    def test_rotations_of_same_cycle_canonicalize_identically(self):
        """Two distinct nodes sharing a repr must not destabilize the
        pivot: every rotation of one cycle has one canonical form."""
        a, b = _SharedRepr(), _SharedRepr()
        cycle = (a, b, "z")
        rotations = [cycle[i:] + cycle[:i] for i in range(len(cycle))]
        canons = {Loop(0, rotation).canonical() for rotation in rotations}
        assert len(canons) == 1

    def test_distinct_cycles_stay_distinct(self):
        a, b = _SharedRepr(), _SharedRepr()
        one = Loop(0, (a, "z")).canonical()
        other = Loop(0, (b, "z")).canonical()
        assert one != other

    def test_plain_string_nodes_pivot_on_minimum(self):
        loop = Loop(3, ("s2", "s3", "s1")).canonical()
        assert loop.cycle[0] == "s1"
        assert loop.cycle == ("s1", "s2", "s3")
