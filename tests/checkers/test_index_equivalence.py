"""Index-backed checkers == sweep implementations, on randomized traces.

The acceptance property of the forwarding-index refactor: every checker
that now chases :class:`~repro.core.findex.ForwardingIndex` must return
results *identical* to the seed's rebuild-per-check sweeps (preserved in
:mod:`repro.checkers.sweep`) — for all five property types (loops,
blackholes, reachability, waypoint, isolation) and across the deltanet,
sharded and parallel backends.
"""

import random

import pytest

from repro.api import (
    BlackholeProperty, IsolationProperty, LoopProperty,
    ReachabilityProperty, VerificationSession, WaypointProperty,
)
from repro.checkers import sweep
from repro.checkers.blackholes import find_blackholes
from repro.checkers.isolation import check_isolation
from repro.checkers.loops import LoopChecker, find_forwarding_loops
from repro.checkers.reachability import reachable_atoms
from repro.checkers.waypoint import check_waypoint
from repro.core.deltanet import DeltaNet

from tests.conftest import random_rules

WIDTH = 8
SWITCHES = [f"s{i}" for i in range(5)]
SLICE_A = [(0, 64)]
SLICE_B = [(128, 224)]


def _random_trace(seed, count=70):
    """Deterministic interleaved insert/remove/batch op stream."""
    rng = random.Random(seed)
    pending = random_rules(rng, count, width=WIDTH, switches=len(SWITCHES),
                           drop_fraction=0.15)
    ops = []
    live = []
    while pending:
        roll = rng.random()
        if roll < 0.5 or not live:
            new_rule = pending.pop()
            live.append(new_rule.rid)
            ops.append(("insert", new_rule))
        elif roll < 0.8:
            ops.append(("remove", live.pop(rng.randrange(len(live)))))
        else:
            inserts = [pending.pop()
                       for _ in range(min(len(pending), rng.randrange(1, 5)))]
            removals = [live.pop(rng.randrange(len(live)))
                        for _ in range(min(len(live), rng.randrange(3)))]
            live.extend(rule.rid for rule in inserts)
            ops.append(("batch", inserts, removals))
    return ops


def _loop_keys(loops):
    return {(loop.atom, loop.cycle) for loop in loops}


class TestDeltaNetCheckersMatchSweeps:
    """The five checkers against their sweep twins, update by update."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("gc", [False, True])
    def test_trace_equivalence(self, seed, gc):
        net = DeltaNet(width=WIDTH, gc=gc)
        checker = LoopChecker(net)
        rng = random.Random(0x1D0 + seed)
        for op in _random_trace(0xE0 + seed):
            if op[0] == "insert":
                delta = net.insert_rule(op[1])
            elif op[0] == "remove":
                delta = net.remove_rule(op[1])
            else:
                delta = net.apply_batch(op[1], op[2])
            # 1. loops — incremental check vs the seed's rebuild+chase.
            assert _loop_keys(checker.check_update(delta)) == \
                _loop_keys(sweep.sweep_check_update(net, delta))
            if rng.random() > 0.25:
                continue  # the full sweeps are O(state): sample them
            assert _loop_keys(find_forwarding_loops(net)) == \
                _loop_keys(sweep.sweep_find_forwarding_loops(net))
            # 2. blackholes.
            assert find_blackholes(net) == sweep.sweep_find_blackholes(net)
            # 3. reachability, 4. waypoint — over random endpoint picks.
            src, dst, via = rng.sample(SWITCHES, 3)
            assert reachable_atoms(net, src, dst) == \
                sweep.sweep_reachable_atoms(net, src, dst)
            assert check_waypoint(net, src, dst, via) == \
                sweep.sweep_check_waypoint(net, src, dst, via)
            # 5. isolation.
            assert check_isolation(net, SLICE_A, SLICE_B) == \
                sweep.sweep_check_isolation(net, SLICE_A, SLICE_B)


def _five_properties():
    return (LoopProperty(), BlackholeProperty(),
            ReachabilityProperty("s0", "s3"),
            WaypointProperty("s0", "s3", "s1"),
            IsolationProperty(SLICE_A, SLICE_B))


def _signature_log(session):
    # Sorted by repr: within one commit the iteration order of loop
    # cycles may differ across backends, but the delivered *set* of
    # alerts (and their multiplicity) must not.
    return sorted(repr(violation.signature)
                  for violation in session.violations())


class TestBackendsAgreeOnWatchedProperties:
    """deltanet vs sharded vs parallel sessions: same trace, same alerts."""

    @pytest.mark.parametrize("seed", range(3))
    def test_alert_streams_identical(self, seed):
        trace = _random_trace(0xBAC + seed, count=50)
        sessions = {
            "deltanet": VerificationSession("deltanet", width=WIDTH,
                                            properties=_five_properties()),
            "sharded": VerificationSession("sharded", width=WIDTH, shards=3,
                                           properties=_five_properties()),
            "parallel": VerificationSession("parallel", width=WIDTH, shards=3,
                                            properties=_five_properties()),
        }
        try:
            for op in trace:
                for session in sessions.values():
                    if op[0] == "insert":
                        session.insert(op[1])
                    elif op[0] == "remove":
                        session.remove(op[1])
                    else:
                        session.apply_batch(op[1], op[2])
            logs = {name: _signature_log(session)
                    for name, session in sessions.items()}
            assert logs["sharded"] == logs["deltanet"]
            assert logs["parallel"] == logs["deltanet"]
            # One-shot checks on the final state agree too, and the
            # deltanet session's final state agrees with the sweeps.
            for prop in _five_properties():
                verdicts = {
                    name: sorted(repr(v.signature)
                                 for v in session.check(prop))
                    for name, session in sessions.items()}
                assert verdicts["sharded"] == verdicts["deltanet"]
                assert verdicts["parallel"] == verdicts["deltanet"]
            native = sessions["deltanet"].native
            assert {loop.cycle
                    for loop in sweep.sweep_find_forwarding_loops(native)} \
                == {cycle for cycle in sessions["deltanet"].find_loops()}
            assert set(sweep.sweep_find_blackholes(native)) == \
                set(sessions["deltanet"].find_blackholes())
        finally:
            for session in sessions.values():
                session.close()
