"""Tests for the waypoint (service-chaining) checker."""

import pytest

from repro.checkers.waypoint import check_waypoint
from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule


def net_with_bypass() -> DeltaNet:
    """src -> fw -> dst for [0:8); src -> dst directly for [8:16)."""
    net = DeltaNet(width=4)
    net.insert_rule(Rule.forward(0, 0, 8, 2, "src", "fw"))
    net.insert_rule(Rule.forward(1, 0, 16, 1, "fw", "dst"))
    net.insert_rule(Rule.forward(2, 8, 16, 2, "src", "dst"))
    return net


class TestWaypoint:
    def test_violations_are_the_bypassing_atoms(self):
        net = net_with_bypass()
        violations = check_waypoint(net, "src", "dst", "fw")
        spans = sorted(net.atoms.atom_interval(a) for a in violations)
        assert spans and spans[0][0] == 8 and spans[-1][1] == 16

    def test_no_violation_when_all_through_waypoint(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "src", "fw"))
        net.insert_rule(Rule.forward(1, 0, 16, 1, "fw", "dst"))
        assert check_waypoint(net, "src", "dst", "fw") == set()

    def test_unreachable_dst_is_fine(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "src", "fw"))
        assert check_waypoint(net, "src", "dst", "fw") == set()

    def test_waypoint_equal_endpoint_rejected(self):
        net = net_with_bypass()
        with pytest.raises(ValueError):
            check_waypoint(net, "src", "dst", "src")
        with pytest.raises(ValueError):
            check_waypoint(net, "src", "dst", "dst")

    def test_multi_hop_bypass_detected(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "src", "mid"))
        net.insert_rule(Rule.forward(1, 0, 16, 1, "mid", "dst"))
        violations = check_waypoint(net, "src", "dst", "fw")
        assert violations == set(net.atoms.atoms_in(0, 16))
