"""Tests for the slice-isolation checker."""

from repro.checkers.isolation import check_isolation
from repro.core.deltanet import DeltaNet
from repro.core.rules import Link, Rule


class TestIsolation:
    def test_isolated_slices(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))   # tenant A
        net.insert_rule(Rule.forward(1, 8, 16, 1, "s1", "s3"))  # tenant B
        assert check_isolation(net, [(0, 8)], [(8, 16)]) == {}

    def test_shared_link_detected(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))
        net.insert_rule(Rule.forward(1, 8, 16, 1, "s1", "s2"))
        offenders = check_isolation(net, [(0, 8)], [(8, 16)])
        assert set(offenders) == {Link("s1", "s2")}
        spans = sorted(net.atoms.atom_interval(a) for a in offenders[Link("s1", "s2")])
        assert spans[0][0] == 0 and spans[-1][1] == 16

    def test_downstream_mixing_detected(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 8, 1, "a1", "mix"))
        net.insert_rule(Rule.forward(1, 8, 16, 1, "b1", "mix"))
        net.insert_rule(Rule.forward(2, 0, 16, 1, "mix", "out"))
        offenders = check_isolation(net, [(0, 8)], [(8, 16)])
        assert Link("mix", "out") in offenders
        assert Link("a1", "mix") not in offenders

    def test_empty_slices(self):
        net = DeltaNet(width=4)
        net.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        assert check_isolation(net, [], [(0, 16)]) == {}
