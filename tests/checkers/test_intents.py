"""Tests for RIB/data-plane intent consistency checking."""

import pytest

from repro.bgp.prefixes import PrefixPool
from repro.bgp.updates import BgpUpdate, UpdateStream
from repro.checkers.intents import (
    check_intents, summarize_violations,
)
from repro.core.deltanet import DeltaNet
from repro.sdn.controller import Controller
from repro.sdn.sdnip import SdnIp
from repro.topology.generators import ring

PREFIX = (10 << 24, 8)


def build(n=4):
    controller = Controller(ring(n))
    net = DeltaNet()

    def mirror(op):
        if op.is_insert:
            net.insert_rule(op.rule)
        else:
            net.remove_rule(op.rid)

    controller.subscribe(mirror)
    peers = {f"bgp{i}": i for i in range(n)}
    sdnip = SdnIp(controller, peers)
    return controller, sdnip, net, peers


class TestCheckIntents:
    def test_fresh_programming_is_consistent(self):
        _c, sdnip, net, peers = build()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        assert check_intents(net, sdnip.rib, peers) == []

    def test_full_advertisement_round_is_consistent(self):
        _c, sdnip, net, peers = build()
        stream = UpdateStream(list(peers), PrefixPool(seed=3),
                              prefixes_per_peer=5, seed=3)
        sdnip.handle_updates(stream.initial_announcements())
        assert check_intents(net, sdnip.rib, peers) == []

    def test_reroute_stays_consistent(self):
        _c, sdnip, net, peers = build()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        sdnip.handle_link_failure(0, 1)
        assert check_intents(net, sdnip.rib, peers) == []
        sdnip.handle_link_recovery(0, 1)
        assert check_intents(net, sdnip.rib, peers) == []

    def test_detects_stale_next_hop_blackhole(self):
        """Manually remove one programmed rule: traffic now dies there."""
        controller, sdnip, net, peers = build()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        victim_rid, _hop = sdnip._installed[PREFIX][2]
        controller.uninstall(victim_rid)
        violations = check_intents(net, sdnip.rib, peers)
        assert violations
        assert summarize_violations(violations) == {"blackhole": 1}
        assert violations[0].ingress == 2

    def test_detects_loop(self):
        """Point two switches at each other for the prefix."""
        controller, sdnip, net, peers = build()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        lo, hi = PrefixPool.to_interval(PREFIX)
        # Overriding rules with a higher priority than plen=8.
        controller.install_forward(1, 2, lo, hi, 99)
        controller.install_forward(2, 1, lo, hi, 99)
        violations = check_intents(net, sdnip.rib, peers)
        assert "loop" in summarize_violations(violations)

    def test_detects_wrong_egress(self):
        """Divert traffic to a different border router."""
        controller, sdnip, net, peers = build()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        lo, hi = PrefixPool.to_interval(PREFIX)
        controller.install_forward(2, "bgp2", lo, hi, 99)
        violations = check_intents(net, sdnip.rib, peers)
        outcomes = summarize_violations(violations)
        assert outcomes.get("wrong-egress", 0) >= 1

    def test_best_route_change_checked_against_new_egress(self):
        _c, sdnip, net, peers = build()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 5))
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp2", 1))
        assert check_intents(net, sdnip.rib, peers) == []

    def test_custom_ingress_subset(self):
        _c, sdnip, net, peers = build()
        sdnip.handle_update(BgpUpdate("announce", PREFIX, "bgp0", 1))
        assert check_intents(net, sdnip.rib, peers, ingresses=[2]) == []
