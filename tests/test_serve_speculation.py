"""Daemon speculation verbs and the typed query envelope.

``speculate`` / ``commit`` / ``discard`` on :class:`StreamServer` (and,
through the shared verb table, the asyncio hub): children answer
spec-scoped updates and queries without journaling, ``commit`` replays
the buffered ops through the durable path (so they survive a crash),
``discard`` and ``close`` drop children without a trace, and the
``{"cmd": "query", "query": {...}}`` envelope round-trips typed
queries on both the base session and speculative children.
"""

import asyncio

import pytest

from repro.serve.aio import HUB_WRITE_CMDS, AsyncSessionHub
from repro.serve.sessions import SessionManager
from repro.serve.stream import StreamServer, WRITE_CMDS


def _rule(rid, source, target, lo=0, hi=128, priority=10):
    return {"rid": rid, "lo": lo, "hi": hi, "priority": priority,
            "source": source, "target": target}


@pytest.fixture()
def server(tmp_path):
    server = StreamServer(str(tmp_path / "store"), engine="deltanet",
                          width=8, log=lambda line: None)
    yield server
    server.close()


def req(server, request):
    response, _keep = server.handle_request(request)
    return response


def seed_ring_minus_one(server):
    """a->b->c plus a disjoint a->c; adding c->a closes a loop."""
    for rid, (src, dst, lo, hi) in enumerate([("a", "b", 0, 128),
                                              ("b", "c", 0, 128),
                                              ("a", "c", 128, 256)]):
        response = req(server, {"cmd": "insert",
                                "rule": _rule(rid, src, dst, lo, hi)})
        assert response["ok"], response


class TestVerbTables:
    def test_speculative_verbs_are_writes(self):
        assert {"speculate", "commit", "discard"} <= WRITE_CMDS
        assert {"speculate", "commit", "discard"} <= HUB_WRITE_CMDS


class TestTypedQueryEnvelope:
    def test_typed_query_and_legacy_what_agree(self, server):
        seed_ring_minus_one(server)
        typed = req(server, {"cmd": "query",
                             "query": {"kind": "flows_on",
                                       "source": "a", "target": "b"}})
        assert typed["ok"] and typed["result"]["kind"] == "flows_on"
        legacy = req(server, {"cmd": "query", "what": "flows_on",
                              "source": "a", "target": "b"})
        assert typed["result"]["spans"] == legacy["result"]

    def test_bad_typed_query_is_refused_readably(self, server):
        response = req(server, {"cmd": "query", "query": {"kind": "nope"}})
        assert not response["ok"] and "nope" in response["error"]


class TestSpeculationVerbs:
    def test_fork_update_query_commit(self, server):
        seed_ring_minus_one(server)
        forked = req(server, {"cmd": "speculate"})
        assert forked["ok"], forked
        spec = forked["spec"]
        inserted = req(server, {"cmd": "insert", "spec": spec,
                                "rule": _rule(3, "c", "a")})
        assert inserted["ok"] and inserted["buffered"] == 1
        assert inserted["violations"], "child must see the loop it made"
        child_loops = req(server, {"cmd": "query", "spec": spec,
                                   "query": {"kind": "loops"}})
        assert child_loops["result"]["violations"]
        parent_loops = req(server, {"cmd": "query",
                                    "query": {"kind": "loops"}})
        assert not parent_loops["result"]["violations"]
        committed = req(server, {"cmd": "commit", "spec": spec})
        assert committed["ok"] and committed["committed"] == 1
        parent_loops = req(server, {"cmd": "query",
                                    "query": {"kind": "loops"}})
        assert parent_loops["result"]["violations"]

    def test_commit_is_journaled_and_survives_recovery(self, server, tmp_path):
        seed_ring_minus_one(server)
        spec = req(server, {"cmd": "speculate"})["spec"]
        req(server, {"cmd": "insert", "spec": spec,
                     "rule": _rule(3, "c", "a")})
        req(server, {"cmd": "commit", "spec": spec})
        sequence = server.session.sequence
        server.close()
        recovered = StreamServer(str(tmp_path / "store"), engine="deltanet",
                                 width=8, log=lambda line: None)
        try:
            assert recovered.session.sequence == sequence
            response = req(recovered, {"cmd": "query",
                                       "query": {"kind": "loops"}})
            assert response["result"]["violations"]
        finally:
            recovered.close()

    def test_discard_leaves_no_trace_and_no_journal(self, server):
        seed_ring_minus_one(server)
        sequence = server.session.sequence
        spec = req(server, {"cmd": "speculate"})["spec"]
        req(server, {"cmd": "insert", "spec": spec,
                     "rule": _rule(3, "c", "a")})
        dropped = req(server, {"cmd": "discard", "spec": spec})
        assert dropped["ok"] and dropped["discarded"]
        assert server.session.sequence == sequence
        response = req(server, {"cmd": "query", "query": {"kind": "loops"}})
        assert not response["result"]["violations"]

    def test_committing_one_child_stales_its_sibling(self, server):
        seed_ring_minus_one(server)
        first = req(server, {"cmd": "speculate"})["spec"]
        second = req(server, {"cmd": "speculate"})["spec"]
        req(server, {"cmd": "insert", "spec": first,
                     "rule": _rule(3, "c", "a")})
        req(server, {"cmd": "commit", "spec": first})
        stale = req(server, {"cmd": "insert", "spec": second,
                             "rule": _rule(4, "c", "a", 128, 256)})
        assert not stale["ok"]
        assert "StaleSpeculationError" in stale["error"]
        req(server, {"cmd": "discard", "spec": second})

    def test_unknown_spec_is_refused(self, server):
        for cmd in ({"cmd": "commit", "spec": "spec-99"},
                    {"cmd": "discard", "spec": "spec-99"},
                    {"cmd": "query", "spec": "spec-99",
                     "query": {"kind": "loops"}}):
            response = req(server, cmd)
            assert not response["ok"]
            assert "unknown speculation" in response["error"]

    def test_close_discards_open_children(self, tmp_path):
        server = StreamServer(str(tmp_path / "store2"), engine="deltanet",
                              width=8, log=lambda line: None)
        seed_ring_minus_one(server)
        spec = req(server, {"cmd": "speculate"})["spec"]
        req(server, {"cmd": "insert", "spec": spec,
                     "rule": _rule(3, "c", "a")})
        server.close()  # must not deadlock, journal, or leak the child
        assert not server._specs


class TestHubSpeculation:
    def test_speculation_through_the_async_hub(self, tmp_path):
        async def drive():
            manager = SessionManager(str(tmp_path / "hub"),
                                     defaults={"engine": "deltanet",
                                               "width": 8})
            hub = AsyncSessionHub(manager)
            conn = type("Conn", (), {"session": None})()
            try:
                async def rpc(request):
                    response, _keep = await hub.handle_request(conn, request)
                    return response

                opened = await rpc({"cmd": "open", "session": "tenant-a"})
                assert opened["ok"], opened
                for rid, (src, dst) in enumerate([("a", "b"), ("b", "c")]):
                    inserted = await rpc({"cmd": "insert",
                                          "rule": _rule(rid, src, dst)})
                    assert inserted["ok"], inserted
                forked = await rpc({"cmd": "speculate"})
                assert forked["ok"], forked
                spec = forked["spec"]
                inserted = await rpc({"cmd": "insert", "spec": spec,
                                      "rule": _rule(2, "c", "a")})
                assert inserted["ok"] and inserted["buffered"] == 1
                child = await rpc({"cmd": "query", "spec": spec,
                                   "query": {"kind": "loops"}})
                assert child["result"]["violations"]
                parent = await rpc({"cmd": "query",
                                    "query": {"kind": "loops"}})
                assert not parent["result"]["violations"]
                committed = await rpc({"cmd": "commit", "spec": spec})
                assert committed["ok"] and committed["committed"] == 1
                parent = await rpc({"cmd": "query",
                                    "query": {"kind": "loops"}})
                assert parent["result"]["violations"]
            finally:
                await hub.aclose()

        asyncio.run(drive())
