"""Tests for the scenario families and the engine that builds them."""

import random
import subprocess
import sys

import pytest

from repro.scenarios import (
    ScenarioError, build_scenario, family_info, random_scenario,
    scenario_families,
)

EXPECTED_FAMILIES = (
    "acl-injection", "bgp-reset", "churn-mix", "deaggregation",
    "failover-storm", "link-flaps", "rolling-upgrade", "table-fill",
)


class TestRegistry:
    def test_all_families_registered(self):
        assert scenario_families() == EXPECTED_FAMILIES

    def test_family_info_has_docs(self):
        for name in scenario_families():
            family = family_info(name)
            assert family.description and family.knobs

    def test_unknown_family_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario family"):
            build_scenario("nosuch")

    def test_bad_scale_rejected(self):
        with pytest.raises(ScenarioError, match="scale"):
            build_scenario("table-fill", scale=0)


@pytest.mark.parametrize("family", EXPECTED_FAMILIES)
class TestEveryFamily:
    def test_builds_valid_nonempty_trace(self, family):
        scenario = build_scenario(family, seed=3, scale=0.3)
        assert scenario.num_ops > 0
        scenario.validate()  # raises on malformed traces

    def test_watches_loops_plus_more(self, family):
        scenario = build_scenario(family, seed=3, scale=0.3)
        names = [spec.name for spec in scenario.property_specs]
        assert "loops" in names
        assert len(names) >= 2

    def test_deterministic_same_seed(self, family):
        a = build_scenario(family, seed=5, scale=0.3)
        b = build_scenario(family, seed=5, scale=0.3)
        assert [op.to_line() for op in a.ops] == \
               [op.to_line() for op in b.ops]
        assert a.property_specs == b.property_specs

    def test_different_seed_different_trace(self, family):
        lines = {tuple(op.to_line() for op in
                       build_scenario(family, seed=seed, scale=0.3).ops)
                 for seed in range(4)}
        assert len(lines) > 1

    def test_scale_grows_trace(self, family):
        small = build_scenario(family, seed=2, scale=0.2)
        large = build_scenario(family, seed=2, scale=1.5)
        assert large.num_ops > small.num_ops

    def test_expectations_annotated(self, family):
        scenario = build_scenario(family, seed=1, scale=0.3)
        assert scenario.expectations, "families must document expectations"
        assert scenario.events, "families must summarize their events"


class TestCrossProcessDeterminism:
    def test_trace_identical_under_different_hash_seeds(self):
        """Repro files must rebuild bit-identically in any process, so
        no set-iteration order may leak into a trace."""
        script = (
            "from repro.scenarios import build_scenario\n"
            "s = build_scenario('link-flaps', seed=9, scale=0.3)\n"
            "print('\\n'.join(op.to_line() for op in s.ops))\n"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": ":".join(
                    sys.path)},
                capture_output=True, text=True, check=True).stdout
            for hash_seed in ("1", "2", "33")
        }
        assert len(outputs) == 1


class TestRandomScenario:
    def test_draws_are_reproducible(self):
        a = random_scenario(random.Random(7))
        b = random_scenario(random.Random(7))
        assert a.name == b.name
        assert [op.to_line() for op in a.ops] == \
               [op.to_line() for op in b.ops]

    def test_family_restriction(self):
        scenario = random_scenario(random.Random(1),
                                   families=["table-fill"])
        assert scenario.family == "table-fill"

    def test_unknown_family_fails_fast(self):
        with pytest.raises(ScenarioError):
            random_scenario(random.Random(1), families=["bogus"])
