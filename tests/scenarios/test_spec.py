"""Tests for scenario specs: property specs, trace validation, repair."""

import pytest

from repro.api.properties import LoopProperty
from repro.core.rules import Rule
from repro.datasets.format import Op
from repro.scenarios import (
    PropertySpec, Scenario, ScenarioError, ops_from_state, ops_to_state,
    repair_trace, validate_trace,
)


def _insert(rid, source="a", target="b", lo=0, hi=16, priority=1):
    return Op.insert(Rule.forward(rid, lo, hi, priority, source, target))


class TestPropertySpec:
    def test_of_and_make(self):
        spec = PropertySpec.of("loops")
        assert isinstance(spec.make(), LoopProperty)

    def test_make_returns_fresh_instances(self):
        spec = PropertySpec.of("loops")
        assert spec.make() is not spec.make()

    def test_options_forwarded(self):
        spec = PropertySpec.of("reachability", src="a", dst="b",
                               expect_reachable=False)
        prop = spec.make()
        assert (prop.src, prop.dst, prop.expect_reachable) == ("a", "b",
                                                               False)

    def test_unknown_property_rejected(self):
        with pytest.raises(ScenarioError):
            PropertySpec.of("telepathy")

    def test_state_round_trip(self):
        spec = PropertySpec.of("blackholes", expected_sinks=("p0", "p1"))
        assert PropertySpec.from_state(spec.to_state()) == spec


class TestValidateTrace:
    def test_valid_trace_accepted(self):
        validate_trace([_insert(1), _insert(2), Op.remove(1), _insert(1)])

    def test_duplicate_insert_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate insert"):
            validate_trace([_insert(1), _insert(1)])

    def test_unknown_removal_rejected(self):
        with pytest.raises(ScenarioError, match="unknown rule id"):
            validate_trace([Op.remove(7)])

    def test_double_removal_rejected(self):
        with pytest.raises(ScenarioError, match="op 2"):
            validate_trace([_insert(1), Op.remove(1), Op.remove(1)])

    def test_interval_outside_width_rejected(self):
        with pytest.raises(ScenarioError, match="outside"):
            validate_trace([_insert(1, hi=1 << 40)], width=32)
        validate_trace([_insert(1, hi=1 << 40)], width=64)


class TestRepairTrace:
    def test_valid_trace_unchanged(self):
        ops = [_insert(1), Op.remove(1), _insert(1)]
        assert repair_trace(ops) == ops

    def test_orphan_removal_dropped(self):
        ops = [Op.remove(5), _insert(1)]
        assert repair_trace(ops) == [ops[1]]

    def test_orphan_reinsert_dropped(self):
        # Without the removal in between, the second insert of rid 1
        # must go.
        ops = [_insert(1), _insert(1, source="c")]
        assert repair_trace(ops) == [ops[0]]

    def test_any_subsequence_becomes_valid(self):
        ops = [_insert(1), _insert(2), Op.remove(1), _insert(1),
               Op.remove(2), Op.remove(1)]
        for mask in range(1 << len(ops)):
            subset = [op for i, op in enumerate(ops) if mask >> i & 1]
            validate_trace(repair_trace(subset))


class TestOpsState:
    def test_round_trip(self):
        ops = [_insert(3, source="s1", target="s2", lo=5, hi=9),
               Op.remove(3),
               Op.insert(Rule.drop(4, 0, 8, 2, "s1"))]
        restored = ops_from_state(ops_to_state(ops))
        assert [op.to_line() for op in restored] == \
               [op.to_line() for op in ops]

    def test_bad_kind_rejected(self):
        with pytest.raises(ScenarioError):
            ops_from_state([("?", 1)])


class TestScenario:
    def _scenario(self, ops):
        return Scenario(family="f", name="f/0", seed=0, scale=1.0,
                        topology=None, ops=ops,
                        property_specs=[PropertySpec.of("loops")])

    def test_counts_and_describe(self):
        scenario = self._scenario([_insert(1), Op.remove(1)])
        assert scenario.num_ops == 2
        assert scenario.num_inserts == 1
        assert "loops" in scenario.describe()

    def test_validate_delegates(self):
        with pytest.raises(ScenarioError):
            self._scenario([Op.remove(9)]).validate()

    def test_make_properties_fresh_per_call(self):
        scenario = self._scenario([_insert(1)])
        first = scenario.make_properties()
        second = scenario.make_properties()
        assert first[0] is not second[0]
