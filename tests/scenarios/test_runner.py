"""Tests for the sweep oracle and the differential runner."""

import pytest

from repro.api import register_backend, unregister_backend
from repro.api.backends import DeltaNetBackend
from repro.core.rules import Rule
from repro.datasets.format import Op
from repro.scenarios import (
    PropertySpec, Scenario, ScenarioError, SweepOracle, build_scenario,
    diff_streams, format_signature, replay_signatures, run_scenario,
)


def _scenario(ops, specs):
    scenario = Scenario(family="test", name="test/0", seed=0, scale=1.0,
                        topology=None, ops=ops, property_specs=specs)
    scenario.validate()
    return scenario


def _loop_ops():
    return [
        Op.insert(Rule.forward(1, 0, 16, 5, "a", "b")),
        Op.insert(Rule.forward(2, 0, 16, 5, "b", "a")),
        Op.remove(1),
    ]


class TestSweepOracle:
    def test_loop_delivered_once_then_rearmed(self):
        oracle = SweepOracle([PropertySpec.of("loops")])
        ops = _loop_ops()
        assert oracle.apply(ops[0]) == frozenset()
        assert oracle.apply(ops[1]) == frozenset({("loop", ("a", "b"))})
        assert oracle.apply(ops[2]) == frozenset()
        # Re-introducing the loop after it cleared alerts again.
        assert oracle.apply(ops[0]) == frozenset({("loop", ("a", "b"))})

    def test_blackhole_respects_expected_sinks(self):
        op = Op.insert(Rule.forward(1, 0, 16, 5, "a", "b"))
        plain = SweepOracle([PropertySpec.of("blackholes")])
        assert plain.apply(op) == frozenset({("blackhole", "b")})
        sinkful = SweepOracle([
            PropertySpec.of("blackholes", expected_sinks=("b",))])
        assert sinkful.apply(op) == frozenset()

    def test_unknown_property_rejected(self):
        bogus = PropertySpec("bogus", ())
        with pytest.raises(ScenarioError):
            SweepOracle([bogus])

    def test_matches_session_streams_on_real_scenarios(self):
        for family in ("link-flaps", "deaggregation"):
            scenario = build_scenario(family, seed=4, scale=0.25)
            oracle = SweepOracle(scenario.property_specs)
            stream = oracle.stream(scenario.ops)
            run = replay_signatures(scenario, "deltanet")
            assert run.error is None
            assert run.delivered == stream


class TestDiffAndFormat:
    def test_diff_streams_reports_first_divergence(self):
        ops = _loop_ops()
        oracle = [frozenset(), frozenset({("loop", ("a", "b"))}),
                  frozenset()]
        delivered = [frozenset(), frozenset(), frozenset()]
        diffs = diff_streams("x", ops, oracle, delivered)
        assert len(diffs) == 1
        divergence = diffs[0]
        assert divergence.op_index == 1
        assert divergence.missing == frozenset({("loop", ("a", "b"))})
        assert not divergence.unexpected
        text = divergence.describe()
        assert "loop: a -> b -> a" in text and "op 1" in text

    def test_short_backend_stream_counts_as_divergence(self):
        ops = _loop_ops()
        oracle = [frozenset(), frozenset({("loop", ("a", "b"))}),
                  frozenset()]
        assert diff_streams("x", ops, oracle, [frozenset()])

    def test_format_signature_kinds(self):
        assert "blackhole at n" == format_signature(("blackhole", "n"))
        assert "unreachable" in format_signature(
            ("reachability", "a", "b", True))
        assert "bypasses w" in format_signature(("waypoint", "a", "b", "w"))
        assert "both slices" in format_signature(("isolation", ("a", "b")))


class _LossyBackend(DeltaNetBackend):
    """Delta-net that swallows the last loop report of every commit."""

    def loops_for_commit(self, updates, delta):
        return super().loops_for_commit(updates, delta)[:-1]


class TestRunScenario:
    def test_agreement_on_healthy_backends(self):
        scenario = build_scenario("failover-storm", seed=6, scale=0.25)
        report = run_scenario(scenario, ["deltanet", "sharded"])
        assert report.ok
        assert "agrees" in report.describe()

    def test_lossy_backend_caught(self):
        register_backend("lossy-test", _LossyBackend, replace=True)
        try:
            scenario = _scenario(_loop_ops()[:2],
                                 [PropertySpec.of("loops")])
            report = run_scenario(scenario, ["deltanet", "lossy-test"])
            assert not report.ok
            assert {d.backend for d in report.divergences} == {"lossy-test"}
            assert "DIVERGES" in report.describe()
        finally:
            unregister_backend("lossy-test")

    def test_backend_crash_is_a_finding(self):
        def exploding(**_options):
            raise RuntimeError("boom")

        register_backend("exploding-test", exploding, replace=True)
        try:
            scenario = _scenario(_loop_ops(), [PropertySpec.of("loops")])
            report = run_scenario(scenario, ["exploding-test"])
            assert not report.ok
            assert report.runs[0].error is not None
            assert "boom" in report.runs[0].error
        finally:
            unregister_backend("exploding-test")
