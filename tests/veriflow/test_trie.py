"""Tests for the binary prefix trie."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules import Rule
from repro.veriflow.trie import PrefixTrie


def prefix_rule(rid, value, plen, width=8, priority=None, source="s1"):
    span = 1 << (width - plen)
    lo = value & ~(span - 1)
    return Rule.forward(rid, lo, lo + span,
                        priority if priority is not None else rid,
                        source, "s2")


class TestInsertRemove:
    def test_insert_and_count(self):
        trie = PrefixTrie(width=8)
        trie.insert(prefix_rule(0, 0b10100000, 3))
        assert len(trie) == 1
        assert trie.num_nodes == 4  # root + 3 bit nodes

    def test_remove(self):
        trie = PrefixTrie(width=8)
        rule = prefix_rule(0, 0, 2)
        trie.insert(rule)
        trie.remove(rule)
        assert len(trie) == 0
        with pytest.raises(KeyError):
            trie.remove(rule)

    def test_non_prefix_interval_stored_as_cover(self):
        trie = PrefixTrie(width=8)
        rule = Rule.forward(0, 0, 10, 1, "s1", "s2")  # [0:10) = 2 prefixes
        trie.insert(rule)
        assert set(r.rid for r in trie.covering_rules(5)) == {0}
        assert set(r.rid for r in trie.covering_rules(9)) == {0}
        assert list(trie.covering_rules(10)) == []
        trie.remove(rule)
        assert list(trie.covering_rules(5)) == []


class TestQueries:
    def test_covering_rules_is_root_path(self):
        trie = PrefixTrie(width=8)
        wide = prefix_rule(0, 0, 0)       # everything
        mid = prefix_rule(1, 0, 4)        # [0:16)
        narrow = prefix_rule(2, 8, 6)     # [8:12)
        for rule in (wide, mid, narrow):
            trie.insert(rule)
        assert {r.rid for r in trie.covering_rules(9)} == {0, 1, 2}
        assert {r.rid for r in trie.covering_rules(20)} == {0}

    def test_match_highest_priority(self):
        trie = PrefixTrie(width=8)
        trie.insert(prefix_rule(0, 0, 0, priority=1))
        trie.insert(prefix_rule(1, 0, 4, priority=9))
        assert trie.match(5).rid == 1
        assert trie.match(200).rid == 0
        assert PrefixTrie(width=8).match(5) is None

    def test_overlapping_rules_ancestors_and_subtree(self):
        trie = PrefixTrie(width=8)
        ancestor = prefix_rule(0, 0, 2)      # [0:64)
        inside = prefix_rule(1, 16, 6)       # [16:20)
        sibling = prefix_rule(2, 128, 2)     # [128:192)
        for rule in (ancestor, inside, sibling):
            trie.insert(rule)
        overlapping = {r.rid for r in trie.overlapping_rules(0, 4)}  # [0:16)
        assert 0 in overlapping
        assert 2 not in overlapping

    def test_all_rules(self):
        trie = PrefixTrie(width=8)
        rules = [prefix_rule(i, i * 16, 4) for i in range(5)]
        for rule in rules:
            trie.insert(rule)
        assert {r.rid for r in trie.all_rules()} == set(range(5))


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 8)),
                min_size=1, max_size=25),
       st.integers(0, 255))
def test_covering_matches_linear_scan(prefix_specs, point):
    trie = PrefixTrie(width=8)
    rules = []
    for rid, (value, plen) in enumerate(prefix_specs):
        rule = prefix_rule(rid, value, plen)
        rules.append(rule)
        trie.insert(rule)
    expected = {r.rid for r in rules if r.matches(point)}
    assert {r.rid for r in trie.covering_rules(point)} == expected
    best = trie.match(point)
    if expected:
        assert best.rid == max(expected, key=lambda rid: rules[rid].sort_key)
    else:
        assert best is None


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 8)),
                min_size=1, max_size=20),
       st.tuples(st.integers(0, 255), st.integers(0, 8)))
def test_overlapping_interval_matches_linear_scan(prefix_specs, query):
    trie = PrefixTrie(width=8)
    rules = []
    for rid, (value, plen) in enumerate(prefix_specs):
        rule = prefix_rule(rid, value, plen)
        rules.append(rule)
        trie.insert(rule)
    q_value, q_plen = query
    span = 1 << (8 - q_plen)
    q_lo = q_value & ~(span - 1)
    q_hi = q_lo + span
    expected = {r.rid for r in rules if r.lo < q_hi and q_lo < r.hi}
    assert {r.rid for r in trie.overlapping_interval(q_lo, q_hi)} == expected
