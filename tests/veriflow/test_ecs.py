"""Tests for equivalence-class computation."""

import pytest

from repro.core.rules import Rule
from repro.veriflow.ecs import equivalence_classes


def rule(rid, lo, hi):
    return Rule.forward(rid, lo, hi, rid, "s", "t")


class TestEquivalenceClasses:
    def test_no_overlapping_rules_single_ec(self):
        assert equivalence_classes([], 0, 16) == [(0, 16)]

    def test_figure1_segmentation(self):
        """Overlapping rule bounds cut the range into segments."""
        rules = [rule(0, 2, 10), rule(1, 4, 12), rule(2, 6, 14)]
        ecs = equivalence_classes(rules, 4, 12)
        assert ecs == [(4, 6), (6, 10), (10, 12)]

    def test_bounds_outside_range_ignored(self):
        rules = [rule(0, 0, 100)]
        assert equivalence_classes(rules, 10, 20) == [(10, 20)]

    def test_bound_equal_to_range_edges_not_duplicated(self):
        rules = [rule(0, 10, 20)]
        assert equivalence_classes(rules, 10, 20) == [(10, 20)]

    def test_ecs_partition_the_range(self):
        rules = [rule(i, i * 3, i * 3 + 7) for i in range(5)]
        ecs = equivalence_classes(rules, 0, 32)
        assert ecs[0][0] == 0 and ecs[-1][1] == 32
        for (l1, h1), (l2, h2) in zip(ecs, ecs[1:]):
            assert h1 == l2
        for lo, hi in ecs:
            assert lo < hi
            # Every point in an EC matches the same rule subset.
            first = {r.rid for r in rules if r.matches(lo)}
            assert all({r.rid for r in rules if r.matches(p)} == first
                       for p in range(lo, hi))

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            equivalence_classes([], 5, 5)
