"""Tests for the Veriflow-RI verifier — incl. loop-agreement with Delta-net."""

import random

import pytest

from repro.checkers.loops import LoopChecker, find_forwarding_loops
from repro.core.deltanet import DeltaNet
from repro.core.rules import Rule
from repro.veriflow.verifier import ECGraph, VeriflowRI

from tests.conftest import BruteForceDataPlane, random_rules


class TestECGraph:
    def test_no_loop_chain(self):
        graph = ECGraph((0, 4), {"a": "b", "b": "c"})
        assert graph.find_loop() is None

    def test_two_node_loop(self):
        graph = ECGraph((0, 4), {"a": "b", "b": "a"})
        loop = graph.find_loop()
        assert loop is not None
        assert set(loop) == {"a", "b"}

    def test_tail_into_loop(self):
        graph = ECGraph((0, 4), {"x": "a", "a": "b", "b": "a"})
        assert set(graph.find_loop()) == {"a", "b"}

    def test_drop_terminates(self):
        from repro.core.rules import DROP
        graph = ECGraph((0, 4), {"a": "b", "b": DROP})
        assert graph.find_loop() is None


class TestUpdates:
    def test_insert_reports_ecs(self):
        veriflow = VeriflowRI(width=4)
        result = veriflow.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        assert result.num_ecs == 1
        result = veriflow.insert_rule(Rule.forward(1, 4, 8, 2, "s1", "s3"))
        assert result.num_ecs == 1  # [4:8) uncut
        result = veriflow.insert_rule(Rule.forward(2, 0, 16, 3, "s2", "s1"))
        assert result.num_ecs == 3  # cut at 4 and 8

    def test_duplicate_rid_rejected(self):
        veriflow = VeriflowRI(width=4)
        veriflow.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        with pytest.raises(ValueError):
            veriflow.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            VeriflowRI(width=4).remove_rule(3)

    def test_loop_detection_on_ring(self):
        veriflow = VeriflowRI(width=4)
        veriflow.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        veriflow.insert_rule(Rule.forward(1, 0, 16, 1, "s2", "s3"))
        result = veriflow.insert_rule(Rule.forward(2, 0, 16, 1, "s3", "s1"))
        assert result.loops
        interval, cycle = result.loops[0]
        assert set(cycle) == {"s1", "s2", "s3"}

    def test_remove_breaks_loop_quietly(self):
        veriflow = VeriflowRI(width=4)
        for rid, (src, dst) in enumerate((("s1", "s2"), ("s2", "s3"),
                                          ("s3", "s1"))):
            veriflow.insert_rule(Rule.forward(rid, 0, 16, 1, src, dst))
        result = veriflow.remove_rule(2)
        assert result.loops == []


class TestAgreementWithDeltaNet:
    @pytest.mark.parametrize("seed", range(8))
    def test_loop_presence_agrees(self, seed):
        """Per-update loop verdicts agree between the two checkers."""
        rng = random.Random(seed)
        net = DeltaNet(width=6)
        checker = LoopChecker(net)
        veriflow = VeriflowRI(width=6)
        for rule in random_rules(rng, 35, width=6, switches=4,
                                 drop_fraction=0.1):
            delta = net.insert_rule(rule)
            deltanet_loops = checker.check_update(delta)
            veriflow_loops = veriflow.insert_rule(rule).loops
            # Exhaustive ground truth after this update:
            truth = bool(find_forwarding_loops(net))
            if deltanet_loops:
                assert truth
            if veriflow_loops:
                assert truth

    @pytest.mark.parametrize("seed", range(4))
    def test_oracle_loop_presence_matches_veriflow_full_sweep(self, seed):
        rng = random.Random(500 + seed)
        veriflow = VeriflowRI(width=6)
        oracle = BruteForceDataPlane(width=6)
        any_loop_reported = False
        for rule in random_rules(rng, 30, width=6, switches=4,
                                 drop_fraction=0.0):
            result = veriflow.insert_rule(rule)
            oracle.insert(rule)
            any_loop_reported |= bool(result.loops)
        assert any_loop_reported == bool(oracle.loop_points())


class TestECGraphFindLoops:
    """Regression: one EC graph can hold several node-disjoint cycles
    (differential-fuzzer find — returning an arbitrary single loop made
    the report depend on hash randomization)."""

    def test_all_disjoint_cycles_reported(self):
        graph = ECGraph(interval=(0, 8), edges={
            "a": "b", "b": "a", "c": "d", "d": "c", "e": "f"})
        loops = graph.find_loops()
        assert len(loops) == 2
        assert {frozenset(loop) for loop in loops} == \
            {frozenset(("a", "b")), frozenset(("c", "d"))}

    def test_order_is_deterministic_insertion_order(self):
        graph = ECGraph(interval=(0, 8), edges={
            "c": "d", "d": "c", "a": "b", "b": "a"})
        assert [frozenset(loop) for loop in graph.find_loops()] == \
            [frozenset(("c", "d")), frozenset(("a", "b"))]

    def test_update_reports_every_new_loop_in_one_ec(self):
        verifier = VeriflowRI(width=32)
        verifier.insert_rule(Rule.forward(1, 0, 16, 1, "a", "b"))
        verifier.insert_rule(Rule.forward(2, 0, 16, 1, "c", "d"))
        verifier.insert_rule(Rule.forward(3, 0, 16, 1, "b", "a"))
        result = verifier.insert_rule(Rule.forward(4, 0, 16, 1, "d", "c"))
        cycles = {frozenset(loop) for _interval, loop in result.loops}
        assert frozenset(("c", "d")) in cycles
