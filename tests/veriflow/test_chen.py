"""Tests for the Chen-optimized Veriflow variant.

The key property: VeriflowChen is behaviourally identical to the trie-
based VeriflowRI on every update — same EC partitions, same forwarding
graphs, same loop verdicts — since only the index structure changed.
"""

import random

import pytest

from repro.core.rules import Rule
from repro.veriflow.chen import VeriflowChen
from repro.veriflow.verifier import VeriflowRI

from tests.conftest import BruteForceDataPlane, random_rules


class TestBasics:
    def test_insert_reports_ecs(self):
        chen = VeriflowChen(width=4)
        assert chen.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b")).num_ecs == 1
        result = chen.insert_rule(Rule.forward(1, 4, 8, 2, "a", "c"))
        assert result.num_ecs == 1

    def test_non_prefix_intervals_supported_natively(self):
        """The interval tree (unlike the trie) needs no CIDR cover."""
        chen = VeriflowChen(width=4)
        result = chen.insert_rule(Rule.forward(0, 3, 11, 1, "a", "b"))
        assert result.num_ecs == 1
        assert chen.match_at("a", 3).rid == 0
        assert chen.match_at("a", 10).rid == 0
        assert chen.match_at("a", 11) is None

    def test_duplicate_and_unknown(self):
        chen = VeriflowChen(width=4)
        chen.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
        with pytest.raises(ValueError):
            chen.insert_rule(Rule.forward(0, 0, 8, 1, "a", "b"))
        with pytest.raises(KeyError):
            chen.remove_rule(9)

    def test_loop_detection(self):
        chen = VeriflowChen(width=4)
        chen.insert_rule(Rule.forward(0, 0, 16, 1, "a", "b"))
        chen.insert_rule(Rule.forward(1, 0, 16, 1, "b", "c"))
        result = chen.insert_rule(Rule.forward(2, 0, 16, 1, "c", "a"))
        assert result.loops


class TestEquivalenceWithTrieVeriflow:
    @pytest.mark.parametrize("seed", range(8))
    def test_update_results_identical(self, seed):
        rng = random.Random(seed * 131)
        trie_vf = VeriflowRI(width=8)
        chen_vf = VeriflowChen(width=8)
        live = []
        for rule in random_rules(rng, 40, width=8, switches=4,
                                 drop_fraction=0.1):
            if live and rng.random() < 0.35:
                victim = live.pop(rng.randrange(len(live)))
                trie_result = trie_vf.remove_rule(victim.rid)
                chen_result = chen_vf.remove_rule(victim.rid)
                self._assert_same(trie_result, chen_result)
            trie_result = trie_vf.insert_rule(rule)
            chen_result = chen_vf.insert_rule(rule)
            self._assert_same(trie_result, chen_result)
            live.append(rule)

    @staticmethod
    def _assert_same(trie_result, chen_result):
        assert [g.interval for g in trie_result.ec_graphs] == \
            [g.interval for g in chen_result.ec_graphs]
        for trie_graph, chen_graph in zip(trie_result.ec_graphs,
                                          chen_result.ec_graphs):
            assert trie_graph.edges == chen_graph.edges
        assert [interval for interval, _loop in trie_result.loops] == \
            [interval for interval, _loop in chen_result.loops]

    @pytest.mark.parametrize("seed", range(4))
    def test_match_at_agrees_with_oracle(self, seed):
        rng = random.Random(900 + seed)
        chen = VeriflowChen(width=6)
        oracle = BruteForceDataPlane(width=6)
        for rule in random_rules(rng, 30, width=6, switches=4):
            chen.insert_rule(rule, check_loops=False)
            oracle.insert(rule)
        for lo, _hi in oracle.segments():
            for switch in oracle.sources():
                expected = oracle.owner_at(switch, lo)
                got = chen.match_at(switch, lo)
                assert (got.rid if got else None) == \
                    (expected.rid if expected else None)
