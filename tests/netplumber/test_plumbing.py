"""Tests for the NetPlumber-style plumbing-graph baseline."""

import random

import pytest

from repro.checkers.loops import find_forwarding_loops
from repro.checkers.reachability import reachable_atoms
from repro.core.deltanet import DeltaNet
from repro.core.intervals import IntervalSet
from repro.core.rules import Rule
from repro.netplumber.plumbing import NetPlumber

from tests.conftest import random_rules


class TestPipes:
    def test_pipe_on_overlap_and_adjacency(self):
        np_graph = NetPlumber(width=5)
        a = Rule.forward(0, 0, 16, 1, "s1", "s2")
        b = Rule.forward(1, 8, 24, 1, "s2", "s3")
        np_graph.insert_rule(a)
        np_graph.insert_rule(b)
        assert np_graph.num_pipes == 1
        pipe = np_graph.pipes_out[0][1]
        assert pipe.carries == IntervalSet([(8, 16)])

    def test_no_pipe_without_adjacency(self):
        np_graph = NetPlumber(width=5)
        np_graph.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        np_graph.insert_rule(Rule.forward(1, 0, 16, 1, "s9", "s3"))
        assert np_graph.num_pipes == 0

    def test_no_pipe_without_overlap(self):
        np_graph = NetPlumber(width=5)
        np_graph.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))
        np_graph.insert_rule(Rule.forward(1, 8, 16, 1, "s2", "s3"))
        assert np_graph.num_pipes == 0

    def test_insertion_order_irrelevant(self):
        rules = [Rule.forward(0, 0, 16, 1, "s1", "s2"),
                 Rule.forward(1, 8, 24, 1, "s2", "s3")]
        forward, backward = NetPlumber(width=5), NetPlumber(width=5)
        for rule in rules:
            forward.insert_rule(rule)
        for rule in reversed(rules):
            backward.insert_rule(rule)
        assert forward.num_pipes == backward.num_pipes == 1

    def test_remove_rule_removes_pipes(self):
        np_graph = NetPlumber(width=5)
        np_graph.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        np_graph.insert_rule(Rule.forward(1, 8, 24, 1, "s2", "s3"))
        np_graph.remove_rule(0)
        assert np_graph.num_pipes == 0
        assert np_graph.num_rules == 1

    def test_duplicate_and_unknown(self):
        np_graph = NetPlumber(width=5)
        np_graph.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        with pytest.raises(ValueError):
            np_graph.insert_rule(Rule.forward(0, 0, 8, 1, "s1", "s2"))
        with pytest.raises(KeyError):
            np_graph.remove_rule(5)

    def test_quadratic_pipe_growth(self):
        """The §5 point: R rules can produce O(R^2) pipes."""
        np_graph = NetPlumber(width=8)
        count = 12
        for rid in range(count):
            np_graph.insert_rule(
                Rule.forward(rid, 0, 256, rid, f"s{rid % 2}", f"s{(rid + 1) % 2}"))
        assert np_graph.num_pipes == (count // 2) ** 2 * 2


class TestShadowing:
    def test_higher_priority_shadows(self):
        np_graph = NetPlumber(width=5)
        low = Rule.forward(0, 0, 16, 1, "s1", "s2")
        high = Rule.forward(1, 4, 8, 9, "s1", "s3")
        np_graph.insert_rule(low)
        np_graph.insert_rule(high)
        assert np_graph.effective_match(0) == IntervalSet([(0, 4), (8, 16)])
        assert np_graph.effective_match(1) == IntervalSet([(4, 8)])

    def test_shadow_updates_on_removal(self):
        np_graph = NetPlumber(width=5)
        np_graph.insert_rule(Rule.forward(0, 0, 16, 1, "s1", "s2"))
        np_graph.insert_rule(Rule.forward(1, 4, 8, 9, "s1", "s3"))
        np_graph.remove_rule(1)
        assert np_graph.effective_match(0) == IntervalSet([(0, 16)])


class TestAgreementWithDeltaNet:
    @pytest.mark.parametrize("seed", range(6))
    def test_reachability_agrees(self, seed):
        rng = random.Random(seed * 31)
        rules = random_rules(rng, 25, width=6, switches=4, drop_fraction=0.1)
        np_graph = NetPlumber(width=6)
        net = DeltaNet(width=6)
        for rule in rules:
            np_graph.insert_rule(rule)
            net.insert_rule(rule)
        for src in ("s0", "s1", "s2", "s3"):
            for dst in ("s0", "s1", "s2", "s3"):
                if src == dst:
                    continue
                atoms = reachable_atoms(net, src, dst)
                expected = IntervalSet(
                    net.atoms.atom_interval(a) for a in atoms)
                assert np_graph.reachable(src, dst) == expected, (src, dst)

    @pytest.mark.parametrize("seed", range(6))
    def test_loop_presence_agrees(self, seed):
        rng = random.Random(seed * 77 + 5)
        rules = random_rules(rng, 25, width=6, switches=4, drop_fraction=0.0)
        np_graph = NetPlumber(width=6)
        net = DeltaNet(width=6)
        for rule in rules:
            np_graph.insert_rule(rule)
            net.insert_rule(rule)
        assert bool(np_graph.find_loops()) == \
            bool(find_forwarding_loops(net))

    def test_churn_agreement(self):
        rng = random.Random(999)
        np_graph = NetPlumber(width=6)
        net = DeltaNet(width=6)
        live = []
        for rule in random_rules(rng, 40, width=6, switches=3,
                                 drop_fraction=0.0):
            if live and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                np_graph.remove_rule(victim.rid)
                net.remove_rule(victim.rid)
            np_graph.insert_rule(rule)
            net.insert_rule(rule)
            live.append(rule)
        for src, dst in (("s0", "s1"), ("s1", "s2"), ("s2", "s0")):
            atoms = reachable_atoms(net, src, dst)
            expected = IntervalSet(net.atoms.atom_interval(a) for a in atoms)
            assert np_graph.reachable(src, dst) == expected


class TestMultiCycleEnumeration:
    """Regression: a rule can sit on several flow-disjoint cycles; the
    old back-edge DFS reported only the one met first (fuzzer find)."""

    def _net(self):
        net = NetPlumber(width=32)
        # Two 2-cycles through switch "c", flow-disjoint, plus an
        # infeasible 4-cycle woven through both (empty when intersected
        # around the full turn).
        net.insert_rule(Rule.forward(19, 1101266944, 1101529088, 14,
                                     "a0", "c"))
        net.insert_rule(Rule.forward(22, 1101266944, 1101529088, 14,
                                     "a3", "c"))
        net.insert_rule(Rule.forward(57, 1101281280, 1101282304, 22,
                                     "c", "a3"))
        net.insert_rule(Rule.forward(95, 1101414400, 1101418496, 20,
                                     "c", "a0"))
        return net

    def test_both_disjoint_cycles_found(self):
        cycles = {frozenset(cycle) for cycle in self._net().find_loops()}
        assert frozenset((19, 95)) in cycles
        assert frozenset((22, 57)) in cycles

    def test_no_infeasible_cycle_reported(self):
        net = self._net()
        for cycle in net.find_loops():
            # Every reported cycle must carry flow around a full turn.
            flow = net.effective_match(cycle[0])
            for index, rid in enumerate(cycle):
                succ = cycle[(index + 1) % len(cycle)]
                pipe = net.pipes_out[rid].get(succ)
                assert pipe is not None
                flow = flow & pipe.carries & net.effective_match(succ)
            assert flow, f"cycle {cycle} carries no packet a full turn"

    def test_backend_reports_both_switch_cycles(self):
        from repro.api import create_backend

        backend = create_backend("netplumber")
        backend.insert(Rule.forward(19, 1101266944, 1101529088, 14,
                                    "a0", "c"))
        backend.insert(Rule.forward(22, 1101266944, 1101529088, 14,
                                    "a3", "c"))
        backend.insert(Rule.forward(57, 1101281280, 1101282304, 22,
                                    "c", "a3"))
        backend.insert(Rule.forward(95, 1101414400, 1101418496, 20,
                                    "c", "a0"))
        cycles = {frozenset(cycle) for cycle in backend.find_loops()}
        assert cycles == {frozenset(("a0", "c")), frozenset(("a3", "c"))}
