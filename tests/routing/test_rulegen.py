"""Tests for shortest-path rule generation (the §4.2.1 recipe)."""

import pytest

from repro.bgp.prefixes import PrefixPool
from repro.routing.rulegen import ShortestPathRuleGenerator, generate_ops
from repro.topology.generators import ring
from repro.topology.graph import Topology


class TestRuleGenerator:
    def test_one_rule_per_non_destination_router(self):
        topo = ring(5)
        generator = ShortestPathRuleGenerator(topo, seed=1)
        rules = generator.rules_for_prefix((0, 8), destination=0)
        assert len(rules) == 4
        assert {r.source for r in rules} == {1, 2, 3, 4}

    def test_rules_follow_shortest_path_tree(self):
        topo = ring(5)
        generator = ShortestPathRuleGenerator(topo, seed=1)
        tree = topo.shortest_path_tree(0)
        for rule in generator.rules_for_prefix((0, 8), destination=0):
            assert rule.target == tree[rule.source]

    def test_rules_compose_into_paths_to_destination(self):
        topo = ring(6)
        generator = ShortestPathRuleGenerator(topo, seed=2)
        rules = {r.source: r for r in
                 generator.rules_for_prefix((0, 16), destination=3)}
        for start in topo.nodes:
            node, hops = start, 0
            while node != 3:
                node = rules[node].target
                hops += 1
                assert hops <= topo.num_nodes, "path must terminate"

    def test_fixed_priority(self):
        topo = ring(4)
        generator = ShortestPathRuleGenerator(topo, seed=1)
        rules = generator.rules_for_prefix((0, 24), priority=24)
        assert all(r.priority == 24 for r in rules)

    def test_unique_rids(self):
        topo = ring(4)
        generator = ShortestPathRuleGenerator(topo, seed=1)
        batch1 = generator.rules_for_prefix((0, 8))
        batch2 = generator.rules_for_prefix((1 << 24, 8))
        rids = [r.rid for r in batch1 + batch2]
        assert len(rids) == len(set(rids))

    def test_disconnected_topology_rejected(self):
        topo = ring(4)
        topo.add_node("island")
        with pytest.raises(ValueError):
            ShortestPathRuleGenerator(topo)


class TestGenerateOps:
    def test_insert_then_remove_everything(self):
        """Table 2: operations == 2 x rules for synthetic datasets."""
        topo = ring(4)
        prefixes = PrefixPool(seed=1).sample(5)
        ops = generate_ops(topo, prefixes, seed=1)
        inserts = [op for op in ops if op.is_insert]
        removals = [op for op in ops if not op.is_insert]
        assert len(ops) == 2 * len(inserts)
        assert {op.rid for op in removals} == {op.rid for op in inserts}
        # All inserts come before any removal.
        first_removal = next(i for i, op in enumerate(ops) if not op.is_insert)
        assert all(not op.is_insert for op in ops[first_removal:])

    def test_removals_are_shuffled(self):
        topo = ring(6)
        prefixes = PrefixPool(seed=2).sample(10)
        ops = generate_ops(topo, prefixes, seed=2)
        removal_rids = [op.rid for op in ops if not op.is_insert]
        assert removal_rids != sorted(removal_rids)

    def test_plen_priority_mode(self):
        topo = ring(4)
        prefixes = [(0, 8), (1 << 24, 16)]
        ops = generate_ops(topo, prefixes, seed=1, priority_mode="plen")
        priorities = {op.rule.priority for op in ops if op.is_insert}
        assert priorities == {8, 16}

    def test_without_removals(self):
        topo = ring(4)
        ops = generate_ops(topo, PrefixPool(seed=3).sample(3), seed=3,
                           with_removals=False)
        assert all(op.is_insert for op in ops)

    def test_bad_priority_mode(self):
        with pytest.raises(ValueError):
            generate_ops(ring(4), [], priority_mode="magic")

    def test_deterministic(self):
        topo = ring(5)
        prefixes = PrefixPool(seed=4).sample(4)
        a = generate_ops(topo, prefixes, seed=9)
        b = generate_ops(ring(5), prefixes, seed=9)
        assert [op.to_line() for op in a] == [op.to_line() for op in b]


class TestEdgeCases:
    """Degenerate inputs surfaced while building the scenario engine."""

    def test_empty_topology_rejected_with_clear_message(self):
        with pytest.raises(ValueError, match="no nodes"):
            ShortestPathRuleGenerator(Topology("empty"))

    def test_generate_ops_empty_topology_rejected(self):
        with pytest.raises(ValueError, match="no nodes"):
            generate_ops(Topology("empty"), [(0, 8)])

    def test_single_node_topology_yields_no_rules(self):
        topo = Topology("solo")
        topo.add_node("only")
        generator = ShortestPathRuleGenerator(topo, seed=1)
        assert generator.rules_for_prefix((0, 8)) == []

    def test_generate_ops_single_node_is_empty(self):
        topo = Topology("solo")
        topo.add_node("only")
        assert generate_ops(topo, PrefixPool(seed=1).sample(3), seed=1) == []

    def test_duplicate_prefixes_get_distinct_rids(self):
        topo = ring(4)
        generator = ShortestPathRuleGenerator(topo, seed=1)
        first = generator.rules_for_prefix((0, 8), destination=0)
        second = generator.rules_for_prefix((0, 8), destination=0)
        rids = [rule.rid for rule in first + second]
        assert len(rids) == len(set(rids))
        ops = generate_ops(ring(4), [(0, 8), (0, 8)], seed=2)
        insert_rids = [op.rid for op in ops if op.is_insert]
        assert len(insert_rids) == len(set(insert_rids))
