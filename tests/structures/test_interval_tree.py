"""Tests for the augmented interval tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.interval_tree import IntervalTree

interval_specs = st.lists(
    st.tuples(st.integers(0, 100), st.integers(1, 40)), min_size=0,
    max_size=40)


class TestBasics:
    def test_empty(self):
        tree = IntervalTree()
        assert len(tree) == 0
        assert not tree
        assert list(tree.stab(5)) == []
        assert list(tree.items()) == []

    def test_insert_and_stab(self):
        tree = IntervalTree()
        tree.insert(10, 20, "a")
        assert list(tree.stab(10)) == ["a"]
        assert list(tree.stab(19)) == ["a"]
        assert list(tree.stab(20)) == []
        assert list(tree.stab(9)) == []

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalTree().insert(5, 5)
        with pytest.raises(ValueError):
            list(IntervalTree().overlapping(5, 5))

    def test_duplicates_coexist(self):
        tree = IntervalTree()
        s1 = tree.insert(0, 10, "x")
        s2 = tree.insert(0, 10, "y")
        assert sorted(tree.stab(5)) == ["x", "y"]
        tree.remove(0, s1)
        assert list(tree.stab(5)) == ["y"]
        tree.remove(0, s2)
        assert len(tree) == 0

    def test_remove_unknown_raises(self):
        tree = IntervalTree()
        with pytest.raises(KeyError):
            tree.remove(0, 99)

    def test_items_sorted_by_lo(self):
        tree = IntervalTree()
        for lo in (30, 10, 20):
            tree.insert(lo, lo + 5, lo)
        assert [lo for lo, _hi, _v in tree.items()] == [10, 20, 30]


class TestQueriesAgainstBruteForce:
    @settings(max_examples=150, deadline=None)
    @given(interval_specs, st.integers(0, 140))
    def test_stab_matches_scan(self, specs, point):
        tree = IntervalTree()
        model = []
        for index, (lo, span) in enumerate(specs):
            tree.insert(lo, lo + span, index)
            model.append((lo, lo + span, index))
        expected = {v for lo, hi, v in model if lo <= point < hi}
        assert set(tree.stab(point)) == expected

    @settings(max_examples=150, deadline=None)
    @given(interval_specs, st.integers(0, 140), st.integers(1, 40))
    def test_overlapping_matches_scan(self, specs, qlo, qspan):
        tree = IntervalTree()
        model = []
        for index, (lo, span) in enumerate(specs):
            tree.insert(lo, lo + span, index)
            model.append((lo, lo + span, index))
        qhi = qlo + qspan
        expected = {v for lo, hi, v in model if lo < qhi and qlo < hi}
        assert set(tree.overlapping(qlo, qhi)) == expected

    @settings(max_examples=80, deadline=None)
    @given(interval_specs)
    def test_removal_keeps_queries_exact(self, specs):
        tree = IntervalTree()
        model = {}
        for index, (lo, span) in enumerate(specs):
            serial = tree.insert(lo, lo + span, index)
            model[index] = (lo, lo + span, serial)
        rng = random.Random(42)
        victims = rng.sample(list(model), len(model) // 2)
        for victim in victims:
            lo, _hi, serial = model.pop(victim)
            tree.remove(lo, serial)
        for point in (0, 25, 50, 99, 139):
            expected = {v for v, (lo, hi, _s) in model.items()
                        if lo <= point < hi}
            assert set(tree.stab(point)) == expected
        assert len(tree) == len(model)

    def test_max_hi_invariant(self):
        tree = IntervalTree()
        for lo, span in [(5, 30), (10, 2), (50, 10), (0, 100)]:
            tree.insert(lo, lo + span)

        def check(node):
            if node is None:
                return -1
            expected = max(node.hi, check(node.left), check(node.right))
            assert node.max_hi == expected
            return expected

        check(tree._root)
