"""Unit and property tests for the persistent priority treap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import ptreap
from repro.structures.ptreap import PTreap


class TestFunctionalAPI:
    def test_empty_root(self):
        assert ptreap.find(None, (1, 0)) is None
        with pytest.raises(KeyError):
            ptreap.max_node(None)
        with pytest.raises(KeyError):
            ptreap.min_node(None)
        assert ptreap.size(None) == 0
        assert list(ptreap.iter_items(None)) == []

    def test_insert_find(self):
        root = ptreap.insert(None, (5, 0), "five")
        root = ptreap.insert(root, (3, 1), "three")
        assert ptreap.find(root, (5, 0)).value == "five"
        assert ptreap.find(root, (3, 1)).value == "three"
        assert ptreap.find(root, (4, 0)) is None

    def test_insert_replaces_value(self):
        root = ptreap.insert(None, (1, 1), "a")
        root2 = ptreap.insert(root, (1, 1), "b")
        assert ptreap.find(root2, (1, 1)).value == "b"
        assert ptreap.find(root, (1, 1)).value == "a"  # persistence
        assert ptreap.size(root2) == 1

    def test_max_min(self):
        root = None
        for priority in (4, 9, 1, 7):
            root = ptreap.insert(root, (priority, 0), priority)
        assert ptreap.max_node(root).value == 9
        assert ptreap.min_node(root).value == 1

    def test_remove(self):
        root = None
        for priority in range(10):
            root = ptreap.insert(root, (priority, 0), priority)
        root2 = ptreap.remove(root, (9, 0))
        assert ptreap.max_node(root2).value == 8
        assert ptreap.max_node(root).value == 9  # old version intact
        with pytest.raises(KeyError):
            ptreap.remove(root2, (9, 0))

    def test_remove_to_empty(self):
        root = ptreap.insert(None, (1, 0), "only")
        assert ptreap.remove(root, (1, 0)) is None

    def test_inorder_sorted(self):
        root = None
        for priority in (5, 2, 8, 1, 9, 3):
            root = ptreap.insert(root, (priority, 0), priority)
        keys = [key for key, _value in ptreap.iter_items(root)]
        assert keys == sorted(keys)


class TestWrapper:
    def test_value_semantics(self):
        t0 = PTreap()
        t1 = t0.insert((1, 0), "low").insert((9, 1), "high")
        assert t0.is_empty()
        assert not t1.is_empty()
        assert t1.max().value == "high"
        assert len(t1) == 2
        assert (1, 0) in t1
        assert (2, 0) not in t1
        t2 = t1.remove((9, 1))
        assert t2.max().value == "low"
        assert t1.max().value == "high"

    def test_iteration(self):
        t = PTreap().insert((2, 0), "b").insert((1, 0), "a")
        assert list(t) == [((1, 0), "a"), ((2, 0), "b")]

    def test_bool(self):
        assert not PTreap()
        assert PTreap().insert((0, 0), None)


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=0, max_value=31)),
                max_size=60))
def test_model_based_with_persistence(script):
    """Latest version matches a dict model; old snapshots never change."""
    root = None
    model = {}
    snapshots = []
    for is_insert, priority in script:
        key = (priority, 0)
        if is_insert:
            root = ptreap.insert(root, key, priority)
            model[key] = priority
        elif key in model:
            root = ptreap.remove(root, key)
            del model[key]
        snapshots.append((root, dict(model)))
    for snapshot_root, snapshot_model in snapshots:
        items = dict(ptreap.iter_items(snapshot_root))
        assert items == snapshot_model
        if snapshot_model:
            assert ptreap.max_node(snapshot_root).key == max(snapshot_model)


@settings(max_examples=50, deadline=None)
@given(st.sets(st.tuples(st.integers(0, 1000), st.integers(0, 5)),
               min_size=1, max_size=100))
def test_heap_property_and_bst_property(keys):
    root = None
    for key in keys:
        root = ptreap.insert(root, key, None)

    def check(node, lo, hi):
        if node is None:
            return
        assert (lo is None or lo < node.key) and (hi is None or node.key < hi)
        for child in (node.left, node.right):
            if child is not None:
                assert child.prio <= node.prio
        check(node.left, lo, node.key)
        check(node.right, node.key, hi)

    check(root, None, None)
    assert ptreap.size(root) == len(keys)


def test_structural_sharing_after_copy():
    """An atom-split-style dict copy shares roots; divergence is safe."""
    root = None
    for priority in range(50):
        root = ptreap.insert(root, (priority, 0), priority)
    old_owner = {"s1": root}
    new_owner = dict(old_owner)          # Algorithm 1, line 4
    assert new_owner["s1"] is old_owner["s1"]
    new_owner["s1"] = ptreap.insert(new_owner["s1"], (99, 0), 99)
    assert ptreap.max_node(new_owner["s1"]).value == 99
    assert ptreap.max_node(old_owner["s1"]).value == 49
