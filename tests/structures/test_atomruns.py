"""AtomRuns: run-length atom sets cross-checked against plain sets."""

import random

import pytest

from repro.structures.atomruns import AtomRuns


class TestBasics:
    def test_empty(self):
        runs = AtomRuns()
        assert len(runs) == 0
        assert not runs
        assert runs.num_runs == 0
        assert list(runs) == []
        assert 0 not in runs
        assert runs.to_bitmask() == 0

    def test_single_run_from_consecutive_adds(self):
        runs = AtomRuns()
        for atom in range(5, 10):
            runs.add(atom)
        assert runs.runs() == [(5, 10)]
        assert len(runs) == 5
        assert list(runs) == [5, 6, 7, 8, 9]
        assert runs.to_bitmask() == 0b1111100000

    def test_add_is_idempotent(self):
        runs = AtomRuns([3, 4, 5])
        runs.add(4)
        assert len(runs) == 3
        assert runs.runs() == [(3, 6)]

    def test_add_bridges_two_runs(self):
        runs = AtomRuns([1, 2, 4, 5])
        assert runs.num_runs == 2
        runs.add(3)
        assert runs.runs() == [(1, 6)]

    def test_add_extends_run_start(self):
        runs = AtomRuns([5, 6])
        runs.add(4)
        assert runs.runs() == [(4, 7)]

    def test_negative_atom_rejected(self):
        with pytest.raises(ValueError):
            AtomRuns().add(-1)

    def test_discard_absent_is_noop(self):
        runs = AtomRuns([1, 2])
        runs.discard(7)
        runs.discard(0)
        assert runs.runs() == [(1, 3)]

    def test_discard_splits_a_run(self):
        runs = AtomRuns([1, 2, 3, 4, 5])
        runs.discard(3)
        assert runs.runs() == [(1, 3), (4, 6)]
        assert len(runs) == 4

    def test_discard_trims_run_edges(self):
        runs = AtomRuns([1, 2, 3])
        runs.discard(1)
        assert runs.runs() == [(2, 4)]
        runs.discard(3)
        assert runs.runs() == [(2, 3)]
        runs.discard(2)
        assert runs.runs() == []
        assert not runs

    def test_equality_with_sets_and_runs(self):
        runs = AtomRuns([1, 2, 9])
        assert runs == {1, 2, 9}
        assert runs == AtomRuns([9, 1, 2])
        assert runs != {1, 2}
        assert runs != AtomRuns([1, 2])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(AtomRuns())

    def test_copy_is_independent(self):
        runs = AtomRuns([1, 2])
        twin = runs.copy()
        twin.add(3)
        assert runs.runs() == [(1, 3)]
        assert twin.runs() == [(1, 4)]

    def test_from_runs_normalizes(self):
        runs = AtomRuns.from_runs([(4, 6), (0, 2), (2, 4), (5, 6)])
        assert runs.runs() == [(0, 6)]
        assert len(runs) == 6

    def test_from_runs_rejects_empty_or_negative(self):
        with pytest.raises(ValueError):
            AtomRuns.from_runs([(3, 3)])
        with pytest.raises(ValueError):
            AtomRuns.from_runs([(-1, 2)])


class TestAlgebra:
    def test_union(self):
        a = AtomRuns([0, 1, 5])
        b = AtomRuns([1, 2, 9])
        assert set(a.union(b)) == {0, 1, 2, 5, 9}

    def test_union_update(self):
        a = AtomRuns([0, 1])
        a.union_update(AtomRuns([2, 7]))
        assert a.runs() == [(0, 3), (7, 8)]
        assert len(a) == 4

    def test_intersection(self):
        a = AtomRuns([0, 1, 2, 3, 8])
        b = AtomRuns([2, 3, 4, 8])
        assert set(a.intersection(b)) == {2, 3, 8}

    def test_difference(self):
        a = AtomRuns([0, 1, 2, 3, 8])
        b = AtomRuns([1, 2, 9])
        assert set(a.difference(b)) == {0, 3, 8}

    def test_isdisjoint(self):
        assert AtomRuns([0, 1]).isdisjoint(AtomRuns([2, 3]))
        assert not AtomRuns([0, 2]).isdisjoint(AtomRuns([2, 3]))
        assert AtomRuns().isdisjoint(AtomRuns([1]))


class TestRandomizedAgainstSets:
    @pytest.mark.parametrize("seed", range(8))
    def test_mutation_trace_matches_set(self, seed):
        rng = random.Random(seed)
        runs, model = AtomRuns(), set()
        for _ in range(600):
            atom = rng.randrange(64)
            if rng.random() < 0.6:
                runs.add(atom)
                model.add(atom)
            else:
                runs.discard(atom)
                model.discard(atom)
            assert (atom in runs) == (atom in model)
        assert runs == model
        assert list(runs) == sorted(model)
        assert len(runs) == len(model)
        assert runs.to_bitmask() == sum(1 << a for a in model)
        # Runs are canonical: sorted, non-empty, non-touching.
        pairs = runs.runs()
        for (s0, e0), (s1, e1) in zip(pairs, pairs[1:]):
            assert s0 < e0 < s1 < e1

    @pytest.mark.parametrize("seed", range(5))
    def test_algebra_matches_set_semantics(self, seed):
        rng = random.Random(0xA1 + seed)
        xs = {rng.randrange(80) for _ in range(rng.randrange(40))}
        ys = {rng.randrange(80) for _ in range(rng.randrange(40))}
        a, b = AtomRuns(xs), AtomRuns(ys)
        assert set(a.union(b)) == xs | ys
        assert set(a.intersection(b)) == xs & ys
        assert set(a.difference(b)) == xs - ys
        assert a.isdisjoint(b) == xs.isdisjoint(ys)
