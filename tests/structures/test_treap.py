"""Unit and property tests for the TreapMap ordered map."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.treap import TreapMap


class TestBasics:
    def test_empty(self):
        m = TreapMap()
        assert len(m) == 0
        assert not m
        assert 5 not in m
        assert m.get(5) is None
        assert m.get(5, "x") == "x"
        assert list(m.keys()) == []

    def test_insert_and_get(self):
        m = TreapMap()
        assert m.insert(3, "a") is True
        assert m.insert(3, "b") is False  # replacement, not new
        assert m[3] == "b"
        assert len(m) == 1

    def test_setitem_getitem(self):
        m = TreapMap()
        m[10] = "x"
        assert m[10] == "x"
        with pytest.raises(KeyError):
            m[11]

    def test_contains(self):
        m = TreapMap()
        m[1] = None
        assert 1 in m
        assert 2 not in m

    def test_remove(self):
        m = TreapMap()
        m[1] = "a"
        m[2] = "b"
        assert m.remove(1) == "a"
        assert len(m) == 1
        assert 1 not in m
        with pytest.raises(KeyError):
            m.remove(1)

    def test_sorted_iteration(self):
        m = TreapMap()
        for key in (5, 1, 9, 3, 7):
            m[key] = key * 10
        assert list(m.keys()) == [1, 3, 5, 7, 9]
        assert list(m.values()) == [10, 30, 50, 70, 90]
        assert list(m.items()) == [(k, k * 10) for k in (1, 3, 5, 7, 9)]

    def test_min_max(self):
        m = TreapMap()
        with pytest.raises(KeyError):
            m.min_key()
        with pytest.raises(KeyError):
            m.max_key()
        for key in (5, 1, 9):
            m[key] = None
        assert m.min_key() == 1
        assert m.max_key() == 9


class TestOrderedQueries:
    def setup_method(self):
        self.m = TreapMap()
        for key in (10, 20, 30, 40):
            self.m[key] = f"v{key}"

    def test_floor_key_exact(self):
        assert self.m.floor_key(20) == 20

    def test_floor_key_between(self):
        assert self.m.floor_key(25) == 20

    def test_floor_key_above_all(self):
        assert self.m.floor_key(99) == 40

    def test_floor_key_below_all_raises(self):
        with pytest.raises(KeyError):
            self.m.floor_key(9)

    def test_floor_item(self):
        assert self.m.floor_item(35) == (30, "v30")
        assert self.m.floor_item(30) == (30, "v30")

    def test_succ_key(self):
        assert self.m.succ_key(10) == 20
        assert self.m.succ_key(15) == 20
        assert self.m.succ_key(0) == 10

    def test_succ_key_at_max_raises(self):
        with pytest.raises(KeyError):
            self.m.succ_key(40)

    def test_irange_half_open(self):
        assert list(self.m.irange(10, 30)) == [10, 20]
        assert list(self.m.irange(11, 31)) == [20, 30]
        assert list(self.m.irange()) == [10, 20, 30, 40]
        assert list(self.m.irange(41, None)) == []
        assert list(self.m.irange(None, 10)) == []

    def test_iritems_range(self):
        assert list(self.m.iritems(20, 40)) == [(20, "v20"), (30, "v30")]


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("ird"),
                          st.integers(min_value=0, max_value=63))))
def test_model_based_against_dict(script):
    """TreapMap behaves exactly like a dict + sorted(list) model."""
    treap = TreapMap(seed=1)
    model = {}
    for action, key in script:
        if action == "i":
            treap.insert(key, key * 2)
            model[key] = key * 2
        elif action == "r":
            if key in model:
                assert treap.remove(key) == model.pop(key)
            else:
                with pytest.raises(KeyError):
                    treap.remove(key)
        else:  # 'd': deep comparison
            assert list(treap.items()) == sorted(model.items())
    assert len(treap) == len(model)
    assert list(treap.keys()) == sorted(model)
    for key in model:
        assert treap[key] == model[key]
        sorted_keys = sorted(model)
        larger = [k for k in sorted_keys if k > key]
        if larger:
            assert treap.succ_key(key) == larger[0]
        else:
            with pytest.raises(KeyError):
                treap.succ_key(key)


@settings(max_examples=100, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=1000), min_size=1),
       st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=1000))
def test_irange_matches_filter(keys, raw_lo, raw_hi):
    lo, hi = min(raw_lo, raw_hi), max(raw_lo, raw_hi)
    treap = TreapMap()
    for key in keys:
        treap[key] = None
    expected = sorted(k for k in keys if lo <= k < hi)
    assert list(treap.irange(lo, hi)) == expected


def test_large_scale_determinism():
    """Same operations, same seed => identical structures; stays sorted."""
    operations = random.Random(9).sample(range(100000), 5000)
    a, b = TreapMap(seed=5), TreapMap(seed=5)
    for key in operations:
        a[key] = key
        b[key] = key
    assert list(a.items()) == list(b.items())
    keys = list(a.keys())
    assert keys == sorted(operations)
