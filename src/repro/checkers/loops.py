"""Forwarding-loop detection (paper §4.1, §4.3.1).

For a fixed atom the forwarding behaviour is a *functional* graph: each
switch has at most one out-edge carrying the atom (the link of the
highest-priority owning rule).  A loop is therefore found by pointer
chasing with a visited set — the paper's "iterative depth-first graph
traversal".

Chasing runs through the verifier's persistent
:class:`~repro.core.findex.ForwardingIndex`: a node's labelled out-edges
are one dict lookup and atom membership is O(log runs), so a check costs
O(affected · path · log) — nothing is rebuilt per check.  (The seed
rebuilt a ``source -> out-links`` map on every ``check_update``, an O(E)
tax the ``check_latency`` benchmark now measures against; the old code
survives as :mod:`repro.checkers.sweep`, the equivalence oracle.)

Two entry points:

* :meth:`LoopChecker.check_update` — incremental: after a rule update,
  only atoms whose ownership changed can participate in a *new* loop, and
  any new loop must traverse one of the newly added ``(link, atom)``
  labels; we chase from exactly those.
* :func:`find_forwarding_loops` — full sweep over every atom in every
  label (used for whole-data-plane what-if analysis).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.core.delta_graph import DeltaGraph
from repro.core.deltanet import DeltaNet
from repro.core.findex import NextHop
from repro.core.rules import DROP, Link, canonical_rotation


class Loop(NamedTuple):
    """A forwarding loop: ``atom`` cycles through ``cycle`` (node list)."""

    atom: int
    cycle: Tuple[object, ...]

    def canonical(self) -> "Loop":
        """Rotate the cycle to its canonical start, for dedup (see
        :func:`repro.core.rules.canonical_rotation` for the pivot
        rule)."""
        return Loop(self.atom, canonical_rotation(self.cycle))


def _chase(next_hop: NextHop, start: object, atom: int) -> Optional[Loop]:
    """Follow the functional graph of ``atom`` from ``start``."""
    path: List[object] = []
    seen_at: Dict[object, int] = {}
    node: Optional[object] = start
    while node is not None and node != DROP:
        if node in seen_at:
            return Loop(atom, tuple(path[seen_at[node]:])).canonical()
        seen_at[node] = len(path)
        path.append(node)
        node = next_hop(node, atom)
    return None


class LoopChecker:
    """Incremental loop checking bound to one :class:`DeltaNet` instance."""

    def __init__(self, deltanet: DeltaNet) -> None:
        self.deltanet = deltanet

    def check_update(self, delta_graph: DeltaGraph) -> List[Loop]:
        """Loops introduced by the update described by ``delta_graph``.

        A new loop must contain at least one newly-added ``(link, atom)``
        pair, so chasing from each added link's source suffices.  Chases
        share one memoizing resolver over the live index, so the cost is
        proportional to the delta — never to the edge set.
        """
        if not delta_graph.added:
            return []
        next_hop = self.deltanet.findex.resolver()
        loops: List[Loop] = []
        seen: Set[Loop] = set()
        for link, atoms in delta_graph.added.items():
            for atom in atoms:
                loop = _chase(next_hop, link.source, atom)
                if loop is not None and loop not in seen:
                    seen.add(loop)
                    loops.append(loop)
        return loops


def find_forwarding_loops(deltanet: DeltaNet,
                          atoms: Optional[Iterable[int]] = None,
                          links: Optional[Iterable[Link]] = None) -> List[Loop]:
    """Exhaustive loop sweep.

    ``atoms``/``links`` restrict the search (e.g. to a what-if query's
    affected atoms and subgraph); by default every labelled atom on every
    link is covered.
    """
    findex = deltanet.findex
    next_hop = findex.resolver()
    atom_filter = set(atoms) if atoms is not None else None
    link_iter = list(links) if links is not None else list(deltanet.label)
    loops: List[Loop] = []
    seen: Set[Loop] = set()
    # Group starting points by atom so each functional graph is walked once
    # per distinct entry component.
    starts: Dict[int, Set[object]] = {}
    for link in link_iter:
        bucket = deltanet.label.get(link)
        if not bucket:
            continue
        for atom in bucket:
            if atom_filter is not None and atom not in atom_filter:
                continue
            starts.setdefault(atom, set()).add(link.source)
    num_sources = len(findex.by_source)
    for atom, sources in starts.items():
        done: Set[object] = set()
        for source in sources:
            if source in done:
                continue
            loop = _chase(next_hop, source, atom)
            # Every node on the chased path has been classified for this atom.
            node: Optional[object] = source
            steps = 0
            limit = len(sources) + num_sources + 2
            while (node is not None and node != DROP and node not in done
                   and steps < limit):
                done.add(node)
                node = next_hop(node, atom)
                steps += 1
            if loop is not None and loop not in seen:
                seen.add(loop)
                loops.append(loop)
    return loops
