"""Forwarding-loop detection (paper §4.1, §4.3.1).

For a fixed atom the forwarding behaviour is a *functional* graph: each
switch has at most one out-edge carrying the atom (the link of the
highest-priority owning rule).  A loop is therefore found by pointer
chasing with a visited set — the paper's "iterative depth-first graph
traversal".

Two entry points:

* :meth:`LoopChecker.check_update` — incremental: after a rule update,
  only atoms whose ownership changed can participate in a *new* loop, and
  any new loop must traverse one of the newly added ``(link, atom)``
  labels; we chase from exactly those.
* :func:`find_forwarding_loops` — full sweep over every atom in every
  label (used for whole-data-plane what-if analysis).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.core.delta_graph import DeltaGraph
from repro.core.deltanet import DeltaNet
from repro.core.rules import DROP, Link


class Loop(NamedTuple):
    """A forwarding loop: ``atom`` cycles through ``cycle`` (node list)."""

    atom: int
    cycle: Tuple[object, ...]

    def canonical(self) -> "Loop":
        """Rotate the cycle to start at its minimal node, for dedup."""
        nodes = list(self.cycle)
        pivot = min(range(len(nodes)), key=lambda i: repr(nodes[i]))
        return Loop(self.atom, tuple(nodes[pivot:] + nodes[:pivot]))


def _next_hop(deltanet: DeltaNet, out_links: Dict[object, List[Link]],
              node: object, atom: int) -> Optional[object]:
    """The unique next hop of an ``atom``-packet at ``node``, if any."""
    for link in out_links.get(node, ()):
        bucket = deltanet.label.get(link)
        if bucket and atom in bucket:
            return link.target
    return None


def _out_link_index(deltanet: DeltaNet) -> Dict[object, List[Link]]:
    index: Dict[object, List[Link]] = {}
    for link in deltanet.label:
        index.setdefault(link.source, []).append(link)
    return index


def _chase(deltanet: DeltaNet, out_links: Dict[object, List[Link]],
           start: object, atom: int) -> Optional[Loop]:
    """Follow the functional graph of ``atom`` from ``start``."""
    path: List[object] = []
    seen_at: Dict[object, int] = {}
    node: Optional[object] = start
    while node is not None and node != DROP:
        if node in seen_at:
            return Loop(atom, tuple(path[seen_at[node]:])).canonical()
        seen_at[node] = len(path)
        path.append(node)
        node = _next_hop(deltanet, out_links, node, atom)
    return None


class LoopChecker:
    """Incremental loop checking bound to one :class:`DeltaNet` instance."""

    def __init__(self, deltanet: DeltaNet) -> None:
        self.deltanet = deltanet

    def check_update(self, delta_graph: DeltaGraph) -> List[Loop]:
        """Loops introduced by the update described by ``delta_graph``.

        A new loop must contain at least one newly-added ``(link, atom)``
        pair, so chasing from each added link's source suffices.
        """
        if not delta_graph.added:
            return []
        out_links = _out_link_index(self.deltanet)
        loops: List[Loop] = []
        seen: Set[Loop] = set()
        for link, atoms in delta_graph.added.items():
            for atom in atoms:
                loop = _chase(self.deltanet, out_links, link.source, atom)
                if loop is not None and loop not in seen:
                    seen.add(loop)
                    loops.append(loop)
        return loops


def find_forwarding_loops(deltanet: DeltaNet,
                          atoms: Optional[Iterable[int]] = None,
                          links: Optional[Iterable[Link]] = None) -> List[Loop]:
    """Exhaustive loop sweep.

    ``atoms``/``links`` restrict the search (e.g. to a what-if query's
    affected atoms and subgraph); by default every labelled atom on every
    link is covered.
    """
    out_links = _out_link_index(deltanet)
    atom_filter = set(atoms) if atoms is not None else None
    link_iter = list(links) if links is not None else list(deltanet.label)
    loops: List[Loop] = []
    seen: Set[Loop] = set()
    # Group starting points by atom so each functional graph is walked once
    # per distinct entry component.
    starts: Dict[int, Set[object]] = {}
    for link in link_iter:
        bucket = deltanet.label.get(link)
        if not bucket:
            continue
        for atom in bucket:
            if atom_filter is not None and atom not in atom_filter:
                continue
            starts.setdefault(atom, set()).add(link.source)
    for atom, sources in starts.items():
        done: Set[object] = set()
        for source in sources:
            if source in done:
                continue
            loop = _chase(deltanet, out_links, source, atom)
            # Every node on the chased path has been classified for this atom.
            node: Optional[object] = source
            steps = 0
            limit = len(sources) + len(out_links) + 2
            while node is not None and node != DROP and node not in done and steps < limit:
                done.add(node)
                node = _next_hop(deltanet, out_links, node, atom)
                steps += 1
            if loop is not None and loop not in seen:
                seen.add(loop)
                loops.append(loop)
    return loops
