"""Reachability queries over the edge-labelled graph (design goal 1, §2.2).

"Find *all* packets that can reach node B from node A" — answered in one
graph propagation rather than one SAT call per witness.  Atom sets are
propagated as int bitmasks; a node's reached-mask only ever grows, so the
worklist algorithm terminates in O(E * K / wordsize) bit operations even
in cyclic graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.core.atomset import atoms_to_bitmask, bitmask_to_atoms, label_bitmask
from repro.core.deltanet import DeltaNet
from repro.core.rules import DROP, Link


def _masks_and_adjacency(deltanet: DeltaNet) -> Tuple[Dict[Link, int], Dict[object, List[Link]]]:
    """Per-link bitmasks + per-source adjacency, off the live index.

    The adjacency grouping is the forwarding index's ``by_source`` view
    — already maintained, never rebuilt here — and each label converts
    to a mask in O(runs) rather than one shift per atom.
    """
    masks: Dict[Link, int] = {}
    adjacency: Dict[object, List[Link]] = {}
    for source, out_links in deltanet.findex.by_source.items():
        links = [link for link, runs in out_links.items() if runs]
        if links:
            adjacency[source] = links
            for link in links:
                masks[link] = label_bitmask(out_links[link])
    return masks, adjacency


def reachable_atoms(deltanet: DeltaNet, src: object, dst: object) -> Set[int]:
    """Atoms (packet classes) that can flow from ``src`` to ``dst``.

    A packet injected at ``src`` follows, at each hop, the unique link
    whose label contains its atom; this propagates the full atom universe
    from ``src`` and reports what arrives at ``dst``.

    Goal-directed: label masks are materialized lazily, only for the
    links the propagation frontier actually crosses, so a query touching
    a small corner of a large network pays for that corner — not one
    ``label_bitmask`` per link in the network.
    """
    by_source = deltanet.findex.by_source
    full = (1 << deltanet.atoms.num_ids_allocated) - 1
    masks: Dict[Link, int] = {}
    reached: Dict[object, int] = {src: full}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        mask = reached[node]
        out_links = by_source.get(node)
        if not out_links:
            continue
        for link, runs in out_links.items():
            if link.target == DROP or not runs:
                continue
            link_mask = masks.get(link)
            if link_mask is None:
                link_mask = masks[link] = label_bitmask(runs)
            passed = mask & link_mask
            if not passed:
                continue
            previous = reached.get(link.target, 0)
            fresh = passed & ~previous
            if fresh:
                reached[link.target] = previous | fresh
                queue.append(link.target)
    arrived = reached.get(dst, 0)
    if dst == src:
        # Only the seed mask can carry identifiers no label vouches for;
        # labels hold live atoms exclusively (GC erases retired ids), so
        # anything that crossed a link is already live.
        live = atoms_to_bitmask(a for a, _ in deltanet.atoms.intervals())
        arrived &= live
    return bitmask_to_atoms(arrived)


def reachable_nodes(deltanet: DeltaNet, src: object, atom: int) -> List[object]:
    """Every node an ``atom``-packet injected at ``src`` traverses."""
    out: List[object] = []
    seen: Set[object] = set()
    next_hop = deltanet.findex.next_hop
    node: Optional[object] = src
    while node is not None and node != DROP and node not in seen:
        seen.add(node)
        out.append(node)
        node = next_hop(node, atom)
    return out


def find_path(deltanet: DeltaNet, src: object, dst: object,
              atom: int) -> Optional[List[object]]:
    """The (unique) forwarding path of ``atom`` from ``src`` to ``dst``."""
    trail = reachable_nodes(deltanet, src, atom)
    if dst in trail:
        return trail[:trail.index(dst) + 1]
    return None
