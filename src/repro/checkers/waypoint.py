"""Waypoint (service-chaining) invariant: flows must traverse a middlebox.

``check_waypoint(dn, src, dst, waypoint)`` returns the atoms that reach
``dst`` from ``src`` *without* passing through ``waypoint`` — i.e. the
violations of "all src->dst traffic goes through the firewall".  It is a
straightforward reachability computation on the edge-labelled graph with
the waypoint node deleted, illustrating the paper's point (§3.3) that
atom sets make such policy checks plain set algebra.  The masks and
adjacency come straight off the forwarding index (the shared
``_masks_and_adjacency`` helper), so nothing is rebuilt per check.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from repro.checkers.reachability import _masks_and_adjacency
from repro.core.atomset import atoms_to_bitmask, bitmask_to_atoms
from repro.core.deltanet import DeltaNet
from repro.core.rules import DROP


def check_waypoint(deltanet: DeltaNet, src: object, dst: object,
                   waypoint: object) -> Set[int]:
    """Atoms reaching ``dst`` from ``src`` while bypassing ``waypoint``."""
    if waypoint in (src, dst):
        raise ValueError("waypoint must differ from the endpoints")
    masks, adjacency = _masks_and_adjacency(deltanet)
    full = (1 << deltanet.atoms.num_ids_allocated) - 1
    reached: Dict[object, int] = {src: full}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        mask = reached[node]
        for link in adjacency.get(node, ()):
            if link.target in (DROP, waypoint):
                continue
            passed = mask & masks[link]
            fresh = passed & ~reached.get(link.target, 0)
            if fresh:
                reached[link.target] = reached.get(link.target, 0) | fresh
                queue.append(link.target)
    live = atoms_to_bitmask(a for a, _ in deltanet.atoms.intervals())
    return bitmask_to_atoms(reached.get(dst, 0) & live)
