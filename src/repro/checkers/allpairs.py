"""Algorithm 3: all-pairs reachability of all atoms (paper §3.3).

The Floyd–Warshall adaptation replaces min/+ with set-union/intersection
over atom sets: after the triple loop, ``closure[i, j]`` holds every atom
that can flow from node ``i`` to node ``j`` along some path.  Complexity
is O(K * |V|^3) bit operations, which the paper positions for Datalog-style
pre-deployment queries rather than per-update checking.

``all_pairs_reference`` is an independent per-atom BFS closure used by the
test suite to cross-check Algorithm 3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.atomset import (
    atoms_to_bitmask, bitmask_to_atoms, iter_bits, label_bitmask,
)
from repro.core.deltanet import DeltaNet
from repro.core.rules import DROP, Link

Closure = Dict[Tuple[object, object], int]


def all_pairs_reachability(deltanet: DeltaNet,
                           nodes: Optional[Iterable[object]] = None) -> Closure:
    """Transitive closure of packet flows between all node pairs.

    Returns ``(i, j) -> bitmask`` of atoms flowing from ``i`` to ``j``
    over one or more hops.  Pairs with an empty atom set are omitted.
    ``closure[i, i]`` being non-empty flags a forwarding loop through
    ``i`` for those atoms.
    """
    node_list = list(nodes) if nodes is not None else sorted(
        (n for n in deltanet.nodes if n != DROP), key=repr)
    closure: Dict[Tuple[object, object], int] = {}
    for link, atoms in deltanet.label.items():
        if not atoms or link.target == DROP:
            continue
        key = (link.source, link.target)
        closure[key] = closure.get(key, 0) | label_bitmask(atoms)

    # label[i, j] |= label[i, k] & label[k, j]   (Algorithm 3, line 2)
    for k in node_list:
        for i in node_list:
            ik = closure.get((i, k))
            if not ik:
                continue
            for j in node_list:
                kj = closure.get((k, j))
                if not kj:
                    continue
                through = ik & kj
                if through:
                    key = (i, j)
                    closure[key] = closure.get(key, 0) | through
    return {key: mask for key, mask in closure.items() if mask}


def all_pairs_reference(deltanet: DeltaNet) -> Closure:
    """Per-atom BFS transitive closure (slow oracle for Algorithm 3)."""
    per_atom_edges: Dict[int, List[Tuple[object, object]]] = {}
    for link, atoms in deltanet.label.items():
        if link.target == DROP:
            continue
        for atom in atoms:
            per_atom_edges.setdefault(atom, []).append((link.source, link.target))
    closure: Dict[Tuple[object, object], int] = {}
    for atom, edges in per_atom_edges.items():
        adjacency: Dict[object, List[object]] = {}
        for u, v in edges:
            adjacency.setdefault(u, []).append(v)
        for start in adjacency:
            seen: Set[object] = set()
            stack = list(adjacency[start])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(adjacency.get(node, ()))
            for node in seen:
                key = (start, node)
                closure[key] = closure.get(key, 0) | (1 << atom)
    return closure


def incremental_all_pairs(deltanet: DeltaNet, delta_graph,
                          nodes: Optional[Iterable[object]] = None) -> Closure:
    """Algorithm 3 restricted to one update's affected atoms (§3.3).

    "This algorithm could be run either on the edge-labelled graph that
    represents the entire network or only its incremental version in
    form of a delta-graph."  After a rule update, only the atoms whose
    ownership changed can have different reachability; this computes the
    closure masked to exactly those atoms, at a cost proportional to the
    delta instead of the whole atom universe.

    Returns ``(i, j) -> bitmask over affected atoms``; merging it over a
    cached full closure with :func:`merge_closures` (which replaces those
    atoms' bits) yields the up-to-date full closure.

    "Affected" here is :meth:`DeltaGraph.touched_atoms`: ownership
    changes plus atoms created by splits plus garbage-collected ids —
    all atoms whose cached per-atom closure bits could be stale.
    """
    affected = delta_graph.touched_atoms()
    if not affected:
        return {}
    mask = atoms_to_bitmask(affected)
    node_list = list(nodes) if nodes is not None else sorted(
        (n for n in deltanet.nodes if n != DROP), key=repr)
    closure: Dict[Tuple[object, object], int] = {}
    for link, atoms in deltanet.label.items():
        if not atoms or link.target == DROP:
            continue
        restricted = label_bitmask(atoms) & mask
        if restricted:
            key = (link.source, link.target)
            closure[key] = closure.get(key, 0) | restricted
    for k in node_list:
        for i in node_list:
            ik = closure.get((i, k))
            if not ik:
                continue
            for j in node_list:
                kj = closure.get((k, j))
                if not kj:
                    continue
                through = ik & kj
                if through:
                    key = (i, j)
                    closure[key] = closure.get(key, 0) | through
    return {key: value for key, value in closure.items() if value}


def merge_closures(full: Closure, incremental: Closure,
                   affected_atoms: Set[int]) -> Closure:
    """Overwrite the affected atoms' bits of ``full`` with ``incremental``."""
    mask = atoms_to_bitmask(affected_atoms)
    merged: Dict[Tuple[object, object], int] = {}
    for key, value in full.items():
        kept = value & ~mask
        if kept:
            merged[key] = kept
    for key, value in incremental.items():
        merged[key] = merged.get(key, 0) | value
    return {key: value for key, value in merged.items() if value}


def loops_from_closure(closure: Closure) -> Dict[object, Set[int]]:
    """Nodes on forwarding loops: ``node -> atoms`` with ``closure[n, n]``."""
    return {i: bitmask_to_atoms(mask)
            for (i, j), mask in closure.items() if i == j and mask}


def reachability_matrix(closure: Closure, src: object, dst: object) -> Set[int]:
    """Convenience: atoms flowing from ``src`` to ``dst`` per the closure."""
    return bitmask_to_atoms(closure.get((src, dst), 0))
