"""The "what if" link-failure query (paper §4.3.2, Table 4).

*What is the fate of packets that are using a link that fails?*  The
verification task is to represent, via one or multiple graphs, all flows
through the network that would be affected by the failure.

With Delta-net this is almost free: the affected packets are exactly
``label[failed_link]`` (a constant-time lookup), and the affected flow
graph is the restriction of the edge-labelled graph to those atoms — one
bitmask intersection per labelled link.  Veriflow, by contrast, must
recompute equivalence classes and construct a forwarding graph *per EC*
(see :meth:`repro.veriflow.verifier.VeriflowRI.whatif_link_failure`),
which is where the orders-of-magnitude gap of Table 4 comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.checkers.loops import Loop, find_forwarding_loops
from repro.core.atomset import bitmask_to_atoms, label_bitmask
from repro.core.deltanet import DeltaNet
from repro.core.rules import Link


@dataclass
class LinkFailureImpact:
    """Result of a what-if query on one link."""

    failed_link: Link
    #: Packet classes that were using the failed link.
    affected_atoms: Set[int] = field(default_factory=set)
    #: Restriction of the edge-labelled graph to the affected atoms:
    #: every link that carries at least one affected atom, with the
    #: affected atoms it carries.
    affected_subgraph: Dict[Link, Set[int]] = field(default_factory=dict)
    #: Forwarding loops found in the affected subgraph (optional check).
    loops: List[Loop] = field(default_factory=list)

    @property
    def num_affected_flows(self) -> int:
        return len(self.affected_atoms)

    def affected_intervals(self, deltanet: DeltaNet) -> List[Tuple[int, int]]:
        """The affected packet space as canonical header intervals."""
        from repro.core.atomset import atoms_to_interval_set

        return atoms_to_interval_set(self.affected_atoms, deltanet.atoms)


def link_failure_impact(deltanet: DeltaNet,
                        link: Union[Link, Tuple[object, object]],
                        check_loops: bool = False,
                        label_masks: Optional[Dict[Link, int]] = None
                        ) -> LinkFailureImpact:
    """Answer the what-if query for failing ``link`` (Delta-net side).

    With ``check_loops=True`` this additionally sweeps the affected
    subgraph for forwarding loops, mirroring Table 4's "+Loops" column.

    Each pairwise intersection is a word-parallel big-int AND of label
    bitmasks.  A sweep over *all* links (:func:`sweep_all_links`) passes
    ``label_masks``, the per-link bitmask table built once for the whole
    sweep, so the L queries share one mask build instead of rebuilding
    every mask L times.
    """
    if not isinstance(link, Link):
        link = Link(*link)
    impact = LinkFailureImpact(failed_link=link)
    affected = deltanet.label.get(link)
    if not affected:
        return impact
    impact.affected_atoms = set(affected)
    subgraph = impact.affected_subgraph
    if label_masks is not None:
        affected_mask = label_masks.get(link)
        if affected_mask is None:
            affected_mask = label_bitmask(affected)
        for other_link, atoms in deltanet.label.items():
            if not atoms:
                continue
            mask = label_masks.get(other_link)
            if mask is None:
                mask = label_bitmask(atoms)
            shared = mask & affected_mask
            if shared:
                subgraph[other_link] = bitmask_to_atoms(shared)
    else:
        affected_mask = label_bitmask(affected)
        for other_link, atoms in deltanet.label.items():
            if not atoms:
                continue
            shared = label_bitmask(atoms) & affected_mask
            if shared:
                subgraph[other_link] = bitmask_to_atoms(shared)
    if check_loops:
        impact.loops = find_forwarding_loops(
            deltanet, atoms=impact.affected_atoms,
            links=impact.affected_subgraph.keys())
    return impact


def sweep_all_links(deltanet: DeltaNet, check_loops: bool = False) -> Dict[Link, LinkFailureImpact]:
    """Run the what-if query for every labelled link (Table 4 workload).

    The per-link bitmask table is built once here and passed down, so
    the sweep costs one ``label_bitmask`` per link plus one AND per link
    pair — not the O(L^2) mask rebuilds per-query calls would pay.
    """
    masks = {link: label_bitmask(atoms)
             for link, atoms in deltanet.label.items() if atoms}
    return {link: link_failure_impact(deltanet, link, check_loops=check_loops,
                                      label_masks=masks)
            for link in list(deltanet.label)}
