"""Sweep-based reference checkers: the pre-index implementations.

Before the :class:`~repro.core.findex.ForwardingIndex` existed, every
check rebuilt its own view of the edge-labelled graph from the label
table — a ``source -> out-links`` map per loop check, a mask/adjacency
pair per reachability query — and chased next hops by scanning a node's
links with per-atom membership tests.  That is O(E) *per check* before
any chasing happens, which is exactly what made checking slower than
updating.

These implementations are kept, verbatim in shape, for two jobs:

* **oracle** — the property-based equivalence suites
  (``tests/checkers/test_index_equivalence.py``) assert the index-backed
  checkers return identical results on randomized rule traces,
* **baseline** — the ``check_latency`` benchmark in
  ``benchmarks/perf_gate.py`` measures the index's speedup against them
  (the ``sweep`` variant; see ``BENCH_check_latency.json``).

They intentionally take only the public label table (any mapping of
``link -> atom container``), never the index.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.checkers.loops import Loop
from repro.core.atomset import atoms_to_bitmask, bitmask_to_atoms
from repro.core.delta_graph import DeltaGraph
from repro.core.deltanet import DeltaNet
from repro.core.rules import DROP, Link


def sweep_out_link_index(deltanet: DeltaNet) -> Dict[object, List[Link]]:
    """The per-check ``source -> out-links`` rebuild (O(E) every call)."""
    index: Dict[object, List[Link]] = {}
    for link in deltanet.label:
        index.setdefault(link.source, []).append(link)
    return index


def _sweep_next_hop(deltanet: DeltaNet, out_links: Dict[object, List[Link]],
                    node: object, atom: int) -> Optional[object]:
    for link in out_links.get(node, ()):
        bucket = deltanet.label.get(link)
        if bucket and atom in bucket:
            return link.target
    return None


def _sweep_chase(deltanet: DeltaNet, out_links: Dict[object, List[Link]],
                 start: object, atom: int) -> Optional[Loop]:
    path: List[object] = []
    seen_at: Dict[object, int] = {}
    node: Optional[object] = start
    while node is not None and node != DROP:
        if node in seen_at:
            return Loop(atom, tuple(path[seen_at[node]:])).canonical()
        seen_at[node] = len(path)
        path.append(node)
        node = _sweep_next_hop(deltanet, out_links, node, atom)
    return None


def sweep_check_update(deltanet: DeltaNet,
                       delta_graph: DeltaGraph) -> List[Loop]:
    """The seed's ``LoopChecker.check_update``: rebuild, then chase."""
    if not delta_graph.added:
        return []
    out_links = sweep_out_link_index(deltanet)
    loops: List[Loop] = []
    seen: Set[Loop] = set()
    for link, atoms in delta_graph.added.items():
        for atom in atoms:
            loop = _sweep_chase(deltanet, out_links, link.source, atom)
            if loop is not None and loop not in seen:
                seen.add(loop)
                loops.append(loop)
    return loops


def sweep_find_forwarding_loops(deltanet: DeltaNet,
                                atoms: Optional[Iterable[int]] = None,
                                links: Optional[Iterable[Link]] = None
                                ) -> List[Loop]:
    """The seed's exhaustive loop sweep."""
    out_links = sweep_out_link_index(deltanet)
    atom_filter = set(atoms) if atoms is not None else None
    link_iter = list(links) if links is not None else list(deltanet.label)
    loops: List[Loop] = []
    seen: Set[Loop] = set()
    starts: Dict[int, Set[object]] = {}
    for link in link_iter:
        bucket = deltanet.label.get(link)
        if not bucket:
            continue
        for atom in bucket:
            if atom_filter is not None and atom not in atom_filter:
                continue
            starts.setdefault(atom, set()).add(link.source)
    for atom, sources in starts.items():
        done: Set[object] = set()
        for source in sources:
            if source in done:
                continue
            loop = _sweep_chase(deltanet, out_links, source, atom)
            node: Optional[object] = source
            steps = 0
            limit = len(sources) + len(out_links) + 2
            while (node is not None and node != DROP and node not in done
                   and steps < limit):
                done.add(node)
                node = _sweep_next_hop(deltanet, out_links, node, atom)
                steps += 1
            if loop is not None and loop not in seen:
                seen.add(loop)
                loops.append(loop)
    return loops


def sweep_find_blackholes(deltanet: DeltaNet,
                          expected_sinks: Iterable[object] = ()
                          ) -> Dict[object, Set[int]]:
    """The seed's black-hole detector: per-atom set accumulation."""
    sinks = set(expected_sinks)
    incoming: Dict[object, Set[int]] = {}
    outgoing: Dict[object, Set[int]] = {}
    for link, atoms in deltanet.label.items():
        if not atoms:
            continue
        if link.target != DROP:
            incoming.setdefault(link.target, set()).update(atoms)
        outgoing.setdefault(link.source, set()).update(atoms)
    holes: Dict[object, Set[int]] = {}
    for node, arrived in incoming.items():
        if node in sinks:
            continue
        lost = arrived - outgoing.get(node, set())
        if lost:
            holes[node] = lost
    return holes


def _sweep_masks_and_adjacency(deltanet: DeltaNet
                               ) -> Tuple[Dict[Link, int],
                                          Dict[object, List[Link]]]:
    masks: Dict[Link, int] = {}
    adjacency: Dict[object, List[Link]] = {}
    for link, atoms in deltanet.label.items():
        if not atoms:
            continue
        masks[link] = atoms_to_bitmask(atoms)
        adjacency.setdefault(link.source, []).append(link)
    return masks, adjacency


def sweep_reachable_atoms(deltanet: DeltaNet, src: object,
                          dst: object) -> Set[int]:
    """The seed's reachability propagation (per-atom mask packing)."""
    masks, adjacency = _sweep_masks_and_adjacency(deltanet)
    full = (1 << deltanet.atoms.num_ids_allocated) - 1
    reached: Dict[object, int] = {src: full}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        mask = reached[node]
        for link in adjacency.get(node, ()):
            if link.target == DROP:
                continue
            passed = mask & masks[link]
            if not passed:
                continue
            previous = reached.get(link.target, 0)
            fresh = passed & ~previous
            if fresh:
                reached[link.target] = previous | fresh
                queue.append(link.target)
    arrived = reached.get(dst, 0)
    live = atoms_to_bitmask(a for a, _ in deltanet.atoms.intervals())
    return bitmask_to_atoms(arrived & live)


def sweep_check_waypoint(deltanet: DeltaNet, src: object, dst: object,
                         waypoint: object) -> Set[int]:
    """The seed's waypoint check: reachability with the waypoint cut."""
    if waypoint in (src, dst):
        raise ValueError("waypoint must differ from the endpoints")
    masks, adjacency = _sweep_masks_and_adjacency(deltanet)
    full = (1 << deltanet.atoms.num_ids_allocated) - 1
    reached: Dict[object, int] = {src: full}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        mask = reached[node]
        for link in adjacency.get(node, ()):
            if link.target in (DROP, waypoint):
                continue
            passed = mask & masks[link]
            fresh = passed & ~reached.get(link.target, 0)
            if fresh:
                reached[link.target] = reached.get(link.target, 0) | fresh
                queue.append(link.target)
    live = atoms_to_bitmask(a for a, _ in deltanet.atoms.intervals())
    return bitmask_to_atoms(reached.get(dst, 0) & live)


def sweep_check_isolation(deltanet: DeltaNet,
                          slice_a: Iterable[Tuple[int, int]],
                          slice_b: Iterable[Tuple[int, int]]
                          ) -> Dict[Link, Set[int]]:
    """The seed's isolation check: per-atom mask packing per link."""
    def slice_mask(prefixes: Iterable[Tuple[int, int]]) -> int:
        mask = 0
        for lo, hi in prefixes:
            for atom in deltanet.atoms_overlapping(lo, hi):
                mask |= 1 << atom
        return mask

    mask_a = slice_mask(slice_a)
    mask_b = slice_mask(slice_b)
    offenders: Dict[Link, Set[int]] = {}
    for link, atoms in deltanet.label.items():
        if not atoms:
            continue
        link_mask = atoms_to_bitmask(atoms)
        shared = link_mask & mask_a, link_mask & mask_b
        if shared[0] and shared[1]:
            offenders[link] = bitmask_to_atoms(shared[0] | shared[1])
    return offenders
