"""Black-hole detection: traffic that arrives at a node and silently dies.

An atom is *black-holed* at node ``n`` when some link delivers it to ``n``
but no rule at ``n`` forwards (or explicitly drops) it.  Explicit drop
rules are not black holes — they are intended policy and appear in the
graph as edges to the :data:`~repro.core.rules.DROP` sink.

Expected traffic sinks (e.g. egress border switches in the SDN-IP
scenario, or hosts) can be excluded via ``expected_sinks``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.core.deltanet import DeltaNet
from repro.core.rules import DROP


def find_blackholes(deltanet: DeltaNet,
                    expected_sinks: Iterable[object] = ()) -> Dict[object, Set[int]]:
    """Map each black-holing node to the set of atoms it swallows."""
    sinks = set(expected_sinks)
    incoming: Dict[object, Set[int]] = {}
    outgoing: Dict[object, Set[int]] = {}
    for link, atoms in deltanet.label.items():
        if not atoms:
            continue
        if link.target != DROP:
            incoming.setdefault(link.target, set()).update(atoms)
        outgoing.setdefault(link.source, set()).update(atoms)
    holes: Dict[object, Set[int]] = {}
    for node, arrived in incoming.items():
        if node in sinks:
            continue
        lost = arrived - outgoing.get(node, set())
        if lost:
            holes[node] = lost
    return holes
