"""Black-hole detection: traffic that arrives at a node and silently dies.

An atom is *black-holed* at node ``n`` when some link delivers it to ``n``
but no rule at ``n`` forwards (or explicitly drops) it.  Explicit drop
rules are not black holes — they are intended policy and appear in the
graph as edges to the :data:`~repro.core.rules.DROP` sink.

The per-node incoming/outgoing aggregation runs as O(runs) merges over
the forwarding index's run-length labels — per-link, not per-atom — and
the outgoing side comes straight from the index's per-source view.

Expected traffic sinks (e.g. egress border switches in the SDN-IP
scenario, or hosts) can be excluded via ``expected_sinks``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.core.deltanet import DeltaNet
from repro.core.rules import DROP
from repro.structures.atomruns import AtomRuns


def find_blackholes(deltanet: DeltaNet,
                    expected_sinks: Iterable[object] = ()) -> Dict[object, Set[int]]:
    """Map each black-holing node to the set of atoms it swallows."""
    sinks = set(expected_sinks)
    findex = deltanet.findex
    # Collect each node's incoming run pairs first and normalize once
    # per node (one sort over that node's runs) — accumulating with
    # repeated union_update would rebuild the accumulator per link.
    incoming: Dict[object, List[Tuple[int, int]]] = {}
    for link, runs in findex.by_link.items():
        if link.target != DROP and runs:
            incoming.setdefault(link.target, []).extend(runs.runs())
    holes: Dict[object, Set[int]] = {}
    for node, run_pairs in incoming.items():
        if node in sinks:
            continue
        arrived = AtomRuns.from_runs(run_pairs)
        out_pairs: List[Tuple[int, int]] = []
        for runs in findex.out_links(node).values():
            out_pairs.extend(runs.runs())
        lost = (arrived.difference(AtomRuns.from_runs(out_pairs))
                if out_pairs else arrived)
        if lost:
            holes[node] = set(lost)
    return holes
