"""Network-wide invariant checkers on Delta-net's edge-labelled graph.

Each checker consumes the verifier's persistent
:class:`~repro.core.findex.ForwardingIndex` — run-length labels plus
their per-source arrangement — either incrementally (on the delta-graph
of one rule update, §3.3 "delta-graphs") or globally (whole data-plane
sweeps, Algorithm 3, what-if queries).  Nothing is rebuilt per check;
the seed's rebuild-per-check implementations live on in
:mod:`repro.checkers.sweep` as the equivalence oracle and benchmark
baseline.
"""

from repro.checkers.loops import LoopChecker, find_forwarding_loops, Loop
from repro.checkers.reachability import reachable_atoms, reachable_nodes, find_path
from repro.checkers.allpairs import all_pairs_reachability, all_pairs_reference
from repro.checkers.blackholes import find_blackholes
from repro.checkers.waypoint import check_waypoint
from repro.checkers.isolation import check_isolation
from repro.checkers.whatif import link_failure_impact, LinkFailureImpact

__all__ = [
    "LoopChecker", "find_forwarding_loops", "Loop",
    "reachable_atoms", "reachable_nodes", "find_path",
    "all_pairs_reachability", "all_pairs_reference",
    "find_blackholes", "check_waypoint", "check_isolation",
    "link_failure_impact", "LinkFailureImpact",
]
