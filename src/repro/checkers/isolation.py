"""Traffic-isolation invariant between network slices (paper §3.3).

Two slices — e.g. two tenants, each owning a set of IP prefixes — are
isolated when no link carries traffic of both.  With atoms this reduces
to bitmask intersections per link, the "scenarios that involve many or
all packet equivalence classes at a time" the paper motivates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.core.atomset import bitmask_to_atoms, label_bitmask
from repro.core.deltanet import DeltaNet
from repro.core.rules import Link


def _slice_mask(deltanet: DeltaNet, prefixes: Iterable[Tuple[int, int]]) -> int:
    """Atoms overlapping any of the slice's ``(lo, hi)`` intervals."""
    mask = 0
    for lo, hi in prefixes:
        for atom in deltanet.atoms_overlapping(lo, hi):
            mask |= 1 << atom
    return mask


def check_isolation(deltanet: DeltaNet,
                    slice_a: Iterable[Tuple[int, int]],
                    slice_b: Iterable[Tuple[int, int]]) -> Dict[Link, Set[int]]:
    """Links carrying traffic of both slices, with the offending atoms.

    Slices are given as iterables of ``(lo, hi)`` header-space intervals.
    An empty result means the slices are isolated.  Note: an atom that
    overlaps both slices (possible when a rule interval straddles both)
    is reported wherever it flows — atoms are refined by *rule* bounds,
    so if the slices themselves are rule prefixes this cannot happen.
    """
    mask_a = _slice_mask(deltanet, slice_a)
    mask_b = _slice_mask(deltanet, slice_b)
    offenders: Dict[Link, Set[int]] = {}
    for link, atoms in deltanet.label.items():
        if not atoms:
            continue
        link_mask = label_bitmask(atoms)
        shared = link_mask & mask_a, link_mask & mask_b
        if shared[0] and shared[1]:
            offenders[link] = bitmask_to_atoms(shared[0] | shared[1])
    return offenders
