"""Intent-consistency checking: does the data plane implement the RIB?

The SDN-IP scenario (paper §4.2.2) installs rules so that "packets
destined to an external AS arrive at the correct border router".  This
checker verifies exactly that, network-wide, on Delta-net's edge-labelled
graph: for every best route in the speaker's RIB, packets matching the
route's prefix must, from *every* switch, reach the border router the
route names — no loops, no black holes, no wrong egress on the way.

This goes beyond per-update loop checking: it is the end-to-end
correctness condition the controller application is trying to maintain,
and it catches reroute bugs (stale next hops after a failover) that a
loop check alone cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.bgp.rib import Rib
from repro.core.deltanet import DeltaNet
from repro.core.rules import DROP


@dataclass(frozen=True)
class IntentViolation:
    """One prefix whose traffic goes astray from one ingress switch."""

    prefix: Tuple[int, int]          # (network, plen)
    ingress: object
    expected_egress: object          # the border router of the best route
    outcome: str                     # "loop" | "blackhole" | "wrong-egress"
    detail: object = None            # node where it happened


def check_intents(deltanet: DeltaNet, rib: Rib,
                  peer_attachments: Dict[object, object],
                  ingresses: Optional[List[object]] = None,
                  max_hops: int = 64) -> List[IntentViolation]:
    """Verify every RIB best route end to end; return all violations.

    ``peer_attachments`` maps border routers to their attachment
    switches (used to enumerate default ingress switches when
    ``ingresses`` is not given).
    """
    from repro.bgp.prefixes import PrefixPool

    if ingresses is None:
        ingresses = sorted(set(peer_attachments.values()), key=repr)
    best = rib.best_routes()
    violations: List[IntentViolation] = []
    for prefix, route in best.items():
        lo, hi = PrefixPool.to_interval(prefix)
        # Longest-prefix semantics: a representative point must not be
        # covered by a more-specific announced prefix, or its intended
        # egress is the more-specific route's.  Prefer such a point; when
        # the prefix is fully covered by more-specifics, every point's
        # intent is theirs and this prefix needs no check of its own.
        point = _uncovered_point(prefix, lo, hi, best)
        if point is None:
            continue
        expected_peer = route.peer
        for ingress in ingresses:
            outcome, detail = _trace(deltanet, ingress, point, expected_peer,
                                     max_hops)
            if outcome is not None:
                violations.append(IntentViolation(
                    prefix=prefix, ingress=ingress,
                    expected_egress=expected_peer,
                    outcome=outcome, detail=detail))
    return violations


def _uncovered_point(prefix, lo: int, hi: int, best) -> Optional[int]:
    """A point in ``[lo : hi)`` not inside any longer announced prefix."""
    from repro.bgp.prefixes import PrefixPool
    from repro.core.intervals import IntervalSet

    mine = IntervalSet([(lo, hi)])
    _net, plen = prefix
    for other, _route in best.items():
        if other == prefix or other[1] <= plen:
            continue
        other_lo, other_hi = PrefixPool.to_interval(other)
        if lo <= other_lo and other_hi <= hi:
            mine = mine - IntervalSet([(other_lo, other_hi)])
            if mine.is_empty():
                return None
    return mine.spans[0][0] if mine else None


def _trace(deltanet: DeltaNet, ingress: object, point: int,
           expected_peer: object,
           max_hops: int) -> Tuple[Optional[str], object]:
    """Chase one representative packet; classify where it ends up."""
    atom = deltanet.atoms.atom_at(point)
    node = ingress
    seen: Set[object] = set()
    hops = 0
    while hops <= max_hops:
        if node == expected_peer:
            return None, None                      # delivered correctly
        if node == DROP:
            return "blackhole", node               # explicitly dropped
        if node in seen:
            return "loop", node
        seen.add(node)
        rule = deltanet.owner_rule(atom, node)
        if rule is None:
            # No rule: fine only if we are already at a peer (wrong one).
            if node != ingress and _is_peer(node, deltanet):
                return "wrong-egress", node
            return "blackhole", node
        node = rule.target
        hops += 1
    return "loop", node


def _is_peer(node: object, deltanet: DeltaNet) -> bool:
    """Peers are graph sinks: nodes that never source a labelled link."""
    return all(link.source != node for link in deltanet.label)


def summarize_violations(violations: List[IntentViolation]) -> Dict[str, int]:
    summary: Dict[str, int] = {}
    for violation in violations:
        summary[violation.outcome] = summary.get(violation.outcome, 0) + 1
    return summary
