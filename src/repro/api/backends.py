"""The five registry backends wrapping this repo's native verifiers.

Each adapter translates between the uniform :class:`~repro.api.registry.
BackendAdapter` surface (rules in, canonical interval spans out) and one
native verifier:

==============  ==========================================  ==============
registry name   native class                                update cost
==============  ==========================================  ==============
``deltanet``    :class:`repro.core.deltanet.DeltaNet`       incremental
``sharded``     :class:`repro.libra.sharding.ShardedDeltaNet`  incremental, per shard
``veriflow``    :class:`repro.veriflow.verifier.VeriflowRI` per-update ECs
``apv``         :class:`repro.apv.verifier.APVerifier`      full recompute
``netplumber``  :class:`repro.netplumber.plumbing.NetPlumber`  pipe maintenance
==============  ==========================================  ==============

The native instance stays reachable as ``backend.native`` — an explicit
escape hatch for paper-specific analyses (Algorithm 3 closures, atom
introspection) that the uniform protocol deliberately does not cover.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.api.registry import (
    BackendAdapter, BackendBatch, BackendUpdate, Cycle, Spans,
    canonical_cycle, register_backend,
)
from repro.core.delta_graph import DeltaGraph
from repro.core.rules import DROP, Link, Rule


def _as_link(link: Union[Link, Tuple[object, object]]) -> Link:
    return link if isinstance(link, Link) else Link(*link)


def _batch_updates_with_loops(inserts: List[Rule], removal_rules: List[Rule],
                              loops: Optional[List[Cycle]]
                              ) -> List[BackendUpdate]:
    """Per-op updates for a natively checked batch.

    The batch's loops are one aggregate observation; they ride on the
    first update (``loops_for_commit`` unions over the batch, so the
    placement is immaterial) while the rest carry empty lists to signal
    "natively checked, nothing new".  ``loops=None`` means the native
    check was *skipped* — every update then carries ``None`` so the
    session's sweep fallback still fires for watched properties.
    """
    checked = loops is not None
    updates = [BackendUpdate(rule.rid, False, rule,
                             loops=[] if checked else None)
               for rule in removal_rules]
    updates += [BackendUpdate(rule.rid, True, rule,
                              loops=[] if checked else None)
                for rule in inserts]
    if updates and loops is not None:
        updates[0].loops = list(loops)
    return updates


def _label_loops(label: Dict[Link, Set[int]]) -> List[Cycle]:
    """Loop sweep over any ``link -> class-id set`` edge labelling.

    For a fixed class id the labelling is a functional graph (one
    out-edge per node), so pointer chasing with a visited set finds every
    cycle.  Used by backends whose native state is an edge-labelled graph
    but is not a :class:`DeltaNet` (the atomic-predicates verifier).
    """
    out: Dict[object, List[Link]] = {}
    classes: Set[int] = set()
    for link, ids in label.items():
        if not ids:
            continue
        out.setdefault(link.source, []).append(link)
        classes.update(ids)
    loops: Dict[Cycle, None] = {}
    for cid in classes:
        for start in out:
            seen_at: Dict[object, int] = {}
            path: List[object] = []
            node: Optional[object] = start
            while node is not None and node != DROP:
                if node in seen_at:
                    loops.setdefault(canonical_cycle(path[seen_at[node]:]))
                    break
                seen_at[node] = len(path)
                path.append(node)
                node = next(
                    (link.target for link in out.get(node, ())
                     if cid in label.get(link, ())), None)
    return list(loops)


@register_backend("deltanet")
class DeltaNetBackend(BackendAdapter):
    """Delta-net: incremental atoms + edge-labelled graph (the paper's verifier)."""

    #: Queries are pure in-process traversals: safe for the
    #: serving layer to run from concurrent reader threads.
    concurrent_read_safe = True

    def __init__(self, width: int = 32, gc: bool = False,
                 seed: int = 0x5EED) -> None:
        super().__init__(width=width)
        from repro.core.deltanet import DeltaNet

        self.native = DeltaNet(width=width, gc=gc, seed=seed)

    def _do_insert(self, rule: Rule) -> BackendUpdate:
        delta = self.native.insert_rule(rule)
        return BackendUpdate(rule.rid, True, rule, delta=delta)

    def _do_remove(self, rule: Rule) -> BackendUpdate:
        delta = self.native.remove_rule(rule.rid)
        return BackendUpdate(rule.rid, False, rule, delta=delta)

    def _do_apply_batch(self, inserts, removals, removal_rules) -> BackendBatch:
        delta = self.native.apply_batch(inserts, removals)
        updates = [BackendUpdate(rule.rid, False, rule)
                   for rule in removal_rules]
        updates += [BackendUpdate(rule.rid, True, rule) for rule in inserts]
        return BackendBatch(updates=updates, delta=delta)

    def links(self) -> List[Link]:
        return list(self.native.links())

    def flows_on(self, link) -> Spans:
        return self.native.flows_on(_as_link(link))

    def reachable(self, src: object, dst: object) -> Spans:
        from repro.checkers.reachability import reachable_atoms
        from repro.core.atomset import atoms_to_interval_set

        atoms = reachable_atoms(self.native, src, dst)
        return atoms_to_interval_set(atoms, self.native.atoms)

    def what_if_link_down(self, link) -> Spans:
        from repro.checkers.whatif import link_failure_impact

        impact = link_failure_impact(self.native, _as_link(link))
        return impact.affected_intervals(self.native)

    def find_loops(self) -> List[Cycle]:
        from repro.checkers.loops import find_forwarding_loops

        seen: Dict[Cycle, None] = {}
        for loop in find_forwarding_loops(self.native):
            seen.setdefault(canonical_cycle(loop.cycle))
        return list(seen)

    def run_query(self, query):
        from repro.query.planner import evaluate_deltanet

        return evaluate_deltanet(self.native, query, backend=self.name)

    def speculate(self) -> "DeltaNetBackend":
        """Copy-on-write what-if child: O(boundaries + links) fork."""
        from repro.core.speculative import SpeculativeDeltaNet

        child = DeltaNetBackend.__new__(DeltaNetBackend)
        BackendAdapter.__init__(child, width=self.width)
        child.native = SpeculativeDeltaNet.from_parent(self.native)
        child._rules = dict(self._rules)
        return child

    def loops_for_commit(self, updates, delta) -> List[Cycle]:
        if delta is None:
            return super().loops_for_commit(updates, delta)
        if delta.is_empty():
            # No label changed — no new loop can exist; skip even the
            # (cheap) incremental chase.
            return []
        from repro.checkers.loops import LoopChecker

        seen: Dict[Cycle, None] = {}
        for loop in LoopChecker(self.native).check_update(delta):
            seen.setdefault(canonical_cycle(loop.cycle))
        return list(seen)

    def check_invariants(self) -> None:
        self.native.check_invariants()

    def state_digest(self):
        return self.native.state_digest()

    def snapshot_state(self):
        return {"kind": "deltanet", "options": {"gc": self.native.gc},
                "native": self.native.state_dict()}

    def restore_state(self, state) -> None:
        if state.get("kind") != "deltanet":
            super().restore_state(state)
            return
        if self._rules:
            raise ValueError("restore_state requires a fresh backend")
        from repro.core.deltanet import DeltaNet

        self.native = DeltaNet.from_state(state["native"])
        self._rules = dict(self.native.rules)

    def stats(self):
        out = super().stats()
        out.update(atoms=self.native.num_atoms,
                   links=sum(1 for _ in self.native.links()))
        return out


@register_backend("sharded")
class ShardedBackend(BackendAdapter):
    """Libra-style sharded Delta-net: disjoint header-space slices, fan-out queries."""

    #: Queries are pure in-process traversals: safe for the
    #: serving layer to run from concurrent reader threads.
    concurrent_read_safe = True

    def __init__(self, width: int = 32, shards: int = 4, gc: bool = False,
                 check_loops: bool = True) -> None:
        super().__init__(width=width)
        from repro.libra.sharding import ShardedDeltaNet, even_shards

        self.native = ShardedDeltaNet(even_shards(shards, width),
                                      width=width, gc=gc)
        self._check_loops = check_loops

    def _shard_loops(self, deltas: Dict[int, DeltaGraph]) -> Optional[List[Cycle]]:
        """Per-shard incremental check (the native per-shard checkers,
        each chasing its shard's forwarding index) — ``None`` (not
        ``[]``) when checking is off, so the session's sweep fallback
        still fires."""
        if not self._check_loops:
            return None
        seen: Dict[Cycle, None] = {}
        for loop in self.native.check_update(deltas):
            seen.setdefault(canonical_cycle(loop.cycle))
        return list(seen)

    def _do_insert(self, rule: Rule) -> BackendUpdate:
        deltas = self.native.apply_insert(rule)
        return BackendUpdate(rule.rid, True, rule,
                             loops=self._shard_loops(deltas))

    def _do_remove(self, rule: Rule) -> BackendUpdate:
        deltas = self.native.apply_remove(rule.rid)
        return BackendUpdate(rule.rid, False, rule,
                             loops=self._shard_loops(deltas))

    def _do_apply_batch(self, inserts, removals, removal_rules) -> BackendBatch:
        deltas = self.native.apply_batch(inserts, removals)
        loops = self._shard_loops(deltas)
        updates = _batch_updates_with_loops(inserts, removal_rules, loops)
        return BackendBatch(updates=updates)

    def links(self) -> List[Link]:
        seen: Dict[Link, None] = {}
        for net in self.native.nets:
            for link in net.links():
                seen.setdefault(link)
        return list(seen)

    def flows_on(self, link) -> Spans:
        return self.native.flows_on(_as_link(link))

    def reachable(self, src: object, dst: object) -> Spans:
        from repro.checkers.reachability import reachable_atoms
        from repro.core.atomset import atoms_to_interval_set
        from repro.core.intervals import normalize

        spans: List[Tuple[int, int]] = []
        for net in self.native.nets:
            atoms = reachable_atoms(net, src, dst)
            spans.extend(atoms_to_interval_set(atoms, net.atoms))
        return normalize(spans)

    def find_loops(self) -> List[Cycle]:
        seen: Dict[Cycle, None] = {}
        for loop in self.native.find_loops():
            seen.setdefault(canonical_cycle(loop.cycle))
        return list(seen)

    def run_query(self, query):
        from repro.query.planner import evaluate_sharded

        return evaluate_sharded(self.native, query, backend=self.name)

    def speculate(self) -> "ShardedBackend":
        """Copy-on-write fork: every shard forks per-shard CoW children."""
        child = ShardedBackend.__new__(ShardedBackend)
        BackendAdapter.__init__(child, width=self.width)
        child.native = self.native.speculate()
        child._check_loops = self._check_loops
        child._rules = dict(self._rules)
        return child

    def state_digest(self):
        return self.native.state_digest()

    def check_invariants(self) -> None:
        for net in self.native.nets:
            net.check_invariants()

    def snapshot_state(self):
        return {
            "kind": "sharded",
            "options": {"shards": self.native.num_shards,
                        "gc": self.native.nets[0].gc,
                        "check_loops": self._check_loops},
            "native": self.native.state_dict(),
            "rules": [rule.to_state() for rule in self._rules.values()],
        }

    def restore_state(self, state) -> None:
        if state.get("kind") != "sharded":
            super().restore_state(state)
            return
        if self._rules:
            raise ValueError("restore_state requires a fresh backend")
        from repro.core.rules import Rule
        from repro.libra.sharding import ShardedDeltaNet

        self.native = ShardedDeltaNet.from_state(state["native"])
        for rule_state in state["rules"]:
            rule = Rule.from_state(rule_state)
            self._rules[rule.rid] = rule

    def stats(self):
        out = super().stats()
        out.update(shards=self.native.num_shards,
                   total_atoms=self.native.total_atoms,
                   shard_sizes=self.native.shard_sizes())
        return out


@register_backend("parallel")
class ParallelShardedBackend(BackendAdapter):
    """Process-parallel Libra sharding: one worker process per shard."""

    def __init__(self, width: int = 32, shards: int = 4, gc: bool = False,
                 check_loops: bool = True,
                 start_method: Optional[str] = None,
                 force_inline: bool = False,
                 deadline: Optional[float] = 60.0,
                 max_restarts: int = 3,
                 restart_backoff: float = 0.05,
                 reseed_every: int = 256,
                 log=None) -> None:
        super().__init__(width=width)
        from repro.libra.parallel import ParallelShardedDeltaNet
        from repro.libra.sharding import even_shards

        self.native = ParallelShardedDeltaNet(
            even_shards(shards, width), width=width, gc=gc,
            start_method=start_method, force_inline=force_inline,
            deadline=deadline, max_restarts=max_restarts,
            restart_backoff=restart_backoff, reseed_every=reseed_every,
            log=log)
        self._check_loops = check_loops

    def close(self) -> None:
        self.native.close()

    @staticmethod
    def _canonical(cycles) -> List[Cycle]:
        seen: Dict[Cycle, None] = {}
        for cycle in cycles:
            seen.setdefault(canonical_cycle(cycle))
        return list(seen)

    def _do_insert(self, rule: Rule) -> BackendUpdate:
        # With checking off, report loops=None (not []): [] would read as
        # "checked, clean" and suppress the session's sweep fallback.
        loops = self.native.insert_rule(rule, check=self._check_loops)
        return BackendUpdate(
            rule.rid, True, rule,
            loops=self._canonical(loops) if self._check_loops else None)

    def _do_remove(self, rule: Rule) -> BackendUpdate:
        loops = self.native.remove_rule(rule.rid, check=self._check_loops)
        return BackendUpdate(
            rule.rid, False, rule,
            loops=self._canonical(loops) if self._check_loops else None)

    def _do_apply_batch(self, inserts, removals, removal_rules) -> BackendBatch:
        loops = self.native.apply_batch(inserts, removals,
                                        check=self._check_loops)
        updates = _batch_updates_with_loops(
            inserts, removal_rules,
            self._canonical(loops) if self._check_loops else None)
        return BackendBatch(updates=updates)

    def links(self) -> List[Link]:
        return self.native.links()

    def flows_on(self, link) -> Spans:
        return self.native.flows_on(_as_link(link))

    def reachable(self, src: object, dst: object) -> Spans:
        return self.native.reachable(src, dst)

    def find_loops(self) -> List[Cycle]:
        return self._canonical(self.native.find_loops())

    def find_blackholes(self) -> Dict[object, Spans]:
        return self.native.find_blackholes()

    def speculate(self) -> "ParallelShardedBackend":
        """Fleet-wide fork: each worker holds a per-shard CoW child.

        The child routes updates/queries through the parent's worker
        pool under a speculation id; a worker restart loses that
        worker's speculative state, surfacing as
        :class:`~repro.core.speculative.StaleSpeculationError` on the
        child's next touch.  ``close()`` on the child discards the
        speculation — the shared pool stays up.
        """
        child = ParallelShardedBackend.__new__(ParallelShardedBackend)
        BackendAdapter.__init__(child, width=self.width)
        child.native = self.native.speculate()
        child._check_loops = self._check_loops
        child._rules = dict(self._rules)
        return child

    def check_invariants(self) -> None:
        self.native.check_invariants()

    def snapshot_state(self):
        return {
            "kind": "parallel",
            "options": {"shards": self.native.num_shards,
                        "check_loops": self._check_loops},
            "native": self.native.state_dict(),
            "rules": [rule.to_state() for rule in self._rules.values()],
        }

    def restore_state(self, state) -> None:
        """Restore by fanning each shard's state out to its live worker.

        The adapter's constructor already spawned the worker pool (or
        its inline fallback); when the saved slice geometry matches, the
        states are shipped straight into those workers — concurrently,
        like any other fan-out.  A geometry mismatch rebuilds the pool.
        """
        if state.get("kind") != "parallel":
            super().restore_state(state)
            return
        if self._rules:
            raise ValueError("restore_state requires a fresh backend")
        from repro.core.rules import Rule
        from repro.libra.parallel import ParallelShardedDeltaNet

        native_state = state["native"]
        slices = [tuple(pair) for pair in native_state["slices"]]
        if slices == list(self.native.slices):
            self.native._restore_router(native_state)
            # The supervised restore path also installs the states as
            # the shards' recovery seeds.
            self.native._seed_shards(list(native_state["nets"]))
        else:
            force_inline = not self.native.parallel
            old = self.native
            self.native = ParallelShardedDeltaNet.from_state(
                native_state, force_inline=force_inline,
                deadline=old.deadline, max_restarts=old.max_restarts,
                restart_backoff=old.restart_backoff,
                reseed_every=old.reseed_every, log=old._log)
            old.close()
        for rule_state in state["rules"]:
            rule = Rule.from_state(rule_state)
            self._rules[rule.rid] = rule

    def stats(self):
        out = super().stats()
        out.update(shards=self.native.num_shards,
                   parallel=self.native.parallel,
                   degraded=self.native.degraded,
                   degraded_shards=list(self.native.degraded_shards),
                   restarts=self.native.restarts,
                   shard_sizes=self.native.shard_sizes())
        return out

    def health(self):
        """Cheap liveness/degradation view — parent-side state only.

        Unlike :meth:`stats` this never touches the worker pipes, so
        the daemon's ``health`` verb can answer while an update holds
        the session lock (or while a worker is wedged).
        """
        native = self.native
        workers_alive = sum(
            1 for endpoint in native._workers
            if getattr(endpoint, "process", None) is not None
            and endpoint.process.is_alive())
        return {
            "parallel": native.parallel,
            "degraded": native.degraded,
            "degraded_shards": list(native.degraded_shards),
            "restarts": native.restarts,
            "workers_alive": workers_alive,
            "shards": native.num_shards,
            "events": len(native.events),
            "audits": native.audits,
            "audit_mismatches": native.audit_mismatches,
            "audit_repairs": native.audit_repairs,
            "audit_escalations": native.audit_escalations,
        }

    def state_digest(self):
        return self.native.state_digest()


@register_backend("veriflow")
class VeriflowBackend(BackendAdapter):
    """Veriflow-RI: per-update equivalence classes and forwarding graphs."""

    #: Queries are pure in-process traversals: safe for the
    #: serving layer to run from concurrent reader threads.
    concurrent_read_safe = True

    def __init__(self, width: int = 32, check_loops: bool = True) -> None:
        super().__init__(width=width)
        from repro.veriflow.verifier import VeriflowRI

        self.native = VeriflowRI(width=width)
        self._check_loops = check_loops

    def _snapshot_options(self):
        return {"check_loops": self._check_loops}

    def _wrap(self, result, rule: Rule, inserted: bool) -> BackendUpdate:
        loops = None
        if self._check_loops:
            seen: Dict[Cycle, None] = {}
            for _interval, cycle in result.loops:
                seen.setdefault(canonical_cycle(cycle))
            loops = list(seen)
        return BackendUpdate(rule.rid, inserted, rule, loops=loops)

    def _do_insert(self, rule: Rule) -> BackendUpdate:
        result = self.native.insert_rule(rule, check_loops=self._check_loops)
        return self._wrap(result, rule, True)

    def _do_remove(self, rule: Rule) -> BackendUpdate:
        result = self.native.remove_rule(rule.rid, check_loops=self._check_loops)
        return self._wrap(result, rule, False)

    # -- EC machinery shared by the queries -----------------------------------

    def _boundaries(self) -> List[int]:
        bounds = {0, 1 << self.width}
        for rule in self._rules.values():
            bounds.add(rule.lo)
            bounds.add(rule.hi)
        return sorted(bounds)

    def _chase(self, edges: Dict[object, object], src: object,
               dst: object) -> bool:
        """Does the EC's (functional) forwarding graph carry src -> dst?"""
        if src == dst:
            return True
        seen: Set[object] = {src}
        node: Optional[object] = edges.get(src)
        while node is not None and node != DROP:
            if node == dst:
                return True
            if node in seen:
                return False
            seen.add(node)
            node = edges.get(node)
        return False

    def links(self) -> List[Link]:
        return list(self.native.rules_by_link)

    def flows_on(self, link) -> Spans:
        """Recompute, per rule on the link, the ECs that actually use it."""
        from repro.core.intervals import normalize
        from repro.veriflow.ecs import equivalence_classes

        link = _as_link(link)
        spans: List[Tuple[int, int]] = []
        seen_ecs: Set[Tuple[int, int]] = set()
        for rid in self.native.rules_by_link.get(link, ()):
            rule = self.native.rules[rid]
            overlapping = self.native.trie.overlapping_interval(rule.lo, rule.hi)
            for ec in equivalence_classes(overlapping, rule.lo, rule.hi):
                if ec in seen_ecs:
                    continue
                seen_ecs.add(ec)
                graph = self.native._forwarding_graph(ec)
                if graph.edges.get(link.source) == link.target:
                    spans.append(ec)
        return normalize(spans)

    def reachable(self, src: object, dst: object) -> Spans:
        """One forwarding graph per global EC, chased from ``src``."""
        from repro.core.intervals import normalize

        spans: List[Tuple[int, int]] = []
        bounds = self._boundaries()
        for lo, hi in zip(bounds, bounds[1:]):
            graph = self.native._forwarding_graph((lo, hi))
            if self._chase(graph.edges, src, dst):
                spans.append((lo, hi))
        return normalize(spans)

    def what_if_link_down(self, link) -> Spans:
        """Veriflow's expensive native what-if path (Table 4's comparison)."""
        from repro.core.intervals import normalize

        graphs = self.native.whatif_link_failure(_as_link(link))
        return normalize(graph.interval for graph in graphs)

    def find_loops(self) -> List[Cycle]:
        seen: Dict[Cycle, None] = {}
        bounds = self._boundaries()
        for lo, hi in zip(bounds, bounds[1:]):
            graph = self.native._forwarding_graph((lo, hi))
            # All cycles, not just the first: one EC graph can hold
            # several node-disjoint loops at once.
            for loop in graph.find_loops():
                seen.setdefault(canonical_cycle(loop))
        return list(seen)

    def stats(self):
        out = super().stats()
        out.update(switches=len(self.native.switches))
        return out


@register_backend("apv")
class APVBackend(BackendAdapter):
    """Atomic-predicates verifier: full partition recompute on every update."""

    #: Queries are pure in-process traversals: safe for the
    #: serving layer to run from concurrent reader threads.
    concurrent_read_safe = True

    def __init__(self, width: int = 32) -> None:
        super().__init__(width=width)
        from repro.apv.verifier import APVerifier

        self.native = APVerifier([], width=width)

    def _do_insert(self, rule: Rule) -> BackendUpdate:
        self.native.insert_rule(rule)
        return BackendUpdate(rule.rid, True, rule)

    def _do_remove(self, rule: Rule) -> BackendUpdate:
        self.native.remove_rule(rule.rid)
        return BackendUpdate(rule.rid, False, rule)

    def links(self) -> List[Link]:
        return [link for link, ids in self.native.label.items() if ids]

    def flows_on(self, link) -> Spans:
        indices = self.native.label.get(_as_link(link), set())
        return self.native.predicate_of(indices).spans

    def reachable(self, src: object, dst: object) -> Spans:
        return self.native.reachable(src, dst).spans

    def find_loops(self) -> List[Cycle]:
        return _label_loops(self.native.label)

    def stats(self):
        out = super().stats()
        out.update(atomic_predicates=self.native.num_atomic_predicates)
        return out


@register_backend("netplumber")
class NetPlumberBackend(BackendAdapter):
    """NetPlumber: rules-as-nodes plumbing graph with overlap pipes."""

    #: Queries are pure in-process traversals: safe for the
    #: serving layer to run from concurrent reader threads.
    concurrent_read_safe = True

    def __init__(self, width: int = 32) -> None:
        super().__init__(width=width)
        from repro.netplumber.plumbing import NetPlumber

        self.native = NetPlumber(width=width)

    def _do_insert(self, rule: Rule) -> BackendUpdate:
        self.native.insert_rule(rule)
        return BackendUpdate(rule.rid, True, rule)

    def _do_remove(self, rule: Rule) -> BackendUpdate:
        self.native.remove_rule(rule.rid)
        return BackendUpdate(rule.rid, False, rule)

    def links(self) -> List[Link]:
        seen: Dict[Link, None] = {}
        for rule in self.native.rules.values():
            if self.native.effective_match(rule.rid):
                seen.setdefault(rule.link)
        return list(seen)

    def flows_on(self, link) -> Spans:
        """A link carries the union of its rules' unshadowed matches."""
        from repro.core.intervals import IntervalSet

        link = _as_link(link)
        flows = IntervalSet()
        for rule in self.native.rules.values():
            if rule.link == link:
                flows = flows | self.native.effective_match(rule.rid)
        return flows.spans

    def reachable(self, src: object, dst: object) -> Spans:
        return self.native.reachable(src, dst).spans

    def _cycle_flow(self, rid_cycle: List[int]):
        """Packet space surviving one full turn of a plumbing cycle.

        ``NetPlumber.find_loops`` is already exact (its flow-propagating
        DFS only reports cycles a packet survives end-to-end); this
        re-intersection is a cheap independent guard so a future native
        regression surfaces as a dropped infeasible cycle here rather
        than as a false loop alert.
        """
        from repro.core.intervals import IntervalSet

        flow = self.native.effective_match(rid_cycle[0])
        for index, rid in enumerate(rid_cycle):
            succ = rid_cycle[(index + 1) % len(rid_cycle)]
            pipe = self.native.pipes_out[rid].get(succ)
            if pipe is None:
                return IntervalSet()
            flow = flow & pipe.carries & self.native.effective_match(succ)
        return flow

    def find_loops(self) -> List[Cycle]:
        seen: Dict[Cycle, None] = {}
        for rid_cycle in self.native.find_loops():
            if not self._cycle_flow(rid_cycle):
                continue
            seen.setdefault(canonical_cycle(
                self.native.rules[rid].source for rid in rid_cycle))
        return list(seen)

    def stats(self):
        out = super().stats()
        out.update(pipes=self.native.num_pipes)
        return out
