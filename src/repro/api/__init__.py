"""`repro.api` — the unified verification API.

One façade (:class:`VerificationSession`) over five pluggable backends
(:func:`available_backends`), with property subscriptions delivering
violations on every update, typed queries through
:meth:`VerificationSession.query`, and copy-on-write what-if forks
through :meth:`VerificationSession.speculate`.  See ``docs/api.md`` for
the full tour.
"""

from repro.api.registry import (
    BackendAdapter, BackendBatch, BackendUpdate, Cycle, Spans,
    UnknownBackendError, available_backends, backend_description,
    backend_factory, canonical_cycle, create_backend, register_backend,
    unregister_backend,
)
from repro.api import backends as _backends  # noqa: F401  (registers the five)
from repro.api.properties import (
    BlackholeProperty, Commit, IsolationProperty, LoopProperty,
    PROPERTY_TYPES, Property, ReachabilityProperty, Violation,
    WaypointProperty, propagate_intervals,
)
from repro.api.session import (
    BatchTransaction, OpRecord, SpeculativeSession, UpdateResult,
    VerificationSession,
)
from repro.core.speculative import StaleSpeculationError
from repro.query import (
    FlowsOn, LinkDown, Loops, Query, QueryResult, Reachable,
    query_from_payload, query_to_payload,
)

__all__ = [
    # session
    "VerificationSession", "UpdateResult", "OpRecord", "BatchTransaction",
    "SpeculativeSession", "StaleSpeculationError",
    # queries
    "FlowsOn", "Reachable", "LinkDown", "Loops", "Query", "QueryResult",
    "query_from_payload", "query_to_payload",
    # registry
    "BackendAdapter", "BackendBatch", "BackendUpdate", "UnknownBackendError",
    "available_backends", "backend_description", "backend_factory",
    "create_backend", "register_backend", "unregister_backend",
    "Cycle", "Spans", "canonical_cycle",
    # properties
    "Property", "Violation", "Commit", "LoopProperty", "BlackholeProperty",
    "ReachabilityProperty", "WaypointProperty", "IsolationProperty",
    "PROPERTY_TYPES", "propagate_intervals",
]
