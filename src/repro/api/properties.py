"""The :class:`Property` protocol: invariants checked on every update.

A property registered on a session via ``session.watch(...)`` is
evaluated after each committed update (one rule operation, or one
aggregated batch); any violations it reports are delivered on the
:class:`~repro.api.session.UpdateResult`.  The session deduplicates by
violation *signature*, so a subscription behaves like an alert stream —
each distinct violation is reported the first time it is observed, no
matter whether the backend detects it incrementally (Delta-net's
delta-graph chase, Veriflow's per-update EC check) or by re-sweeping.

These classes unify the previously divergent ``repro.checkers`` entry
points: the same :class:`LoopProperty` works on all five backends, and
:class:`WaypointProperty` / :class:`IsolationProperty` run on generic
interval propagation rather than Delta-net internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any, Dict, Iterable, List, Optional, Protocol, Sequence, Tuple, Union,
    runtime_checkable,
)

from repro.api.registry import BackendAdapter, BackendUpdate, Spans
from repro.core.delta_graph import DeltaGraph
from repro.core.intervals import IntervalSet
from repro.core.rules import DROP, Link


@dataclass(frozen=True)
class Violation:
    """One property violation.

    ``signature`` is the hashable identity the session deduplicates on;
    ``data`` carries the property-specific evidence (a cycle, a node, a
    span list) and is excluded from equality.
    """

    property_name: str
    signature: Tuple[object, ...]
    detail: str
    data: Any = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"[{self.property_name}] {self.detail}"


@dataclass
class Commit:
    """What the session just applied: the updates and, when the backend
    maintains one, the merged delta-graph."""

    updates: List[BackendUpdate]
    delta: Optional[DeltaGraph] = None


@runtime_checkable
class Property(Protocol):
    """A subscribable invariant.

    ``check(backend, commit)`` returns the violations observable after
    ``commit``; ``commit`` is ``None`` for one-shot evaluation via
    ``session.check(prop)``, in which case the property must inspect the
    whole current state.

    An optional ``clears`` attribute declares the dedup semantics:
    ``True`` for state-based properties whose ``check`` reports *all*
    current violations (the session re-arms a violation once it
    disappears, so it can fire again later); ``False`` — the default
    when absent — for event-like properties that may report only the
    violations an update introduced (delivered at most once, since
    their absence from a later check means nothing).
    """

    name: str

    def check(self, backend: BackendAdapter,
              commit: Optional[Commit]) -> Iterable[Violation]: ...


def _fmt_spans(spans: Spans, limit: int = 4) -> str:
    shown = ", ".join(f"[{lo}:{hi})" for lo, hi in spans[:limit])
    more = f", +{len(spans) - limit} more" if len(spans) > limit else ""
    return shown + more


def propagate_intervals(backend: BackendAdapter, src: object,
                        avoid: Iterable[object] = ()) -> Dict[object, IntervalSet]:
    """Generic packet-space propagation from ``src`` over any backend.

    Pushes the full header space from ``src`` along ``flows_on`` labels
    (skipping ``avoid`` nodes and the drop sink).  Because every
    backend's per-node forwarding is functional on packet classes, the
    interval algebra is exact — this is ``reachable_atoms`` lifted from
    atoms to the uniform span currency.
    """
    skip = set(avoid)
    adjacency: Dict[object, List[Tuple[Link, IntervalSet]]] = {}
    for link in backend.links():
        flows = IntervalSet(backend.flows_on(link))
        if flows:
            adjacency.setdefault(link.source, []).append((link, flows))
    reached: Dict[object, IntervalSet] = {
        src: IntervalSet.universe(backend.width)}
    queue = [src]
    while queue:
        node = queue.pop()
        mask = reached[node]
        for link, flows in adjacency.get(node, ()):
            if link.target == DROP or link.target in skip:
                continue
            passed = mask & flows
            if not passed:
                continue
            previous = reached.get(link.target, IntervalSet())
            fresh = passed - previous
            if fresh:
                reached[link.target] = previous | fresh
                queue.append(link.target)
    return reached


class LoopProperty:
    """Forwarding loops (the paper's flagship per-update check).

    The property manages its own alert dedup: each distinct cycle is
    delivered when it appears, and again whenever it is re-introduced
    after having been broken.  Liveness of previously-reported cycles is
    re-checked by intersecting the flows around the cycle — exact for
    functional forwarding, and only a handful of ``flows_on`` lookups
    per reported loop.  (Plain signature dedup cannot do this: the
    incremental backends report a loop only on the update that creates
    it, so its later absence from a check means nothing.)
    """

    name = "loops"
    clears = True  # session dedup defers to the property's own

    def __init__(self) -> None:
        self._reported: Dict[Tuple[object, ...], Tuple[object, ...]] = {}

    def spec(self) -> dict:
        return {}

    def state_dict(self) -> dict:
        """Cycle-liveness tracking, for snapshot/restore continuity."""
        return {"reported": sorted(
            ((list(signature), list(cycle))
             for signature, cycle in self._reported.items()), key=repr)}

    def load_state_dict(self, state: dict) -> None:
        self._reported = {tuple(signature): tuple(cycle)
                          for signature, cycle in state["reported"]}

    @staticmethod
    def _cycle_alive(backend: BackendAdapter, cycle) -> bool:
        """Does any packet still survive one full turn of ``cycle``?"""
        flow: Optional[IntervalSet] = None
        for index, node in enumerate(cycle):
            successor = cycle[(index + 1) % len(cycle)]
            spans = IntervalSet(backend.flows_on((node, successor)))
            flow = spans if flow is None else flow & spans
            if not flow:
                return False
        return True

    def check(self, backend: BackendAdapter,
              commit: Optional[Commit]) -> Iterable[Violation]:
        if commit is None:
            cycles = backend.find_loops()
        else:
            # Forget cycles that no longer carry traffic, so a later
            # re-introduction is reported again.  A node's forwarding
            # only changes on an update installed at that node, so only
            # cycles through an updated switch need their liveness
            # re-checked — everything else is guaranteed still looping.
            if self._reported:
                updated_nodes = {update.rule.source
                                 for update in commit.updates
                                 if update.rule is not None}
                if commit.delta is not None:
                    updated_nodes |= commit.delta.affected_sources()
                for signature, cycle in list(self._reported.items()):
                    if (updated_nodes.intersection(cycle)
                            and not self._cycle_alive(backend, cycle)):
                        del self._reported[signature]
            cycles = backend.loops_for_commit(commit.updates, commit.delta)
        for cycle in cycles:
            signature = ("loop", cycle)
            if commit is not None:
                if signature in self._reported:
                    continue
                self._reported[signature] = cycle
            yield Violation(
                self.name, signature,
                "forwarding loop " + " -> ".join(map(str, cycle)) +
                f" -> {cycle[0]}", data=cycle)


class BlackholeProperty:
    """Nodes that silently swallow traffic (no forward, no explicit drop)."""

    name = "blackholes"
    clears = True

    def __init__(self, expected_sinks: Iterable[object] = ()) -> None:
        self.expected_sinks = set(expected_sinks)

    def spec(self) -> dict:
        return {"expected_sinks": sorted(self.expected_sinks, key=repr)}

    def check(self, backend: BackendAdapter,
              commit: Optional[Commit]) -> Iterable[Violation]:
        for node, spans in backend.find_blackholes().items():
            if node in self.expected_sinks:
                continue
            yield Violation(
                self.name, ("blackhole", node),
                f"traffic black-holed at {node}: {_fmt_spans(spans)}",
                data=spans)


class ReachabilityProperty:
    """``dst`` must (or, with ``expect_reachable=False``, must not) be
    reachable from ``src``."""

    name = "reachability"
    clears = True

    def __init__(self, src: object, dst: object,
                 expect_reachable: bool = True) -> None:
        self.src = src
        self.dst = dst
        self.expect_reachable = expect_reachable

    def spec(self) -> dict:
        return {"src": self.src, "dst": self.dst,
                "expect_reachable": self.expect_reachable}

    def check(self, backend: BackendAdapter,
              commit: Optional[Commit]) -> Iterable[Violation]:
        spans = backend.reachable(self.src, self.dst)
        if bool(spans) == self.expect_reachable:
            return
        if self.expect_reachable:
            detail = f"{self.dst} unreachable from {self.src}"
        else:
            detail = (f"{self.dst} reachable from {self.src}: "
                      f"{_fmt_spans(spans)}")
        yield Violation(self.name,
                        ("reachability", self.src, self.dst,
                         self.expect_reachable),
                        detail, data=spans)


class WaypointProperty:
    """All ``src -> dst`` traffic must traverse ``waypoint``."""

    name = "waypoint"
    clears = True

    def __init__(self, src: object, dst: object, waypoint: object) -> None:
        if waypoint in (src, dst):
            raise ValueError("waypoint must differ from the endpoints")
        self.src = src
        self.dst = dst
        self.waypoint = waypoint

    def spec(self) -> dict:
        return {"src": self.src, "dst": self.dst, "waypoint": self.waypoint}

    def check(self, backend: BackendAdapter,
              commit: Optional[Commit]) -> Iterable[Violation]:
        reached = propagate_intervals(backend, self.src,
                                      avoid=(self.waypoint,))
        leaked = reached.get(self.dst)
        if leaked:
            yield Violation(
                self.name,
                ("waypoint", self.src, self.dst, self.waypoint),
                f"traffic {self.src} -> {self.dst} bypasses "
                f"{self.waypoint}: {_fmt_spans(leaked.spans)}",
                data=leaked.spans)


class IsolationProperty:
    """No link may carry traffic of both header-space slices."""

    name = "isolation"
    clears = True

    def __init__(self, slice_a: Iterable[Tuple[int, int]],
                 slice_b: Iterable[Tuple[int, int]]) -> None:
        self.slice_a = IntervalSet(slice_a)
        self.slice_b = IntervalSet(slice_b)

    def spec(self) -> dict:
        return {"slice_a": self.slice_a.spans, "slice_b": self.slice_b.spans}

    def check(self, backend: BackendAdapter,
              commit: Optional[Commit]) -> Iterable[Violation]:
        for link in backend.links():
            flows = IntervalSet(backend.flows_on(link))
            shared_a = flows & self.slice_a
            shared_b = flows & self.slice_b
            if shared_a and shared_b:
                yield Violation(
                    self.name, ("isolation", link),
                    f"link {link} carries both slices "
                    f"({_fmt_spans(shared_a.spans, 2)} | "
                    f"{_fmt_spans(shared_b.spans, 2)})",
                    data=(shared_a.spans, shared_b.spans))


# -- persistence hooks (see repro.persist.snapshot) ----------------------------

#: Built-in property classes reconstructible from a saved spec, by
#: their ``name``.  Downstream property classes can register here (or
#: implement ``spec()`` and appear here) to make their subscriptions
#: snapshot-restorable without caller support.
PROPERTY_TYPES: Dict[str, type] = {
    "loops": LoopProperty,
    "blackholes": BlackholeProperty,
    "reachability": ReachabilityProperty,
    "waypoint": WaypointProperty,
    "isolation": IsolationProperty,
}


def property_spec(prop: Property) -> Optional[dict]:
    """``prop``'s constructor arguments as plain data, if it offers them."""
    spec = getattr(prop, "spec", None)
    return spec() if callable(spec) else None


def property_state(prop: Property) -> Optional[dict]:
    """``prop``'s internal state as plain data, if it has any."""
    state = getattr(prop, "state_dict", None)
    return state() if callable(state) else None


def property_from_spec(name: str, spec: Optional[dict]):
    """Rebuild a registered property from its saved spec, else ``None``."""
    cls = PROPERTY_TYPES.get(name)
    if cls is None or spec is None:
        return None
    return cls(**spec)
