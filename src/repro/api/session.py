"""`VerificationSession`: one façade over every data-plane verifier.

The session is the single entry point the replay engine, the CLI, the
examples and the benchmarks all construct::

    from repro.api import VerificationSession, LoopProperty

    session = VerificationSession("deltanet", width=32)
    session.watch(LoopProperty())
    result = session.insert(session.make_rule(0, "10.0.0.0/8", 10,
                                              "s1", "s2"))
    result.violations        # new violations caused by this update
    result.latency           # seconds spent in the backend + checks

    with session.batch() as txn:
        session.insert(r1)
        session.remove(2)
    txn.result               # ONE aggregated UpdateResult for the batch

    session.apply_batch(rules, rids)   # bulk path: batches the backend
                                       # work itself (removals first)

Batching mirrors the paper's note that "multiple rule updates may be
aggregated into a delta-graph": on backends that produce delta-graphs
the per-op deltas are merged (adds cancelling removes) and the
incremental property checks run once on the aggregate;
:meth:`VerificationSession.apply_batch` additionally reaches the
backends' native batched engines (``DeltaNet.apply_batch`` and the
sharded/parallel equivalents).  Batches are
*transactional* in the checking sense — one result, one set of
violations — not rollback-on-error; a failing operation propagates
immediately, earlier operations of the batch stay applied, and
``txn.result`` still covers (and checks) those applied operations.

Violations are deduplicated by signature: a property subscription
behaves as an alert stream delivering each distinct violation when it
becomes observable.  State-based properties (blackholes, reachability,
waypoint, isolation) re-arm once the violation clears, so breaking the
same invariant again alerts again; ``LoopProperty`` tracks cycle
liveness itself for the same effect.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import (
    Any, Dict, Iterable, List, Optional, Set, Tuple, Union,
)

from repro.api.properties import Commit, Property, Violation
from repro.api.registry import (
    BackendAdapter, BackendBatch, BackendUpdate, Cycle, Spans,
    available_backends, create_backend,
)
from repro.core.delta_graph import DeltaGraph
from repro.core.rules import Action, Link, Rule
from repro.core.speculative import StaleSpeculationError
from repro.datasets.format import Op
from repro.query.model import (
    FlowsOn, LinkDown, Loops, Query, QueryResult, Reachable,
)

#: Sentinel distinguishing "compute the delta" from an explicit ``None``.
_UNSET = object()


@dataclass
class OpRecord:
    """One applied operation with its measured latency."""

    kind: str          # "+" | "-"
    rid: int
    seconds: float

    @property
    def is_insert(self) -> bool:
        """Whether this record is an insertion (``kind == "+"``)."""
        return self.kind == "+"


@dataclass
class UpdateResult:
    """Outcome of one committed update (single op or aggregated batch)."""

    backend: str
    ops: List[OpRecord] = field(default_factory=list)
    #: Merged delta-graph, when every op produced one (Delta-net).
    delta: Optional[DeltaGraph] = None
    #: New violations observed by the watched properties.
    violations: List[Violation] = field(default_factory=list)
    #: Seconds spent running property checks (on top of op latencies).
    check_seconds: float = 0.0

    @property
    def num_ops(self) -> int:
        """The number of operations this result aggregates."""
        return len(self.ops)

    @property
    def latency(self) -> float:
        """Total seconds: backend updates plus property checking."""
        return sum(op.seconds for op in self.ops) + self.check_seconds

    def __repr__(self) -> str:
        return (f"UpdateResult({self.backend}, ops={self.num_ops}, "
                f"violations={len(self.violations)}, "
                f"latency={self.latency * 1e6:.1f}us)")


class BatchTransaction:
    """Context manager collecting a batch's updates into one result."""

    def __init__(self, session: "VerificationSession") -> None:
        """Bind the transaction to ``session`` (entered via ``with``)."""
        self._session = session
        self.updates: List[BackendUpdate] = []
        self.ops: List[OpRecord] = []
        self.result: Optional[UpdateResult] = None

    def __enter__(self) -> "BatchTransaction":
        """Begin collecting the session's updates into this batch."""
        self._session._begin_batch(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Commit: check the collected updates once, set ``result``."""
        self._session._end_batch(self, failed=exc_type is not None)


class VerificationSession:
    """Uniform construct / update / subscribe / query surface.

    ``backend`` is a registry name (see
    :func:`repro.api.available_backends`), an already-constructed
    :class:`BackendAdapter`, or any object satisfying the adapter
    surface.  Keyword ``options`` are forwarded to the backend factory
    (``gc=True``, ``shards=8``, ...).
    """

    def __init__(self, backend: Union[str, BackendAdapter] = "deltanet",
                 *, width: int = 32,
                 properties: Iterable[Property] = (),
                 **options: Any) -> None:
        if isinstance(backend, str):
            self.backend: BackendAdapter = create_backend(
                backend, width=width, **options)
        else:
            if options:
                raise ValueError(
                    "backend options require a registry name, not an instance")
            self.backend = backend
        self._properties: List[Property] = []
        self._seen: Dict[int, Set[Tuple[object, ...]]] = {}
        self._violation_log: List[Violation] = []
        self._batch: Optional[BatchTransaction] = None
        #: Count of committed rule operations — the journal cursor a
        #: snapshot records (see :mod:`repro.persist`).
        self.sequence: int = 0
        for prop in properties:
            self.watch(prop)

    # -- introspection ---------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """The backend's registry name (``"deltanet"``, ``"veriflow"``...)."""
        return self.backend.name

    @property
    def width(self) -> int:
        """Packet header width in bits (the interval space is ``2**width``)."""
        return self.backend.width

    @property
    def native(self) -> Any:
        """The wrapped verifier instance — the escape hatch for
        backend-specific analyses the uniform API does not cover."""
        return getattr(self.backend, "native", self.backend)

    @property
    def num_rules(self) -> int:
        """The number of rules currently installed in the data plane."""
        return self.backend.num_rules

    def rules(self) -> Dict[int, Rule]:
        """Return the installed rules by rule id (a defensive copy)."""
        return self.backend.rules()

    def stats(self) -> Dict[str, Any]:
        """Return backend statistics (atom/rule/link counts and friends).

        The exact keys are backend-specific; every backend reports at
        least ``rules``.
        """
        return self.backend.stats()

    def check_invariants(self) -> None:
        """Run the backend's internal self-checks.

        Raises:
            AssertionError: an internal invariant is broken (a
                verifier bug, or corrupted state).
        """
        self.backend.check_invariants()

    def state_digest(self) -> Optional[str]:
        """An order-independent digest of the backend's verifier state.

        Equal across any two sessions holding the same rule state —
        whether built by replay, batch, or snapshot restore — and cheap
        to read: incremental backends maintain it in O(changed entries)
        per update.  ``None`` when digests are disabled
        (``DELTANET_DIGESTS=0``).  See :mod:`repro.integrity`.
        """
        return self.backend.state_digest()

    def close(self) -> None:
        """Release backend resources (e.g. parallel shard workers)."""
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    # -- persistence (see repro.persist) ----------------------------------------

    def save(self, target) -> None:
        """Snapshot the full session (backend state, subscriptions,
        dedup state, violation log) to a path or binary stream."""
        from repro.persist.snapshot import save_session

        save_session(self, target)

    @classmethod
    def load(cls, source, *, properties=None, verify: bool = False,
             **backend_overrides) -> "VerificationSession":
        """Reconstruct a session saved with :meth:`save`.

        Replaying the op stream from the saved ``sequence`` onward
        yields exactly the results the uninterrupted session would have
        produced.  See :func:`repro.persist.snapshot.load_session` for
        the ``properties``/``backend_overrides`` escape hatches.
        """
        from repro.persist.snapshot import load_session

        return load_session(source, properties=properties, verify=verify,
                            **backend_overrides)

    def __enter__(self) -> "VerificationSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- property subscriptions ------------------------------------------------

    def watch(self, prop: Property) -> Property:
        """Subscribe ``prop``; it is checked on every committed update."""
        if not isinstance(prop, Property):
            raise TypeError(f"{prop!r} does not implement Property")
        self._properties.append(prop)
        self._seen.setdefault(id(prop), set())
        return prop

    def unwatch(self, prop: Property) -> None:
        """Drop the subscription for ``prop`` (no-op if not watched)."""
        self._properties = [p for p in self._properties if p is not prop]

    @property
    def properties(self) -> Tuple[Property, ...]:
        """The currently watched properties, in subscription order."""
        return tuple(self._properties)

    def check(self, prop: Property) -> List[Violation]:
        """One-shot evaluation of ``prop`` on the current state (no
        subscription, no dedup)."""
        return list(prop.check(self.backend, None))

    def violations(self) -> List[Violation]:
        """Every violation delivered so far, in delivery order."""
        return list(self._violation_log)

    # -- the transactional update API ------------------------------------------

    def make_rule(self, rid: int, prefix: str, priority: int, source: object,
                  target: object = None,
                  action: Action = Action.FORWARD) -> Rule:
        """Build a rule from CIDR text at this session's width.

        Args:
            rid: unique rule id.
            prefix: CIDR prefix text (e.g. ``"10.0.0.0/8"``).
            priority: match priority (higher wins).
            source: node the rule is installed on.
            target: next-hop node; required for forward rules.
            action: ``Action.FORWARD`` (default) or ``Action.DROP``.

        Returns:
            The constructed :class:`~repro.core.rules.Rule` (not yet
            inserted).

        Raises:
            ValueError: the prefix does not parse, is out of range for
                the width, or a forward rule lacks a target.
        """
        return self.backend.make_rule(rid, prefix, priority, source,
                                      target, action)

    def insert(self, rule: Rule) -> Union[UpdateResult, OpRecord]:
        """Insert ``rule``; returns the :class:`UpdateResult` (or, inside
        a batch, the per-op :class:`OpRecord` — the aggregated result
        lands on the transaction)."""
        return self._apply_one("+", rule.rid,
                               lambda: self.backend.insert(rule))

    def remove(self, rid: int) -> Union[UpdateResult, OpRecord]:
        """Remove the rule with id ``rid``."""
        return self._apply_one("-", rid, lambda: self.backend.remove(rid))

    def apply(self, op: Op) -> Union[UpdateResult, OpRecord]:
        """Apply one dataset :class:`~repro.datasets.format.Op`."""
        if op.is_insert:
            return self.insert(op.rule)
        return self.remove(op.rid)

    def batch(self) -> BatchTransaction:
        """``with session.batch() as txn:`` — aggregate ops into one
        delta-graph-like result, checked once at commit.

        Operations inside the block still run one at a time through the
        backend; only the checking is aggregated.  For bulk throughput
        use :meth:`apply_batch`, which also batches the backend work.
        """
        return BatchTransaction(self)

    def apply_batch(self, rules_to_insert: Iterable[Rule] = (),
                    rids_to_remove: Iterable[int] = ()) -> UpdateResult:
        """Bulk update through the backend's batched engine.

        Removals run first, then insertions (the
        :meth:`repro.core.deltanet.DeltaNet.apply` order), the backend
        amortizes its per-op costs across the batch, and the watched
        properties are checked once against the aggregated outcome — one
        :class:`UpdateResult` for the whole batch.  Per-op latencies in
        ``result.ops`` are the batch time split evenly, keeping
        per-operation statistics comparable with the single-op path.

        Works on every backend: those without a native batched path fall
        back to looping single ops inside the backend adapter.
        """
        if self._batch is not None:
            raise RuntimeError("apply_batch cannot run inside session.batch()")
        inserts = list(rules_to_insert)
        removals = list(rids_to_remove)
        clock = time.perf_counter
        start = clock()
        batch_call = getattr(self.backend, "apply_batch", None)
        if batch_call is not None:
            batch: BackendBatch = batch_call(inserts, removals)
            updates, delta = batch.updates, batch.delta
        else:
            # Duck-typed backend instance without the batch capability:
            # still validate the whole batch up front (when the backend
            # exposes its rule table) so a bad op cannot leave it
            # half-applied, then loop the single-op path.
            rules_view = getattr(self.backend, "rules", None)
            if rules_view is not None:
                from repro.core.rules import validate_batch_ops

                validate_batch_ops(inserts, removals, rules_view(),
                                   self.width)
            updates = [self.backend.remove(rid) for rid in removals]
            updates += [self.backend.insert(rule) for rule in inserts]
            delta = self._merge_deltas(updates)
        elapsed = clock() - start
        per_op = elapsed / len(updates) if updates else 0.0
        ops = [OpRecord("+" if update.inserted else "-", update.rid, per_op)
               for update in updates]
        return self._commit(updates, ops, delta=delta)

    # -- the unified Query API ---------------------------------------------------

    def query(self, query: Query) -> QueryResult:
        """Answer a typed query (:class:`~repro.query.FlowsOn`,
        :class:`~repro.query.Reachable`, :class:`~repro.query.LinkDown`,
        :class:`~repro.query.Loops`) with one uniform
        :class:`~repro.query.QueryResult` envelope.

        Delta-net backends evaluate goal-directed — restricted to the
        atom set and link subgraph the query can touch — and fill the
        atom-currency fields (``atoms``, ``subgraph``); every backend
        fills ``spans``/``violations``.  ``result.seconds`` reports the
        evaluation wall-clock.
        """
        clock = time.perf_counter
        start = clock()
        run = getattr(self.backend, "run_query", None)
        if run is not None:
            result = run(query)
        else:
            # Duck-typed backend instance without the planner hook.
            from repro.query.planner import evaluate_generic

            result = evaluate_generic(self.backend, query)
        result.seconds = clock() - start
        return result

    # -- speculation -------------------------------------------------------------

    def speculate(self) -> "SpeculativeSession":
        """Fork a copy-on-write what-if child of this session.

        The child answers updates/queries against a private fork of the
        backend state (CoW on the Delta-net backends — no clone) plus
        clones of the watched properties, and buffers its operations;
        ``child.commit()`` replays them here, ``child.discard()`` drops
        everything.  Fork ``k`` children to evaluate ``k`` candidate
        changes concurrently against the same base state.  A child is
        only coherent while this session stays unchanged — once it
        advances, the child raises :class:`~repro.core.speculative.
        StaleSpeculationError`.
        """
        return SpeculativeSession(self)

    # -- queries (deprecated per-method surface; use session.query) --------------

    def flows_on(self, link: Union[Link, Tuple[object, object]]) -> Spans:
        """Return the header intervals currently forwarded over ``link``.

        .. deprecated:: use ``query(FlowsOn(link)).spans``.
        """
        warnings.warn(
            "session.flows_on() is deprecated; use "
            "session.query(FlowsOn(link)).spans",
            DeprecationWarning, stacklevel=2)
        return self.query(FlowsOn(link)).spans

    def reachable(self, src: object, dst: object) -> Spans:
        """Return the header intervals that can travel ``src`` → ``dst``.

        .. deprecated:: use ``query(Reachable(src, dst)).spans``.
        """
        warnings.warn(
            "session.reachable() is deprecated; use "
            "session.query(Reachable(src, dst)).spans",
            DeprecationWarning, stacklevel=2)
        return self.query(Reachable(src, dst)).spans

    def what_if_link_down(self,
                          link: Union[Link, Tuple[object, object]]) -> Spans:
        """Return the header intervals that would lose their path if
        ``link`` failed (a hypothetical — nothing is mutated).

        .. deprecated:: use ``query(LinkDown(link)).spans``.
        """
        warnings.warn(
            "session.what_if_link_down() is deprecated; use "
            "session.query(LinkDown(link)).spans",
            DeprecationWarning, stacklevel=2)
        return self.query(LinkDown(link)).spans

    def find_loops(self) -> List[Cycle]:
        """Return every forwarding loop as a canonical node cycle.

        .. deprecated:: use ``query(Loops()).violations``.
        """
        warnings.warn(
            "session.find_loops() is deprecated; use "
            "session.query(Loops()).violations",
            DeprecationWarning, stacklevel=2)
        return self.query(Loops()).violations

    def find_blackholes(self) -> Dict[object, Spans]:
        """Return, per node, the header intervals it silently drops."""
        return self.backend.find_blackholes()

    def links(self) -> List[Link]:
        """Return every link referenced by at least one installed rule."""
        return self.backend.links()

    # -- internals --------------------------------------------------------------

    def _apply_one(self, kind: str, rid: int, action):
        clock = time.perf_counter
        start = clock()
        update: BackendUpdate = action()
        record = OpRecord(kind, rid, clock() - start)
        if self._batch is not None:
            self._batch.updates.append(update)
            self._batch.ops.append(record)
            return record
        return self._commit([update], [record])

    def _begin_batch(self, txn: BatchTransaction) -> None:
        if self._batch is not None:
            raise RuntimeError("batches do not nest")
        self._batch = txn

    def _end_batch(self, txn: BatchTransaction, failed: bool) -> None:
        self._batch = None
        # Even when the batch body raised, the operations applied before
        # the error have changed the data plane — they must still be
        # checked, or their violations would be lost for good (every
        # later incremental check inspects only its own delta).
        txn.result = self._commit(txn.updates, txn.ops)

    @staticmethod
    def _merge_deltas(updates: List[BackendUpdate]) -> Optional[DeltaGraph]:
        from repro.api.registry import _merge_update_deltas

        return _merge_update_deltas(updates)

    def _commit(self, updates: List[BackendUpdate], ops: List[OpRecord],
                delta: Any = _UNSET) -> UpdateResult:
        self.sequence += len(ops)
        if delta is _UNSET:
            delta = self._merge_deltas(updates)
        result = UpdateResult(backend=self.backend_name, ops=ops, delta=delta)
        if self._properties and updates:
            clock = time.perf_counter
            start = clock()
            commit = Commit(updates=updates, delta=delta)
            for prop in self._properties:
                seen = self._seen[id(prop)]
                current: Set[Tuple[object, ...]] = set()
                for violation in prop.check(self.backend, commit):
                    current.add(violation.signature)
                    if violation.signature in seen:
                        continue
                    seen.add(violation.signature)
                    result.violations.append(violation)
                    self._violation_log.append(violation)
                if getattr(prop, "clears", False):
                    # State-based properties re-arm once satisfied: a
                    # violation that disappeared may fire again later.
                    self._seen[id(prop)] = current
            result.check_seconds = clock() - start
        return result

    def __repr__(self) -> str:
        return (f"VerificationSession(backend={self.backend_name!r}, "
                f"rules={self.num_rules}, "
                f"properties={[p.name for p in self._properties]})")


class SpeculativeSession(VerificationSession):
    """A copy-on-write what-if child of a live session.

    Forked by :meth:`VerificationSession.speculate`.  The child holds a
    speculative fork of the parent's backend (CoW on the Delta-net
    backends, a snapshot clone elsewhere) plus clones of the watched
    properties — including their dedup state, so a violation the parent
    already delivered is not re-alerted speculatively.  Every update the
    child applies is also buffered as a dataset
    :class:`~repro.datasets.format.Op`; :meth:`commit` replays the
    buffer on the parent (producing the parent's own
    :class:`UpdateResult` stream), :meth:`discard` drops it.

    The child is only coherent while the parent stays at the sequence
    recorded at fork time; any parent advance makes every subsequent
    child update or query raise :class:`~repro.core.speculative.
    StaleSpeculationError` — including a sibling's ``commit()``, so of
    ``k`` concurrent candidates the first commit wins and the rest must
    re-speculate.
    """

    def __init__(self, parent: VerificationSession) -> None:
        import copy

        from repro.api.properties import (
            property_from_spec, property_spec, property_state,
        )

        self.backend = parent.backend.speculate()
        self.parent = parent
        self._properties = []
        self._seen = {}
        self._violation_log = []
        self._batch = None
        self.sequence = parent.sequence
        self._spec_base_sequence = parent.sequence
        self._spec_buffer: List[Op] = []
        self._spec_closed = False
        for prop in parent.properties:
            clone = property_from_spec(prop.name, property_spec(prop))
            if clone is None:
                # Not a registered/spec-carrying property: a deep copy
                # still isolates its mutable check state from the parent.
                clone = copy.deepcopy(prop)
            else:
                state = property_state(prop)
                load = getattr(clone, "load_state_dict", None)
                if state is not None and callable(load):
                    load(state)
            self._properties.append(clone)
            self._seen[id(clone)] = set(parent._seen.get(id(prop), ()))

    # -- freshness ---------------------------------------------------------------

    def assert_fresh(self) -> None:
        """Raise unless this child still reflects the parent's state."""
        if self._spec_closed:
            raise StaleSpeculationError(
                "speculation was already committed or discarded")
        if self.parent.sequence != self._spec_base_sequence:
            raise StaleSpeculationError(
                "parent session advanced since this speculation was "
                f"forked ({self.parent.sequence - self._spec_base_sequence} "
                "op(s) behind); discard and re-speculate")

    # -- buffered updates --------------------------------------------------------

    def insert(self, rule: Rule):
        """Insert ``rule`` into the speculative state and buffer it for
        :meth:`commit`; checked like a normal insert, invisible to the
        parent.  Raises :class:`StaleSpeculationError` if the parent
        advanced since the fork."""
        self.assert_fresh()
        result = super().insert(rule)
        self._spec_buffer.append(Op.insert(rule))
        return result

    def remove(self, rid: int):
        """Remove rule ``rid`` from the speculative state and buffer the
        removal for :meth:`commit`; invisible to the parent.  Raises
        :class:`StaleSpeculationError` if the parent advanced since the
        fork."""
        self.assert_fresh()
        result = super().remove(rid)
        self._spec_buffer.append(Op.remove(rid))
        return result

    def apply_batch(self, rules_to_insert: Iterable[Rule] = (),
                    rids_to_remove: Iterable[int] = ()) -> UpdateResult:
        """Apply a batch to the speculative state (removals first, then
        insertions, as on the parent session) and buffer the ops in that
        replay order for :meth:`commit`.  Raises
        :class:`StaleSpeculationError` if the parent advanced since the
        fork."""
        self.assert_fresh()
        inserts = list(rules_to_insert)
        removals = list(rids_to_remove)
        result = super().apply_batch(inserts, removals)
        # Buffer in the order the batch semantics applied them
        # (removals first), so a sequential replay reproduces the
        # child-observed state exactly.
        self._spec_buffer.extend(Op.remove(rid) for rid in removals)
        self._spec_buffer.extend(Op.insert(rule) for rule in inserts)
        return result

    # -- checked queries ---------------------------------------------------------

    def query(self, query: Query) -> QueryResult:
        """Evaluate a typed query against the speculative state (base
        rules plus buffered changes).  Raises
        :class:`StaleSpeculationError` if the parent advanced since the
        fork."""
        self.assert_fresh()
        return super().query(query)

    def find_blackholes(self) -> Dict[object, Spans]:
        """Find black holes in the speculative state; raises
        :class:`StaleSpeculationError` if the parent advanced since the
        fork."""
        self.assert_fresh()
        return super().find_blackholes()

    def links(self) -> List[Link]:
        """The links present in the speculative state; raises
        :class:`StaleSpeculationError` if the parent advanced since the
        fork."""
        self.assert_fresh()
        return super().links()

    # -- resolution --------------------------------------------------------------

    def buffered_ops(self) -> List[Op]:
        """The child's applied operations, in replay order (a copy)."""
        return list(self._spec_buffer)

    def commit(self) -> List[UpdateResult]:
        """Replay the buffered ops on the parent; retires this child.

        Returns the parent's per-op results (with the parent's own
        property checking and violation dedup).  Raises
        :class:`~repro.core.speculative.StaleSpeculationError` — before
        touching the parent — if the parent advanced since the fork.
        """
        self.assert_fresh()
        ops = self.buffered_ops()
        try:
            return [self.parent.apply(op) for op in ops]
        finally:
            self.discard()

    def discard(self) -> None:
        """Drop the speculative state; idempotent."""
        if self._spec_closed:
            return
        self._spec_closed = True
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    def close(self) -> None:
        """Alias for :meth:`discard` — closing a speculative session
        drops its state without touching the parent."""
        self.discard()

    def save(self, target) -> None:
        """Refused: speculative state is never durable.  Always raises
        :class:`RuntimeError`; :meth:`commit` or :meth:`discard` instead."""
        raise RuntimeError("speculative sessions are ephemeral; "
                           "commit() or discard() them instead of saving")

    def __repr__(self) -> str:
        return (f"SpeculativeSession(backend={self.backend_name!r}, "
                f"rules={self.num_rules}, "
                f"buffered={len(self._spec_buffer)}, "
                f"closed={self._spec_closed})")
