"""The :class:`Backend` protocol and the backend registry.

Every verifier in this repository — Delta-net, Veriflow-RI, the
atomic-predicates verifier, NetPlumber, and the Libra-style sharded
Delta-net — is exposed to :class:`repro.api.session.VerificationSession`
through the same small surface:

* a *transactional* update pair ``insert(rule)`` / ``remove(rid)``, each
  returning a :class:`BackendUpdate` describing what the backend learned
  while processing the operation (a delta-graph when the backend
  maintains one, natively detected loops when checking is fused into the
  update, or neither),
* uniform queries over the *packet space as canonical half-closed
  intervals* — the one currency all five verifiers can speak:
  ``flows_on``, ``reachable``, ``what_if_link_down``, ``find_loops``,
  ``find_blackholes``.

Backends register themselves by name::

    @register_backend("deltanet")
    class DeltaNetBackend(BackendAdapter):
        ...

and callers resolve them by name::

    backend = create_backend("deltanet", width=32, gc=True)
    available_backends()   # ('apv', 'deltanet', 'netplumber', ...)

Unknown names raise :class:`UnknownBackendError` with did-you-mean
suggestions, so CLI typos fail helpfully.
"""

from __future__ import annotations

import abc
import difflib
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Tuple, Type, Union,
)

from repro.core.delta_graph import DeltaGraph
from repro.core.prefix import prefix_to_interval
from repro.core.rules import (
    Action, DROP, Link, Rule, canonical_rotation, validate_batch_ops,
)

#: A forwarding cycle as a canonical tuple of graph nodes.
Cycle = Tuple[object, ...]

#: Disjoint half-closed ``(lo, hi)`` intervals — the uniform answer type.
Spans = List[Tuple[int, int]]


def canonical_cycle(nodes: Iterable[object]) -> Cycle:
    """Rotate a cycle to its canonical start, for dedup (see
    :func:`repro.core.rules.canonical_rotation` for the pivot rule)."""
    return canonical_rotation(nodes)


@dataclass
class BackendUpdate:
    """What a backend reports about one processed rule operation.

    ``delta`` is a :class:`~repro.core.delta_graph.DeltaGraph` for
    backends that maintain one (Delta-net); ``loops`` holds canonical
    cycles for backends whose update natively runs a loop check
    (Veriflow-RI, sharded Delta-net).  Either may be ``None`` — the
    session's properties fall back to whole-data-plane sweeps then.
    """

    rid: int
    inserted: bool
    rule: Optional[Rule] = None
    delta: Optional[DeltaGraph] = None
    loops: Optional[List[Cycle]] = None


@dataclass
class BackendBatch:
    """What a backend reports about one aggregated update batch.

    ``updates`` carries one :class:`BackendUpdate` per operation
    (removals first, then insertions — the batch order).  ``delta`` is
    the batch's merged delta-graph when the backend maintains one; for
    backends that natively ran checks during the batch, the loops ride on
    the per-op updates as usual.
    """

    updates: List[BackendUpdate]
    delta: Optional[DeltaGraph] = None


class BackendAdapter(abc.ABC):
    """Common base for registry backends.

    Subclasses implement ``_do_insert`` / ``_do_remove`` plus the query
    primitives; the base class provides uniform rule bookkeeping (so
    duplicate/unknown rule ids fail identically on every backend, even
    those whose native classes do not check) and interval-algebra default
    implementations for the derived queries.
    """

    #: Registry name, set by :func:`register_backend`.
    name: str = "?"

    #: Whether query methods (``find_loops``, ``reachable``, ...) are
    #: pure in-process reads that many threads may run concurrently.
    #: Backends whose queries fan out over worker pipes (the parallel
    #: backend) must leave this False; the serving layer then keeps
    #: reads exclusive instead of sharing the read lock.
    concurrent_read_safe: bool = False

    def __init__(self, width: int = 32) -> None:
        """Initialize the uniform rule table.

        Args:
            width: packet header width in bits.
        """
        self.width = width
        self._rules: Dict[int, Rule] = {}

    # -- update API (the checked operations) ---------------------------------

    def insert(self, rule: Rule) -> BackendUpdate:
        """Insert ``rule`` into the native verifier.

        Args:
            rule: the rule to install; its ``rid`` must be new.

        Returns:
            The backend's :class:`BackendUpdate` for the operation.

        Raises:
            ValueError: a rule with the same id is already installed.
        """
        if rule.rid in self._rules:
            raise ValueError(f"duplicate rule id {rule.rid}")
        update = self._do_insert(rule)
        self._rules[rule.rid] = rule
        return update

    def remove(self, rid: int) -> BackendUpdate:
        """Remove the rule with id ``rid`` from the native verifier.

        Args:
            rid: the id of an installed rule.

        Returns:
            The backend's :class:`BackendUpdate` for the operation.

        Raises:
            KeyError: no rule with that id is installed.
        """
        rule = self._rules.get(rid)
        if rule is None:
            raise KeyError(f"unknown rule id {rid}")
        update = self._do_remove(rule)
        del self._rules[rid]
        return update

    @abc.abstractmethod
    def _do_insert(self, rule: Rule) -> BackendUpdate:
        """Apply one insertion to the native verifier."""

    @abc.abstractmethod
    def _do_remove(self, rule: Rule) -> BackendUpdate:
        """Apply one removal to the native verifier."""

    # -- batched updates ---------------------------------------------------------

    @property
    def supports_batch(self) -> bool:
        """Whether this backend has a *native* batched update path.

        :meth:`apply_batch` works on every backend either way — without
        native support it loops the checked single-op path.
        """
        return type(self)._do_apply_batch is not BackendAdapter._do_apply_batch

    def apply_batch(self, rules_to_insert: Iterable[Rule] = (),
                    rids_to_remove: Iterable[int] = ()) -> BackendBatch:
        """Apply removals then insertions as one aggregated batch.

        Order semantics match :meth:`repro.core.deltanet.DeltaNet.apply`:
        all removals run first (so a batch may remove and re-insert the
        same rule id), then all insertions in batch order.  The batch is
        validated up front — duplicate or unknown rule ids reject the
        whole batch before the native verifier is touched.
        """
        inserts = list(rules_to_insert)
        removals = list(rids_to_remove)
        # Validated here too (not just natively) so the sequential
        # fallback backends also reject the whole batch up front, before
        # any removal is applied.
        validate_batch_ops(inserts, removals, self._rules, self.width)
        removal_rules = [self._rules[rid] for rid in removals]
        if not self.supports_batch:
            # Sequential fallback through the checked single-op path
            # (which maintains the rule bookkeeping itself).
            updates = [self.remove(rid) for rid in removals]
            updates += [self.insert(rule) for rule in inserts]
            return BackendBatch(updates=updates,
                                delta=_merge_update_deltas(updates))
        batch = self._do_apply_batch(inserts, removals, removal_rules)
        for rid in removals:
            del self._rules[rid]
        for rule in inserts:
            self._rules[rule.rid] = rule
        return batch

    def _do_apply_batch(self, inserts: List[Rule], removals: List[int],
                        removal_rules: List[Rule]) -> BackendBatch:
        """Native batched path; override where the verifier has one."""
        raise NotImplementedError

    # -- uniform bookkeeping ---------------------------------------------------

    @property
    def num_rules(self) -> int:
        """The number of currently installed rules."""
        return len(self._rules)

    def rules(self) -> Dict[int, Rule]:
        """The currently installed rules, by rule id (read-only view)."""
        return dict(self._rules)

    def make_rule(self, rid: int, prefix: str, priority: int, source: object,
                  target: object = None, action: Action = Action.FORWARD) -> Rule:
        """Build a rule from CIDR text; drop rules omit ``target``."""
        lo, hi = prefix_to_interval(prefix, self.width)
        if action is Action.DROP:
            return Rule.drop(rid, lo, hi, priority, source)
        if target is None:
            raise ValueError("forward rules need a target")
        return Rule.forward(rid, lo, hi, priority, source, target)

    # -- query primitives (per-backend) ---------------------------------------

    @abc.abstractmethod
    def links(self) -> List[Link]:
        """Links that currently carry (or may carry) traffic."""

    @abc.abstractmethod
    def flows_on(self, link: Union[Link, Tuple[object, object]]) -> Spans:
        """The packet space carried by ``link`` as canonical intervals."""

    @abc.abstractmethod
    def reachable(self, src: object, dst: object) -> Spans:
        """Packets that can flow from ``src`` to ``dst`` as intervals."""

    @abc.abstractmethod
    def find_loops(self) -> List[Cycle]:
        """Whole-data-plane forwarding-loop sweep (canonical cycles)."""

    # -- derived queries (interval-algebra defaults) ---------------------------

    def what_if_link_down(self, link: Union[Link, Tuple[object, object]]) -> Spans:
        """Packet space affected by failing ``link``.

        The affected packets are exactly the flows currently using the
        link; backends with a native (and possibly much more expensive)
        what-if path override this.
        """
        return self.flows_on(link)

    def find_blackholes(self) -> Dict[object, Spans]:
        """Nodes that receive traffic they neither forward nor drop.

        Default: pure interval algebra over ``links()`` / ``flows_on()``
        — per node, the arriving packet space minus the outgoing (or
        explicitly dropped) packet space.
        """
        from repro.core.intervals import IntervalSet

        incoming: Dict[object, IntervalSet] = {}
        outgoing: Dict[object, IntervalSet] = {}
        for link in self.links():
            flows = IntervalSet(self.flows_on(link))
            if not flows:
                continue
            if link.target != DROP:
                incoming[link.target] = incoming.get(link.target, IntervalSet()) | flows
            outgoing[link.source] = outgoing.get(link.source, IntervalSet()) | flows
        holes: Dict[object, Spans] = {}
        for node, arrived in incoming.items():
            lost = arrived - outgoing.get(node, IntervalSet())
            if lost:
                holes[node] = lost.spans
        return holes

    def run_query(self, query) -> "Any":
        """Answer a typed :class:`repro.query.Query` with a
        :class:`~repro.query.model.QueryResult`.

        The default composes the uniform query primitives above
        (:func:`repro.query.planner.evaluate_generic`); the Delta-net
        backends override it with goal-directed planners that also fill
        the atom-currency fields (``atoms``, ``subgraph``).
        """
        from repro.query.planner import evaluate_generic

        return evaluate_generic(self, query)

    # -- speculation -----------------------------------------------------------

    def speculate(self) -> "BackendAdapter":
        """Fork an independent what-if child of this backend.

        The child answers updates and queries against a private copy of
        the current state; the parent is never mutated.  The generic
        fallback clones through ``snapshot_state``/``restore_state`` —
        O(state) per fork.  The Delta-net backends override this with
        copy-on-write children (:mod:`repro.core.speculative`) that fork
        in O(boundaries + links) pointer copies and detect a parent that
        advanced underneath them (:class:`~repro.core.speculative.
        StaleSpeculationError`).  Callers own the child: ``close()`` it
        when the speculation is discarded.
        """
        state = self.snapshot_state()
        child = create_backend(self.name, width=self.width,
                               **state.get("options", {}))
        child.restore_state(state)
        return child

    def loops_for_commit(self, updates: List[BackendUpdate],
                         delta: Optional[DeltaGraph]) -> List[Cycle]:
        """Loops attributable to a committed update batch.

        Default: when every update carried natively detected loops,
        return their union; otherwise fall back to a full sweep (the
        session deduplicates re-reported pre-existing loops).  An update
        whose delta-graph is *empty* changed no label, so no new loop
        can exist — it short-circuits to nothing instead of paying a
        sweep for a no-op.
        """
        if updates and all(u.loops is not None for u in updates):
            seen: Dict[Cycle, None] = {}
            for update in updates:
                for cycle in update.loops:
                    seen.setdefault(cycle)
            return list(seen)
        if delta is not None and delta.is_empty():
            return []
        return self.find_loops()

    # -- persistence (see repro.persist) ---------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """The backend's full state as codec-friendly plain data.

        The generic form records the installed rules in insertion order
        plus the constructor ``options`` needed to rebuild the adapter
        (:meth:`_snapshot_options`); :meth:`restore_state` replays them
        through the checked single-op path, which reconstructs *any*
        backend exactly — at cold-replay cost.  Backends with native
        snapshots (Delta-net and the sharded variants) override both
        for warm starts.
        """
        return {
            "kind": "generic",
            "options": self._snapshot_options(),
            "rules": [rule.to_state() for rule in self._rules.values()],
        }

    def _snapshot_options(self) -> Dict[str, Any]:
        """Constructor keywords a restore must pass to rebuild *this*
        adapter configuration (beyond ``width``).  Adapters with
        behavioural knobs (``check_loops``, ...) override this; the
        restored instance must not silently fall back to defaults."""
        return {}

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Rebuild this (freshly constructed) adapter from ``state``."""
        if self._rules:
            raise ValueError("restore_state requires a fresh backend")
        for rule_state in state["rules"]:
            self.insert(Rule.from_state(rule_state))

    # -- integrity (see repro.integrity) ----------------------------------------

    def state_digest(self) -> Optional[str]:
        """An order-independent digest of the backend's verifier state.

        The generic form fingerprints the canonical encoding of every
        installed rule — self-consistent across save/restore because
        restore replays the identical rule set.  Backends with native
        incremental digests (Delta-net and the sharded variants)
        override this with their O(1)-maintained label/boundary digest.
        Returns ``None`` when digests are disabled.
        """
        from repro.integrity.digest import rules_digest

        return rules_digest(rule.to_state() for rule in self._rules.values())

    # -- diagnostics -----------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (worker processes, ...); idempotent.

        A no-op for in-process backends."""

    def check_invariants(self) -> None:
        """Backend-internal consistency assertions (tests/debugging)."""

    def stats(self) -> Dict[str, Any]:
        """Backend-specific size/shape counters."""
        return {"backend": self.name, "rules": self.num_rules}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rules={self.num_rules}, width={self.width})"


def _merge_update_deltas(updates: List[BackendUpdate]) -> Optional[DeltaGraph]:
    """Merge per-op delta-graphs, or ``None`` unless every op has one."""
    if not updates or any(update.delta is None for update in updates):
        return None
    merged = DeltaGraph()
    for update in updates:
        merged.merge(update.delta)
    return merged


# -- the registry -------------------------------------------------------------

BackendFactory = Callable[..., BackendAdapter]

_REGISTRY: Dict[str, BackendFactory] = {}


class UnknownBackendError(ValueError):
    """Raised when a backend name is not registered."""


def register_backend(name: str, factory: Optional[BackendFactory] = None,
                     *, replace: bool = False):
    """Register a backend factory under ``name``.

    Usable as a decorator on a :class:`BackendAdapter` subclass (the
    class's ``name`` attribute is set to the registry name) or called
    directly with any ``(**options) -> BackendAdapter`` factory.
    """

    def _register(target: BackendFactory) -> BackendFactory:
        if name in _REGISTRY and not replace:
            raise ValueError(f"backend {name!r} already registered")
        if isinstance(target, type) and issubclass(target, BackendAdapter):
            target.name = name
        _REGISTRY[name] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def backend_factory(name: str) -> BackendFactory:
    """Resolve a registry name, raising with suggestions when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        suggestions = difflib.get_close_matches(name, _REGISTRY, n=3, cutoff=0.4)
        hint = f"; did you mean {' or '.join(map(repr, suggestions))}?" \
            if suggestions else ""
        raise UnknownBackendError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}{hint}") from None


def create_backend(name: str, **options: Any) -> BackendAdapter:
    """Instantiate a registered backend with keyword ``options``."""
    return backend_factory(name)(**options)


def backend_description(name: str) -> str:
    """First docstring line of a registered backend (for `deltanet backends`)."""
    factory = backend_factory(name)
    doc = (factory.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""
