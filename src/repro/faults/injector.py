"""Named fault points and the injector that arms them.

Production code declares *fault points* by calling :func:`fire` at the
spots where real systems fail — just before a pipe send, inside the
checkpoint tmp+rename window, around a journal append.  With no
injector installed (the normal case, including all production use)
``fire`` is a single global read and returns immediately.

A test or chaos campaign installs a :class:`FaultInjector` armed with
:class:`Fault` descriptions: *at the n-th hit of point P (optionally
restricted to shard S), run this action*.  Stock actions cover the
failure menagerie:

``crash``
    raise :class:`InjectedCrash` — simulated process death.  It derives
    from ``BaseException`` so ordinary ``except Exception`` recovery
    code cannot swallow it, exactly as no handler survives a real
    ``kill -9``.
``delay(seconds)``
    sleep before letting the operation proceed (slow worker / slow
    disk); with a per-request deadline armed this manufactures a hung
    worker.
``drop``
    raise :class:`DropMessage`, which pipe-send fault points interpret
    as "the message vanished" — the send is skipped, the caller sees
    success, and the reply never comes (a blackholed pipe).
``kill_endpoint``
    hard-kill the worker process behind the endpoint in the fire
    context — a genuine ``SIGKILL`` mid-protocol.

Every trigger is recorded on ``injector.fired`` so tests can assert a
fault actually happened (a chaos campaign that silently never injects
proves nothing).

The installed injector is module-global state: chaos runs are
single-threaded harnesses, and the one global keeps ``fire`` cheap on
the hot path.  Do not install an injector from concurrent tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


class InjectedCrash(BaseException):
    """A simulated process death at a fault point.

    Deliberately a ``BaseException``: recovery code under test catches
    ``Exception``, and a fault that such code could swallow would test
    the injector, not the recovery.
    """


class DropMessage(Exception):
    """Raised by a pipe-send fault point to blackhole the message.

    The sender catches this, skips the send, and reports success —
    the receiver simply never hears anything.
    """


def crash(context: dict) -> None:
    """Stock action: die here (see :class:`InjectedCrash`)."""
    raise InjectedCrash(f"injected crash at {context.get('point')!r}")


def drop(context: dict) -> None:
    """Stock action: blackhole this pipe message."""
    raise DropMessage(f"injected blackhole at {context.get('point')!r}")


def delay(seconds: float) -> Callable[[dict], None]:
    """Stock action factory: stall the operation for ``seconds``."""

    def action(context: dict) -> None:
        time.sleep(seconds)

    return action


def kill_endpoint(context: dict) -> None:
    """Stock action: SIGKILL the worker process behind this fault point.

    Only meaningful at fault points that pass ``endpoint=`` in their
    context (the parallel backend's pipe points); elsewhere it is a
    no-op, so plans stay portable across backends.
    """
    endpoint = context.get("endpoint")
    process = getattr(endpoint, "process", None)
    if process is not None and process.is_alive():
        process.kill()
        process.join(timeout=5)


@dataclass
class Fault:
    """One armed fault: fire ``action`` on the n-th hit of ``point``."""

    point: str
    action: Callable[[dict], None]
    #: trigger on the ``at``-th matching hit (1-based)
    at: int = 1
    #: when set, only hits whose context carries this shard index match
    shard: Optional[int] = None
    #: disarm after the first trigger (set False for every-hit faults)
    once: bool = True
    hits: int = field(default=0, init=False)
    triggered: int = field(default=0, init=False)

    def matches(self, point: str, context: dict) -> bool:
        if point != self.point:
            return False
        if self.shard is not None and context.get("shard") != self.shard:
            return False
        return True


class FaultInjector:
    """Holds armed faults and a log of everything that triggered."""

    def __init__(self, faults: Optional[List[Fault]] = None) -> None:
        self.faults: List[Fault] = list(faults or ())
        #: (point, context-sans-objects) per trigger, in order
        self.fired: List[Tuple[str, dict]] = []

    def arm(self, fault: Fault) -> Fault:
        self.faults.append(fault)
        return fault

    def fire(self, point: str, **context) -> None:
        context["point"] = point
        for fault in self.faults:
            if not fault.matches(point, context):
                continue
            fault.hits += 1
            live = (fault.hits == fault.at if fault.once
                    else fault.hits >= fault.at)
            if not live:
                continue
            fault.triggered += 1
            self.fired.append((point, {
                key: value for key, value in context.items()
                if isinstance(value, (str, int, float, bool, type(None)))}))
            fault.action(context)


_active: Optional[FaultInjector] = None


def fire(point: str, **context) -> None:
    """Hit a fault point; free when no injector is installed."""
    injector = _active
    if injector is not None:
        injector.fire(point, **context)


class installed:
    """Context manager installing ``injector`` as the active one."""

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector
        self._previous: Optional[FaultInjector] = None

    def __enter__(self) -> FaultInjector:
        global _active
        self._previous = _active
        _active = self.injector
        return self.injector

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active
        _active = self._previous
