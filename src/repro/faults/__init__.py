"""Deterministic fault injection for chaos-testing the verifier stack.

:mod:`repro.faults.injector` is the mechanism: named fault points wired
into production code (`fire()` is a no-op until an injector is
installed), armed faults that crash / delay / drop at the n-th hit, and
the :class:`InjectedCrash` signal that simulates process death.

:mod:`repro.faults.chaos` is the policy: seed-derived
:class:`ChaosPlan`\\ s of fault events and a replay harness that drives a
checkpointed session through a scenario while killing workers, tearing
journal tails and crashing checkpoints — then proves the delivered
violation stream still matches the sweep oracle byte-for-byte.
"""

from repro.faults.injector import (
    DropMessage, Fault, FaultInjector, InjectedCrash, crash, delay, drop,
    fire, installed, kill_endpoint,
)
from repro.faults.chaos import (
    CHAOS_KINDS, ChaosPlan, FaultEvent, chaos_replay,
)

__all__ = [
    "CHAOS_KINDS",
    "ChaosPlan",
    "DropMessage",
    "Fault",
    "FaultEvent",
    "FaultInjector",
    "InjectedCrash",
    "chaos_replay",
    "crash",
    "delay",
    "drop",
    "fire",
    "installed",
    "kill_endpoint",
]
