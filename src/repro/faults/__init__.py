"""Deterministic fault injection for chaos-testing the verifier stack.

:mod:`repro.faults.injector` is the mechanism: named fault points wired
into production code (`fire()` is a no-op until an injector is
installed), armed faults that crash / delay / drop at the n-th hit, and
the :class:`InjectedCrash` signal that simulates process death.

:mod:`repro.faults.chaos` is the policy: seed-derived
:class:`ChaosPlan`\\ s of fault events and a replay harness that drives a
checkpointed session through a scenario while killing workers, tearing
journal tails and crashing checkpoints — then proves the delivered
violation stream still matches the sweep oracle byte-for-byte.

:mod:`repro.faults.corruption` damages *state itself*: snapshot byte
flips, journal payload mutations, silently desynced shards — and proves
the stack fails loudly or answers correctly, never silently wrong.
"""

from repro.faults.injector import (
    DropMessage, Fault, FaultInjector, InjectedCrash, crash, delay, drop,
    fire, installed, kill_endpoint,
)
from repro.faults.chaos import (
    CHAOS_KINDS, ChaosPlan, FaultEvent, chaos_replay,
)
from repro.faults.corruption import (
    CORRUPTION_KINDS, corruption_plan, corruption_replay,
)

__all__ = [
    "CHAOS_KINDS",
    "CORRUPTION_KINDS",
    "ChaosPlan",
    "corruption_plan",
    "corruption_replay",
    "DropMessage",
    "Fault",
    "FaultEvent",
    "FaultInjector",
    "InjectedCrash",
    "chaos_replay",
    "crash",
    "delay",
    "drop",
    "fire",
    "installed",
    "kill_endpoint",
]
