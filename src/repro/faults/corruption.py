"""Structure-aware state corruption and the corruption-replay harness.

Where :mod:`repro.faults.chaos` kills processes at unfortunate moments,
this module damages *state itself*: a flipped byte inside a snapshot, a
mutated journal payload, a shard whose in-memory table silently drifts
from what its supervisor believes.  The invariant under test is
stricter than chaos's "recovery preserves the stream":

    **loud failure or correct answers — never silently wrong.**

A corrupted file may make recovery fail (``SnapshotError``,
``JournalCorruption``) — that is a *pass*, provided the harness can
rebuild from rule zero and the delivered violation stream still matches
the fault-free sweep oracle byte-for-byte.  What must never happen is a
corrupted store loading cleanly into a session that then answers
queries from subtly wrong state; the per-op oracle diff catches exactly
that.

Fault kinds (sampled by :class:`~repro.faults.chaos.ChaosPlan` with
``kinds=CORRUPTION_KINDS``):

* ``flip_snapshot_byte`` — crash the session, XOR one bit of one byte
  anywhere in ``snapshot.bin``, recover.  The container CRCs or the
  integrity digest trailer must reject real damage; flips landing in
  slack bytes may load cleanly, and then the state must be *identical*.
* ``flip_journal_payload`` — crash, mutate one byte of the journal past
  the header record (an op payload, its length prefix or its CRC),
  recover.  Recovery must either truncate to the valid prefix (the
  harness re-applies the lost tail) or refuse loudly — never replay a
  damaged op as something else.
* ``desync_shard`` — on the parallel backend, toggle one atom's
  membership inside a shard worker's table *without* updating its
  digest: simulated memory corruption.  A full scrub pass
  (:class:`repro.integrity.Scrubber`) must detect the mismatch within
  one cycle and repair the shard by re-seed; on other backends the
  event is recorded as skipped, keeping plans portable.
"""

from __future__ import annotations

import os
import random
import time
from typing import List

from repro.faults.chaos import ChaosPlan, FaultEvent

#: Every corruption fault kind, in the order plans sample them.
CORRUPTION_KINDS = (
    "flip_snapshot_byte",   # XOR one bit of the snapshot file
    "flip_journal_payload", # XOR one bit of a journal op record
    "desync_shard",         # silently diverge one shard's table
)


def flip_byte(path: str, rng: random.Random,
              start: int = 0) -> int:
    """XOR one random bit of one byte of ``path`` at offset >= ``start``.

    Returns the flipped offset, or -1 when the file has no bytes in
    range (nothing to corrupt).
    """
    if not os.path.exists(path):
        return -1
    size = os.path.getsize(path)
    if size <= start:
        return -1
    offset = rng.randrange(start, size)
    with open(path, "rb+") as stream:
        stream.seek(offset)
        byte = stream.read(1)[0]
        stream.seek(offset)
        stream.write(bytes([byte ^ (1 << rng.randrange(8))]))
    return offset


def journal_header_end(path: str) -> int:
    """The byte offset where the journal's op records begin.

    ``flip_journal_payload`` aims past the header record so it damages
    an *op*, not the file's identity — header damage is a different
    (and already loud) failure.  Falls back to 0 for unreadable files.
    """
    from repro.persist.journal import _try_record

    try:
        with open(path, "rb") as stream:
            data = stream.read()
    except OSError:
        return 0
    end = _try_record(data, 0)
    return end if end is not None else 0


def corruption_plan(seed: int, num_ops: int, faults: int = 4) -> ChaosPlan:
    """A seed-derived schedule of corruption events over a trace."""
    return ChaosPlan.random(seed, num_ops, faults=faults,
                            kinds=CORRUPTION_KINDS)


def corruption_replay(scenario, backend: str, plan: ChaosPlan,
                      store_dir: str, checkpoint_every: int = 20,
                      **backend_options):
    """Replay ``scenario`` through ``backend`` while corrupting state.

    Same shape as :func:`repro.faults.chaos.chaos_replay`: the session
    runs over a :class:`~repro.persist.store.SessionStore` in
    ``store_dir``, the plan's events fire just before their op index,
    and the result is a :class:`~repro.scenarios.runner.BackendRun`
    whose ``delivered`` stream is diffed against the fault-free oracle.

    When a corrupted store makes recovery fail *loudly*, the harness
    rebuilds from rule zero — fresh store, fresh session, every prior
    op re-applied (overwriting its slot in the delivered stream) — and
    continues.  Data loss through a loud channel is an accepted cost;
    only a silent divergence fails the diff.
    """
    from repro.api import VerificationSession
    from repro.persist.store import SessionStore
    from repro.scenarios.runner import BackendRun

    ops = scenario.ops
    run = BackendRun(backend=backend)
    rng = random.Random(0xC0DE ^ plan.seed)
    injected: List[str] = []
    skipped: List[str] = []
    recoveries = 0
    rebuilds = 0
    repairs = 0

    last = max(0, len(ops) - 1)
    schedule = {}
    for event in plan.events:
        schedule.setdefault(min(event.op_index, last), []).append(event)
    consumed: set = set()

    session = None
    store = SessionStore(store_dir)
    start = time.perf_counter()

    def simulate_crash() -> None:
        nonlocal session
        if session is not None:
            try:
                session.close()
            except Exception:
                pass
            session = None
        store.close()

    def recover(cause: str) -> None:
        nonlocal session, store, recoveries
        store = SessionStore(store_dir)
        session, info = store.recover(**backend_options)
        recoveries += 1
        injected.append(
            f"{cause}: recovered to seq {info.sequence} "
            f"(snapshot {info.snapshot_sequence} + {info.replayed} "
            f"replayed, torn={info.torn_tail}, "
            f"corrupt_records={info.corrupt_records})")

    def rebuild(cause: str, target: int) -> None:
        """Loud recovery failure: start over from rule zero and replay
        the trace prefix — the only honest answer once the store is
        untrusted, and still stream-preserving because a fresh session
        re-derives every delivery the originals made."""
        nonlocal session, store, rebuilds
        rebuilds += 1
        for name in os.listdir(store_dir):
            try:
                os.remove(os.path.join(store_dir, name))
            except OSError:
                pass
        store = SessionStore(store_dir)
        session = VerificationSession(
            backend, width=scenario.width,
            properties=scenario.make_properties(), **backend_options)
        store.checkpoint(session)
        for index in range(target):
            result = session.apply(ops[index])
            signatures = frozenset(
                violation.signature for violation in result.violations)
            if index < len(run.delivered):
                run.delivered[index] = signatures
            else:
                run.delivered.append(signatures)
            store.record(ops[index], session.sequence)
        injected.append(f"{cause}: rebuilt from rule zero "
                        f"({target} ops re-applied)")

    def inject(event: FaultEvent) -> None:
        nonlocal repairs
        kind = event.kind
        if kind in ("flip_snapshot_byte", "flip_journal_payload"):
            target = session.sequence
            if kind == "flip_snapshot_byte":
                # Checkpoint first so recovery depends squarely on the
                # flipped snapshot, not an older intact one plus a
                # journal tail that papers over the damage.
                store.checkpoint(session)
                simulate_crash()
                path = os.path.join(store_dir, "snapshot.bin")
                offset = flip_byte(path, rng)
            else:
                # No checkpoint: the journal must still hold op records
                # (a checkpoint would rotate it empty).  The flip lands
                # past the header, inside an op record's bytes.
                simulate_crash()
                path = os.path.join(store_dir, "journal.bin")
                offset = flip_byte(path, rng,
                                   start=journal_header_end(path))
            if offset < 0:
                skipped.append(event.describe() + " [nothing to flip]")
                recover(event.describe())
                return
            try:
                recover(f"{event.describe()} @byte {offset}")
            except Exception as exc:
                # The loud path: corruption detected and refused.  Any
                # exception qualifies — the invariant is *loud or
                # correct*, and a recovery that crashes (SnapshotError,
                # JournalCorruption, or a decode error deeper in the
                # stack) is as loud as it gets.  Only a recovery that
                # *succeeds* into wrong state can fail the oracle diff.
                injected.append(f"{event.describe()} @byte {offset}: "
                                f"LOUD {type(exc).__name__}: {exc}")
                rebuild(event.describe(), target)
        elif kind == "desync_shard":
            native = getattr(session, "native", None)
            if not hasattr(native, "desync_shard"):
                skipped.append(event.describe() + " [no shard audit]")
                return
            if session.state_digest() is None:
                skipped.append(event.describe() + " [digests disabled]")
                return
            shard = event.shard % native.num_shards
            if not native.desync_shard(shard):
                skipped.append(event.describe() + " [shard empty]")
                return
            # One full scrub cycle must detect the drift and repair it
            # by re-seed; a clean report here *without* a repair means
            # the corruption went undetected — fail loudly now rather
            # than let the oracle diff catch it later.
            from repro.integrity import Scrubber

            report = Scrubber(session).run_full()
            if shard not in report.get("repaired", ()):
                raise AssertionError(
                    f"desync of shard {shard} was not detected+repaired "
                    f"by a full scrub pass: {dict(report)}")
            repairs += 1
            injected.append(f"{event.describe()}: scrub detected and "
                            f"repaired shard {shard}")
        else:
            skipped.append(event.describe() + " [unknown kind]")

    try:
        session = VerificationSession(
            backend, width=scenario.width,
            properties=scenario.make_properties(), **backend_options)
        store.checkpoint(session)
        index = 0
        while index < len(ops):
            for event in schedule.get(index, ()):
                if id(event) in consumed:
                    continue
                consumed.add(id(event))
                inject(event)
            index = session.sequence
            op = ops[index]
            result = session.apply(op)
            signatures = frozenset(
                violation.signature for violation in result.violations)
            if index < len(run.delivered):
                run.delivered[index] = signatures
            else:
                run.delivered.append(signatures)
            store.record(op, session.sequence)
            if checkpoint_every and session.sequence % checkpoint_every == 0:
                store.checkpoint(session)
            index = session.sequence
    except Exception as exc:
        run.error = f"{type(exc).__name__}: {exc}"
    finally:
        if session is not None:
            try:
                session.close()
            except Exception:
                pass
        store.close()
    run.seconds = time.perf_counter() - start
    run.chaos = {
        "plan": plan.to_state(),
        "injected": injected,
        "skipped": skipped,
        "recoveries": recoveries,
        "rebuilds": rebuilds,
        "repairs": repairs,
    }
    return run
