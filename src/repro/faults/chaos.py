"""Seed-driven chaos plans and the crash-replay harness.

A :class:`ChaosPlan` is a deterministic schedule of fault events over a
scenario's op trace: *before op 17, SIGKILL shard 2's worker; before op
40, crash inside the checkpoint rename window and recover*.  Plans are
derived from a seed, so a failing campaign is reproduced by its
``(scenario seed, chaos seed)`` pair alone.

:func:`chaos_replay` is the harness: it drives one backend session
through the trace under a :class:`~repro.persist.store.SessionStore`
(checkpointing as the daemon would), injects the plan's faults, and
recovers from every simulated crash by the production recovery path —
then hands back the per-op violation stream in the same
:class:`~repro.scenarios.runner.BackendRun` shape the differential
machinery diffs against the sweep oracle.  The invariant under test:
**faults may cost time, never correctness** — the delivered stream must
match the oracle byte-for-byte, re-deliveries included.

Two fault groups:

* *process faults* (``kill-worker``, ``kill-worker-midflight``,
  ``blackhole-pipe``, ``delay-pipe``) exercise the parallel backend's
  shard-worker supervisor; on backends without worker processes they
  are recorded as skipped, keeping plans portable.
* *durability faults* (``crash-recover``, ``torn-tail``,
  ``checkpoint-crash``) kill the whole "daemon" — the session is
  abandoned mid-trace exactly as a ``kill -9`` would leave it, the
  journal tail is optionally torn, and the run continues from whatever
  ``SessionStore.recover`` reconstructs, re-applying the lost ops.

Re-applied ops *overwrite* their slots in the delivered stream: if
recovery rebuilds dedup state exactly, the re-deliveries equal the
originals and the oracle diff stays clean — which is precisely the
property this harness exists to prove.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.faults.injector import (
    Fault, FaultInjector, InjectedCrash, crash, delay, drop, installed,
    kill_endpoint,
)

#: Every plannable fault kind, in the order plans sample them.
CHAOS_KINDS = (
    "kill-worker",            # SIGKILL an idle shard worker between ops
    "kill-worker-midflight",  # SIGKILL a worker right after a submit
    "blackhole-pipe",         # drop the next pipe message silently
    "delay-pipe",             # stall the next pipe message briefly
    "crash-recover",          # kill the daemon; recover from disk
    "torn-tail",              # tear the journal tail, then crash+recover
    "checkpoint-crash",       # die inside checkpoint's tmp+rename window
)

#: Fault points inside ``SessionStore.checkpoint`` a plan may name.
CHECKPOINT_WINDOWS = ("tmp-written", "snapshot-renamed", "journal-tmp")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: inject ``kind`` just before op ``op_index``."""

    op_index: int
    kind: str
    shard: int = 0
    #: kind-specific refinement (for ``checkpoint-crash``: which window)
    detail: Optional[str] = None

    def describe(self) -> str:
        extra = f"/{self.detail}" if self.detail else ""
        return f"op {self.op_index}: {self.kind}{extra} (shard {self.shard})"


@dataclass
class ChaosPlan:
    """A deterministic fault schedule for one trace."""

    seed: int
    events: List[FaultEvent]

    @classmethod
    def random(cls, seed: int, num_ops: int, faults: int = 4,
               kinds: Sequence[str] = CHAOS_KINDS) -> "ChaosPlan":
        """Sample ``faults`` events over ``num_ops`` ops, reproducibly."""
        rng = random.Random(0x5EED ^ seed)
        count = max(0, min(faults, num_ops))
        indices = sorted(rng.sample(range(num_ops), count)) if count else []
        events = []
        for index in indices:
            kind = rng.choice(list(kinds))
            detail = (rng.choice(list(CHECKPOINT_WINDOWS))
                      if kind == "checkpoint-crash" else None)
            events.append(FaultEvent(op_index=index, kind=kind,
                                     shard=rng.randrange(64), detail=detail))
        return cls(seed=seed, events=events)

    def describe(self) -> str:
        if not self.events:
            return f"chaos plan seed={self.seed}: no events"
        lines = [f"chaos plan seed={self.seed}: {len(self.events)} events"]
        lines.extend("  " + event.describe() for event in self.events)
        return "\n".join(lines)

    def to_state(self) -> dict:
        return {"seed": self.seed,
                "events": [[e.op_index, e.kind, e.shard, e.detail]
                           for e in self.events]}

    @classmethod
    def from_state(cls, state: dict) -> "ChaosPlan":
        return cls(seed=state["seed"],
                   events=[FaultEvent(op_index=i, kind=k, shard=s, detail=d)
                           for i, k, s, d in state["events"]])


def _tear_journal(path: str) -> bool:
    """Truncate the journal's last op record mid-bytes (a torn tail).

    Returns False when there is nothing safe to tear (no op records yet
    — tearing into the header record would be *corruption*, a different
    failure class than the torn tail recovery is specified to absorb).
    """
    from repro.persist.journal import read_journal

    if not os.path.exists(path):
        return False
    data = read_journal(path)
    if not data.records:
        return False
    with open(path, "rb+") as stream:
        stream.truncate(max(0, data.valid - 2))
    return True


def chaos_replay(scenario, backend: str, plan: ChaosPlan, store_dir: str,
                 checkpoint_every: int = 20, **backend_options):
    """Replay ``scenario`` through ``backend`` under ``plan``'s faults.

    The session runs over a :class:`~repro.persist.store.SessionStore`
    rooted at ``store_dir`` (checkpoint cadence ``checkpoint_every``
    ops) so durability faults have real on-disk state to crash against.
    Returns a :class:`~repro.scenarios.runner.BackendRun` whose
    ``delivered`` stream is diffable against the sweep oracle and whose
    ``chaos`` field records what was injected, skipped and recovered.
    """
    from repro.api import VerificationSession
    from repro.persist.store import SessionStore
    from repro.scenarios.runner import BackendRun

    ops = scenario.ops
    run = BackendRun(backend=backend)
    injector = FaultInjector()
    injected: List[str] = []
    skipped: List[str] = []
    recoveries = 0
    armed: List[tuple] = []  # (event, fault) for end-of-run accounting

    # Events keyed by the op index they precede; an event scheduled past
    # the end of the trace fires before the final op instead of never.
    last = max(0, len(ops) - 1)
    schedule: Dict[int, List[FaultEvent]] = {}
    for event in plan.events:
        schedule.setdefault(min(event.op_index, last), []).append(event)
    consumed: set = set()

    session = None
    store = SessionStore(store_dir)
    start = time.perf_counter()

    def simulate_crash() -> None:
        # The "process" dies: no final checkpoint, no journal sync —
        # just release OS resources the real kill would have reclaimed.
        nonlocal session
        if session is not None:
            try:
                session.close()
            except Exception:
                pass
            session = None
        store.close()

    def recover(cause: str):
        nonlocal session, store, recoveries
        store = SessionStore(store_dir)
        session, info = store.recover(**backend_options)
        recoveries += 1
        injected.append(
            f"{cause}: recovered to seq {info.sequence} "
            f"(snapshot {info.snapshot_sequence} + {info.replayed} "
            f"replayed, torn={info.torn_tail})")
        return info

    def inject(event: FaultEvent) -> None:
        nonlocal store
        kind = event.kind
        if kind == "crash-recover":
            simulate_crash()
            recover(event.describe())
        elif kind == "torn-tail":
            simulate_crash()
            if not _tear_journal(os.path.join(store_dir, "journal.bin")):
                skipped.append(event.describe() + " [no tail to tear]")
            recover(event.describe())
        elif kind == "checkpoint-crash":
            window = event.detail or "snapshot-renamed"
            fault = injector.arm(Fault("store.checkpoint." + window, crash))
            try:
                store.checkpoint(session)
            except InjectedCrash:
                simulate_crash()
                recover(event.describe())
            else:
                skipped.append(event.describe() + " [window not hit]")
        elif kind in ("kill-worker", "kill-worker-midflight",
                      "blackhole-pipe", "delay-pipe"):
            native = session.native
            workers = getattr(native, "_workers", None)
            if not workers or not getattr(native, "parallel", False):
                skipped.append(event.describe() + " [no worker processes]")
                return
            if kind == "kill-worker":
                endpoint = workers[event.shard % len(workers)]
                process = getattr(endpoint, "process", None)
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(timeout=5)
                    injected.append(event.describe())
                else:
                    skipped.append(event.describe() + " [worker not alive]")
            elif kind == "kill-worker-midflight":
                armed.append((event, injector.arm(
                    Fault("parallel.pipe.sent", kill_endpoint))))
            elif kind == "blackhole-pipe":
                armed.append((event, injector.arm(
                    Fault("parallel.pipe.send", drop))))
            else:  # delay-pipe: a latency blip, not a failure
                armed.append((event, injector.arm(
                    Fault("parallel.pipe.send", delay(0.05)))))
        else:
            skipped.append(event.describe() + " [unknown kind]")

    try:
        with installed(injector):
            session = VerificationSession(
                backend, width=scenario.width,
                properties=scenario.make_properties(), **backend_options)
            store.checkpoint(session)
            index = 0
            while index < len(ops):
                for event in schedule.get(index, ()):
                    if id(event) in consumed:
                        continue
                    # Consume first: recovery rewinds `index`, and a
                    # re-fired crash event would loop forever.
                    consumed.add(id(event))
                    inject(event)
                # A durability fault rewound the session: resume from
                # the first op the crash lost, not from the fault site.
                index = session.sequence
                op = ops[index]
                result = session.apply(op)
                signatures = frozenset(
                    violation.signature for violation in result.violations)
                if index < len(run.delivered):
                    run.delivered[index] = signatures
                else:
                    run.delivered.append(signatures)
                store.record(op, session.sequence)
                if checkpoint_every and session.sequence % checkpoint_every == 0:
                    store.checkpoint(session)
                # One apply advances sequence by one, so this is index+1
                # — except after a recovery, where it rewinds to the
                # first op the crash lost.
                index = session.sequence
    except (Exception, InjectedCrash) as exc:
        run.error = f"{type(exc).__name__}: {exc}"
    finally:
        if session is not None:
            try:
                session.close()
            except Exception:
                pass
        store.close()
    for event, fault in armed:
        if fault.triggered:
            injected.append(event.describe())
        else:
            skipped.append(event.describe() + " [never triggered]")
    run.seconds = time.perf_counter() - start
    run.chaos = {
        "plan": plan.to_state(),
        "injected": injected,
        "skipped": skipped,
        "recoveries": recoveries,
    }
    return run
