"""Libra-style shortest-path rule generation (paper §4.2.1).

"[W]e gather IP prefixes from ... real-world BGP updates ... and compute
the shortest paths in a network topology."  For each prefix we pick a
destination router, build the BFS shortest-path tree toward it, and emit
one forwarding rule per *other* router: match the prefix, forward to the
tree parent.  Rules get random priorities; the full dataset is all
insertions followed by removals in random order (so the operation count
is twice the rule count, as in Table 2).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bgp.prefixes import Prefix, PrefixPool
from repro.core.rules import Rule
from repro.topology.graph import Topology


class ShortestPathRuleGenerator:
    """Generates forwarding rules for prefixes over a topology."""

    def __init__(self, topology: Topology, seed: int = 3) -> None:
        if not topology.nodes:
            # An empty Topology is vacuously connected; without this
            # guard the first rules_for_prefix would die choosing a
            # destination from an empty node list.
            raise ValueError(f"{topology.name} has no nodes")
        if not topology.is_connected():
            raise ValueError(f"{topology.name} is not connected")
        self.topology = topology
        self._rng = random.Random(seed)
        self._nodes = sorted(topology.nodes, key=repr)
        self._trees: Dict[object, Dict[object, object]] = {}
        self._next_rid = 0

    def _tree(self, destination: object) -> Dict[object, object]:
        tree = self._trees.get(destination)
        if tree is None:
            tree = self.topology.shortest_path_tree(destination)
            self._trees[destination] = tree
        return tree

    def rules_for_prefix(self, prefix: Prefix,
                         destination: Optional[object] = None,
                         priority: Optional[int] = None) -> List[Rule]:
        """One rule per router along the shortest-path tree to the dest."""
        if destination is None:
            destination = self._rng.choice(self._nodes)
        lo, hi = PrefixPool.to_interval(prefix)
        rules: List[Rule] = []
        for node, parent in self._tree(destination).items():
            rule_priority = (priority if priority is not None
                             else self._rng.randint(0, 1 << 16))
            rules.append(Rule.forward(self._next_rid, lo, hi, rule_priority,
                                      node, parent))
            self._next_rid += 1
        return rules


def generate_ops(topology: Topology, prefixes: Sequence[Prefix],
                 seed: int = 3, with_removals: bool = True,
                 priority_mode: str = "random") -> List["Op"]:
    """The full §4.2.1 dataset recipe as a flat operation list.

    ``priority_mode`` is ``"random"`` (paper default for synthetic sets)
    or ``"plen"`` (longest-prefix-match priorities, as SDN-IP assigns).
    """
    # Imported here to avoid a package-level cycle: repro.datasets builds
    # on this module.
    from repro.datasets.format import Op

    if priority_mode not in ("random", "plen"):
        raise ValueError(f"unknown priority mode {priority_mode!r}")
    generator = ShortestPathRuleGenerator(topology, seed=seed)
    rng = random.Random(seed ^ 0xD5)
    all_rules: List[Rule] = []
    for prefix in prefixes:
        priority = prefix[1] if priority_mode == "plen" else None
        all_rules.extend(generator.rules_for_prefix(prefix, priority=priority))
    ops = [Op.insert(rule) for rule in all_rules]
    if with_removals:
        removal_order = list(all_rules)
        rng.shuffle(removal_order)
        ops.extend(Op.remove(rule.rid) for rule in removal_order)
    return ops
