"""Routing substrate: shortest-path forwarding-rule generation (§4.2.1).

The paper's synthetic datasets follow Libra's mechanism: gather IP
prefixes (from BGP), assign each to a destination router, and install a
rule at every router along the shortest-path tree toward that
destination.  Rules are then inserted with random priorities and removed
in random order.
"""

from repro.routing.rulegen import ShortestPathRuleGenerator, generate_ops

__all__ = ["ShortestPathRuleGenerator", "generate_ops"]
