"""Recursive memory accounting for Table 5 (Delta-net vs Veriflow-RI).

``deep_size`` walks an object graph once (cycle-safe, identity-deduped)
summing ``sys.getsizeof`` over every reachable Python object, following
containers, instance ``__dict__``s, and ``__slots__``.  Shared
substructure — e.g. persistent treap nodes shared between atoms after a
split — is counted once, which is precisely the sharing Delta-net's
design relies on.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, Set


def _slot_values(obj: Any) -> Iterable[Any]:
    for klass in type(obj).__mro__:
        for name in getattr(klass, "__slots__", ()):
            if name in ("__dict__", "__weakref__"):
                continue
            try:
                yield getattr(obj, name)
            except AttributeError:
                continue


def deep_size(root: Any) -> int:
    """Total bytes reachable from ``root`` (each object counted once)."""
    seen: Set[int] = set()
    total = 0
    stack = [root]
    while stack:
        obj = stack.pop()
        identity = id(obj)
        if identity in seen:
            continue
        seen.add(identity)
        try:
            total += sys.getsizeof(obj)
        except TypeError:
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif isinstance(obj, (str, bytes, bytearray, int, float, complex, bool)):
            continue
        else:
            instance_dict = getattr(obj, "__dict__", None)
            if instance_dict is not None:
                stack.append(instance_dict)
            stack.extend(_slot_values(obj))
    return total


def format_bytes(n: int) -> str:
    """Human-readable byte count."""
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    raise AssertionError("unreachable")
