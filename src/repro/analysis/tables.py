"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned, boxed text table."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    columns = len(headers)
    for row in text_rows:
        if len(row) != columns:
            raise ValueError(f"row has {len(row)} cells, expected {columns}")
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append(separator)
    lines.extend(format_row(row) for row in text_rows)
    return "\n".join(lines)
