"""Markdown experiment reports: paper artifact vs measured, in one file.

Used by ``benchmarks/run_experiments.py`` to regenerate the numbers
recorded in EXPERIMENTS.md.  Each section pairs the paper's reported
values with this reproduction's measurements and the shape criterion
that must hold.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


class ExperimentReport:
    """Accumulates sections and renders a single markdown document."""

    def __init__(self, title: str) -> None:
        self.title = title
        self._lines: List[str] = [f"# {title}", ""]

    def section(self, heading: str, body: str = "") -> None:
        self._lines.append(f"## {heading}")
        self._lines.append("")
        if body:
            self._lines.append(body)
            self._lines.append("")

    def paragraph(self, text: str) -> None:
        self._lines.append(text)
        self._lines.append("")

    def table(self, headers: Sequence[str], rows: Sequence[Sequence[Any]],
              caption: Optional[str] = None) -> None:
        if caption:
            self._lines.append(f"*{caption}*")
            self._lines.append("")
        header_line = "| " + " | ".join(str(h) for h in headers) + " |"
        separator = "|" + "|".join("---" for _ in headers) + "|"
        self._lines.append(header_line)
        self._lines.append(separator)
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row width {len(row)} != header width {len(headers)}")
            self._lines.append(
                "| " + " | ".join(str(cell) for cell in row) + " |")
        self._lines.append("")

    def code_block(self, text: str, language: str = "") -> None:
        self._lines.append(f"```{language}")
        self._lines.append(text.rstrip("\n"))
        self._lines.append("```")
        self._lines.append("")

    def shape_check(self, description: str, holds: bool) -> None:
        mark = "PASS" if holds else "FAIL"
        self._lines.append(f"- **[{mark}]** {description}")

    def end_checks(self) -> None:
        self._lines.append("")

    def render(self) -> str:
        return "\n".join(self._lines).rstrip("\n") + "\n"

    def save(self, path: str) -> str:
        text = self.render()
        with open(path, "w") as handle:
            handle.write(text)
        return path
