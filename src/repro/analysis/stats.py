"""Latency statistics for Table 3's rows (median / average / % below)."""

from __future__ import annotations

from typing import Dict, List, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def fraction_below(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly below ``threshold``."""
    if not samples:
        raise ValueError("no samples")
    return sum(1 for s in samples if s < threshold) / len(samples)


def summarize(samples: Sequence[float],
              threshold: float = 250e-6) -> Dict[str, float]:
    """The Table 3 row for one dataset (times in seconds).

    ``threshold`` defaults to the paper's 250 microseconds.
    """
    if not samples:
        raise ValueError("no samples")
    total = sum(samples)
    return {
        "count": len(samples),
        "total": total,
        "mean": total / len(samples),
        "median": percentile(samples, 50),
        "p99": percentile(samples, 99),
        "max": max(samples),
        "min": min(samples),
        "frac_below_threshold": fraction_below(samples, threshold),
        "threshold": threshold,
    }
