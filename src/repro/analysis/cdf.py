"""Cumulative distribution functions for Figure 8.

``cdf_points`` produces the exact empirical CDF; ``ascii_cdf`` renders
multiple series on a log-x grid, the terminal stand-in for the paper's
Figure 8 plot.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, fraction <= value)`` points."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points


def cdf_at(samples: Sequence[float], value: float) -> float:
    """Fraction of samples <= ``value``."""
    if not samples:
        raise ValueError("no samples")
    return sum(1 for s in samples if s <= value) / len(samples)


def ascii_cdf(series: Dict[str, Sequence[float]], width: int = 64,
              height: int = 16, unit: str = "s") -> str:
    """Render CDFs of several sample sets on a shared log-x axis."""
    if not series:
        raise ValueError("no series")
    positives = [s for samples in series.values() for s in samples if s > 0]
    if not positives:
        raise ValueError("all samples are zero")
    lo, hi = min(positives), max(positives)
    if lo == hi:
        hi = lo * 10
    log_lo, log_hi = math.log10(lo), math.log10(hi)
    grid = [[" "] * width for _ in range(height)]
    markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    legend: List[str] = []
    for series_index, (name, samples) in enumerate(sorted(series.items())):
        marker = markers[series_index % len(markers)]
        legend.append(f"  {marker} = {name}")
        for column in range(width):
            value = 10 ** (log_lo + (log_hi - log_lo) * column / (width - 1))
            fraction = cdf_at(samples, value)
            row = height - 1 - min(height - 1, int(fraction * (height - 1)))
            if grid[row][column] == " ":
                grid[row][column] = marker
    lines = [f"CDF (x: log10 {unit}, {lo:.2e} .. {hi:.2e})"]
    for row_index, row in enumerate(grid):
        fraction = 1 - row_index / (height - 1)
        lines.append(f"{fraction:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.extend(legend)
    return "\n".join(lines)
