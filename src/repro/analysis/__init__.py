"""Measurement analysis: latency statistics, CDFs, memory, report tables."""

from repro.analysis.stats import summarize, percentile, fraction_below
from repro.analysis.cdf import cdf_points, ascii_cdf
from repro.analysis.memory import deep_size
from repro.analysis.tables import render_table

__all__ = [
    "summarize", "percentile", "fraction_below",
    "cdf_points", "ascii_cdf",
    "deep_size",
    "render_table",
]
