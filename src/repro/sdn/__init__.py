"""An ONOS/SDN-IP-style control-plane emulation (paper §4.2.2, Figure 7).

The paper's Airtel and 4Switch datasets come from running the real ONOS
SDN-IP application over Mininet/Open vSwitch/Quagga.  None of that stack
is available offline, so this package emulates the relevant behaviour in
process (see DESIGN.md "Substitutions"):

* :mod:`repro.sdn.switch` — OpenFlow-style prioritized flow tables,
* :mod:`repro.sdn.controller` — rule installation/removal with listener
  hooks (Delta-net subscribes here, like the ``+r1, -r2, ...`` feed in
  Figure 7),
* :mod:`repro.sdn.sdnip` — converts BGP best routes into
  longest-prefix-match rules (priority = prefix length) along shortest
  paths to the egress border router, and re-routes on topology changes,
* :mod:`repro.sdn.events` — the "Event Injector": systematic single- and
  double-link failure sweeps with recovery.
"""

from repro.sdn.switch import FlowTable
from repro.sdn.controller import Controller
from repro.sdn.sdnip import SdnIp
from repro.sdn.events import EventInjector

__all__ = ["FlowTable", "Controller", "SdnIp", "EventInjector"]
