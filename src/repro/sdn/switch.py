"""OpenFlow-style switch flow tables.

A flow table holds prioritized IP-prefix rules; matching follows the
highest-priority rule covering the packet (OpenFlow leaves equal-highest-
priority matches undefined, which is why the paper assumes overlapping
rules have distinct priorities — see §3.2 footnote 2; we tie-break by
rule id for determinism).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.rules import Rule


class FlowTable:
    """The forwarding state of one switch."""

    def __init__(self, switch: object) -> None:
        self.switch = switch
        self._rules: Dict[int, Rule] = {}

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __contains__(self, rid: int) -> bool:
        return rid in self._rules

    def install(self, rule: Rule) -> None:
        if rule.source != self.switch:
            raise ValueError(
                f"rule {rule.rid} targets switch {rule.source}, not {self.switch}")
        if rule.rid in self._rules:
            raise ValueError(f"duplicate rule id {rule.rid}")
        self._rules[rule.rid] = rule

    def uninstall(self, rid: int) -> Rule:
        rule = self._rules.pop(rid, None)
        if rule is None:
            raise KeyError(f"rule {rid} not installed on {self.switch}")
        return rule

    def match(self, point: int) -> Optional[Rule]:
        """Highest-priority rule matching the destination address."""
        best: Optional[Rule] = None
        for rule in self._rules.values():
            if rule.matches(point) and (best is None or
                                        rule.sort_key > best.sort_key):
                best = rule
        return best

    def rules_sorted(self) -> List[Rule]:
        """Rules by descending priority (table-dump order)."""
        return sorted(self._rules.values(), key=lambda r: r.sort_key,
                      reverse=True)

    def __repr__(self) -> str:
        return f"FlowTable({self.switch!r}, rules={len(self)})"
