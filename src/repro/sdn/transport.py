"""An SDN controller whose rule operations travel over OpenFlow messages.

:class:`repro.sdn.controller.Controller` applies rule changes to flow
tables directly; :class:`OpenFlowController` instead emits
:class:`~repro.sdn.openflow.FlowMod` messages through an
:class:`~repro.sdn.openflow.OpenFlowFabric` and considers a change
*committed* only when the switch has processed it (barrier-confirmed) —
the realistic path of Figure 7 (ONOS -> OpenFlow -> Open vSwitch).

Verification listeners fire at commit time, so the checked operation
order is the order switches actually applied, which is what a data-plane
checker observes in practice.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.core.rules import Rule
from repro.datasets.format import Op
from repro.sdn.openflow import (
    FlowMod, FlowModCommand, FlowRemoved, OpenFlowFabric,
)
from repro.topology.graph import Topology

Listener = Callable[[Op], None]


class OpenFlowController:
    """Drop-in alternative to ``Controller`` with a message-based path.

    The public surface matches what :class:`~repro.sdn.sdnip.SdnIp`
    needs: ``topology``, ``install_forward``, ``install_drop``,
    ``uninstall``, ``subscribe``, ``num_installed``.
    """

    def __init__(self, topology: Topology, seed: int = 0,
                 reorder_window: int = 0,
                 reorder_probability: float = 0.0,
                 auto_flush: bool = True) -> None:
        self.topology = topology
        self.fabric = OpenFlowFabric(
            sorted(topology.nodes, key=repr), seed=seed,
            reorder_window=reorder_window,
            reorder_probability=reorder_probability)
        self.auto_flush = auto_flush
        self._listeners: List[Listener] = []
        self._next_rid = 0
        self._installed: Dict[int, Rule] = {}
        self._pending: Dict[int, Rule] = {}

    # -- the Controller-compatible surface --------------------------------------

    def subscribe(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def _emit(self, op: Op) -> None:
        for listener in self._listeners:
            listener(op)

    def allocate_rid(self) -> int:
        rid = self._next_rid
        self._next_rid += 1
        return rid

    def install_forward(self, source: object, target: object,
                        lo: int, hi: int, priority: int) -> Rule:
        rule = Rule.forward(self.allocate_rid(), lo, hi, priority,
                            source, target)
        self._send_add(rule, out_node=target)
        return rule

    def install_drop(self, source: object, lo: int, hi: int,
                     priority: int) -> Rule:
        rule = Rule.drop(self.allocate_rid(), lo, hi, priority, source)
        self._send_add(rule, out_node=None)
        return rule

    def uninstall(self, rid: int) -> Rule:
        rule = self._installed.get(rid) or self._pending.get(rid)
        if rule is None:
            raise KeyError(f"rule {rid} is not installed")
        self.fabric.send(rule.source, FlowMod(
            FlowModCommand.DELETE, rid, xid=self.fabric.allocate_xid()))
        if self.auto_flush:
            self.flush()
        return rule

    def _send_add(self, rule: Rule, out_node: Optional[object]) -> None:
        self._pending[rule.rid] = rule
        self.fabric.send(rule.source, FlowMod(
            FlowModCommand.ADD, rule.rid, rule.lo, rule.hi, rule.priority,
            out_node, xid=self.fabric.allocate_xid()))
        if self.auto_flush:
            self.flush()

    # -- message-plane synchronization --------------------------------------------

    def flush(self) -> None:
        """Deliver all queued FlowMods; commit and notify listeners.

        ADDs commit when the switch has them in its table; DELETEs commit
        when the switch's FlowRemoved arrives.
        """
        inbox = self.fabric.flush()
        for message in inbox:
            if isinstance(message, FlowRemoved):
                removed = self._installed.pop(message.rid, None)
                if removed is not None:
                    self._emit(Op.remove(message.rid))
        for rid, rule in list(self._pending.items()):
            if rid in self.fabric.agents[rule.source].table:
                del self._pending[rid]
                self._installed[rid] = rule
                self._emit(Op.insert(rule))

    @property
    def num_installed(self) -> int:
        return len(self._installed)

    def installed_rules(self) -> Iterator[Rule]:
        return iter(self._installed.values())

    def rule(self, rid: int) -> Optional[Rule]:
        return self._installed.get(rid)

    @property
    def switches(self) -> Dict[object, object]:
        """Flow tables by switch (compatible with Controller.switches)."""
        return {switch: agent.table
                for switch, agent in self.fabric.agents.items()}

    def __repr__(self) -> str:
        return (f"OpenFlowController(switches={len(self.fabric.agents)}, "
                f"installed={self.num_installed}, pending={len(self._pending)})")
