"""The SDN controller: rule lifecycle plus verification hooks.

Applications (SDN-IP) ask the controller to install and remove rules on
switches; every accepted change is forwarded to registered listeners as a
replayable :class:`~repro.datasets.format.Op` — this is the ``+r1, -r2``
stream that Delta-net checks in Figure 7.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.core.rules import Action, Rule
from repro.datasets.format import Op
from repro.sdn.switch import FlowTable
from repro.topology.graph import Topology

Listener = Callable[[Op], None]


class Controller:
    """Owns the switches of one SDN domain."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.switches: Dict[object, FlowTable] = {
            node: FlowTable(node) for node in topology.nodes}
        self._listeners: List[Listener] = []
        self._next_rid = 0
        self._installed: Dict[int, Rule] = {}

    # -- listeners ------------------------------------------------------------

    def subscribe(self, listener: Listener) -> None:
        """Register a data-plane-change listener (e.g. a verifier feed)."""
        self._listeners.append(listener)

    def _emit(self, op: Op) -> None:
        for listener in self._listeners:
            listener(op)

    # -- rule lifecycle ----------------------------------------------------------

    def allocate_rid(self) -> int:
        rid = self._next_rid
        self._next_rid += 1
        return rid

    def install_forward(self, source: object, target: object,
                        lo: int, hi: int, priority: int) -> Rule:
        """Install a forwarding rule; returns the created rule."""
        rule = Rule.forward(self.allocate_rid(), lo, hi, priority, source, target)
        self.switches[source].install(rule)
        self._installed[rule.rid] = rule
        self._emit(Op.insert(rule))
        return rule

    def install_drop(self, source: object, lo: int, hi: int, priority: int) -> Rule:
        rule = Rule.drop(self.allocate_rid(), lo, hi, priority, source)
        self.switches[source].install(rule)
        self._installed[rule.rid] = rule
        self._emit(Op.insert(rule))
        return rule

    def uninstall(self, rid: int) -> Rule:
        rule = self._installed.pop(rid, None)
        if rule is None:
            raise KeyError(f"rule {rid} is not installed")
        self.switches[rule.source].uninstall(rid)
        self._emit(Op.remove(rid))
        return rule

    # -- introspection ---------------------------------------------------------------

    @property
    def num_installed(self) -> int:
        return len(self._installed)

    def installed_rules(self) -> Iterator[Rule]:
        return iter(self._installed.values())

    def rule(self, rid: int) -> Optional[Rule]:
        return self._installed.get(rid)

    def __repr__(self) -> str:
        return (f"Controller(topology={self.topology.name!r}, "
                f"switches={len(self.switches)}, rules={self.num_installed})")
