"""The SDN-IP application: BGP routes in, forwarding rules out (§4.2.2).

SDN-IP "listens to iBGP messages and requests ONOS to dynamically
install IP forwarding rules such that packets destined to an external AS
arrive at the correct border router.  In doing so, SDN-IP sets the
priority of rules according to the longest prefix match where rules with
longer prefix lengths receive higher priority."

This emulation keeps, per announced prefix, one rule on every internal
switch forwarding toward the egress switch (the switch the best route's
border router attaches to), plus the egress rule handing the packet to
the external router.  Topology changes (link failures/recoveries) or
best-route changes re-diff the desired against the installed rules,
producing exactly the insert/remove churn the Airtel datasets capture.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bgp.prefixes import Prefix, PrefixPool
from repro.bgp.rib import Rib, Route, RouteChange
from repro.bgp.updates import BgpUpdate
from repro.core.rules import Rule
from repro.sdn.controller import Controller
from repro.topology.graph import Edge, Topology


class SdnIp:
    """Emulated SDN-IP: one instance per ONOS domain."""

    def __init__(self, controller: Controller,
                 peer_attachments: Dict[object, object]) -> None:
        """``peer_attachments`` maps border router -> internal switch."""
        if not peer_attachments:
            raise ValueError("SDN-IP needs at least one BGP peer")
        for peer, switch in peer_attachments.items():
            if switch not in controller.topology.nodes:
                raise ValueError(f"peer {peer!r} attaches to unknown switch {switch!r}")
        self.controller = controller
        self.peer_attachments = dict(peer_attachments)
        self.rib = Rib()
        self.failed_links: Set[frozenset] = set()
        # prefix -> switch -> (rid, next hop); the installed intent state.
        self._installed: Dict[Prefix, Dict[object, Tuple[int, object]]] = {}

    # -- BGP ingestion -------------------------------------------------------------

    def handle_update(self, update: BgpUpdate) -> None:
        """Apply one eBGP update; reprogram the data plane if best changed."""
        change = self.rib.apply(update)
        if change is not None:
            self._reprogram_prefix(change.prefix)

    def handle_updates(self, updates: Iterable[BgpUpdate]) -> None:
        for update in updates:
            self.handle_update(update)

    # -- topology events --------------------------------------------------------------

    def handle_link_failure(self, u: object, v: object) -> None:
        self.failed_links.add(frozenset((u, v)))
        self._reprogram_all()

    def handle_link_recovery(self, u: object, v: object) -> None:
        self.failed_links.discard(frozenset((u, v)))
        self._reprogram_all()

    # -- programming -------------------------------------------------------------------

    def _desired_rules(self, prefix: Prefix) -> Dict[object, object]:
        """``switch -> next hop`` for the prefix's current best route."""
        best = self.rib.best(prefix)
        if best is None:
            return {}
        egress_switch = self.peer_attachments[best.peer]
        avoid = [tuple(link) for link in self.failed_links]
        tree = self.controller.topology.shortest_path_tree(
            egress_switch, avoid_links=avoid)
        desired = dict(tree)
        desired[egress_switch] = best.peer  # hand off to the border router
        return desired

    def _reprogram_prefix(self, prefix: Prefix) -> None:
        desired = self._desired_rules(prefix)
        installed = self._installed.setdefault(prefix, {})
        lo, hi = PrefixPool.to_interval(prefix)
        priority = prefix[1]  # longest-prefix-match priority
        for switch in list(installed):
            rid, next_hop = installed[switch]
            if desired.get(switch) != next_hop:
                self.controller.uninstall(rid)
                del installed[switch]
        for switch, next_hop in desired.items():
            if switch not in installed:
                rule = self.controller.install_forward(
                    switch, next_hop, lo, hi, priority)
                installed[switch] = (rule.rid, next_hop)
        if not installed:
            del self._installed[prefix]

    def _reprogram_all(self) -> None:
        for prefix in list(self._installed):
            self._reprogram_prefix(prefix)

    # -- introspection -----------------------------------------------------------------

    @property
    def num_programmed_prefixes(self) -> int:
        return len(self._installed)

    def installed_next_hop(self, prefix: Prefix, switch: object) -> Optional[object]:
        entry = self._installed.get(prefix, {}).get(switch)
        return entry[1] if entry else None

    def __repr__(self) -> str:
        return (f"SdnIp(peers={len(self.peer_attachments)}, "
                f"prefixes={self.num_programmed_prefixes}, "
                f"failed_links={len(self.failed_links)})")
