"""A minimal OpenFlow-style southbound message layer (paper Figure 7).

The paper's setup drives sixteen OpenFlow-compliant Open vSwitches from
ONOS.  This module models the relevant slice of that protocol so the
emulation exercises a realistic controller<->switch message path instead
of direct method calls:

* :class:`FlowMod` — ADD / DELETE flow-table modifications,
* :class:`FlowRemoved` — switch-originated notification (e.g. idle
  timeout or controller-requested delete confirmation),
* :class:`PacketIn` — table-miss punt to the controller,
* :class:`SwitchAgent` — applies FlowMods to a
  :class:`~repro.sdn.switch.FlowTable` and emits replies,
* :class:`Channel` — an in-process, ordered, lossless message queue
  (per switch), with an optional deterministic reordering fault model
  for testing update-consistency hazards.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.rules import Action, Rule
from repro.sdn.switch import FlowTable


class FlowModCommand(enum.Enum):
    ADD = "add"
    DELETE = "delete"


@dataclass(frozen=True)
class FlowMod:
    """Controller -> switch: modify the flow table."""

    command: FlowModCommand
    rid: int
    # Match/action fields are only meaningful for ADD.
    lo: int = 0
    hi: int = 0
    priority: int = 0
    out_node: object = None      # next hop, or None for drop
    xid: int = 0                 # transaction id for pairing replies


@dataclass(frozen=True)
class FlowRemoved:
    """Switch -> controller: a flow entry went away."""

    rid: int
    switch: object
    xid: int = 0


@dataclass(frozen=True)
class PacketIn:
    """Switch -> controller: table miss for a destination address."""

    switch: object
    point: int


@dataclass(frozen=True)
class Barrier:
    """Controller -> switch: flush; switch replies when all prior
    messages have been applied (models OFPT_BARRIER_REQUEST)."""

    xid: int


@dataclass(frozen=True)
class BarrierReply:
    xid: int
    switch: object


class Channel:
    """Ordered in-process message queue with optional fault injection.

    ``reorder_window > 0`` lets adjacent messages swap with probability
    ``reorder_probability`` (seeded) — enough to reproduce the classic
    add-before-delete inconsistency hazards barriers exist to prevent.
    Barriers are never reordered across.
    """

    def __init__(self, seed: int = 0, reorder_window: int = 0,
                 reorder_probability: float = 0.0) -> None:
        self._queue: Deque[object] = deque()
        self._rng = random.Random(seed)
        self.reorder_window = reorder_window
        self.reorder_probability = reorder_probability

    def send(self, message: object) -> None:
        self._queue.append(message)
        if (self.reorder_window > 0 and len(self._queue) >= 2
                and not isinstance(message, Barrier)
                and not isinstance(self._queue[-2], Barrier)
                and self._rng.random() < self.reorder_probability):
            self._queue[-1], self._queue[-2] = self._queue[-2], self._queue[-1]

    def drain(self) -> List[object]:
        out = list(self._queue)
        self._queue.clear()
        return out

    def __len__(self) -> int:
        return len(self._queue)


class SwitchAgent:
    """The switch-side protocol engine."""

    def __init__(self, switch: object,
                 notify: Callable[[object], None]) -> None:
        self.switch = switch
        self.table = FlowTable(switch)
        self._notify = notify  # switch -> controller messages

    def handle(self, message: object) -> None:
        if isinstance(message, FlowMod):
            self._handle_flow_mod(message)
        elif isinstance(message, Barrier):
            self._notify(BarrierReply(xid=message.xid, switch=self.switch))
        else:
            raise TypeError(f"unexpected message {message!r}")

    def _handle_flow_mod(self, mod: FlowMod) -> None:
        if mod.command is FlowModCommand.ADD:
            if mod.out_node is None:
                rule = Rule.drop(mod.rid, mod.lo, mod.hi, mod.priority,
                                 self.switch)
            else:
                rule = Rule.forward(mod.rid, mod.lo, mod.hi, mod.priority,
                                    self.switch, mod.out_node)
            self.table.install(rule)
        elif mod.command is FlowModCommand.DELETE:
            self.table.uninstall(mod.rid)
            self._notify(FlowRemoved(rid=mod.rid, switch=self.switch,
                                     xid=mod.xid))

    def lookup(self, point: int) -> Optional[Rule]:
        """Forwarding decision; a miss punts to the controller."""
        rule = self.table.match(point)
        if rule is None:
            self._notify(PacketIn(switch=self.switch, point=point))
        return rule


class OpenFlowFabric:
    """All switches plus their control channels; the glue of Figure 7."""

    def __init__(self, switches: Iterable[object], seed: int = 0,
                 reorder_window: int = 0,
                 reorder_probability: float = 0.0) -> None:
        self.to_controller: List[object] = []
        self.agents: Dict[object, SwitchAgent] = {}
        self.channels: Dict[object, Channel] = {}
        for index, switch in enumerate(switches):
            self.agents[switch] = SwitchAgent(switch,
                                              self.to_controller.append)
            self.channels[switch] = Channel(
                seed=seed + index, reorder_window=reorder_window,
                reorder_probability=reorder_probability)
        self._next_xid = 0

    def allocate_xid(self) -> int:
        self._next_xid += 1
        return self._next_xid

    def send(self, switch: object, message: object) -> None:
        self.channels[switch].send(message)

    def flush(self, switch: object = None) -> List[object]:
        """Deliver queued messages to agents; return controller inbox."""
        targets = [switch] if switch is not None else list(self.channels)
        for target in targets:
            for message in self.channels[target].drain():
                self.agents[target].handle(message)
        # Copy-and-clear (never rebind): agents hold a reference to this
        # list's append method.
        inbox = list(self.to_controller)
        self.to_controller.clear()
        return inbox

    def install_via_barrier(self, switch: object, mods: Iterable[FlowMod]) -> List[object]:
        """Send mods followed by a barrier, then flush — the safe pattern."""
        for mod in mods:
            self.send(switch, mod)
        self.send(switch, Barrier(xid=self.allocate_xid()))
        return self.flush(switch)
