"""The Event Injector: systematic link-failure campaigns (Figure 7).

* Airtel 1: "failing a single inter-switch link at a time, recovering
  each link before failing the next one."
* Airtel 2: "all 2-pair link failures (separately failing the first link
  and then the second one), including their recovery."

Each failure/recovery triggers SDN-IP re-routing, whose rule churn the
controller's listeners record.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Tuple

from repro.sdn.sdnip import SdnIp
from repro.topology.graph import Edge


class EventInjector:
    """Drives failure campaigns against one SDN-IP instance."""

    def __init__(self, sdnip: SdnIp) -> None:
        self.sdnip = sdnip
        self.events: List[Tuple[str, Edge]] = []

    def _inter_switch_links(self) -> List[Edge]:
        """Undirected internal links (border-router attachments excluded)."""
        return self.sdnip.controller.topology.undirected_links()

    def fail(self, u: object, v: object) -> None:
        self.events.append(("fail", (u, v)))
        self.sdnip.handle_link_failure(u, v)

    def recover(self, u: object, v: object) -> None:
        self.events.append(("recover", (u, v)))
        self.sdnip.handle_link_recovery(u, v)

    def single_failure_sweep(self) -> int:
        """Airtel 1: fail and recover every link, one at a time."""
        links = self._inter_switch_links()
        for u, v in links:
            self.fail(u, v)
            self.recover(u, v)
        return len(links)

    def pair_failure_sweep(self, limit: int = None) -> int:
        """Airtel 2: every 2-link failure combination, with recovery.

        ``limit`` caps the number of pairs (the full sweep is quadratic
        in the link count); pairs are taken in deterministic order.
        """
        links = self._inter_switch_links()
        pairs = list(combinations(links, 2))
        if limit is not None:
            pairs = pairs[:limit]
        for (u1, v1), (u2, v2) in pairs:
            self.fail(u1, v1)
            self.fail(u2, v2)
            self.recover(u1, v1)
            self.recover(u2, v2)
        return len(pairs)
