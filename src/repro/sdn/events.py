"""The Event Injector: systematic link-failure campaigns (Figure 7).

* Airtel 1: "failing a single inter-switch link at a time, recovering
  each link before failing the next one."
* Airtel 2: "all 2-pair link failures (separately failing the first link
  and then the second one), including their recovery."

Each failure/recovery triggers SDN-IP re-routing, whose rule churn the
controller's listeners record.  Beyond the two systematic sweeps, the
injector drives the seeded campaigns of :mod:`repro.scenarios`: random
link flaps, correlated failure storms with staggered recovery, and
rolling per-router maintenance (fail every incident link, then restore).

Failing an already-failed link (or recovering a healthy one) is
idempotent on the data plane — SDN-IP tracks failures as a set — but
every call is still appended to ``events``, so campaign logs faithfully
record duplicate injections.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Iterator, List, Optional, Tuple

from repro.sdn.sdnip import SdnIp
from repro.topology.graph import Edge


class EventInjector:
    """Drives failure campaigns against one SDN-IP instance."""

    def __init__(self, sdnip: SdnIp) -> None:
        self.sdnip = sdnip
        self.events: List[Tuple[str, Edge]] = []

    def _inter_switch_links(self) -> List[Edge]:
        """Undirected internal links (border-router attachments excluded)."""
        return self.sdnip.controller.topology.undirected_links()

    def fail(self, u: object, v: object) -> None:
        self.events.append(("fail", (u, v)))
        self.sdnip.handle_link_failure(u, v)

    def recover(self, u: object, v: object) -> None:
        self.events.append(("recover", (u, v)))
        self.sdnip.handle_link_recovery(u, v)

    def flap(self, u: object, v: object) -> None:
        """One fail-then-recover cycle of a single link."""
        self.fail(u, v)
        self.recover(u, v)

    def random_flaps(self, count: int,
                     rng: Optional[random.Random] = None) -> int:
        """``count`` seeded random single-link flaps (scenario fuel)."""
        rng = rng or random.Random(0)
        links = self._inter_switch_links()
        if not links:
            return 0
        for _ in range(count):
            self.flap(*rng.choice(links))
        return count

    def failure_storm(self, size: int,
                      rng: Optional[random.Random] = None) -> int:
        """A correlated outage: fail ``size`` distinct links at once,
        then recover them in a random (staggered) order.

        Unlike :meth:`pair_failure_sweep`, the links stay down
        *together*, so re-routing must survive the degraded topology,
        and recovery arrives link by link — the failover-storm pattern.
        Returns the number of links actually failed (capped by the
        topology's link count).
        """
        rng = rng or random.Random(0)
        links = self._inter_switch_links()
        storm = rng.sample(links, min(size, len(links)))
        for u, v in storm:
            self.fail(u, v)
        recovery = list(storm)
        rng.shuffle(recovery)
        for u, v in recovery:
            self.recover(u, v)
        return len(storm)

    def rolling_maintenance(self, nodes: Iterator[object]) -> int:
        """Rolling per-router upgrades: for each node in turn, fail all
        its incident inter-switch links (drain), then recover them
        (return to service).  Returns the number of nodes drained."""
        drained = 0
        links = self._inter_switch_links()
        for node in nodes:
            incident = [(u, v) for u, v in links if node in (u, v)]
            if not incident:
                continue
            for u, v in incident:
                self.fail(u, v)
            for u, v in incident:
                self.recover(u, v)
            drained += 1
        return drained

    def single_failure_sweep(self) -> int:
        """Airtel 1: fail and recover every link, one at a time."""
        links = self._inter_switch_links()
        for u, v in links:
            self.fail(u, v)
            self.recover(u, v)
        return len(links)

    def pair_failure_sweep(self, limit: int = None) -> int:
        """Airtel 2: every 2-link failure combination, with recovery.

        ``limit`` caps the number of pairs (the full sweep is quadratic
        in the link count); pairs are taken in deterministic order.
        """
        links = self._inter_switch_links()
        pairs = list(combinations(links, 2))
        if limit is not None:
            pairs = pairs[:limit]
        for (u1, v1), (u2, v2) in pairs:
            self.fail(u1, v1)
            self.fail(u2, v2)
            self.recover(u1, v1)
            self.recover(u2, v2)
        return len(pairs)
