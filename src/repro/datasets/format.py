"""The dataset operation format (paper §4.2).

"To achieve reproducibility, we organize our data sets as text files in
which each line denotes an operation: an insertion or removal of a rule.
So all operations can be easily replayed."

Line grammar (tab-separated):

* insert:  ``+ <rid> <source> <target> <lo> <hi> <priority>``
* remove:  ``- <rid>``

Node names are arbitrary tokens without whitespace; ``lo``/``hi`` are the
half-closed match interval; drop rules use the literal target
``__drop__``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.core.rules import Action, DROP, Rule


@dataclass(frozen=True)
class Op:
    """One replayable operation."""

    kind: str                 # "+" | "-"
    rid: int
    rule: Optional[Rule] = None  # present for inserts

    @classmethod
    def insert(cls, rule: Rule) -> "Op":
        return cls("+", rule.rid, rule)

    @classmethod
    def remove(cls, rid: int) -> "Op":
        return cls("-", rid)

    @property
    def is_insert(self) -> bool:
        return self.kind == "+"

    def to_line(self) -> str:
        if self.is_insert:
            r = self.rule
            return f"+\t{r.rid}\t{r.source}\t{r.target}\t{r.lo}\t{r.hi}\t{r.priority}"
        return f"-\t{self.rid}"


def _parse_node(token: str) -> object:
    """Nodes round-trip as ints when they look like ints."""
    try:
        return int(token)
    except ValueError:
        return token


def parse_line(line: str) -> Op:
    parts = line.rstrip("\n").split("\t")
    if not parts or parts[0] not in ("+", "-"):
        raise ValueError(f"malformed op line: {line!r}")
    if parts[0] == "-":
        if len(parts) != 2:
            raise ValueError(f"malformed removal: {line!r}")
        return Op.remove(int(parts[1]))
    if len(parts) != 7:
        raise ValueError(f"malformed insertion: {line!r}")
    rid = int(parts[1])
    source = _parse_node(parts[2])
    target = _parse_node(parts[3])
    lo, hi, priority = int(parts[4]), int(parts[5]), int(parts[6])
    if target == DROP:
        return Op.insert(Rule.drop(rid, lo, hi, priority, source))
    return Op.insert(Rule.forward(rid, lo, hi, priority, source, target))


def write_ops(ops: Iterable[Op], stream: IO[str]) -> int:
    """Write operations to a text stream; returns the line count."""
    count = 0
    for op in ops:
        stream.write(op.to_line())
        stream.write("\n")
        count += 1
    return count


def read_ops(stream: IO[str]) -> Iterator[Op]:
    for line in stream:
        if line.strip():
            yield parse_line(line)


def save_ops(ops: Iterable[Op], path: str) -> int:
    with open(path, "w") as handle:
        return write_ops(ops, handle)


def load_ops(path: str) -> List[Op]:
    with open(path) as handle:
        return list(read_ops(handle))
