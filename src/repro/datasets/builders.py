"""Builders for the eight Table 2 datasets (scaled; see package docstring).

Synthetic datasets (Berkeley, INET, RF 1755/3257/6461) follow §4.2.1:
Route-Views-style prefixes routed along shortest paths, random rule
priorities, all insertions then removals in random order.

SDN datasets (Airtel 1/2, 4Switch) follow §4.2.2: the SDN-IP emulation
over the Airtel topology with single/double link-failure sweeps, and the
4-switch ring with large insert-only advertisement rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bgp.prefixes import PrefixPool
from repro.bgp.updates import UpdateStream
from repro.datasets.format import Op
from repro.routing.rulegen import generate_ops
from repro.sdn.controller import Controller
from repro.sdn.events import EventInjector
from repro.sdn.sdnip import SdnIp
from repro.topology import airtel, campus, four_switch
from repro.topology.generators import rocketfuel
from repro.topology.graph import Topology


@dataclass
class Dataset:
    """An operation stream plus provenance metadata."""

    name: str
    topology: Topology
    ops: List[Op]
    description: str = ""

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    @property
    def num_inserts(self) -> int:
        return sum(1 for op in self.ops if op.is_insert)

    @property
    def num_nodes(self) -> int:
        nodes = set()
        for op in self.ops:
            if op.is_insert:
                nodes.add(op.rule.source)
                nodes.add(op.rule.target)
        return len(nodes)

    @property
    def num_links(self) -> int:
        links = set()
        for op in self.ops:
            if op.is_insert:
                links.add(op.rule.link)
        return len(links)

    def stats_row(self) -> Tuple[str, int, int, int]:
        """(name, nodes, links, operations) — Table 2's columns."""
        return (self.name, self.num_nodes, self.num_links, self.num_ops)


#: Paper Table 2, for side-by-side reporting (nodes, links, operations).
PAPER_TABLE2: Dict[str, Tuple[int, int, float]] = {
    "Berkeley": (23, 252, 25.6e6),
    "INET": (316, 40770, 249.5e6),
    "RF-1755": (87, 2308, 67.5e6),
    "RF-3257": (161, 9432, 149.0e6),
    "RF-6461": (138, 8140, 150.0e6),
    "Airtel1": (68, 260, 14.2e6),
    "Airtel2": (68, 260, 505.2e6),
    "4Switch": (12, 16, 1.12e6),
}


def _synthetic(name: str, topology: Topology, n_prefixes: int,
               seed: int) -> Dataset:
    pool = PrefixPool(seed=seed)
    prefixes = pool.sample(n_prefixes)
    ops = generate_ops(topology, prefixes, seed=seed, with_removals=True,
                       priority_mode="random")
    return Dataset(
        name=name, topology=topology, ops=ops,
        description=(f"{n_prefixes} Route-Views-style prefixes routed over "
                     f"{topology.name}; inserts then random-order removals"))


def build_berkeley(scale: float = 1.0, seed: int = 101) -> Dataset:
    """Berkeley: campus topology (23 nodes)."""
    return _synthetic("Berkeley", campus(seed=seed),
                      max(4, int(120 * scale)), seed)


def build_inet(scale: float = 1.0, seed: int = 102) -> Dataset:
    """INET: the RF-1239 wide-area backbone (~316 routers)."""
    return _synthetic("INET", rocketfuel(1239, seed=seed),
                      max(2, int(40 * scale)), seed)


def build_rf(asn: int, scale: float = 1.0, seed: int = 103) -> Dataset:
    """RF 1755 / 3257 / 6461: Rocketfuel ISP backbones."""
    return _synthetic(f"RF-{asn}", rocketfuel(asn, seed=seed),
                      max(2, int(60 * scale)), seed + asn)


def _airtel_setup(prefixes_per_peer: int, seed: int) -> Tuple[Controller, SdnIp, List[Op]]:
    topology = airtel()
    controller = Controller(topology)
    ops: List[Op] = []
    controller.subscribe(ops.append)
    # One border router per switch, like the paper's per-switch Quagga peers.
    peer_attachments = {f"bgp{i}": i for i in range(topology.num_nodes)}
    for peer in peer_attachments:
        controller.topology.add_node(peer)  # attachment handled by SdnIp rules
    sdnip = SdnIp(controller, peer_attachments)
    # Re-create flow tables for the added peer nodes (egress handoff rules
    # live on internal switches only, but Topology gained peer nodes).
    stream = UpdateStream(list(peer_attachments), PrefixPool(seed=seed),
                          prefixes_per_peer=prefixes_per_peer, seed=seed)
    sdnip.handle_updates(stream.initial_announcements())
    return controller, sdnip, ops


def build_airtel1(scale: float = 1.0, seed: int = 104) -> Dataset:
    """Airtel 1: single-link failure sweep with recovery."""
    prefixes_per_peer = max(1, int(6 * scale))
    controller, sdnip, ops = _airtel_setup(prefixes_per_peer, seed)
    injector = EventInjector(sdnip)
    injector.single_failure_sweep()
    return Dataset("Airtel1", controller.topology, ops,
                   description=(f"SDN-IP over Airtel, {prefixes_per_peer} "
                                f"prefixes/peer, all 1-link failures"))


def build_airtel2(scale: float = 1.0, seed: int = 105,
                  pair_limit: Optional[int] = None) -> Dataset:
    """Airtel 2: all 2-link failure combinations with recovery."""
    prefixes_per_peer = max(1, int(4 * scale))
    controller, sdnip, ops = _airtel_setup(prefixes_per_peer, seed)
    injector = EventInjector(sdnip)
    if pair_limit is None:
        pair_limit = max(10, int(40 * scale))
    injector.pair_failure_sweep(limit=pair_limit)
    return Dataset("Airtel2", controller.topology, ops,
                   description=(f"SDN-IP over Airtel, {prefixes_per_peer} "
                                f"prefixes/peer, {pair_limit} 2-link failures"))


def build_four_switch(scale: float = 1.0, seed: int = 106,
                      rounds: int = 3) -> Dataset:
    """4Switch: insert-only advertisement rounds on a 4-switch ring."""
    topology = four_switch()
    controller = Controller(topology)
    ops: List[Op] = []
    controller.subscribe(ops.append)
    peer_attachments = {f"bgp{i}": i for i in range(4)}
    sdnip = SdnIp(controller, peer_attachments)
    prefixes_per_peer = max(1, int(40 * scale))
    for round_index in range(rounds):
        stream = UpdateStream(list(peer_attachments), PrefixPool(seed=seed + round_index),
                              prefixes_per_peer=prefixes_per_peer,
                              seed=seed + round_index)
        sdnip.handle_updates(stream.initial_announcements())
    inserts = [op for op in ops if op.is_insert]
    return Dataset("4Switch", topology, inserts,
                   description=(f"{rounds} SDN-IP advertisement rounds x "
                                f"{prefixes_per_peer} prefixes/peer; insert-only"))


DATASET_BUILDERS: Dict[str, Callable[..., Dataset]] = {
    "Berkeley": build_berkeley,
    "INET": build_inet,
    "RF-1755": lambda scale=1.0, seed=103: build_rf(1755, scale, seed),
    "RF-3257": lambda scale=1.0, seed=103: build_rf(3257, scale, seed),
    "RF-6461": lambda scale=1.0, seed=103: build_rf(6461, scale, seed),
    "Airtel1": build_airtel1,
    "Airtel2": build_airtel2,
    "4Switch": build_four_switch,
}


def build_dataset(name: str, scale: float = 1.0, **kwargs) -> Dataset:
    """Build any Table 2 dataset by name."""
    builder = DATASET_BUILDERS.get(name)
    if builder is None:
        raise ValueError(f"unknown dataset {name!r}; "
                         f"choose from {sorted(DATASET_BUILDERS)}")
    return builder(scale=scale, **kwargs)
