"""The eight evaluation datasets of Table 2, regenerated at laptop scale.

Each builder returns a :class:`~repro.datasets.builders.Dataset` — the
operation stream plus metadata — and is deterministic given its seed and
scale.  The paper's datasets total ~1.2 billion operations on a Xeon
running C++; ours default to a few thousand operations so a pure-Python
replay finishes in seconds (scales are adjustable; shapes, not absolute
op counts, are what the experiments reproduce — see DESIGN.md).

The :mod:`~repro.datasets.builders` module is loaded lazily (PEP 562):
it depends on the SDN and routing substrates, which themselves use the
dataset *format* — keeping ``repro.datasets.format`` importable without
pulling in the whole stack avoids that cycle.
"""

from repro.datasets.format import (
    Op, load_ops, parse_line, read_ops, save_ops, write_ops,
)

_BUILDER_EXPORTS = (
    "Dataset", "DATASET_BUILDERS", "PAPER_TABLE2", "build_dataset",
    "build_berkeley", "build_inet", "build_rf", "build_airtel1",
    "build_airtel2", "build_four_switch",
)

__all__ = [
    "Op", "load_ops", "parse_line", "read_ops", "save_ops", "write_ops",
    *_BUILDER_EXPORTS,
]


def __getattr__(name):
    if name in _BUILDER_EXPORTS:
        from repro.datasets import builders

        return getattr(builders, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
