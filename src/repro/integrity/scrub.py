"""Budgeted, resumable verification of a session's state digests.

A scrub *pass* re-derives the digest of the live state from scratch and
compares it with the incrementally maintained one.  Passes are split
into *steps* of at most ``entries_per_step`` hashed entries so a long
pass can interleave with request handling (the daemon runs one step per
scrub tick, under the same lock as mutations — each step is bounded, the
pass cursor survives between ticks).  A mutation between steps bumps the
session sequence and invalidates the cursor; the pass restarts rather
than comparing a digest of mixed-epoch state.

Backend dispatch is structural:

* **parallel** (``native.audit_shard``): each step audits one worker
  shard — the worker recomputes its digest from scratch and the
  supervisor compares it with the worker's incrementally maintained
  (reported) digest; a mismatch quarantines the shard and triggers
  re-seed repair (see ``ParallelShardedDeltaNet.audit_shard``).
* **native nets** (``DeltaNet`` or ``ShardedDeltaNet``): entries are
  hashed in-process against each net's live accumulators.
* **generic** (rule-set digests): a single-step pass recomputing the
  rule digest twice — a stability check only, since the generic digest
  is already derived on demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.integrity.digest import BoundaryDigest, LabelDigest


class ScrubReport(dict):
    """A completed-pass report; a plain dict with an ``ok`` property."""

    @property
    def ok(self) -> bool:
        return bool(self.get("clean"))


def _fresh_counters() -> Dict[str, int]:
    return {
        "passes": 0,        # completed full passes
        "steps": 0,         # budgeted steps executed
        "entries": 0,       # entries re-hashed across all steps
        "restarts": 0,      # passes abandoned because state mutated
        "mismatches": 0,    # digest divergences detected
        "repairs": 0,       # shards repaired via re-seed
        "escalations": 0,   # shards degraded after failed repair
    }


class Scrubber:
    """Drives scrub passes over one :class:`VerificationSession`."""

    def __init__(self, session, entries_per_step: int = 4096,
                 repair: bool = True) -> None:
        self.session = session
        self.entries_per_step = max(1, int(entries_per_step))
        self.repair = repair
        self.counters = _fresh_counters()
        self.last_report: Optional[ScrubReport] = None
        self._cursor: Optional[dict] = None

    # -- backend dispatch ------------------------------------------------------

    def _nets(self) -> Optional[List[object]]:
        native = getattr(self.session.backend, "native", None)
        if native is None:
            return None
        if hasattr(native, "audit_shard"):
            return None  # parallel: audited shard-by-shard instead
        if hasattr(native, "nets"):
            return list(native.nets)
        if hasattr(native, "recompute_state_digest"):
            return [native]
        return None

    def _parallel_native(self):
        native = getattr(self.session.backend, "native", None)
        if native is not None and hasattr(native, "audit_shard"):
            return native
        return None

    # -- the stepping engine ---------------------------------------------------

    def step(self) -> dict:
        """Run one budgeted scrub step; returns a progress dict.

        The returned dict always has ``pass_complete``; when ``True`` it
        is the full :class:`ScrubReport` for the finished pass.
        """
        self.counters["steps"] += 1
        cursor = self._cursor
        if cursor is not None and cursor["seq"] != self.session.sequence:
            self._cursor = cursor = None
            self.counters["restarts"] += 1
        if cursor is None:
            cursor = self._cursor = self._start_pass()
        if cursor["mode"] == "parallel":
            return self._step_parallel(cursor)
        if cursor["mode"] == "nets":
            return self._step_nets(cursor)
        return self._step_generic(cursor)

    def run_full(self) -> ScrubReport:
        """Run steps until the current pass completes (caller holds the
        session lock, so the sequence guard cannot trip mid-run)."""
        while True:
            progress = self.step()
            if progress.get("pass_complete"):
                return self.last_report

    def _start_pass(self) -> dict:
        seq = self.session.sequence
        native = self._parallel_native()
        if native is not None:
            return {"mode": "parallel", "seq": seq,
                    "shards": list(range(native.num_shards)), "next": 0,
                    "results": []}
        nets = self._nets()
        if nets is not None:
            return {
                "mode": "nets", "seq": seq, "nets": nets, "net_idx": 0,
                "links": None, "link_idx": 0,
                "label_acc": None, "bounds_done": False,
                "entries": 0, "mismatches": [],
            }
        return {"mode": "generic", "seq": seq}

    # -- parallel: one shard audit per step ------------------------------------

    def _step_parallel(self, cursor: dict) -> dict:
        native = self._parallel_native()
        index = cursor["shards"][cursor["next"]]
        result = native.audit_shard(index, repair=self.repair)
        cursor["results"].append(result)
        self.counters["entries"] += result.get("entries", 0)
        if not result.get("clean", False):
            self.counters["mismatches"] += 1
        if result.get("repaired"):
            self.counters["repairs"] += 1
        if result.get("escalated"):
            self.counters["escalations"] += 1
        cursor["next"] += 1
        if cursor["next"] < len(cursor["shards"]):
            return {"pass_complete": False, "shard": index,
                    "clean": result.get("clean", False)}
        results = cursor["results"]
        report = ScrubReport(
            pass_complete=True, mode="parallel", sequence=cursor["seq"],
            shards=len(results),
            entries=sum(r.get("entries", 0) for r in results),
            mismatches=[r for r in results if not r.get("clean", False)],
            repaired=[r["shard"] for r in results if r.get("repaired")],
            escalated=[r["shard"] for r in results if r.get("escalated")],
        )
        # A repaired shard ends the pass clean: its post-repair digest
        # was re-verified; only unrepaired or escalated mismatches
        # leave the state untrusted.
        report["clean"] = all(
            r.get("clean") or (r.get("repaired") and not r.get("escalated"))
            for r in results)
        return self._finish_pass(report)

    # -- in-process nets: budgeted entry iteration ------------------------------

    def _step_nets(self, cursor: dict) -> dict:
        budget = self.entries_per_step
        while budget > 0:
            if cursor["net_idx"] >= len(cursor["nets"]):
                return self._finish_nets_pass(cursor)
            net = cursor["nets"][cursor["net_idx"]]
            if cursor["links"] is None:
                cursor["links"] = list(net.findex.by_link)
                cursor["link_idx"] = 0
                cursor["label_acc"] = LabelDigest()
                cursor["bounds_done"] = False
            if cursor["link_idx"] < len(cursor["links"]):
                link = cursor["links"][cursor["link_idx"]]
                cursor["link_idx"] += 1
                runs = net.findex.by_link.get(link)
                if runs is not None:
                    cursor["label_acc"].add_runs(link, runs.runs())
                    cost = len(runs)
                    budget -= cost
                    cursor["entries"] += cost
                    self.counters["entries"] += cost
                continue
            if not cursor["bounds_done"]:
                # The boundary map is one chunk: its size is O(rules),
                # small next to the label entries.
                bounds_acc = BoundaryDigest()
                count = 0
                for bound, atom in net.atoms._map.items():
                    bounds_acc.add(bound, atom)
                    count += 1
                budget -= count
                cursor["entries"] += count
                self.counters["entries"] += count
                cursor["bounds_done"] = True
                self._compare_net(cursor, net, bounds_acc)
                continue
            cursor["net_idx"] += 1
            cursor["links"] = None
        return {"pass_complete": False, "net": cursor["net_idx"],
                "entries": cursor["entries"]}

    def _compare_net(self, cursor: dict, net, bounds_acc) -> None:
        live_label = net.findex.digest
        live_bounds = net.atoms.digest
        if live_label is None or live_bounds is None:
            return  # digests disabled: nothing incremental to audit
        if live_label.as_tuple() != cursor["label_acc"].as_tuple():
            cursor["mismatches"].append(
                {"net": cursor["net_idx"], "component": "labels"})
        if live_bounds.as_tuple() != bounds_acc.as_tuple():
            cursor["mismatches"].append(
                {"net": cursor["net_idx"], "component": "boundaries"})

    def _finish_nets_pass(self, cursor: dict) -> ScrubReport:
        self.counters["mismatches"] += len(cursor["mismatches"])
        report = ScrubReport(
            pass_complete=True, mode="nets", sequence=cursor["seq"],
            nets=len(cursor["nets"]), entries=cursor["entries"],
            mismatches=cursor["mismatches"],
            clean=not cursor["mismatches"], repaired=[], escalated=[],
        )
        return self._finish_pass(report)

    # -- generic backends: digest stability only --------------------------------

    def _step_generic(self, cursor: dict) -> dict:
        backend = self.session.backend
        digest = getattr(backend, "state_digest", lambda: None)()
        again = getattr(backend, "state_digest", lambda: None)()
        entries = len(getattr(backend, "_rules", ()) or ())
        self.counters["entries"] += entries
        mismatches = []
        if digest != again:
            mismatches.append({"component": "rules"})
            self.counters["mismatches"] += 1
        report = ScrubReport(
            pass_complete=True, mode="generic", sequence=cursor["seq"],
            entries=entries, digest=digest, mismatches=mismatches,
            clean=not mismatches, repaired=[], escalated=[],
        )
        return self._finish_pass(report)

    def _finish_pass(self, report: ScrubReport) -> ScrubReport:
        self.counters["passes"] += 1
        self.last_report = report
        self._cursor = None
        return report

    def status(self) -> dict:
        """Counters plus the last pass verdict, for ``health`` reports."""
        out = dict(self.counters)
        out["last_pass_clean"] = (
            None if self.last_report is None else self.last_report.ok)
        return out
