"""State-integrity layer: online digests, scrubbing, and repair.

Delta-net's verdicts are only as trustworthy as its incremental
``AtomTable``/``ForwardingIndex`` state — a silently diverged mirror
reports *wrong* invariants, which is strictly worse than crashing.  This
package makes state trustworthiness continuously checkable:

* :mod:`repro.integrity.digest` — order-independent incremental digests
  maintained in O(changed entries) on every label/boundary mutation,
  surfaced as ``VerificationSession.state_digest()`` on every backend and
  embedded in snapshots and journal checkpoint headers.
* :mod:`repro.integrity.scrub` — a budgeted, resumable scrubber that
  re-verifies live digests against from-scratch recomputation, and on
  the parallel backend audits each worker shard, quarantining and
  re-seeding shards whose digests diverge.
"""

from repro.integrity.digest import (
    DigestAccumulator,
    LabelDigest,
    BoundaryDigest,
    combine_digests,
    digests_enabled,
    format_digest,
    parse_digest,
    rules_digest,
)
from repro.integrity.scrub import ScrubReport, Scrubber

__all__ = [
    "DigestAccumulator",
    "LabelDigest",
    "BoundaryDigest",
    "combine_digests",
    "digests_enabled",
    "format_digest",
    "parse_digest",
    "rules_digest",
    "ScrubReport",
    "Scrubber",
]
