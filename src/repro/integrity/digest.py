"""Order-independent incremental state digests.

The digest of a structure is an *unordered multiset fingerprint* of its
entries: each entry is hashed to 64 bits and folded into two commutative
accumulators — a running ``xor`` and a running ``sum`` modulo ``2**64``
— plus an entry count.  Commutativity buys three properties the audit
layer leans on:

* **O(1) maintenance per changed entry.**  Adding an entry xors/adds its
  hash in; removing it xors the hash out and subtracts it.  No rehash of
  the untouched entries, which is what keeps the digest tax on the
  Algorithm 1/2 hot path inside the ``audit_overhead`` perf gate.
* **Representation independence.**  Two structures holding the same
  entry set digest identically no matter the mutation order that built
  them — an incrementally maintained index and its snapshot-restored
  twin agree by construction, so ``load_session`` can cross-check.
* **Shard composability.**  The digest of a sharded state is the
  componentwise combination (xor of xors, sum of sums) of the per-shard
  digests, so the parallel supervisor can audit workers independently
  and still compare a fleet-wide value against a snapshot trailer.

Entry hashes use the splitmix64 finalizer — a few arithmetic ops per
entry, far cheaper than a per-call ``blake2b`` and of ample quality for
a 128-bit (xor + sum) accumulator.  Per-link salts *are* derived via
``blake2b`` over the canonical codec encoding (process-stable, unlike
the ``PYTHONHASHSEED``-randomized builtin ``hash``), but only once per
distinct link, cached.

Digests render as strings — ``scheme:count.xor.sum[:count.xor.sum...]``
in hex — so they travel through JSON health reports, snapshot sections
and worker pipes unchanged.

Set ``DELTANET_DIGESTS=0`` to disable maintenance (the perf gate's
digest-free baseline); disabled structures carry ``digest = None`` and
sessions report ``state_digest() is None``.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_BOUND_SEED = 0x84222325CBF29CE4

#: Digest scheme tag for native delta-net state (label + boundary parts).
XORSUM_SCHEME = "xorsum1"
#: Digest scheme tag for the generic rule-set digest (single part).
RULES_SCHEME = "rules1"


def digests_enabled() -> bool:
    """Whether digest maintenance is on (checked at structure creation)."""
    return os.environ.get("DELTANET_DIGESTS", "1").strip().lower() not in (
        "0", "off", "false", "no",
    )


def mix64(x: int) -> int:
    """The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation."""
    x &= MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def hash_int(value: int) -> int:
    """Hash an arbitrary-precision int (boundaries exceed 64 bits for
    wide fields) by folding 64-bit limbs; sign rides via zigzag."""
    v = (value << 1) ^ (value >> 63) if value < 0 else (value << 1)
    h = _BOUND_SEED
    while True:
        h = mix64(h ^ (v & MASK64))
        v >>= 64
        if not v:
            return h


def hash_bytes(data: bytes) -> int:
    """A process-stable 64-bit hash of ``data`` (blake2b truncation)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big")


def link_salt(link) -> int:
    """A process-stable salt for a link's entries.

    Derived from the canonical codec encoding of ``(source, target)`` so
    every process — worker, supervisor, restore path — agrees.  Falls
    back to ``repr`` for node types the codec cannot encode (such links
    cannot be snapshotted either, so cross-process stability is moot).
    """
    from repro.persist.codec import CodecError, encode

    try:
        payload = encode((link.source, link.target))
    except (CodecError, TypeError):
        payload = repr((link.source, link.target)).encode("utf-8", "replace")
    return hash_bytes(payload)


class DigestAccumulator:
    """The commutative (count, xor, sum mod 2**64) entry accumulator."""

    __slots__ = ("count", "xor", "total")

    def __init__(self, count: int = 0, xor: int = 0, total: int = 0) -> None:
        self.count = count
        self.xor = xor
        self.total = total

    def include(self, entry_hash: int) -> None:
        self.count += 1
        self.xor ^= entry_hash
        self.total = (self.total + entry_hash) & MASK64

    def exclude(self, entry_hash: int) -> None:
        self.count -= 1
        self.xor ^= entry_hash
        self.total = (self.total - entry_hash) & MASK64

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.count, self.xor, self.total)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DigestAccumulator):
            return self.as_tuple() == other.as_tuple()
        return NotImplemented

    def __repr__(self) -> str:
        return ("DigestAccumulator(count=%d, xor=%#x, total=%#x)"
                % (self.count, self.xor, self.total))


class LabelDigest(DigestAccumulator):
    """Digest over ``(link, atom)`` label membership entries."""

    __slots__ = ("_salts",)

    def __init__(self) -> None:
        super().__init__()
        self._salts: Dict[object, int] = {}

    def _salt(self, link) -> int:
        salt = self._salts.get(link)
        if salt is None:
            salt = self._salts[link] = link_salt(link)
        return salt

    def entry_hash(self, link, atom: int) -> int:
        return mix64(self._salt(link) ^ (atom * _GOLDEN))

    def add(self, link, atom: int) -> None:
        # Inlined mix64 — this runs once per real label change on the
        # Algorithm 1/2 hot path.
        salt = self._salts.get(link)
        if salt is None:
            salt = self._salts[link] = link_salt(link)
        x = (salt ^ (atom * _GOLDEN)) & MASK64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
        h = x ^ (x >> 31)
        self.count += 1
        self.xor ^= h
        self.total = (self.total + h) & MASK64

    def remove(self, link, atom: int) -> None:
        salt = self._salts.get(link)
        if salt is None:
            salt = self._salts[link] = link_salt(link)
        x = (salt ^ (atom * _GOLDEN)) & MASK64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
        h = x ^ (x >> 31)
        self.count -= 1
        self.xor ^= h
        self.total = (self.total - h) & MASK64

    def add_runs(self, link, runs: Iterable[Tuple[int, int]]) -> None:
        """Fold a whole label bucket in (restore path): ``runs`` are
        half-open ``(start, end)`` pairs."""
        for start, end in runs:
            for atom in range(start, end):
                self.add(link, atom)


class BoundaryDigest(DigestAccumulator):
    """Digest over the atom table's ``(boundary, atom)`` map entries."""

    __slots__ = ()

    @staticmethod
    def entry_hash(bound: int, atom: int) -> int:
        return mix64(hash_int(bound) ^ (atom * _GOLDEN))

    def add(self, bound: int, atom: int) -> None:
        self.include(mix64(hash_int(bound) ^ (atom * _GOLDEN)))

    def remove(self, bound: int, atom: int) -> None:
        self.exclude(mix64(hash_int(bound) ^ (atom * _GOLDEN)))


def format_digest(scheme: str,
                  parts: Sequence[Tuple[int, int, int]]) -> str:
    """Render accumulator parts as the canonical digest string."""
    body = ":".join("%x.%x.%x" % part for part in parts)
    return f"{scheme}:{body}"


def parse_digest(text: str) -> Tuple[str, List[Tuple[int, int, int]]]:
    """Inverse of :func:`format_digest`; raises ``ValueError`` on junk."""
    pieces = text.split(":")
    if len(pieces) < 2:
        raise ValueError(f"malformed digest {text!r}")
    scheme = pieces[0]
    parts: List[Tuple[int, int, int]] = []
    for piece in pieces[1:]:
        fields = piece.split(".")
        if len(fields) != 3:
            raise ValueError(f"malformed digest part {piece!r} in {text!r}")
        count, xor, total = (int(field, 16) for field in fields)
        parts.append((count, xor, total))
    return scheme, parts


def combine_digests(texts: Iterable[str]) -> Optional[str]:
    """Componentwise combination of same-scheme digests (shard merge).

    Counts and sums add (mod 2**64 for sums), xors xor.  Returns ``None``
    for an empty input or if any element is ``None`` (digests disabled
    somewhere means no fleet-wide digest).  Mixed schemes raise.
    """
    combined: Optional[List[List[int]]] = None
    scheme = None
    for text in texts:
        if text is None:
            return None
        this_scheme, parts = parse_digest(text)
        if combined is None:
            scheme = this_scheme
            combined = [list(part) for part in parts]
            continue
        if this_scheme != scheme or len(parts) != len(combined):
            raise ValueError(
                f"cannot combine digest schemes {scheme!r} and"
                f" {this_scheme!r}")
        for slot, (count, xor, total) in zip(combined, parts):
            slot[0] += count
            slot[1] ^= xor
            slot[2] = (slot[2] + total) & MASK64
    if combined is None:
        return None
    return format_digest(scheme, [tuple(slot) for slot in combined])


def rules_digest(rule_states: Iterable[object]) -> str:
    """Order-independent digest over canonical rule encodings.

    The generic fallback for backends without native label/boundary
    structures: hashes each rule's codec encoding into one accumulator.
    Self-consistent across save/replay because backend restore replays
    the identical rule set.
    """
    from repro.persist.codec import encode

    acc = DigestAccumulator()
    for state in rule_states:
        acc.include(hash_bytes(encode(state)))
    return format_digest(RULES_SCHEME, [acc.as_tuple()])
