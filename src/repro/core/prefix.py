"""IP prefixes as half-closed intervals.

The paper (§3) models an IP prefix match as the half-closed interval of
addresses it covers: ``0.0.0.10/31 == [10 : 12)`` and ``0.0.0.0/28 ==
[0 : 16)``.  This module converts between dotted CIDR notation and
intervals for IPv4 (width 32), IPv6 (width 128), and arbitrary abstract
field widths used in tests and examples.

It also provides the inverse: covering an arbitrary interval with the
minimal list of CIDR prefixes.  This demonstrates the paper's §5 remark
that an atom such as ``[0 : 10)`` is generally *not* expressible as a
single prefix.
"""

from __future__ import annotations

from typing import List, Tuple

IPV4_WIDTH = 32
IPV6_WIDTH = 128


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    if not 0 <= value < (1 << 32):
        raise ValueError(f"IPv4 value out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv6(text: str) -> int:
    """Parse (possibly ``::``-compressed) IPv6 into a 128-bit integer."""
    if text.count("::") > 1:
        raise ValueError(f"malformed IPv6 address: {text!r}")
    if "::" in text:
        head, _, tail = text.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise ValueError(f"malformed IPv6 address: {text!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise ValueError(f"malformed IPv6 address: {text!r}")
    value = 0
    for group in groups:
        chunk = int(group or "0", 16)
        if not 0 <= chunk <= 0xFFFF:
            raise ValueError(f"group out of range in {text!r}")
        value = (value << 16) | chunk
    return value


def format_ipv6(value: int) -> str:
    if not 0 <= value < (1 << 128):
        raise ValueError(f"IPv6 value out of range: {value}")
    groups = [(value >> shift) & 0xFFFF for shift in range(112, -16, -16)]
    return ":".join(f"{g:x}" for g in groups)


def prefix_to_interval(cidr: str, width: int = IPV4_WIDTH) -> Tuple[int, int]:
    """Convert ``a.b.c.d/len`` (or IPv6, or ``int/len``) to ``(lo, hi)``.

    >>> prefix_to_interval("0.0.0.10/31")
    (10, 12)
    >>> prefix_to_interval("0.0.0.0/28")
    (0, 16)
    """
    address, _, plen_text = cidr.partition("/")
    plen = int(plen_text) if plen_text else width
    if ":" in address:
        width = IPV6_WIDTH
        value = parse_ipv6(address)
    elif "." in address:
        width = IPV4_WIDTH
        value = parse_ipv4(address)
    else:
        value = int(address)
    if not 0 <= plen <= width:
        raise ValueError(f"prefix length out of range: {cidr!r}")
    span = 1 << (width - plen)
    lo = value & ~(span - 1)
    return lo, lo + span


def make_interval(value: int, plen: int, width: int = IPV4_WIDTH) -> Tuple[int, int]:
    """Interval of the prefix whose network address is ``value``/``plen``."""
    if not 0 <= plen <= width:
        raise ValueError(f"prefix length out of range: {plen}")
    span = 1 << (width - plen)
    lo = value & ~(span - 1)
    return lo, lo + span


def format_prefix(lo: int, plen: int, width: int = IPV4_WIDTH) -> str:
    """Render an aligned interval start + prefix length as CIDR text."""
    if width == IPV4_WIDTH:
        return f"{format_ipv4(lo)}/{plen}"
    if width == IPV6_WIDTH:
        return f"{format_ipv6(lo)}/{plen}"
    return f"{lo}/{plen}"


def interval_plen(lo: int, hi: int, width: int = IPV4_WIDTH) -> int:
    """Prefix length of ``[lo : hi)``; raises ValueError if not a prefix."""
    span = hi - lo
    if span <= 0 or span & (span - 1):
        raise ValueError(f"[{lo}:{hi}) is not a power-of-two span")
    plen = width - span.bit_length() + 1
    if lo & (span - 1):
        raise ValueError(f"[{lo}:{hi}) is not aligned to its span")
    return plen


def is_prefix_interval(lo: int, hi: int) -> bool:
    """True when ``[lo : hi)`` is exactly one CIDR prefix."""
    span = hi - lo
    return span > 0 and not (span & (span - 1)) and not (lo & (span - 1))


def interval_to_prefixes(lo: int, hi: int, width: int = IPV4_WIDTH) -> List[Tuple[int, int]]:
    """Cover ``[lo : hi)`` with the minimal list of ``(value, plen)`` prefixes.

    Greedy largest-aligned-block decomposition; e.g. the atom ``[0 : 10)``
    needs two prefixes (``0/28`` would overshoot):

    >>> interval_to_prefixes(0, 10, width=4)
    [(0, 1), (8, 3)]
    """
    if not 0 <= lo < hi <= (1 << width):
        raise ValueError(f"interval [{lo}:{hi}) out of [0, 2^{width})")
    out: List[Tuple[int, int]] = []
    cursor = lo
    while cursor < hi:
        # Largest power-of-two block that starts at cursor and fits.
        align = cursor & -cursor if cursor else 1 << width
        span = align
        while span > hi - cursor:
            span >>= 1
        out.append((cursor, width - span.bit_length() + 1))
        cursor += span
    return out
