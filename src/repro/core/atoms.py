"""The atom table: Delta-net's dynamically refined abstract domain (§3.1).

Atoms are the disjoint half-closed intervals induced by the lower/upper
bounds of every rule's IP prefix.  They are maintained in an ordered map
``M`` from boundary value to atom identifier: the pair ``n -> alpha`` means
atom ``alpha`` is the interval ``[n : n')`` where ``n'`` is the next
greater key in ``M``.

Identifiers are consecutive integers starting at zero, which lets edge
labels be plain sets (or bitmasks) of small ints.  ``M`` is seeded with
``MIN -> alpha_0`` and ``MAX -> alpha_inf`` where :data:`ATOM_INF` is a
sentinel that never participates in labels.

``create_atoms`` implements ``CREATE_ATOMS+`` from Algorithm 1: it inserts
the (at most two) missing boundaries of a new rule and returns the list of
*delta pairs* ``(alpha, alpha')`` — each meaning the interval previously
represented by ``alpha`` alone is now split between ``alpha`` and the new
atom ``alpha'``.

The optional garbage collector implements the §3.2.2 remark: when the last
rule with a bound at value ``b`` is removed, the atom starting at ``b`` can
be merged back into its predecessor and its identifier recycled.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.integrity.digest import BoundaryDigest, digests_enabled
from repro.structures.treap import TreapMap

#: Sentinel identifier for the greatest atom (paper's alpha-infinity).
ATOM_INF = -1


class AtomTable:
    """Maintains the ordered boundary map ``M`` and atom identities."""

    def __init__(self, width: int = 32, seed: int = 0x5EED) -> None:
        if width <= 0:
            raise ValueError(f"field width must be positive, got {width}")
        self.width = width
        self.min = 0
        self.max = 1 << width
        self._map = TreapMap(seed=seed)
        self._map.insert(self.min, 0)
        self._map.insert(self.max, ATOM_INF)
        #: Incremental ``(boundary, atom)`` digest over ``M`` (sentinels
        #: included); ``None`` when ``DELTANET_DIGESTS=0``.
        self.digest = BoundaryDigest() if digests_enabled() else None
        if self.digest is not None:
            self.digest.add(self.min, 0)
            self.digest.add(self.max, ATOM_INF)
        self._start: List[int] = [self.min]  # atom id -> start boundary
        self._free: List[int] = []           # recycled ids (GC mode)
        self._bound_refs: Dict[int, int] = {}  # boundary -> #rules using it

    # -- basic accessors -----------------------------------------------------

    @property
    def num_atoms(self) -> int:
        """Number of live atoms (size of ``M`` minus the MAX sentinel)."""
        return len(self._map) - 1

    @property
    def num_ids_allocated(self) -> int:
        """Total identifiers ever allocated (dense upper bound for arrays)."""
        return len(self._start)

    def atom_interval(self, atom: int) -> Tuple[int, int]:
        """The half-closed interval currently denoted by ``atom``."""
        start = self._start[atom]
        if self._map.get(start) != atom:
            raise KeyError(f"atom {atom} is dead")
        return start, self._map.succ_key(start)

    def atom_at(self, point: int) -> int:
        """Identifier of the atom containing ``point``."""
        if not self.min <= point < self.max:
            raise ValueError(f"point {point} outside [{self.min}, {self.max})")
        _key, atom = self._map.floor_item(point)
        return atom

    def atoms_in(self, lo: int, hi: int) -> Iterator[int]:
        """Atoms collectively representing ``[lo : hi)``.

        ``lo`` and ``hi`` must already be boundaries in ``M`` (i.e. after
        ``create_atoms(lo, hi)``); this is exactly ``[[interval(r)]]``.
        """
        for _key, atom in self._map.iritems(lo, hi):
            yield atom

    def atoms_in_list(self, lo: int, hi: int) -> List[int]:
        """:meth:`atoms_in` materialized eagerly (the hot-path variant)."""
        return self._map.range_values(lo, hi)

    def overlapping(self, lo: int, hi: int) -> Iterator[int]:
        """All atoms whose interval intersects ``[lo : hi)``.

        Unlike :meth:`atoms_in`, the bounds need not be existing
        boundaries: the atom containing ``lo`` is included even when its
        start lies below ``lo``.
        """
        if not self.min <= lo < hi <= self.max:
            raise ValueError(f"interval [{lo}:{hi}) out of range")
        start = self._map.floor_key(lo)
        for _key, atom in self._map.iritems(start, hi):
            yield atom

    def intervals(self) -> Iterator[Tuple[int, Tuple[int, int]]]:
        """All live ``(atom, (lo, hi))`` pairs in ascending interval order."""
        items = list(self._map.items())
        for (lo, atom), (hi, _next_atom) in zip(items, items[1:]):
            yield atom, (lo, hi)

    def boundaries(self) -> List[int]:
        return list(self._map.keys())

    # -- CREATE_ATOMS+ (Algorithm 1, line 2) ----------------------------------

    def peek_splits(self, lo: int, hi: int) -> List[Tuple[int, Tuple[int, int]]]:
        """Preview which atoms ``create_atoms(lo, hi)`` would split.

        Returns ``(atom, (atom_lo, atom_hi))`` for each existing atom a new
        boundary would fall inside, *without* mutating the table.  Useful
        for inspection; unlike :meth:`create_atoms` it is safe to call on
        a table owned by a live :class:`~repro.core.deltanet.DeltaNet`.
        """
        if not self.min <= lo < hi <= self.max:
            raise ValueError(
                f"interval [{lo}:{hi}) outside [{self.min}, {self.max})")
        splits: List[Tuple[int, Tuple[int, int]]] = []
        for bound in (lo, hi):
            if bound not in self._map:
                _key, atom = self._map.floor_item(bound)
                splits.append((atom, self.atom_interval(atom)))
        return splits

    def create_atoms(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Insert missing boundaries for ``[lo : hi)``; return delta pairs.

        Each returned pair ``(alpha, alpha')`` records that existing atom
        ``alpha`` was split and the upper part is the fresh atom ``alpha'``.
        At most two pairs are returned (|delta| <= 2, paper §3.2.1).

        .. warning:: When the table is owned by a live
           :class:`~repro.core.deltanet.DeltaNet`, never call this
           directly — rule insertion keeps the owner/label structures in
           sync with splits.  Use :meth:`peek_splits` to inspect instead.
        """
        if not self.min <= lo < hi <= self.max:
            raise ValueError(
                f"interval [{lo}:{hi}) outside [{self.min}, {self.max})")
        delta: List[Tuple[int, int]] = []
        for bound in (lo, hi):
            found, old_atom = self._map.floor_item(bound)
            if found == bound:
                continue
            new_atom = self._alloc(bound)
            self._map.insert(bound, new_atom)
            if self.digest is not None:
                self.digest.add(bound, new_atom)
            delta.append((old_atom, new_atom))
        return delta

    def create_atoms_many(self, intervals: Iterable[Tuple[int, int]]
                          ) -> List[Tuple[int, int]]:
        """``CREATE_ATOMS+`` for a whole batch of rule intervals.

        One deduplicated pass over the batch's boundaries: each distinct
        missing boundary costs a single ordered-map probe + insert, no
        matter how many rules of the batch share it.  Identifiers are
        allocated in first-encounter order, so the resulting atom ids are
        exactly those sequential :meth:`create_atoms` calls would have
        produced.  Returns the concatenated delta pairs in creation order.

        .. warning:: Same caveat as :meth:`create_atoms` — on a table
           owned by a live DeltaNet, only
           :meth:`~repro.core.deltanet.DeltaNet.apply_batch` may call
           this.
        """
        amin, amax = self.min, self.max
        table = self._map
        floor_item = table.floor_item
        table_insert = table.insert
        digest = self.digest
        delta: List[Tuple[int, int]] = []
        seen = set()
        for lo, hi in intervals:
            if not amin <= lo < hi <= amax:
                raise ValueError(
                    f"interval [{lo}:{hi}) outside [{amin}, {amax})")
            for bound in (lo, hi):
                if bound in seen:
                    continue
                seen.add(bound)
                found, old_atom = floor_item(bound)
                if found == bound:
                    continue
                new_atom = self._alloc(bound)
                table_insert(bound, new_atom)
                if digest is not None:
                    digest.add(bound, new_atom)
                delta.append((old_atom, new_atom))
        return delta

    def _alloc(self, start: int) -> int:
        if self._free:
            atom = self._free.pop()
            self._start[atom] = start
            return atom
        atom = len(self._start)
        self._start.append(start)
        return atom

    # -- reference counting & garbage collection (§3.2.2 remark) --------------

    def ref_bounds(self, lo: int, hi: int) -> None:
        """Record that a rule with interval ``[lo : hi)`` now exists."""
        for bound in (lo, hi):
            self._bound_refs[bound] = self._bound_refs.get(bound, 0) + 1

    def unref_bounds(self, lo: int, hi: int) -> List[int]:
        """Drop a rule's boundary references; return now-unused boundaries.

        A returned boundary is one no remaining rule starts or ends at
        (``MIN``/``MAX`` are never returned).  The caller decides whether
        to actually collect the corresponding atoms via :meth:`collect`.
        """
        dead: List[int] = []
        for bound in (lo, hi):
            count = self._bound_refs.get(bound, 0) - 1
            if count > 0:
                self._bound_refs[bound] = count
            else:
                self._bound_refs.pop(bound, None)
                if bound not in (self.min, self.max):
                    dead.append(bound)
        return dead

    def collect(self, bound: int) -> Tuple[int, int]:
        """Remove boundary ``bound``, merging its atom into the predecessor.

        Returns ``(dead_atom, surviving_atom)``.  The caller must erase
        ``dead_atom`` from all labels/owner structures *before* calling
        (see :meth:`repro.core.deltanet.DeltaNet._collect_atom`).
        """
        atom = self._map.get(bound)
        if atom is None or bound in (self.min, self.max):
            raise KeyError(f"boundary {bound} not collectable")
        prev_key = self._map.floor_key(bound - 1)
        survivor = self._map[prev_key]
        self._map.remove(bound)
        if self.digest is not None:
            self.digest.remove(bound, atom)
        self._free.append(atom)
        return atom, survivor

    def copy(self) -> "AtomTable":
        """An independent copy in O(boundaries) — the speculative-fork path.

        The boundary treap is copied structurally (shape and future
        priority draws match, so a committed speculation replays into
        identical atom ids), allocation and GC bookkeeping are
        duplicated, and the incremental digest's accumulator rides along
        when enabled.  Far cheaper than :meth:`from_state`, which
        re-inserts every boundary.
        """
        dup = AtomTable.__new__(AtomTable)
        dup.width = self.width
        dup.min = self.min
        dup.max = self.max
        dup._map = self._map.copy()
        if self.digest is None:
            dup.digest = None
        else:
            dup.digest = BoundaryDigest()
            dup.digest.count = self.digest.count
            dup.digest.xor = self.digest.xor
            dup.digest.total = self.digest.total
        dup._start = list(self._start)
        dup._free = list(self._free)
        dup._bound_refs = dict(self._bound_refs)
        return dup

    def recompute_digest(self) -> BoundaryDigest:
        """A from-scratch :class:`BoundaryDigest` of ``M`` (scrub
        reference), independent of the incremental :attr:`digest`."""
        fresh = BoundaryDigest()
        for bound, atom in self._map.items():
            fresh.add(bound, atom)
        return fresh

    # -- persistence (see repro.persist) ---------------------------------------

    def state_dict(self) -> dict:
        """The table's full state as deterministic plain data.

        Boundaries are emitted in ascending order, the free-id stack in
        stack order (so restored id recycling matches exactly), and the
        priority PRNG's state rides along so future treap shapes match
        the original instance.
        """
        return {
            "width": self.width,
            "boundaries": [(bound, atom) for bound, atom in self._map.items()],
            "allocated": len(self._start),
            "free": list(self._free),
            "bound_refs": sorted(self._bound_refs.items()),
            "rng": self._map.rng_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "AtomTable":
        """Rebuild a table; exact inverse of :meth:`state_dict`.

        The boundary treap is re-inserted in sorted order (its *shape*
        is an implementation detail; queries depend only on the ordered
        content), then the PRNG state is restored so later shapes match.
        """
        table = cls(width=state["width"])
        starts = [table.min] * state["allocated"]
        for bound, atom in state["boundaries"]:
            if bound == table.min or bound == table.max:
                continue  # the constructor seeded MIN/MAX already
            table._map.insert(bound, atom)
            if table.digest is not None:
                table.digest.add(bound, atom)
            starts[atom] = bound
        table._start = starts
        table._free = list(state["free"])
        table._bound_refs = {bound: count
                             for bound, count in state["bound_refs"]}
        table._map.set_rng_state(tuple(state["rng"]))
        return table

    def __repr__(self) -> str:
        return (f"AtomTable(width={self.width}, atoms={self.num_atoms}, "
                f"allocated={self.num_ids_allocated})")
