"""Forwarding rules, links, and actions.

A rule (paper §3.2) carries:

* ``interval`` — the half-closed interval of its IP-prefix match,
* ``priority`` — rules in the same table with overlapping prefixes have
  pair-wise distinct priorities; longest-prefix matching is simulated by
  using the prefix length as the priority (as SDN-IP does, §4.2.2),
* ``link`` — a directed edge of the edge-labelled graph; ``source(r)`` is
  the node the link leaves from.  A *drop* rule's link points at the
  distinguished :data:`DROP` sink so dropped traffic is still represented
  in the graph (and trivially excluded from loop/reachability traversals).
"""

from __future__ import annotations

import enum
from typing import Container, Iterable, NamedTuple, Optional, Set, Tuple

from repro.core.prefix import format_prefix, interval_plen, is_prefix_interval

#: Distinguished graph sink for dropped packets.
DROP = "__drop__"


def canonical_rotation(nodes: Iterable[object]) -> Tuple[object, ...]:
    """Rotate a cycle of graph nodes to a canonical start, for dedup.

    The pivot orders by ``(repr, id)``: ``repr`` alone is ambiguous when
    two distinct nodes share a repr, and an ambiguous pivot would
    canonicalize two rotations of the same cycle differently.  The
    ``id`` tiebreak makes the pivot unique per node object, so equality
    of canonical cycles is exact within a process.  Shared by
    ``Loop.canonical`` (checker layer) and ``canonical_cycle`` (session
    layer) so the two dedup schemes cannot drift.
    """
    ordered = list(nodes)
    pivot = min(range(len(ordered)),
                key=lambda i: (repr(ordered[i]), id(ordered[i])))
    return tuple(ordered[pivot:] + ordered[:pivot])


def validate_batch_ops(inserts: Iterable["Rule"], removals: Iterable[int],
                       known_rids: Container[int], width: int) -> Set[int]:
    """Up-front validation shared by every batched update entry point.

    Checks, before any state changes: each removal id is known (in
    ``known_rids``) and not removed twice; each insert id is unique
    within the batch and not already installed (unless the same batch
    removes it first — removals run first in batch order); each insert
    interval fits the ``width``-bit header space.  Returns the removal
    id set.  Used by ``DeltaNet.apply_batch``, ``ShardRouter.
    route_batch`` and ``BackendAdapter.apply_batch`` so a rejected batch
    fails identically everywhere and leaves no trace.
    """
    removal_set: Set[int] = set()
    for rid in removals:
        if rid in removal_set:
            raise KeyError(f"duplicate removal of rule id {rid}")
        if rid not in known_rids:
            raise KeyError(f"unknown rule id {rid}")
        removal_set.add(rid)
    space = 1 << width
    insert_rids: Set[int] = set()
    for rule in inserts:
        if rule.rid in insert_rids or (
                rule.rid in known_rids and rule.rid not in removal_set):
            raise ValueError(f"duplicate rule id {rule.rid}")
        insert_rids.add(rule.rid)
        if not 0 <= rule.lo < rule.hi <= space:
            raise ValueError(
                f"rule {rule.rid} interval [{rule.lo}:{rule.hi}) outside "
                f"the {width}-bit header space")
    return removal_set


class Action(enum.Enum):
    FORWARD = "forward"
    DROP = "drop"


class Link(NamedTuple):
    """A directed edge ``source -> target`` in the edge-labelled graph."""

    source: object
    target: object

    def __repr__(self) -> str:
        return f"{self.source}->{self.target}"


class Rule:
    """An IP-prefix forwarding rule.

    ``rid`` is a unique integer identifier used for removal and for
    tie-breaking rules with equal priority in the owner BSTs.
    """

    __slots__ = ("rid", "lo", "hi", "priority", "link", "action")

    def __init__(self, rid: int, lo: int, hi: int, priority: int,
                 link: Link, action: Action = Action.FORWARD) -> None:
        if lo >= hi:
            raise ValueError(f"rule {rid}: empty interval [{lo}:{hi})")
        if priority < 0:
            raise ValueError(f"rule {rid}: negative priority {priority}")
        self.rid = rid
        self.lo = lo
        self.hi = hi
        self.priority = priority
        self.link = link if isinstance(link, Link) else Link(*link)
        self.action = action

    @classmethod
    def forward(cls, rid: int, lo: int, hi: int, priority: int,
                source: object, target: object) -> "Rule":
        return cls(rid, lo, hi, priority, Link(source, target), Action.FORWARD)

    @classmethod
    def drop(cls, rid: int, lo: int, hi: int, priority: int, source: object) -> "Rule":
        return cls(rid, lo, hi, priority, Link(source, DROP), Action.DROP)

    @property
    def source(self) -> object:
        """The switch (graph node) this rule is installed on."""
        return self.link.source

    @property
    def target(self) -> object:
        return self.link.target

    @property
    def interval(self) -> Tuple[int, int]:
        return self.lo, self.hi

    @property
    def sort_key(self) -> Tuple[int, int]:
        """Total order inside an owner BST: priority, then rule id."""
        return self.priority, self.rid

    def matches(self, point: int) -> bool:
        return self.lo <= point < self.hi

    def overlaps(self, other: "Rule") -> bool:
        return self.lo < other.hi and other.lo < self.hi

    def prefix_text(self, width: int = 32) -> Optional[str]:
        """CIDR form of the match, or None if not a single prefix."""
        if not is_prefix_interval(self.lo, self.hi):
            return None
        return format_prefix(self.lo, interval_plen(self.lo, self.hi, width), width)

    def to_state(self) -> Tuple:
        """Plain-data form for snapshots/journals (see ``repro.persist``)."""
        return (self.rid, self.lo, self.hi, self.priority,
                self.source, self.target, self.action.value)

    @classmethod
    def from_state(cls, state: Tuple) -> "Rule":
        rid, lo, hi, priority, source, target, action = state
        if action == Action.DROP.value:
            return cls.drop(rid, lo, hi, priority, source)
        return cls.forward(rid, lo, hi, priority, source, target)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Rule) and self.rid == other.rid

    def __hash__(self) -> int:
        return hash(self.rid)

    def __repr__(self) -> str:
        kind = "drop" if self.action is Action.DROP else "fwd"
        return (f"Rule(#{self.rid} [{self.lo}:{self.hi}) prio={self.priority} "
                f"{kind} {self.link})")
