"""Naive two-field multi-range verification (paper §6, future work).

"Since a naive implementation of Delta-net is exponential in the number
of range-based packet header fields (as is Veriflow's), it would be
interesting to guide further developments into multi-range support in
higher dimensions using the 'overlapping degree' among rules."

This module *is* that naive implementation, for two range fields (e.g.
source and destination address).  It keeps one
:class:`~repro.core.atoms.AtomTable` per dimension and labels links with
sets of **atom pairs** ``(a0, a1)``.  The cross-product is exactly where
the exponential cost lives: a dimension-0 split must replicate state for
every dimension-1 atom paired with it.  :meth:`TwoFieldDeltaNet.
overlap_degree` exposes the paper's suggested metric for studying it.

Semantics are validated against a brute-force 2-D oracle in the tests;
the ablation benchmark measures pair-atom growth against the
single-field verifier's.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.atoms import AtomTable
from repro.core.rules import Action, DROP, Link

Pair = Tuple[int, int]


class Rule2D:
    """A rule matching two half-closed ranges (one per field)."""

    __slots__ = ("rid", "ranges", "priority", "link", "action")

    def __init__(self, rid: int, range0: Tuple[int, int],
                 range1: Tuple[int, int], priority: int, link: Link,
                 action: Action = Action.FORWARD) -> None:
        for lo, hi in (range0, range1):
            if lo >= hi:
                raise ValueError(f"rule {rid}: empty range [{lo}:{hi})")
        self.rid = rid
        self.ranges = (range0, range1)
        self.priority = priority
        self.link = link if isinstance(link, Link) else Link(*link)
        self.action = action

    @property
    def source(self) -> object:
        return self.link.source

    @property
    def sort_key(self) -> Tuple[int, int]:
        return (self.priority, self.rid)

    def matches(self, point0: int, point1: int) -> bool:
        (lo0, hi0), (lo1, hi1) = self.ranges
        return lo0 <= point0 < hi0 and lo1 <= point1 < hi1

    def __repr__(self) -> str:
        return (f"Rule2D(#{self.rid} {self.ranges[0]}x{self.ranges[1]} "
                f"prio={self.priority} {self.link})")


class TwoFieldDeltaNet:
    """Delta-net lifted to two range fields via pair atoms (naive)."""

    def __init__(self, widths: Tuple[int, int] = (16, 16)) -> None:
        self.widths = widths
        self.tables = (AtomTable(width=widths[0]),
                       AtomTable(width=widths[1], seed=0xBEEF))
        self.label: Dict[Link, Set[Pair]] = {}
        self.rules: Dict[int, Rule2D] = {}
        # owner maps a pair atom + source to the rules covering it,
        # kept as plain dicts (the naive formulation; no persistence).
        self._owner: Dict[Pair, Dict[object, List[Rule2D]]] = {}

    @property
    def num_pair_atoms(self) -> int:
        """Live pair atoms with at least one owning rule."""
        return len(self._owner)

    @property
    def num_axis_atoms(self) -> Tuple[int, int]:
        return (self.tables[0].num_atoms, self.tables[1].num_atoms)

    def _pairs_of(self, rule: Rule2D) -> Iterator[Pair]:
        (lo0, hi0), (lo1, hi1) = rule.ranges
        atoms1 = list(self.tables[1].atoms_in(lo1, hi1))
        for a0 in self.tables[0].atoms_in(lo0, hi0):
            for a1 in atoms1:
                yield (a0, a1)

    # -- rule lifecycle ----------------------------------------------------------

    def insert_rule(self, rule: Rule2D) -> None:
        if rule.rid in self.rules:
            raise ValueError(f"duplicate rule id {rule.rid}")
        self.rules[rule.rid] = rule
        for dim in (0, 1):
            lo, hi = rule.ranges[dim]
            for old_atom, new_atom in self.tables[dim].create_atoms(lo, hi):
                self._split_dimension(dim, old_atom, new_atom)
        for pair in self._pairs_of(rule):
            owners = self._owner.setdefault(pair, {})
            bucket = owners.setdefault(rule.source, [])
            previous = max(bucket, key=lambda r: r.sort_key) if bucket else None
            if previous is None or previous.sort_key < rule.sort_key:
                if previous is not None and previous.link != rule.link:
                    self._label_discard(previous.link, pair)
                if previous is None or previous.link != rule.link:
                    self._label_add(rule.link, pair)
            bucket.append(rule)

    def remove_rule(self, rid: int) -> None:
        rule = self.rules.pop(rid, None)
        if rule is None:
            raise KeyError(f"unknown rule id {rid}")
        for pair in self._pairs_of(rule):
            owners = self._owner.get(pair, {})
            bucket = owners.get(rule.source, [])
            previous = max(bucket, key=lambda r: r.sort_key)
            bucket.remove(rule)
            if previous.rid == rid:
                successor = (max(bucket, key=lambda r: r.sort_key)
                             if bucket else None)
                if successor is None or successor.link != rule.link:
                    self._label_discard(rule.link, pair)
                    if successor is not None:
                        self._label_add(successor.link, pair)
            if not bucket:
                del owners[rule.source]
                if not owners:
                    self._owner.pop(pair, None)

    def _split_dimension(self, dim: int, old_atom: int, new_atom: int) -> None:
        """Replicate pair state — the naive exponential step.

        Every pair containing ``old_atom`` on axis ``dim`` spawns the
        corresponding pair with ``new_atom``, copying owners and labels.
        """
        spawned: List[Tuple[Pair, Pair]] = []
        for pair in list(self._owner):
            if pair[dim] != old_atom:
                continue
            twin = ((new_atom, pair[1]) if dim == 0 else (pair[0], new_atom))
            spawned.append((pair, twin))
        for pair, twin in spawned:
            self._owner[twin] = {source: list(bucket) for source, bucket
                                 in self._owner[pair].items()}
            for owners in (self._owner[pair],):
                for source, bucket in owners.items():
                    best = max(bucket, key=lambda r: r.sort_key)
                    self._label_add(best.link, twin)

    def _label_add(self, link: Link, pair: Pair) -> None:
        self.label.setdefault(link, set()).add(pair)

    def _label_discard(self, link: Link, pair: Pair) -> None:
        bucket = self.label.get(link)
        if bucket is not None:
            bucket.discard(pair)
            if not bucket:
                del self.label[link]

    # -- queries -------------------------------------------------------------------

    def flows_on(self, link) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
        """Carried packet space as a list of (range0, range1) boxes."""
        if not isinstance(link, Link):
            link = Link(*link)
        boxes = []
        for a0, a1 in sorted(self.label.get(link, ())):
            boxes.append((self.tables[0].atom_interval(a0),
                          self.tables[1].atom_interval(a1)))
        return boxes

    def owner_rule_at(self, source: object, point0: int,
                      point1: int) -> Optional[Rule2D]:
        pair = (self.tables[0].atom_at(point0), self.tables[1].atom_at(point1))
        bucket = self._owner.get(pair, {}).get(source)
        if not bucket:
            return None
        return max(bucket, key=lambda r: r.sort_key)

    def overlap_degree(self) -> float:
        """The paper's suggested metric: mean #rules covering a pair atom.

        High overlap degree is what makes the naive cross-product blow
        up; the §6 research direction is to exploit low degrees.
        """
        if not self._owner:
            return 0.0
        total = sum(len(bucket) for owners in self._owner.values()
                    for bucket in owners.values())
        return total / len(self._owner)

    def __repr__(self) -> str:
        return (f"TwoFieldDeltaNet(rules={len(self.rules)}, "
                f"axis_atoms={self.num_axis_atoms}, "
                f"pair_atoms={self.num_pair_atoms})")
