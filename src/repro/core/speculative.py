"""Copy-on-write speculative Delta-net children (ROADMAP item 4).

:meth:`SpeculativeDeltaNet.from_parent` forks a what-if child in
O(boundaries + links + nodes + rules) *pointer* copies — no owner-treap
rebuild and no label duplication — so k candidate rule changes can be
evaluated concurrently against shared state and then committed (by
replaying the child's buffered ops on the parent) or discarded outright:

* the persistent per-``(atom, source)`` owner treaps
  (:mod:`repro.structures.ptreap`) are shared with the parent as-is —
  path copying makes their roots immutable, so sharing is free; only
  the per-atom ``source -> root`` dicts (which the sweeps mutate in
  place) are copied, lazily, the first time the child touches an atom,
* edge labels (:class:`~repro.structures.atomruns.AtomRuns`) are shared
  until the child's first write to that label; the write copies the
  runs (O(runs)) and installs the copy in *both* index views, keeping
  the shared-object invariant ``ForwardingIndex.check_consistency``
  asserts,
* the boundary treap is copied structurally (it is rebalanced in place,
  so roots cannot be shared) — O(boundaries), far below the one treap
  insert per (rule, atom) pair a clone via ``DeltaNet.from_state`` pays.

A child is only coherent while its parent stays unchanged (the shared
labels would otherwise drift silently), so the parent's ``mutations``
counter is recorded at fork time and every child update re-checks it,
raising :class:`StaleSpeculationError` on divergence.  Children never
maintain the label digest (their state is ephemeral by definition); the
boundary digest rides along because the atom-table copy is generic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.deltanet import DeltaNet, OwnerMap
from repro.core.findex import ForwardingIndex
from repro.core.rules import Link
from repro.structures.atomruns import AtomRuns

_MISS = object()


class StaleSpeculationError(RuntimeError):
    """The speculation's parent changed underneath it (or a worker
    holding its state restarted); the child's answers can no longer be
    trusted and it must be discarded."""


class _CowOwners:
    """List-like copy-on-write view of the parent's per-atom owner slots.

    The ownership sweeps read a slot (``owner[atom]``) and then mutate
    the returned ``source -> treap-root`` dict in place, so the first
    read of a slot copies the parent's dict into a private overlay; the
    persistent treap roots *inside* the dict stay shared.  Slots for
    atoms the child itself creates live only in the overlay.
    """

    __slots__ = ("_parent", "_own", "_len")

    def __init__(self, parent_slots: List[Optional[OwnerMap]]) -> None:
        self._parent = parent_slots
        self._own: Dict[int, Optional[OwnerMap]] = {}
        self._len = len(parent_slots)

    def __len__(self) -> int:
        return self._len

    def __getitem__(self, atom: int) -> Optional[OwnerMap]:
        owners = self._own.get(atom, _MISS)
        if owners is not _MISS:
            return owners
        if not 0 <= atom < self._len:
            raise IndexError(f"owner slot {atom} out of range")
        # Every slot beyond the parent's length was appended by the
        # child and therefore already sits in the overlay.
        base = self._parent[atom]
        owners = dict(base) if base is not None else None
        self._own[atom] = owners
        return owners

    def __setitem__(self, atom: int, owners: Optional[OwnerMap]) -> None:
        if not 0 <= atom < self._len:
            raise IndexError(f"owner slot {atom} out of range")
        self._own[atom] = owners

    def append(self, owners: Optional[OwnerMap]) -> None:
        self._own[self._len] = owners
        self._len += 1


class SpeculativeForwardingIndex(ForwardingIndex):
    """A forwarding index sharing the parent's label runs until written.

    The two view dicts (``by_link``, per-source buckets) are private
    shallow copies from the start — O(links + nodes) pointers — while
    the :class:`AtomRuns` values stay shared.  The first mutation of a
    label copies its runs and installs the copy in both views, so the
    ``flattened[link] is runs`` identity invariant keeps holding on the
    child.  No label digest is maintained (``digest`` is ``None``).
    """

    __slots__ = ("_owned",)

    @classmethod
    def from_parent(cls, parent: ForwardingIndex) -> "SpeculativeForwardingIndex":
        index = cls.__new__(cls)
        index.by_link = dict(parent.by_link)
        index.by_source = {node: dict(bucket)
                           for node, bucket in parent.by_source.items()}
        index.digest = None
        index._owned: Set[Link] = set()
        return index

    def _own_runs(self, link: Link, runs: AtomRuns) -> AtomRuns:
        mine = runs.copy()
        self.by_link[link] = mine
        self.by_source[link.source][link] = mine
        self._owned.add(link)
        return mine

    def add(self, link: Link, atom: int) -> None:
        runs = self.by_link.get(link)
        if runs is None:
            runs = self.by_link[link] = AtomRuns()
            bucket = self.by_source.get(link.source)
            if bucket is None:
                bucket = self.by_source[link.source] = {}
            bucket[link] = runs
            self._owned.add(link)
        elif link not in self._owned:
            if atom in runs:
                return
            runs = self._own_runs(link, runs)
        runs.add(atom)

    def discard(self, link: Link, atom: int) -> None:
        runs = self.by_link.get(link)
        if runs is None:
            return
        if link not in self._owned:
            if atom not in runs:
                return
            runs = self._own_runs(link, runs)
        runs.discard(atom)
        if not runs:
            del self.by_link[link]
            self._owned.discard(link)
            bucket = self.by_source[link.source]
            del bucket[link]
            if not bucket:
                del self.by_source[link.source]


class SpeculativeDeltaNet(DeltaNet):
    """A Delta-net child forked copy-on-write from a live parent.

    Behaves exactly like a :class:`DeltaNet` holding the parent's state
    (all algorithm methods are inherited; only the storage is CoW), but
    every mutation first asserts the parent has not advanced since the
    fork.  ``state_digest`` reports ``None`` — speculative state is
    ephemeral and never persisted or scrubbed.
    """

    @classmethod
    def from_parent(cls, parent: DeltaNet) -> "SpeculativeDeltaNet":
        child = cls.__new__(cls)
        child.width = parent.width
        child.gc = parent.gc
        child.atoms = parent.atoms.copy()
        child.findex = SpeculativeForwardingIndex.from_parent(parent.findex)
        child.label = child.findex.by_link
        child.rules = dict(parent.rules)
        child._owner = _CowOwners(parent._owner)
        child.nodes = set(parent.nodes)
        child.mutations = 0
        child._parent = parent
        child._base_mutations = parent.mutations
        return child

    def assert_fresh(self) -> None:
        """Raise :class:`StaleSpeculationError` if the parent advanced."""
        if self._parent.mutations != self._base_mutations:
            raise StaleSpeculationError(
                "parent advanced since this speculation was forked "
                f"({self._parent.mutations - self._base_mutations} "
                "mutation(s) behind); discard and re-speculate")

    def insert_rule(self, rule):
        self.assert_fresh()
        return super().insert_rule(rule)

    def remove_rule(self, rule_or_rid):
        self.assert_fresh()
        return super().remove_rule(rule_or_rid)

    def apply_batch(self, rules_to_insert=(), rids_to_remove=()):
        self.assert_fresh()
        return super().apply_batch(rules_to_insert, rids_to_remove)

    def state_digest(self):
        return None

    def __repr__(self) -> str:
        return (f"SpeculativeDeltaNet(rules={self.num_rules}, "
                f"atoms={self.num_atoms}, "
                f"behind={self._parent.mutations - self._base_mutations})")
