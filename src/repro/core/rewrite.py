"""Stateless packet modification along hops (paper §6, future work).

"(Stateless) packet modification of IP prefixes can be easily supported
without substantial changes to the data structures by augmenting the
edge-labelled graph with the necessary information on how atoms are
transformed along hops."

This module implements that augmentation.  A :class:`RewriteTable` maps
links to header transformations; the supported transformation (matching
NAT-style prefix rewriting) replaces the matched destination prefix by a
target prefix of the same length, i.e. translates the offset within the
prefix.  Reachability (:func:`reachable_intervals_with_rewrites`) then
propagates *interval sets* instead of atom sets, applying the
translation at each rewriting hop — atoms are no longer stable across
such hops, which is exactly why the paper leaves this to an extension of
the edge labels rather than the atom table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.deltanet import DeltaNet
from repro.core.intervals import IntervalSet
from repro.core.rules import DROP, Link


class PrefixRewrite:
    """Translate ``[match_lo : match_hi)`` onto ``[out_lo : out_lo + span)``.

    Models ``set-field``-style destination NAT: the spans must be equal
    so the mapping is a bijection (offset-preserving translation).
    """

    __slots__ = ("match_lo", "match_hi", "out_lo")

    def __init__(self, match_lo: int, match_hi: int, out_lo: int) -> None:
        if match_lo >= match_hi:
            raise ValueError("empty rewrite match")
        self.match_lo = match_lo
        self.match_hi = match_hi
        self.out_lo = out_lo

    @property
    def shift(self) -> int:
        return self.out_lo - self.match_lo

    def apply(self, flows: IntervalSet) -> IntervalSet:
        """Rewrite the matched part of ``flows``; pass the rest through."""
        matched = flows & IntervalSet([(self.match_lo, self.match_hi)])
        untouched = flows - matched
        translated = IntervalSet(
            (lo + self.shift, hi + self.shift) for lo, hi in matched.spans)
        return untouched | translated

    def invert(self) -> "PrefixRewrite":
        span = self.match_hi - self.match_lo
        return PrefixRewrite(self.out_lo, self.out_lo + span, self.match_lo)

    def __repr__(self) -> str:
        return (f"PrefixRewrite([{self.match_lo}:{self.match_hi}) -> "
                f"[{self.out_lo}:{self.out_lo + self.match_hi - self.match_lo}))")


class RewriteTable:
    """Per-link header transformations augmenting a DeltaNet graph."""

    def __init__(self) -> None:
        self._rewrites: Dict[Link, List[PrefixRewrite]] = {}

    def add(self, link, rewrite: PrefixRewrite) -> None:
        if not isinstance(link, Link):
            link = Link(*link)
        self._rewrites.setdefault(link, []).append(rewrite)

    def remove_link(self, link) -> None:
        if not isinstance(link, Link):
            link = Link(*link)
        self._rewrites.pop(link, None)

    def transform(self, link: Link, flows: IntervalSet) -> IntervalSet:
        for rewrite in self._rewrites.get(link, ()):
            flows = rewrite.apply(flows)
        return flows

    def __len__(self) -> int:
        return sum(len(v) for v in self._rewrites.values())


class _Piece:
    """A flow fragment: current interval ``[lo : hi)``, offset ``shift``
    back to original coordinates (origin = ``[lo - shift : hi - shift)``).

    Rewrites are piecewise translations, so a set of pieces tracks the
    origin<->current correspondence *exactly* through any number of hops.
    """

    __slots__ = ("lo", "hi", "shift")

    def __init__(self, lo: int, hi: int, shift: int) -> None:
        self.lo = lo
        self.hi = hi
        self.shift = shift

    def origin(self) -> Tuple[int, int]:
        return self.lo - self.shift, self.hi - self.shift


def _intersect_pieces(pieces: List[_Piece], allowed: IntervalSet) -> List[_Piece]:
    out: List[_Piece] = []
    for piece in pieces:
        clipped = IntervalSet([(piece.lo, piece.hi)]) & allowed
        out.extend(_Piece(lo, hi, piece.shift) for lo, hi in clipped.spans)
    return out


def _rewrite_pieces(pieces: List[_Piece], rewrite: PrefixRewrite) -> List[_Piece]:
    out: List[_Piece] = []
    match = IntervalSet([(rewrite.match_lo, rewrite.match_hi)])
    for piece in pieces:
        whole = IntervalSet([(piece.lo, piece.hi)])
        inside = whole & match
        outside = whole - match
        out.extend(_Piece(lo, hi, piece.shift) for lo, hi in outside.spans)
        out.extend(_Piece(lo + rewrite.shift, hi + rewrite.shift,
                          piece.shift + rewrite.shift)
                   for lo, hi in inside.spans)
    return out


def reachable_intervals_with_rewrites(
        deltanet: DeltaNet, rewrites: RewriteTable,
        src: object, dst: object,
        max_visits: int = 8) -> IntervalSet:
    """Packets (as sent from ``src``) that can arrive at ``dst``.

    Propagates flow *pieces* — current header interval plus the exact
    translation back to the packet's original header — through the
    edge-labelled graph, applying per-link rewrites.  The result is in
    *original* coordinates: "which packets should ``src`` emit for them
    to reach ``dst``?".

    A rewrite can map flows back into space already explored, so each
    node is expanded at most ``max_visits`` times; rewrite loops thus
    terminate at the fixpoint reached so far.
    """
    label_sets: Dict[Link, IntervalSet] = {}
    adjacency: Dict[object, List[Link]] = {}
    for link, atoms in deltanet.label.items():
        if not atoms:
            continue
        label_sets[link] = IntervalSet(
            deltanet.atoms.atom_interval(a) for a in atoms)
        adjacency.setdefault(link.source, []).append(link)

    arrived = IntervalSet()
    visits: Dict[object, int] = {}
    start = [_Piece(deltanet.atoms.min, deltanet.atoms.max, 0)]
    stack: List[Tuple[object, List[_Piece]]] = [(src, start)]
    while stack:
        node, pieces = stack.pop()
        if node == dst and node != src:
            arrived = arrived | IntervalSet(p.origin() for p in pieces)
            continue
        count = visits.get(node, 0)
        if count >= max_visits:
            continue
        visits[node] = count + 1
        for link in adjacency.get(node, ()):
            if link.target == DROP:
                continue
            passed = _intersect_pieces(pieces, label_sets[link])
            if not passed:
                continue
            for rewrite in rewrites._rewrites.get(link, ()):
                passed = _rewrite_pieces(passed, rewrite)
            stack.append((link.target, passed))
    return arrived


__all__ = [
    "PrefixRewrite", "RewriteTable", "reachable_intervals_with_rewrites",
]
