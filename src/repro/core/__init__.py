"""Delta-net's core: atoms, the edge-labelled graph, and the verifier.

The package implements the paper's primary contribution:

* :mod:`repro.core.intervals` — half-closed intervals and interval sets,
* :mod:`repro.core.prefix` — CIDR prefixes as half-closed intervals,
* :mod:`repro.core.rules` — forwarding rules, links, and actions,
* :mod:`repro.core.atoms` — the atom table (``M``, ``CREATE_ATOMS+``, §3.1),
* :mod:`repro.core.atomset` — atom-set and bitmask label helpers,
* :mod:`repro.core.deltanet` — Algorithms 1 and 2 (§3.2),
* :mod:`repro.core.delta_graph` — delta-graphs, the incremental by-product
  of rule updates used for checking (§3.3),
* :mod:`repro.core.findex` — the persistent forwarding index the
  property checkers chase through (run-length labels + per-source view),
* :mod:`repro.core.lattice` — the Boolean lattice induced by atoms (App. A).
"""

from repro.core.intervals import Interval, IntervalSet
from repro.core.prefix import prefix_to_interval, interval_to_prefixes, format_prefix
from repro.core.rules import Rule, Link, Action, DROP
from repro.core.atoms import AtomTable, ATOM_INF
from repro.core.deltanet import DeltaNet
from repro.core.delta_graph import DeltaGraph
from repro.core.findex import ForwardingIndex
from repro.core.multifield import FieldSchema, MultiFieldDeltaNet
from repro.core.rewrite import (
    PrefixRewrite, RewriteTable, reachable_intervals_with_rewrites,
)

__all__ = [
    "Interval", "IntervalSet",
    "prefix_to_interval", "interval_to_prefixes", "format_prefix",
    "Rule", "Link", "Action", "DROP",
    "AtomTable", "ATOM_INF",
    "DeltaNet", "DeltaGraph", "ForwardingIndex",
    "FieldSchema", "MultiFieldDeltaNet",
    "PrefixRewrite", "RewriteTable", "reachable_intervals_with_rewrites",
]
