"""Delta-graphs: the incremental by-product of rule updates (paper §3.3).

A delta-graph records exactly which ``(link, atom)`` ownerships changed
while processing one (or an aggregated batch of) rule update(s).  It is
the compact structure on which per-update property checks run: a loop
check after inserting rule ``r`` only needs to chase the atoms whose
owner changed, from the switches whose out-edges changed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.core.rules import Link


class DeltaGraph:
    """Changed edge labels from one or more rule updates.

    ``added[link]`` / ``removed[link]`` are the atoms that started / ceased
    flowing along ``link``.  Aggregation over multiple updates cancels a
    remove that follows an add (and vice versa), matching the paper's note
    that "multiple rule updates may be aggregated into a delta-graph".
    """

    __slots__ = ("added", "removed", "splits", "collected")

    def __init__(self) -> None:
        self.added: Dict[Link, Set[int]] = {}
        self.removed: Dict[Link, Set[int]] = {}
        #: Atom splits performed by this update: ``(old_atom, new_atom)``.
        #: A split is not a flow change (the new atom inherits the old
        #: atom's links), but consumers that cache per-atom state — e.g.
        #: an incrementally maintained Algorithm 3 closure — need to know
        #: that a fresh atom id came into existence.
        self.splits: List[Tuple[int, int]] = []
        #: Atom ids garbage-collected by this update (GC mode only).
        self.collected: List[int] = []

    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def __bool__(self) -> bool:
        return not self.is_empty()

    # -- recording (called from Algorithms 1/2) -------------------------------

    def record_add(self, link: Link, atom: int) -> None:
        pending_removal = self.removed.get(link)
        if pending_removal and atom in pending_removal:
            pending_removal.discard(atom)
            if not pending_removal:
                del self.removed[link]
            return
        self.added.setdefault(link, set()).add(atom)

    def record_remove(self, link: Link, atom: int) -> None:
        pending_add = self.added.get(link)
        if pending_add and atom in pending_add:
            pending_add.discard(atom)
            if not pending_add:
                del self.added[link]
            return
        self.removed.setdefault(link, set()).add(atom)

    def merge(self, other: "DeltaGraph") -> None:
        """Aggregate another delta-graph into this one (in order)."""
        for link, atoms in other.added.items():
            for atom in atoms:
                self.record_add(link, atom)
        for link, atoms in other.removed.items():
            for atom in atoms:
                self.record_remove(link, atom)
        self.splits.extend(other.splits)
        self.collected.extend(other.collected)

    # -- views used by the checkers -------------------------------------------

    def affected_atoms(self) -> Set[int]:
        """Atoms whose *ownership* changed (excludes pure splits/GC)."""
        atoms: Set[int] = set()
        for bucket in self.added.values():
            atoms |= bucket
        for bucket in self.removed.values():
            atoms |= bucket
        return atoms

    def touched_atoms(self) -> Set[int]:
        """Atoms whose per-atom cached state may be stale: ownership
        changes plus split-created plus garbage-collected ids."""
        atoms = self.affected_atoms()
        atoms.update(new for _old, new in self.splits)
        atoms.update(self.collected)
        return atoms

    def affected_links(self) -> Set[Link]:
        return set(self.added) | set(self.removed)

    def affected_sources(self) -> Set[object]:
        return {link.source for link in self.affected_links()}

    def changes(self) -> Iterator[Tuple[Link, int, int]]:
        """Yield ``(link, atom, +1 | -1)`` tuples."""
        for link, atoms in self.added.items():
            for atom in atoms:
                yield link, atom, +1
        for link, atoms in self.removed.items():
            for atom in atoms:
                yield link, atom, -1

    def __repr__(self) -> str:
        plus = sum(len(v) for v in self.added.values())
        minus = sum(len(v) for v in self.removed.values())
        return f"DeltaGraph(+{plus} atoms over {len(self.added)} links, -{minus} over {len(self.removed)})"
