"""The Delta-net verifier: Algorithms 1 and 2 of the paper (§3.2).

Delta-net incrementally maintains a single edge-labelled graph that
represents the flow of *all* packets in the entire network:

* ``label[link]`` — the atoms (packet classes) that flow along ``link``,
  i.e. the link of the highest-priority rule owning each atom, stored
  run-length compressed (:class:`~repro.structures.atomruns.AtomRuns`)
  inside the persistent :class:`~repro.core.findex.ForwardingIndex`,
  whose per-source view the property checkers chase through without
  ever rebuilding a ``source -> out-links`` map,
* ``owner[atom][source]`` — a priority-ordered BST of the rules installed
  on ``source`` whose interval contains ``atom`` (persistent treaps, so an
  atom split copies them in O(1)),
* the atom table ``M`` (:class:`repro.core.atoms.AtomTable`).

Each :meth:`DeltaNet.insert_rule` / :meth:`DeltaNet.remove_rule` call
returns the :class:`repro.core.delta_graph.DeltaGraph` of label changes it
caused, on which incremental property checks (loops, black holes, ...)
run.  Per Theorem 1 the amortized cost of ``R`` updates is
``O(R * K * log M)`` with ``K`` atoms and at most ``M`` overlapping rules
per switch.  :meth:`DeltaNet.apply_batch` applies many updates as one
aggregated delta-graph, amortizing the per-op costs across the batch
(see ``docs/performance.md``).

The optional ``gc=True`` mode implements the paper's §3.2.2 remark:
boundaries no longer used by any rule are removed and their atom ids are
recycled (merged into the predecessor atom, which by construction has
identical ownership).
"""

from __future__ import annotations

from typing import (
    Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Union,
)

from repro.core.atoms import AtomTable
from repro.core.delta_graph import DeltaGraph
from repro.core.findex import ForwardingIndex
from repro.core.prefix import prefix_to_interval
from repro.core.rules import Action, Link, Rule, validate_batch_ops
from repro.structures import ptreap
from repro.structures.atomruns import AtomRuns

OwnerMap = Dict[object, ptreap.Root]  # source node -> persistent treap root

_EMPTY_LABEL: FrozenSet[int] = frozenset()


class DeltaNet:
    """Real-time data-plane verifier over IP-prefix forwarding rules."""

    def __init__(self, width: int = 32, gc: bool = False, seed: int = 0x5EED) -> None:
        self.width = width
        self.gc = gc
        self.atoms = AtomTable(width=width, seed=seed)
        #: The forwarding index owns the labels; ``self.label`` aliases
        #: its ``by_link`` dict so every reader of the label table and
        #: every checker chasing ``findex.by_source`` see one state.
        self.findex = ForwardingIndex()
        self.label: Dict[Link, AtomRuns] = self.findex.by_link
        self.rules: Dict[int, Rule] = {}
        self._owner: List[Optional[OwnerMap]] = [{}]  # slot per atom id; alpha_0 exists
        self.nodes: Set[object] = set()
        #: Count of committed mutations (insert/remove/batch).  Speculative
        #: children record it at fork time and refuse to run once the
        #: parent has moved on (see :mod:`repro.core.speculative`).
        self.mutations = 0

    # -- public queries --------------------------------------------------------

    @property
    def num_rules(self) -> int:
        return len(self.rules)

    @property
    def num_atoms(self) -> int:
        return self.atoms.num_atoms

    def links(self) -> Iterator[Link]:
        """Links that currently carry at least one atom."""
        return (link for link, atoms in self.label.items() if atoms)

    def label_of(self, link: Union[Link, Tuple[object, object]]) -> FrozenSet[int]:
        """Atoms flowing along ``link``, as an immutable snapshot (§3.3).

        The internal label buckets are live mutable
        :class:`~repro.structures.atomruns.AtomRuns`; handing them out
        directly would let callers silently corrupt verifier state, so
        this returns a frozen copy (O(|label|)).  Hot internal paths read
        ``self.label`` directly.
        """
        if not isinstance(link, Link):
            link = Link(*link)
        bucket = self.label.get(link)
        return frozenset(bucket) if bucket else _EMPTY_LABEL

    def owner_map(self, atom: int) -> OwnerMap:
        """``source -> rule-BST root`` for ``atom`` (diagnostics/tests)."""
        owners = self._owner[atom]
        if owners is None:
            raise KeyError(f"atom {atom} is dead")
        return owners

    def owner_rule(self, atom: int, source: object) -> Optional[Rule]:
        """Highest-priority rule owning ``atom`` at ``source``, if any."""
        owners = self._owner[atom]
        if owners is None:
            return None
        root = owners.get(source)
        if root is None:
            return None
        return ptreap.max_node(root).value

    def atoms_overlapping(self, lo: int, hi: int) -> Iterator[int]:
        """All atoms whose interval intersects ``[lo : hi)``."""
        return self.atoms.overlapping(lo, hi)

    def flows_on(self, link: Union[Link, Tuple[object, object]]) -> List[Tuple[int, int]]:
        """The packet space carried by ``link`` as canonical intervals."""
        from repro.core.atomset import atoms_to_interval_set

        if not isinstance(link, Link):
            link = Link(*link)
        # Read the live bucket directly: the snapshot copy label_of makes
        # for external callers would be allocated only to be iterated
        # once here and discarded.
        return atoms_to_interval_set(self.label.get(link, ()), self.atoms)

    # -- rule construction helpers ---------------------------------------------

    def make_rule(self, rid: int, prefix: str, priority: int, source: object,
                  target: object = None, action: Action = Action.FORWARD) -> Rule:
        """Build a rule from CIDR text; drop rules omit ``target``."""
        lo, hi = prefix_to_interval(prefix, self.width)
        if action is Action.DROP:
            return Rule.drop(rid, lo, hi, priority, source)
        if target is None:
            raise ValueError("forward rules need a target")
        return Rule.forward(rid, lo, hi, priority, source, target)

    # -- Algorithm 1: INSERT_RULE ------------------------------------------------

    def insert_rule(self, rule: Rule) -> DeltaGraph:
        """Insert ``rule``; return the delta-graph of label changes."""
        if rule.rid in self.rules:
            raise ValueError(f"duplicate rule id {rule.rid}")
        if not self.atoms.min <= rule.lo < rule.hi <= self.atoms.max:
            # Validate before touching any structure so a rejected insert
            # leaves no trace.
            raise ValueError(
                f"rule {rule.rid} interval [{rule.lo}:{rule.hi}) outside "
                f"the {self.width}-bit header space")
        self.mutations += 1
        self.rules[rule.rid] = rule
        self.nodes.add(rule.source)
        if rule.target is not None:
            # Rules built without a concrete next hop (e.g. a raw
            # Link(source, None)) must not pollute the node set.
            self.nodes.add(rule.target)
        delta_graph = DeltaGraph()

        # CREATE_ATOMS+ (line 2): |delta| <= 2 new atoms.
        delta = self.atoms.create_atoms(rule.lo, rule.hi)
        delta_graph.splits.extend(delta)
        if self.gc:
            self.atoms.ref_bounds(rule.lo, rule.hi)

        # Atom splits (lines 3-9): the new atom inherits the old atom's
        # owners (O(1) shared persistent roots) and joins every label the
        # old atom is flowing on.
        self._apply_splits(delta)

        # Ownership (lines 10-23): for every atom of the rule's interval,
        # compare against the current highest-priority owner at source(r).
        self._insert_ownership(rule, delta_graph)
        return delta_graph

    def _apply_splits(self, delta: List[Tuple[int, int]]) -> None:
        """Split bookkeeping: copy owner maps, extend labels (lines 3-9)."""
        owner = self._owner
        pt_max = ptreap.max_node
        label_add = self.findex.add
        for old_atom, new_atom in delta:
            old_owners = owner[old_atom]
            self._set_owner_slot(new_atom, dict(old_owners))
            for root in old_owners.values():
                label_add(pt_max(root).value.link, new_atom)

    def _insert_ownership(self, rule: Rule, delta_graph: DeltaGraph) -> None:
        """The per-atom ownership sweep of Algorithm 1 (lines 10-23)."""
        source = rule.source
        key = rule.sort_key
        rlink = rule.link
        # The sweep runs once per atom of the rule's interval — hoist
        # every repeated attribute/function lookup out of the loop and
        # hash the treap key once instead of once per atom.
        prio = ptreap.heap_prio(key)
        node_cls = ptreap.PNode
        pt_insert = ptreap.insert
        pt_max = ptreap.max_node
        owner = self._owner
        label_add = self.findex.add
        label_discard = self.findex.discard
        record_add = delta_graph.record_add
        record_remove = delta_graph.record_remove
        for atom in self.atoms.atoms_in_list(rule.lo, rule.hi):
            owners = owner[atom]
            root = owners.get(source)
            if root is None:
                # Fast path: no competing rule at this source — the new
                # rule owns the atom outright and its BST is a single node.
                label_add(rlink, atom)
                record_add(rlink, atom)
                owners[source] = node_cls(key, rule, prio, None, None)
                continue
            current = pt_max(root).value
            if current.sort_key < key and current.link != rlink:
                label_add(rlink, atom)
                record_add(rlink, atom)
                label_discard(current.link, atom)
                record_remove(current.link, atom)
            owners[source] = pt_insert(root, key, rule, prio)

    # -- Algorithm 2: REMOVE_RULE -------------------------------------------------

    def remove_rule(self, rule_or_rid: Union[Rule, int]) -> DeltaGraph:
        """Remove a rule; return the delta-graph of label changes."""
        rid = rule_or_rid.rid if isinstance(rule_or_rid, Rule) else rule_or_rid
        rule = self.rules.pop(rid, None)
        if rule is None:
            raise KeyError(f"unknown rule id {rid}")
        self.mutations += 1
        delta_graph = DeltaGraph()
        self._remove_ownership(rule, delta_graph)
        return delta_graph

    def _remove_ownership(self, rule: Rule, delta_graph: DeltaGraph) -> None:
        """The per-atom sweep of Algorithm 2, recording into ``delta_graph``."""
        source = rule.source
        key = rule.sort_key
        rid = rule.rid
        rlink = rule.link
        pt_remove = ptreap.remove
        pt_max = ptreap.max_node
        owner = self._owner
        label_add = self.findex.add
        label_discard = self.findex.discard
        record_add = delta_graph.record_add
        record_remove = delta_graph.record_remove
        for atom in self.atoms.atoms_in_list(rule.lo, rule.hi):
            owners = owner[atom]
            root = owners[source]
            previous_owner = pt_max(root).value
            root = pt_remove(root, key)
            if root is None:
                del owners[source]
            else:
                owners[source] = root
            if previous_owner.rid == rid:
                # The removed rule owned this atom; ownership transfers to
                # the next highest-priority rule, if any (lines 6-12).
                successor = pt_max(root).value if root is not None else None
                if successor is None or successor.link != rlink:
                    label_discard(rlink, atom)
                    record_remove(rlink, atom)
                    if successor is not None:
                        label_add(successor.link, atom)
                        record_add(successor.link, atom)

        if self.gc:
            for bound in self.atoms.unref_bounds(rule.lo, rule.hi):
                delta_graph.collected.append(self._collect_atom(bound))

    # -- batched updates ---------------------------------------------------------

    def apply(self, rules_to_insert: Iterable[Rule] = (),
              rids_to_remove: Iterable[int] = ()) -> DeltaGraph:
        """Apply a batch sequentially, returning one aggregated delta-graph.

        Reference implementation: loops the single-op algorithms and
        merges their delta-graphs.  :meth:`apply_batch` is the fast path
        with identical final state; this stays as the oracle the
        equivalence tests compare against.
        """
        aggregate = DeltaGraph()
        for rid in rids_to_remove:
            aggregate.merge(self.remove_rule(rid))
        for rule in rules_to_insert:
            aggregate.merge(self.insert_rule(rule))
        return aggregate

    def apply_batch(self, rules_to_insert: Iterable[Rule] = (),
                    rids_to_remove: Iterable[int] = ()) -> DeltaGraph:
        """Batched Algorithms 1+2: removals first, then all insertions.

        Produces exactly the final state of :meth:`apply` — with
        ``gc=False`` down to identical atom ids; with ``gc=True`` the
        semantics (boundaries, flows, verdicts) still match but recycled
        ids may differ, because the batch skips the collect-then-recreate
        churn of a boundary shared by a removed and an inserted rule —
        while amortizing the per-op costs across the batch:

        * all boundary splits are pre-created in one deduplicated pass
          over the batch's intervals (:meth:`AtomTable.create_atoms_many`),
          so a boundary shared by many rules is probed once,
        * the ownership sweep runs per ``(source, interval)`` group —
          rules installed on the same switch over the same interval walk
          the atom range once instead of once per rule,
        * one delta-graph is recorded directly (no per-op graphs to
          allocate and re-merge), so an insert later shadowed within the
          same batch cancels to no edge at all.

        The whole batch is validated up front; a rejected batch leaves no
        trace.  A rule id removed by the batch may be re-inserted by it
        (removals run first); the aggregated delta-graph reflects the net
        flow changes, matching the paper's remark that "multiple rule
        updates may be aggregated into a delta-graph".
        """
        inserts = list(rules_to_insert)
        removals = list(rids_to_remove)
        validate_batch_ops(inserts, removals, self.rules, self.width)
        if inserts or removals:
            self.mutations += 1

        delta_graph = DeltaGraph()

        # Phase 1 — pre-create every boundary split of the batch, before
        # anything is recorded.  All subsequent add/remove records are
        # then at the batch's *final* atom granularity, which keeps the
        # aggregated delta-graph exact (post = pre + added - removed per
        # link) without consumers having to chase intra-batch splits.
        # With gc=False the allocation order is untouched (removals never
        # create boundaries), so atom ids still match sequential apply();
        # with gc=True, referencing the insert bounds first also spares
        # the pointless collect-then-recreate churn of a boundary shared
        # by a removed and an inserted rule.
        delta = self.atoms.create_atoms_many(
            (rule.lo, rule.hi) for rule in inserts)
        delta_graph.splits.extend(delta)
        self._apply_splits(delta)
        if self.gc:
            ref_bounds = self.atoms.ref_bounds
            for rule in inserts:
                ref_bounds(rule.lo, rule.hi)

        # Phase 2 — removals, in batch order (Algorithm 2 per rule).
        for rid in removals:
            self._remove_ownership(self.rules.pop(rid), delta_graph)

        # Phase 3 — ownership sweep per (source, interval) group.
        groups: Dict[Tuple[object, int, int], List[Rule]] = {}
        for rule in inserts:
            self.rules[rule.rid] = rule
            self.nodes.add(rule.source)
            if rule.target is not None:
                self.nodes.add(rule.target)
            groups.setdefault((rule.source, rule.lo, rule.hi), []).append(rule)

        heap_prio = ptreap.heap_prio
        node_cls = ptreap.PNode
        pt_insert = ptreap.insert
        pt_max = ptreap.max_node
        owner = self._owner
        atoms_in_list = self.atoms.atoms_in_list
        label_add = self.findex.add
        added = delta_graph.added
        removed = delta_graph.removed
        label_discard = self.findex.discard
        record_remove = delta_graph.record_remove
        for (source, lo, hi), group in groups.items():
            atoms = atoms_in_list(lo, hi)
            if len(group) > 1:
                self._sweep_group(source, atoms, group, delta_graph)
                continue
            # Singleton group — the dominant shape.  This is
            # _insert_ownership with the delta-record dict operations
            # inlined and the index publishers pre-bound: one probe per
            # change, measurably faster at 10^4-10^5 ops per batch.
            rule = group[0]
            key = rule.sort_key
            prio = heap_prio(key)
            rlink = rule.link
            for atom in atoms:
                owners = owner[atom]
                root = owners.get(source)
                if root is None:
                    current = None
                else:
                    current = pt_max(root).value
                    if current.sort_key > key or current.link == rlink:
                        owners[source] = pt_insert(root, key, rule, prio)
                        continue
                # The rule takes over this atom on a new link: label[rlink]
                # gains the atom, and the add cancels any removal the batch
                # recorded earlier for the same (link, atom).
                label_add(rlink, atom)
                pending = removed.get(rlink)
                if pending is not None and atom in pending:
                    pending.discard(atom)
                    if not pending:
                        del removed[rlink]
                else:
                    add_bucket = added.get(rlink)
                    if add_bucket is None:
                        add_bucket = added[rlink] = set()
                    add_bucket.add(atom)
                if root is None:
                    owners[source] = node_cls(key, rule, prio, None, None)
                else:
                    label_discard(current.link, atom)
                    record_remove(current.link, atom)
                    owners[source] = pt_insert(root, key, rule, prio)
        return delta_graph

    def _sweep_group(self, source: object, atoms: List[int],
                     group: List[Rule], delta_graph: DeltaGraph) -> None:
        """Ownership sweep for several batch rules sharing (source, interval).

        Walks the shared atom range once; ``current`` tracks the running
        highest-priority owner so the group needs a single max-node
        descent per atom, not one per rule.
        """
        heap_prio = ptreap.heap_prio
        node_cls = ptreap.PNode
        pt_insert = ptreap.insert
        pt_max = ptreap.max_node
        owner = self._owner
        label_add = self.findex.add
        label_discard = self.findex.discard
        record_add = delta_graph.record_add
        record_remove = delta_graph.record_remove
        keyed = [(rule.sort_key, heap_prio(rule.sort_key), rule)
                 for rule in group]
        for atom in atoms:
            owners = owner[atom]
            root = owners.get(source)
            current = pt_max(root).value if root is not None else None
            for key, prio, rule in keyed:
                if current is None or current.sort_key < key:
                    rlink = rule.link
                    if current is None or current.link != rlink:
                        label_add(rlink, atom)
                        record_add(rlink, atom)
                        if current is not None:
                            label_discard(current.link, atom)
                            record_remove(current.link, atom)
                    current = rule
                if root is None:
                    root = node_cls(key, rule, prio, None, None)
                else:
                    root = pt_insert(root, key, rule, prio)
            owners[source] = root

    # -- internals ----------------------------------------------------------------

    def _set_owner_slot(self, atom: int, owners: OwnerMap) -> None:
        while len(self._owner) <= atom:
            self._owner.append(None)
        self._owner[atom] = owners

    def _collect_atom(self, bound: int) -> int:
        """Garbage-collect the atom starting at ``bound`` (§3.2.2 remark).

        No rule starts or ends at ``bound`` any more, so the atom starting
        there has exactly the same owners as its predecessor; it can be
        erased from every label it appears on and its id recycled.
        Returns the collected atom id.
        """
        dead_atom = self.atoms._map.get(bound)
        owners = self._owner[dead_atom]
        for source, root in owners.items():
            highest = ptreap.max_node(root).value
            self.findex.discard(highest.link, dead_atom)
        self._owner[dead_atom] = None
        self.atoms.collect(bound)
        return dead_atom

    # -- integrity (see repro.integrity) --------------------------------------------

    def state_digest(self):
        """The live incremental digest of the verifier's mirror state.

        An order-independent fingerprint over every ``(link, atom)``
        label entry and every ``(boundary, atom)`` map entry — equal
        across any two instances holding the same state, however it was
        reached (cold replay, batch replay, snapshot restore).  Returns
        ``None`` when digests are disabled (``DELTANET_DIGESTS=0``).
        """
        from repro.integrity.digest import XORSUM_SCHEME, format_digest

        label = self.findex.digest
        bounds = self.atoms.digest
        if label is None or bounds is None:
            return None
        return format_digest(
            XORSUM_SCHEME, [label.as_tuple(), bounds.as_tuple()])

    def recompute_state_digest(self) -> str:
        """:meth:`state_digest` rebuilt from scratch by full iteration —
        the scrubber's reference value, available even when incremental
        digests are disabled."""
        from repro.integrity.digest import XORSUM_SCHEME, format_digest

        return format_digest(XORSUM_SCHEME, [
            self.findex.recompute_digest().as_tuple(),
            self.atoms.recompute_digest().as_tuple(),
        ])

    # -- persistence (see repro.persist) -------------------------------------------

    def state_dict(self) -> dict:
        """Full verifier state as deterministic plain data.

        The owner treaps are *not* serialized: their heap priorities are
        deterministic functions of the rule keys (:func:`repro.
        structures.ptreap.heap_prio`), which makes each treap's shape a
        canonical function of its key set — so :meth:`from_state`
        rebuilds them exactly from the rule store.  What is stored is
        the compact ground truth: atom table, rules, run-length labels
        and GC refcounts.
        """
        by_repr = repr  # labels/nodes sorted for byte-stable snapshots
        labels = sorted(
            ((link.source, link.target, runs.runs())
             for link, runs in self.label.items() if runs),
            key=lambda entry: (by_repr(entry[0]), by_repr(entry[1])))
        return {
            "width": self.width,
            "gc": self.gc,
            "atoms": self.atoms.state_dict(),
            "rules": [self.rules[rid].to_state()
                      for rid in sorted(self.rules)],
            "labels": labels,
            "nodes": sorted(self.nodes, key=by_repr),
        }

    @classmethod
    def from_state(cls, state: dict) -> "DeltaNet":
        """Rebuild a verifier; the warm-start path.

        Cost: one treap insert per (rule, atom-in-interval) pair — the
        ownership sweep of Algorithm 1 without the label churn, the
        delta-graphs, or the per-update property checks a cold replay
        pays.  The resulting owner structure is *identical* to the
        original's (canonical treaps), so every later update and check
        behaves exactly as if the process had never restarted.
        """
        net = cls(width=state["width"], gc=state["gc"])
        net.atoms = AtomTable.from_state(state["atoms"])
        net._owner = [None] * max(1, net.atoms.num_ids_allocated)
        for _bound, atom in state["atoms"]["boundaries"]:
            if atom >= 0:
                net._owner[atom] = {}
        for source, target, runs in state["labels"]:
            net.findex.set_label(Link(source, target),
                                 AtomRuns.from_runs(runs))
        net.nodes = set(state["nodes"])
        heap_prio = ptreap.heap_prio
        node_cls = ptreap.PNode
        pt_insert = ptreap.insert
        atoms_in_list = net.atoms.atoms_in_list
        owner = net._owner
        for rule_state in state["rules"]:
            rule = Rule.from_state(rule_state)
            net.rules[rule.rid] = rule
            key = rule.sort_key
            prio = heap_prio(key)
            source = rule.source
            for atom in atoms_in_list(rule.lo, rule.hi):
                owners = owner[atom]
                root = owners.get(source)
                if root is None:
                    owners[source] = node_cls(key, rule, prio, None, None)
                else:
                    owners[source] = pt_insert(root, key, rule, prio)
        return net

    # -- invariant checking (used by the test suite's oracles) --------------------

    def check_invariants(self) -> None:
        """Assert the §3.2 data-structure invariants; O(R*K), tests only."""
        assert None not in self.nodes, "None leaked into the node set"
        for atom, (lo, hi) in self.atoms.intervals():
            owners = self._owner[atom]
            assert owners is not None, f"live atom {atom} has no owner slot"
            for source, root in owners.items():
                assert root is not None
                for _key, rule in ptreap.iter_items(root):
                    assert rule.source == source
                    assert rule.lo <= lo and hi <= rule.hi, (
                        f"rule {rule} in owner[{atom}][{source}] does not "
                        f"contain atom [{lo}:{hi})")
        # Every labelled atom is owned by the highest-priority rule with
        # that link, and vice versa.
        expected: Dict[Link, Set[int]] = {}
        for atom, _interval in self.atoms.intervals():
            for source, root in self._owner[atom].items():
                highest = ptreap.max_node(root).value
                expected.setdefault(highest.link, set()).add(atom)
        actual = {link: set(atoms) for link, atoms in self.label.items() if atoms}
        assert actual == expected, "label map out of sync with owner structure"
        # The per-source chase view must mirror the labels exactly.
        self.findex.check_consistency()
        live = self.state_digest()
        assert live is None or live == self.recompute_state_digest(), (
            "incremental state digest diverged from recomputation")

    def __repr__(self) -> str:
        return (f"DeltaNet(rules={self.num_rules}, atoms={self.num_atoms}, "
                f"links={sum(1 for _ in self.links())}, gc={self.gc})")
