"""The Delta-net verifier: Algorithms 1 and 2 of the paper (§3.2).

Delta-net incrementally maintains a single edge-labelled graph that
represents the flow of *all* packets in the entire network:

* ``label[link]`` — the set of atoms (packet classes) that flow along
  ``link``, i.e. the link of the highest-priority rule owning each atom,
* ``owner[atom][source]`` — a priority-ordered BST of the rules installed
  on ``source`` whose interval contains ``atom`` (persistent treaps, so an
  atom split copies them in O(1)),
* the atom table ``M`` (:class:`repro.core.atoms.AtomTable`).

Each :meth:`DeltaNet.insert_rule` / :meth:`DeltaNet.remove_rule` call
returns the :class:`repro.core.delta_graph.DeltaGraph` of label changes it
caused, on which incremental property checks (loops, black holes, ...)
run.  Per Theorem 1 the amortized cost of ``R`` updates is
``O(R * K * log M)`` with ``K`` atoms and at most ``M`` overlapping rules
per switch.

The optional ``gc=True`` mode implements the paper's §3.2.2 remark:
boundaries no longer used by any rule are removed and their atom ids are
recycled (merged into the predecessor atom, which by construction has
identical ownership).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.core.atoms import AtomTable
from repro.core.delta_graph import DeltaGraph
from repro.core.prefix import prefix_to_interval
from repro.core.rules import Action, Link, Rule
from repro.structures import ptreap

OwnerMap = Dict[object, ptreap.Root]  # source node -> persistent treap root


class DeltaNet:
    """Real-time data-plane verifier over IP-prefix forwarding rules."""

    def __init__(self, width: int = 32, gc: bool = False, seed: int = 0x5EED) -> None:
        self.width = width
        self.gc = gc
        self.atoms = AtomTable(width=width, seed=seed)
        self.label: Dict[Link, Set[int]] = {}
        self.rules: Dict[int, Rule] = {}
        self._owner: List[Optional[OwnerMap]] = [{}]  # slot per atom id; alpha_0 exists
        self.nodes: Set[object] = set()

    # -- public queries --------------------------------------------------------

    @property
    def num_rules(self) -> int:
        return len(self.rules)

    @property
    def num_atoms(self) -> int:
        return self.atoms.num_atoms

    def links(self) -> Iterator[Link]:
        """Links that currently carry at least one atom."""
        return (link for link, atoms in self.label.items() if atoms)

    def label_of(self, link: Union[Link, Tuple[object, object]]) -> Set[int]:
        """Atoms flowing along ``link`` (constant-time lookup, §3.3)."""
        if not isinstance(link, Link):
            link = Link(*link)
        return self.label.get(link, set())

    def owner_map(self, atom: int) -> OwnerMap:
        """``source -> rule-BST root`` for ``atom`` (diagnostics/tests)."""
        owners = self._owner[atom]
        if owners is None:
            raise KeyError(f"atom {atom} is dead")
        return owners

    def owner_rule(self, atom: int, source: object) -> Optional[Rule]:
        """Highest-priority rule owning ``atom`` at ``source``, if any."""
        owners = self._owner[atom]
        if owners is None:
            return None
        root = owners.get(source)
        if root is None:
            return None
        return ptreap.max_node(root).value

    def atoms_overlapping(self, lo: int, hi: int) -> Iterator[int]:
        """All atoms whose interval intersects ``[lo : hi)``."""
        if not self.atoms.min <= lo < hi <= self.atoms.max:
            raise ValueError(f"interval [{lo}:{hi}) out of range")
        start = self.atoms._map.floor_key(lo)
        for _key, atom in self.atoms._map.iritems(start, hi):
            yield atom

    def flows_on(self, link: Union[Link, Tuple[object, object]]) -> List[Tuple[int, int]]:
        """The packet space carried by ``link`` as canonical intervals."""
        from repro.core.atomset import atoms_to_interval_set

        return atoms_to_interval_set(self.label_of(link), self.atoms)

    # -- rule construction helpers ---------------------------------------------

    def make_rule(self, rid: int, prefix: str, priority: int, source: object,
                  target: object = None, action: Action = Action.FORWARD) -> Rule:
        """Build a rule from CIDR text; drop rules omit ``target``."""
        lo, hi = prefix_to_interval(prefix, self.width)
        if action is Action.DROP:
            return Rule.drop(rid, lo, hi, priority, source)
        if target is None:
            raise ValueError("forward rules need a target")
        return Rule.forward(rid, lo, hi, priority, source, target)

    # -- Algorithm 1: INSERT_RULE ------------------------------------------------

    def insert_rule(self, rule: Rule) -> DeltaGraph:
        """Insert ``rule``; return the delta-graph of label changes."""
        if rule.rid in self.rules:
            raise ValueError(f"duplicate rule id {rule.rid}")
        if not self.atoms.min <= rule.lo < rule.hi <= self.atoms.max:
            # Validate before touching any structure so a rejected insert
            # leaves no trace.
            raise ValueError(
                f"rule {rule.rid} interval [{rule.lo}:{rule.hi}) outside "
                f"the {self.width}-bit header space")
        self.rules[rule.rid] = rule
        self.nodes.add(rule.source)
        if rule.target is not None:
            # Rules built without a concrete next hop (e.g. a raw
            # Link(source, None)) must not pollute the node set.
            self.nodes.add(rule.target)
        delta_graph = DeltaGraph()

        # CREATE_ATOMS+ (line 2): |delta| <= 2 new atoms.
        delta = self.atoms.create_atoms(rule.lo, rule.hi)
        delta_graph.splits.extend(delta)
        if self.gc:
            self.atoms.ref_bounds(rule.lo, rule.hi)

        # Atom splits (lines 3-9): the new atom inherits the old atom's
        # owners (O(1) shared persistent roots) and joins every label the
        # old atom is flowing on.
        for old_atom, new_atom in delta:
            old_owners = self._owner[old_atom]
            self._set_owner_slot(new_atom, dict(old_owners))
            for _source, root in old_owners.items():
                highest = ptreap.max_node(root).value
                self._label_add(highest.link, new_atom)

        # Ownership (lines 10-23): for every atom of the rule's interval,
        # compare against the current highest-priority owner at source(r).
        source = rule.source
        key = rule.sort_key
        for atom in self.atoms.atoms_in(rule.lo, rule.hi):
            owners = self._owner[atom]
            root = owners.get(source)
            current = ptreap.max_node(root).value if root is not None else None
            if current is None or current.sort_key < key:
                if current is None or current.link != rule.link:
                    self._label_add(rule.link, atom)
                    delta_graph.record_add(rule.link, atom)
                    if current is not None:
                        self._label_discard(current.link, atom)
                        delta_graph.record_remove(current.link, atom)
            owners[source] = ptreap.insert(root, key, rule)
        return delta_graph

    # -- Algorithm 2: REMOVE_RULE -------------------------------------------------

    def remove_rule(self, rule_or_rid: Union[Rule, int]) -> DeltaGraph:
        """Remove a rule; return the delta-graph of label changes."""
        rid = rule_or_rid.rid if isinstance(rule_or_rid, Rule) else rule_or_rid
        rule = self.rules.pop(rid, None)
        if rule is None:
            raise KeyError(f"unknown rule id {rid}")
        delta_graph = DeltaGraph()
        source = rule.source
        key = rule.sort_key

        for atom in self.atoms.atoms_in(rule.lo, rule.hi):
            owners = self._owner[atom]
            root = owners[source]
            previous_owner = ptreap.max_node(root).value
            root = ptreap.remove(root, key)
            if root is None:
                del owners[source]
            else:
                owners[source] = root
            if previous_owner.rid == rule.rid:
                # The removed rule owned this atom; ownership transfers to
                # the next highest-priority rule, if any (lines 6-12).
                successor = ptreap.max_node(root).value if root is not None else None
                if successor is None or successor.link != rule.link:
                    self._label_discard(rule.link, atom)
                    delta_graph.record_remove(rule.link, atom)
                    if successor is not None:
                        self._label_add(successor.link, atom)
                        delta_graph.record_add(successor.link, atom)

        if self.gc:
            for bound in self.atoms.unref_bounds(rule.lo, rule.hi):
                delta_graph.collected.append(self._collect_atom(bound))
        return delta_graph

    # -- batch convenience -------------------------------------------------------

    def apply(self, rules_to_insert: Iterable[Rule] = (),
              rids_to_remove: Iterable[int] = ()) -> DeltaGraph:
        """Apply a batch of updates, returning one aggregated delta-graph."""
        aggregate = DeltaGraph()
        for rid in rids_to_remove:
            aggregate.merge(self.remove_rule(rid))
        for rule in rules_to_insert:
            aggregate.merge(self.insert_rule(rule))
        return aggregate

    # -- internals ----------------------------------------------------------------

    def _set_owner_slot(self, atom: int, owners: OwnerMap) -> None:
        while len(self._owner) <= atom:
            self._owner.append(None)
        self._owner[atom] = owners

    def _label_add(self, link: Link, atom: int) -> None:
        bucket = self.label.get(link)
        if bucket is None:
            bucket = self.label[link] = set()
        bucket.add(atom)

    def _label_discard(self, link: Link, atom: int) -> None:
        bucket = self.label.get(link)
        if bucket is not None:
            bucket.discard(atom)
            if not bucket:
                del self.label[link]

    def _collect_atom(self, bound: int) -> int:
        """Garbage-collect the atom starting at ``bound`` (§3.2.2 remark).

        No rule starts or ends at ``bound`` any more, so the atom starting
        there has exactly the same owners as its predecessor; it can be
        erased from every label it appears on and its id recycled.
        Returns the collected atom id.
        """
        dead_atom = self.atoms._map.get(bound)
        owners = self._owner[dead_atom]
        for source, root in owners.items():
            highest = ptreap.max_node(root).value
            self._label_discard(highest.link, dead_atom)
        self._owner[dead_atom] = None
        self.atoms.collect(bound)
        return dead_atom

    # -- invariant checking (used by the test suite's oracles) --------------------

    def check_invariants(self) -> None:
        """Assert the §3.2 data-structure invariants; O(R*K), tests only."""
        assert None not in self.nodes, "None leaked into the node set"
        for atom, (lo, hi) in self.atoms.intervals():
            owners = self._owner[atom]
            assert owners is not None, f"live atom {atom} has no owner slot"
            for source, root in owners.items():
                assert root is not None
                for _key, rule in ptreap.iter_items(root):
                    assert rule.source == source
                    assert rule.lo <= lo and hi <= rule.hi, (
                        f"rule {rule} in owner[{atom}][{source}] does not "
                        f"contain atom [{lo}:{hi})")
        # Every labelled atom is owned by the highest-priority rule with
        # that link, and vice versa.
        expected: Dict[Link, Set[int]] = {}
        for atom, _interval in self.atoms.intervals():
            for source, root in self._owner[atom].items():
                highest = ptreap.max_node(root).value
                expected.setdefault(highest.link, set()).add(atom)
        actual = {link: set(atoms) for link, atoms in self.label.items() if atoms}
        assert actual == expected, "label map out of sync with owner structure"

    def __repr__(self) -> str:
        return (f"DeltaNet(rules={self.num_rules}, atoms={self.num_atoms}, "
                f"links={sum(1 for _ in self.links())}, gc={self.gc})")
