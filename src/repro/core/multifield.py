"""Composite (multi-field) match support via node encoding (paper §4.1).

Delta-net's algorithms handle one range-based field (the destination IP
prefix).  For additional *concrete* (non-wildcard) header fields the
paper's implementation "encodes composite match conditions as separate
nodes in the single edge-labelled graph": a switch with rules matching
three input ports becomes three graph nodes — which is why Table 2
reports graph nodes rather than switches.

:class:`MultiFieldDeltaNet` packages that encoding: rules carry an
optional tuple of concrete field values (e.g. ``in_port``, VLAN id), and
each distinct ``(switch, fields)`` combination becomes one node of the
underlying :class:`~repro.core.deltanet.DeltaNet`.  A wildcard field
(``None``) replicates the rule across that field's observed values —
mirroring how a TCAM rule with a wildcarded port applies at every port
node.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.delta_graph import DeltaGraph
from repro.core.deltanet import DeltaNet
from repro.core.rules import Action, Rule

FieldValues = Tuple[object, ...]
EncodedNode = Tuple[object, FieldValues]


class FieldSchema:
    """Declares the concrete fields appended to the destination prefix.

    ``domains[i]`` is the set of admissible values of field ``i`` (e.g.
    the port numbers of a switch).  Domains may grow as rules mention new
    values; wildcards expand over the values seen *so far plus* declared
    ones, so declare full domains up front for faithful TCAM semantics.
    """

    def __init__(self, names: Sequence[str],
                 domains: Optional[Sequence[Iterable[object]]] = None) -> None:
        if not names:
            raise ValueError("a field schema needs at least one field")
        self.names: Tuple[str, ...] = tuple(names)
        self.domains: List[Set[object]] = [
            set(d) for d in (domains or [[] for _ in names])]
        if len(self.domains) != len(self.names):
            raise ValueError("names and domains must align")

    @property
    def arity(self) -> int:
        return len(self.names)

    def observe(self, values: Sequence[Optional[object]]) -> None:
        if len(values) != self.arity:
            raise ValueError(
                f"expected {self.arity} field values, got {len(values)}")
        for index, value in enumerate(values):
            if value is not None:
                self.domains[index].add(value)

    def expand(self, values: Sequence[Optional[object]]) -> List[FieldValues]:
        """All concrete tuples a (possibly wildcarded) value list covers."""
        options: List[List[object]] = []
        for index, value in enumerate(values):
            if value is None:
                domain = sorted(self.domains[index], key=repr)
                if not domain:
                    raise ValueError(
                        f"wildcard on field {self.names[index]!r} with an "
                        f"empty domain; declare the domain up front")
                options.append(domain)
            else:
                options.append([value])
        combos: List[FieldValues] = [()]
        for column in options:
            combos = [prefix + (choice,) for prefix in combos
                      for choice in column]
        return combos


class MultiFieldDeltaNet:
    """Delta-net over ``(concrete fields, destination prefix)`` matches."""

    def __init__(self, schema: FieldSchema, width: int = 32,
                 gc: bool = False) -> None:
        self.schema = schema
        self.net = DeltaNet(width=width, gc=gc)
        self._encoded_rids: Dict[int, List[int]] = {}
        self._next_encoded = 0

    @property
    def num_atoms(self) -> int:
        return self.net.num_atoms

    @property
    def num_rules(self) -> int:
        return len(self._encoded_rids)

    @property
    def num_nodes(self) -> int:
        """Graph nodes — what Table 2 reports instead of switch counts."""
        return len(self.net.nodes)

    @staticmethod
    def encode_node(switch: object, fields: FieldValues) -> EncodedNode:
        return (switch, fields)

    def insert_rule(self, rid: int, lo: int, hi: int, priority: int,
                    switch: object, fields: Sequence[Optional[object]],
                    target: object = None,
                    action: Action = Action.FORWARD) -> DeltaGraph:
        """Insert a composite rule; wildcards replicate across the domain.

        ``target`` is the next-hop switch; the packet arrives there with
        whatever field values the link imposes — modelled by targeting
        the *switch-level* ingress node ``(target, fields)`` with the same
        concrete fields (sufficient for destination-routed networks).
        """
        if rid in self._encoded_rids:
            raise ValueError(f"duplicate rule id {rid}")
        self.schema.observe(fields)
        aggregate = DeltaGraph()
        encoded: List[int] = []
        for combo in self.schema.expand(fields):
            node = self.encode_node(switch, combo)
            encoded_rid = self._alloc_encoded()
            if action is Action.DROP:
                rule = Rule.drop(encoded_rid, lo, hi, priority, node)
            else:
                if target is None:
                    raise ValueError("forward rules need a target")
                rule = Rule.forward(encoded_rid, lo, hi, priority, node,
                                    self.encode_node(target, combo))
            aggregate.merge(self.net.insert_rule(rule))
            encoded.append(encoded_rid)
        self._encoded_rids[rid] = encoded
        return aggregate

    def remove_rule(self, rid: int) -> DeltaGraph:
        encoded = self._encoded_rids.pop(rid, None)
        if encoded is None:
            raise KeyError(f"unknown rule id {rid}")
        aggregate = DeltaGraph()
        for encoded_rid in encoded:
            aggregate.merge(self.net.remove_rule(encoded_rid))
        return aggregate

    def _alloc_encoded(self) -> int:
        rid = self._next_encoded
        self._next_encoded += 1
        return rid

    def label_of(self, switch: object, fields: FieldValues,
                 target: object) -> Set[int]:
        link = (self.encode_node(switch, fields),
                self.encode_node(target, fields))
        return self.net.label_of(link)

    def flows_on(self, switch: object, fields: FieldValues,
                 target: object) -> List[Tuple[int, int]]:
        link = (self.encode_node(switch, fields),
                self.encode_node(target, fields))
        return self.net.flows_on(link)

    def __repr__(self) -> str:
        return (f"MultiFieldDeltaNet(fields={self.schema.names}, "
                f"rules={self.num_rules}, nodes={self.num_nodes}, "
                f"atoms={self.num_atoms})")
