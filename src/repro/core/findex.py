"""The persistent forwarding index: check-path twin of the delta-graph.

Delta-net's update path is incremental by construction (Algorithms 1/2
touch only the modified atoms), but the seed's *check* path was not: on
every update the loop checker rebuilt a ``source -> out-links`` map from
the whole label table — O(E) per check — and chased next hops with
per-atom set membership scans.

:class:`ForwardingIndex` removes that rebuild.  It owns the edge labels
(``by_link``: one :class:`~repro.structures.atomruns.AtomRuns` per link)
and, sharing those exact AtomRuns objects, a per-source view
(``by_source``: ``node -> {link: AtomRuns}``).  Both views are mutated
together by :meth:`add` / :meth:`discard`, which is what
:class:`~repro.core.deltanet.DeltaNet` calls from every label change —
single-op and batched alike.  Checkers then chase forwarding paths with
:meth:`next_hop` (out-links of a node are one dict lookup, membership is
O(log runs)) and never touch the full edge set again.

Because the per-source view stores *references* to the label AtomRuns,
the index costs O(nodes + links) extra words on top of the labels — it
is a second key arrangement, not a second copy.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.core.rules import Link
from repro.integrity.digest import LabelDigest, digests_enabled
from repro.structures.atomruns import AtomRuns

#: The memoized ``(node, atom) -> next node`` chase function handed to
#: one property check (see :meth:`ForwardingIndex.resolver`).
NextHop = Callable[[object, int], Optional[object]]

_MISS = object()


class ForwardingIndex:
    """Edge labels plus their per-source arrangement, maintained together."""

    __slots__ = ("by_link", "by_source", "digest")

    def __init__(self) -> None:
        #: ``link -> AtomRuns`` — THE label table (links with empty
        #: labels are absent, as in the seed's label dict).
        self.by_link: Dict[Link, AtomRuns] = {}
        #: ``source -> {link: AtomRuns}`` — same AtomRuns objects,
        #: grouped by the node the traffic leaves.
        self.by_source: Dict[object, Dict[Link, AtomRuns]] = {}
        #: Incremental ``(link, atom)`` membership digest, maintained by
        #: every writer below in O(changed entries); ``None`` when
        #: ``DELTANET_DIGESTS=0`` (the digest-free perf baseline).
        self.digest = LabelDigest() if digests_enabled() else None

    # -- label mutation (the only writers) -------------------------------------

    def add(self, link: Link, atom: int) -> None:
        """``atom`` starts flowing along ``link``."""
        runs = self.by_link.get(link)
        if runs is None:
            runs = self.by_link[link] = AtomRuns()
            bucket = self.by_source.get(link.source)
            if bucket is None:
                bucket = self.by_source[link.source] = {}
            bucket[link] = runs
        if runs.add(atom) and self.digest is not None:
            self.digest.add(link, atom)

    def discard(self, link: Link, atom: int) -> None:
        """``atom`` stops flowing along ``link``; drops emptied entries."""
        runs = self.by_link.get(link)
        if runs is None:
            return
        if runs.discard(atom) and self.digest is not None:
            self.digest.remove(link, atom)
        if not runs:
            del self.by_link[link]
            bucket = self.by_source[link.source]
            del bucket[link]
            if not bucket:
                del self.by_source[link.source]

    def apply_delta(self, delta_graph) -> None:
        """Replay a :class:`~repro.core.delta_graph.DeltaGraph` into the
        index — for indexes maintained *outside* a DeltaNet (mirrors,
        tests).  DeltaNet itself publishes per label change instead.

        Splits replay first (a split's new atom inherits every label of
        the old atom; that is not a flow change, so the delta records it
        only in ``splits``), then removed/added flows, then GC'd atoms
        are erased everywhere.  Exact for single-op and
        ``apply_batch`` deltas, whose records are at final atom
        granularity; a hand-``merge``-d multi-op aggregate may interleave
        splits and GC in ways a linear replay cannot reconstruct.
        """
        digest = self.digest
        for old_atom, new_atom in delta_graph.splits:
            for link, runs in self.by_link.items():
                if old_atom in runs and runs.add(new_atom) and \
                        digest is not None:
                    digest.add(link, new_atom)
        for link, atoms in delta_graph.removed.items():
            for atom in atoms:
                self.discard(link, atom)
        for link, atoms in delta_graph.added.items():
            for atom in atoms:
                self.add(link, atom)
        for dead_atom in delta_graph.collected:
            for link in list(self.by_link):
                self.discard(link, dead_atom)

    # -- chase primitives (the readers) ----------------------------------------

    def out_links(self, node: object) -> Dict[Link, AtomRuns]:
        """The labelled out-edges of ``node`` (possibly empty, read-only)."""
        return self.by_source.get(node) or {}

    def next_hop(self, node: object, atom: int) -> Optional[object]:
        """The unique next hop of an ``atom``-packet at ``node``, if any."""
        links = self.by_source.get(node)
        if links:
            for link, runs in links.items():
                if atom in runs:
                    return link.target
        return None

    def resolver(self) -> NextHop:
        """A memoizing :meth:`next_hop` for ONE property check.

        Loop/path chases revisit the same ``(node, atom)`` pairs many
        times within a check (every start whose path crosses an already
        classified node); the returned closure caches resolutions so
        each pair pays the out-link scan once.  The cache is only valid
        while the labels do not change — take a fresh resolver per
        check, never cache one across updates.
        """
        cache: Dict[Tuple[object, int], Optional[object]] = {}
        by_source = self.by_source

        def next_hop(node: object, atom: int) -> Optional[object]:
            key = (node, atom)
            hop = cache.get(key, _MISS)
            if hop is not _MISS:
                return hop
            hop = None
            links = by_source.get(node)
            if links:
                for link, runs in links.items():
                    if atom in runs:
                        hop = link.target
                        break
            cache[key] = hop
            return hop

        return next_hop

    def set_label(self, link: Link, runs: AtomRuns) -> None:
        """Install a whole label bucket at once (snapshot restore).

        Both views adopt the same ``runs`` object, preserving the
        shared-reference invariant :meth:`check_consistency` asserts.
        Empty buckets are rejected — emptiness is represented by absence.
        """
        if not runs:
            raise ValueError(f"refusing to install empty label for {link}")
        if self.digest is not None:
            old = self.by_link.get(link)
            if old is not None:
                for start, end in old.runs():
                    for atom in range(start, end):
                        self.digest.remove(link, atom)
            self.digest.add_runs(link, runs.runs())
        self.by_link[link] = runs
        bucket = self.by_source.get(link.source)
        if bucket is None:
            bucket = self.by_source[link.source] = {}
        bucket[link] = runs

    # -- bulk construction / diagnostics ---------------------------------------

    @classmethod
    def from_labels(cls, labels: Iterable[Tuple[Link, Iterable[int]]]
                    ) -> "ForwardingIndex":
        """Build an index from ``(link, atoms)`` pairs (tests, mirrors)."""
        index = cls()
        for link, atoms in labels:
            for atom in atoms:
                index.add(link, atom)
        return index

    def recompute_digest(self) -> LabelDigest:
        """A from-scratch :class:`LabelDigest` of the current labels.

        The scrubber's reference value: iterates every ``(link, atom)``
        membership entry into a fresh accumulator, independent of the
        incrementally maintained :attr:`digest`.
        """
        fresh = LabelDigest()
        for link, runs in self.by_link.items():
            fresh.add_runs(link, runs.runs())
        return fresh

    def label_stats(self) -> Dict[str, int]:
        """Size counters for the memory table: links, atoms, runs."""
        links = len(self.by_link)
        atom_entries = sum(len(runs) for runs in self.by_link.values())
        runs = sum(runs.num_runs for runs in self.by_link.values())
        return {"links": links, "label_atoms": atom_entries,
                "label_runs": runs}

    def check_consistency(self) -> None:
        """Assert the two views agree exactly (tests/debugging)."""
        flattened = {link: runs
                     for bucket in self.by_source.values()
                     for link, runs in bucket.items()}
        assert set(flattened) == set(self.by_link), (
            "by_source and by_link index different link sets")
        for link, runs in self.by_link.items():
            assert flattened[link] is runs, (
                f"by_source holds a different AtomRuns for {link}")
            assert runs, f"empty label bucket for {link} was not dropped"
            assert link.source in self.by_source
        for source, bucket in self.by_source.items():
            assert bucket, f"empty out-link bucket for {source} not dropped"
            for link in bucket:
                assert link.source == source

    def __repr__(self) -> str:
        stats = self.label_stats()
        return (f"ForwardingIndex(links={stats['links']}, "
                f"atoms={stats['label_atoms']}, runs={stats['label_runs']}, "
                f"sources={len(self.by_source)})")
