"""Half-closed integer intervals ``[lo : hi)`` and disjoint interval sets.

Delta-net represents every IP prefix as a half-closed interval over the
packet-header field's value space (paper §2.1, §3): the IPv4 prefix
``0.0.0.10/31`` is the interval ``[10 : 12)``.  Atoms are themselves
half-closed intervals, and several baselines (the atomic-predicates
verifier, Veriflow-RI's equivalence classes) manipulate *sets* of disjoint
intervals, which :class:`IntervalSet` provides.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple


class Interval(Tuple[int, int]):
    """An immutable half-closed interval ``[lo : hi)`` with ``lo < hi``.

    >>> Interval(10, 12)
    [10:12)
    >>> 11 in Interval(10, 12), 12 in Interval(10, 12)
    (True, False)
    """

    __slots__ = ()

    def __new__(cls, lo: int, hi: int) -> "Interval":
        if lo >= hi:
            raise ValueError(f"empty interval [{lo}:{hi})")
        return tuple.__new__(cls, (lo, hi))

    @property
    def lo(self) -> int:
        return self[0]

    @property
    def hi(self) -> int:
        return self[1]

    def __contains__(self, point: object) -> bool:
        return isinstance(point, int) and self[0] <= point < self[1]

    def __len__(self) -> int:
        return self[1] - self[0]

    def overlaps(self, other: "Interval") -> bool:
        return self[0] < other[1] and other[0] < self[1]

    def contains_interval(self, other: "Interval") -> bool:
        return self[0] <= other[0] and other[1] <= self[1]

    def intersect(self, other: "Interval") -> "Interval":
        """Intersection; raises ValueError when disjoint."""
        return Interval(max(self[0], other[0]), min(self[1], other[1]))

    def __repr__(self) -> str:
        return f"[{self[0]}:{self[1]})"


def normalize(pairs: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort, merge and drop empty ``(lo, hi)`` pairs.

    The result is the canonical minimal list of disjoint, non-adjacent
    half-closed intervals covering the same points.
    """
    cleaned = sorted((lo, hi) for lo, hi in pairs if lo < hi)
    merged: List[Tuple[int, int]] = []
    for lo, hi in cleaned:
        if merged and lo <= merged[-1][1]:
            last_lo, last_hi = merged[-1]
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


class IntervalSet:
    """A set of integers stored as canonical disjoint half-closed intervals.

    Supports the Boolean operations the atomic-predicates baseline needs
    (union, intersection, difference, complement within a universe) plus
    membership and size queries.  All operations are O(n + m) merges over
    the sorted interval lists.

    >>> a = IntervalSet([(0, 10)])
    >>> b = IntervalSet([(5, 12)])
    >>> (a & b).spans
    [(5, 10)]
    >>> (a - b).spans
    [(0, 5)]
    """

    __slots__ = ("spans",)

    def __init__(self, pairs: Iterable[Tuple[int, int]] = ()) -> None:
        self.spans: List[Tuple[int, int]] = normalize(pairs)

    @classmethod
    def _from_normalized(cls, spans: List[Tuple[int, int]]) -> "IntervalSet":
        out = cls.__new__(cls)
        out.spans = spans
        return out

    @classmethod
    def universe(cls, width: int) -> "IntervalSet":
        return cls([(0, 1 << width)])

    def is_empty(self) -> bool:
        return not self.spans

    def __bool__(self) -> bool:
        return bool(self.spans)

    def __len__(self) -> int:
        """Number of integer points covered."""
        return sum(hi - lo for lo, hi in self.spans)

    def __contains__(self, point: int) -> bool:
        import bisect

        idx = bisect.bisect_right(self.spans, (point, float("inf"))) - 1
        if idx < 0:
            return False
        lo, hi = self.spans[idx]
        return lo <= point < hi

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntervalSet) and self.spans == other.spans

    def __hash__(self) -> int:
        return hash(tuple(self.spans))

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.spans)

    # -- Boolean algebra -----------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self.spans + other.spans)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        out: List[Tuple[int, int]] = []
        i = j = 0
        a, b = self.spans, other.spans
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet._from_normalized(out)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        out: List[Tuple[int, int]] = []
        j = 0
        b = other.spans
        for lo, hi in self.spans:
            cursor = lo
            while j < len(b) and b[j][1] <= cursor:
                j += 1
            k = j
            while k < len(b) and b[k][0] < hi:
                cut_lo, cut_hi = b[k]
                if cut_lo > cursor:
                    out.append((cursor, min(cut_lo, hi)))
                cursor = max(cursor, cut_hi)
                if cursor >= hi:
                    break
                k += 1
            if cursor < hi:
                out.append((cursor, hi))
        return IntervalSet._from_normalized(normalize(out))

    def complement(self, width: int) -> "IntervalSet":
        return IntervalSet.universe(width).difference(self)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def boundaries(self) -> List[int]:
        """All interval endpoints, sorted and de-duplicated."""
        points = sorted({p for lo, hi in self.spans for p in (lo, hi)})
        return points

    def sample_points(self) -> List[int]:
        """One representative point per span (the span's low end)."""
        return [lo for lo, _hi in self.spans]

    def __repr__(self) -> str:
        body = ", ".join(f"[{lo}:{hi})" for lo, hi in self.spans)
        return f"IntervalSet({body})"
