"""Atom-set representations for edge labels.

Incremental rule updates (Algorithms 1/2) add and discard single atoms,
for which Python's built-in ``set`` is ideal (O(1) per update).  Bulk
lattice operations — Algorithm 3's all-pairs closure, what-if queries,
isolation checks — are dominated by unions/intersections over whole
labels, for which arbitrary-precision integers used as bitmasks are far
faster (word-parallel ``&``/``|`` in C).

This module converts between the two and provides the handful of bitmask
primitives the checkers need.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple


def atoms_to_bitmask(atoms: Iterable[int]) -> int:
    """Pack atom identifiers into an int bitmask."""
    mask = 0
    for atom in atoms:
        if atom < 0:
            raise ValueError(f"cannot pack sentinel atom {atom}")
        mask |= 1 << atom
    return mask


def bitmask_to_atoms(mask: int) -> Set[int]:
    """Unpack an int bitmask into a set of atom identifiers."""
    if mask < 0:
        raise ValueError("negative bitmask")
    out: Set[int] = set()
    position = 0
    while mask:
        chunk = mask & 0xFFFFFFFFFFFFFFFF
        while chunk:
            low = chunk & -chunk
            out.add(position + low.bit_length() - 1)
            chunk ^= low
        mask >>= 64
        position += 64
    return out


def iter_bits(mask: int) -> Iterator[int]:
    """Yield set-bit positions of ``mask`` in ascending order."""
    position = 0
    while mask:
        chunk = mask & 0xFFFFFFFFFFFFFFFF
        while chunk:
            low = chunk & -chunk
            yield position + low.bit_length() - 1
            chunk ^= low
        mask >>= 64
        position += 64


def popcount(mask: int) -> int:
    """Number of set bits (atoms) in the mask."""
    return bin(mask).count("1")


def label_map_to_bitmasks(label: Dict[object, Set[int]]) -> Dict[object, int]:
    """Convert a ``link -> set(atom)`` label map to ``link -> bitmask``."""
    return {link: atoms_to_bitmask(atoms) for link, atoms in label.items() if atoms}


def atoms_to_interval_set(atoms: Iterable[int], atom_table) -> List[Tuple[int, int]]:
    """Merge a set of atoms back into canonical disjoint intervals.

    Useful for reporting: a set of atoms is a union of half-closed
    intervals of the header space (e.g. "which packets does this link
    carry?").
    """
    from repro.core.intervals import normalize

    return normalize(atom_table.atom_interval(a) for a in atoms)
