"""Atom-set representations for edge labels.

Incremental rule updates (Algorithms 1/2) add and discard single atoms,
which the run-length :class:`~repro.structures.atomruns.AtomRuns` labels
absorb at their run boundaries.  Bulk lattice operations — Algorithm 3's
all-pairs closure, what-if queries, isolation checks — are dominated by
unions/intersections over whole labels, for which arbitrary-precision
integers used as bitmasks are far faster (word-parallel ``&``/``|`` in C).

This module converts between the representations and provides the
handful of bitmask primitives the checkers need.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

_CHUNK_BITS = 64
_CHUNK_MASK = (1 << _CHUNK_BITS) - 1


def atoms_to_bitmask(atoms: Iterable[int]) -> int:
    """Pack atom identifiers into an int bitmask."""
    mask = 0
    for atom in atoms:
        if atom < 0:
            raise ValueError(f"cannot pack sentinel atom {atom}")
        mask |= 1 << atom
    return mask


def _scan_bits(mask: int) -> Iterator[int]:
    """Yield set-bit positions of ``mask`` ascending (the one bit-scan
    loop behind :func:`bitmask_to_atoms` and :func:`iter_bits`)."""
    if mask < 0:
        raise ValueError("negative bitmask")
    position = 0
    while mask:
        chunk = mask & _CHUNK_MASK
        while chunk:
            low = chunk & -chunk
            yield position + low.bit_length() - 1
            chunk ^= low
        mask >>= _CHUNK_BITS
        position += _CHUNK_BITS


def bitmask_to_atoms(mask: int) -> Set[int]:
    """Unpack an int bitmask into a set of atom identifiers."""
    if mask < 0:
        raise ValueError("negative bitmask")
    return set(_scan_bits(mask))


def iter_bits(mask: int) -> Iterator[int]:
    """Yield set-bit positions of ``mask`` in ascending order."""
    return _scan_bits(mask)


if hasattr(int, "bit_count"):  # Python >= 3.10: one CPython opcode away
    def popcount(mask: int) -> int:
        """Number of set bits (atoms) in the mask."""
        return mask.bit_count()
else:  # pragma: no cover - exercised only on Python 3.9
    def popcount(mask: int) -> int:
        """Number of set bits (atoms) in the mask (pre-3.10 fallback)."""
        return bin(mask).count("1")


def label_bitmask(bucket) -> int:
    """A label bucket as a bitmask.

    Run-length buckets convert in O(runs) via ``AtomRuns.to_bitmask``;
    anything else (plain sets, frozensets, iterables) is packed atom by
    atom.
    """
    to_bitmask = getattr(bucket, "to_bitmask", None)
    if to_bitmask is not None:
        return to_bitmask()
    return atoms_to_bitmask(bucket)


def label_map_to_bitmasks(label: Dict[object, Set[int]]) -> Dict[object, int]:
    """Convert a ``link -> atom container`` label map to ``link -> bitmask``."""
    return {link: label_bitmask(atoms) for link, atoms in label.items() if atoms}


def atoms_to_interval_set(atoms: Iterable[int], atom_table) -> List[Tuple[int, int]]:
    """Merge a set of atoms back into canonical disjoint intervals.

    Useful for reporting: a set of atoms is a union of half-closed
    intervals of the header space (e.g. "which packets does this link
    carry?").
    """
    from repro.core.intervals import normalize

    return normalize(atom_table.atom_interval(a) for a in atoms)
