"""Command-line interface: generate datasets, replay them, run queries.

Engines are resolved through the backend registry
(:func:`repro.api.available_backends`), so every registered verifier —
including ones registered by downstream code — is replayable by name.

Examples::

    deltanet backends
    deltanet generate Berkeley --scale 2 -o berkeley.ops
    deltanet replay berkeley.ops --engine deltanet
    deltanet replay berkeley.ops --engine sharded
    deltanet replay berkeley.ops --checkpoint state/ --resume
    deltanet replay berkeley.ops --diff-oracle
    deltanet serve --store state/ --listen 127.0.0.1:9900
    deltanet whatif Berkeley --scale 1
    deltanet datasets
    deltanet scenario list
    deltanet scenario run link-flaps --seed 7 --backend sharded
    deltanet fuzz --budget 200
    deltanet fuzz --budget 50 --chaos --backends deltanet,sharded,parallel
    deltanet fuzz --replay artifacts/repro-link-flaps-seed99.repro
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.cdf import ascii_cdf
from repro.analysis.memory import deep_size, format_bytes
from repro.analysis.tables import render_table
from repro.api import (
    LinkDown, Loops, UnknownBackendError, available_backends,
    backend_description,
)
from repro.datasets import (
    DATASET_BUILDERS, PAPER_TABLE2, build_dataset, load_ops, save_ops,
)
from repro.replay import (
    ReplayResult, SessionEngine, engine_names, make_engine, replay,
)
from repro.scenarios import ScenarioError

#: Exceptions `main` turns into a message + exit 2 (no bare tracebacks).
_READABLE_ERRORS = (ScenarioError, UnknownBackendError)


def _cmd_datasets(_args: argparse.Namespace) -> int:
    rows = []
    for name, (nodes, links, ops) in PAPER_TABLE2.items():
        rows.append((name, nodes, links, f"{ops:.3g}"))
    print(render_table(("Data set", "Paper nodes", "Paper max links",
                        "Paper operations"), rows,
                       title="Table 2 datasets (paper scale; use `generate`)"))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = build_dataset(args.dataset, scale=args.scale)
    count = save_ops(dataset.ops, args.output)
    print(f"{dataset.name}: wrote {count} operations to {args.output}")
    print(f"  nodes={dataset.num_nodes} links={dataset.num_links} "
          f"inserts={dataset.num_inserts}")
    return 0


def _cmd_backends(_args: argparse.Namespace) -> int:
    rows = [(name, backend_description(name))
            for name in available_backends()]
    rows.append(("deltanet-gc", "Delta-net with atom garbage collection "
                 "(§3.2.2 remark)"))
    print(render_table(("Backend", "Description"), sorted(rows),
                       title="Registered verification backends "
                             "(`replay --engine <name>`)"))
    return 0


def _replay_diff_oracle(args: argparse.Namespace, ops) -> int:
    """Replay vs. the sweep oracle: readable diff + exit 1 on mismatch."""
    from repro.scenarios import (
        PropertySpec, Scenario, diff_streams, replay_signatures, SweepOracle,
    )

    engine, options = args.engine, {}
    if engine == "deltanet-gc":
        engine, options = "deltanet", {"gc": True}
    scenario = Scenario(
        family="opsfile", name=args.opsfile, seed=0, scale=1.0,
        topology=None, ops=list(ops),
        property_specs=[PropertySpec.of("loops")])
    scenario.validate()
    oracle = SweepOracle(scenario.property_specs, width=scenario.width)
    oracle_stream = oracle.stream(scenario.ops)
    run = replay_signatures(scenario, engine, **options)
    if run.error is not None:
        print(f"{args.engine}: backend error during replay: {run.error}",
              file=sys.stderr)
        return 1
    divergences = diff_streams(engine, scenario.ops, oracle_stream,
                               run.delivered)
    oracle_total = sum(len(batch) for batch in oracle_stream)
    print(f"{args.engine} vs sweep oracle: {len(ops)} ops, "
          f"{oracle_total} oracle violations, "
          f"{run.num_violations} backend violations")
    if not divergences:
        print("OK: the backend's alert stream matches the oracle")
        return 0
    for divergence in divergences:
        print(divergence.describe())
    print("FAIL: backend/oracle disagreement (see diff above)",
          file=sys.stderr)
    return 1


def _cmd_replay(args: argparse.Namespace) -> int:
    import os

    ops = load_ops(args.opsfile)
    if (args.resume or args.stop_after) and not args.checkpoint:
        print("--resume/--stop-after require --checkpoint DIR",
              file=sys.stderr)
        return 2
    if args.diff_oracle:
        incompatible = [flag for flag, value in (
            ("--batch", args.batch), ("--checkpoint", args.checkpoint),
            ("--resume", args.resume), ("--no-check", args.no_check),
            ("--stop-after", args.stop_after)) if value]
        if incompatible:
            print(f"--diff-oracle is incompatible with "
                  f"{', '.join(incompatible)} (it re-checks every single "
                  f"op against the sweep oracle)", file=sys.stderr)
            return 2
        return _replay_diff_oracle(args, ops)
    if args.resume:
        engine, info = SessionEngine.resume(
            args.checkpoint, check_loops=not args.no_check,
            checkpoint_every=args.checkpoint_every)
        if engine.backend_name != args.engine.replace("-gc", ""):
            print(f"note: checkpoint was written by backend "
                  f"{engine.backend_name!r}; resuming with it")
        skip = engine.session.sequence
        if skip > len(ops):
            print(f"checkpoint sequence {skip} exceeds the ops file "
                  f"({len(ops)} ops); wrong --checkpoint dir?",
                  file=sys.stderr)
            engine.close()
            return 2
        print(f"resumed at sequence {skip} "
              f"(snapshot {info.snapshot_sequence} + {info.replayed} "
              f"journaled ops{', torn tail truncated' if info.torn_tail else ''})")
        ops = ops[skip:]
    else:
        if args.checkpoint:
            from repro.persist import SessionStore

            if SessionStore(args.checkpoint).exists():
                print(f"{args.checkpoint!r} already holds a recoverable "
                      f"checkpoint; pass --resume to continue it, or "
                      f"remove the directory to start over",
                      file=sys.stderr)
                return 2
        engine = make_engine(args.engine, check_loops=not args.no_check,
                             checkpoint_dir=args.checkpoint,
                             checkpoint_every=args.checkpoint_every)
    crashed = False
    if args.stop_after is not None and args.stop_after < len(ops):
        ops = ops[:args.stop_after]
        crashed = True
    try:
        result = replay(ops, engine, engine_name=args.engine,
                        batch_size=args.batch)
        micro = 1e6
        mode = f" (batch={args.batch})" if args.batch else ""
        print(f"{args.engine}{mode}: {result.num_ops} ops, "
              f"{result.loops_found} loops found")
        if result.times:
            summary = result.summary()
            print(f"  median={summary['median'] * micro:.1f}us "
                  f"mean={summary['mean'] * micro:.1f}us "
                  f"p99={summary['p99'] * micro:.1f}us "
                  f"max={summary['max'] * micro:.1f}us "
                  f"total={summary['total']:.3f}s "
                  f"throughput={result.num_ops / max(summary['total'], 1e-12):,.0f} ops/s")
        if args.checkpoint:
            print(f"  sequence={engine.session.sequence} "
                  f"cumulative_violations={len(engine.session.violations())}")
        if args.cdf:
            print(ascii_cdf({args.engine: result.times}))
        if engine.num_atoms is not None:
            print(f"  atoms={engine.num_atoms} "
                  f"state={format_bytes(deep_size(engine.session.native))}")
        if crashed:
            # Simulated crash: exit without the final checkpoint or any
            # engine/store teardown, exactly like a kill -9.  Recovery
            # must come from the last checkpoint + journal tail.
            print(f"  simulated crash after {result.num_ops} ops "
                  f"(no final checkpoint; resume with --resume)")
            sys.stdout.flush()
            os._exit(0)
    finally:
        if not crashed:
            engine.close()
    return 0


def _build_data_plane(name: str, scale: float) -> SessionEngine:
    dataset = build_dataset(name, scale=scale)
    engine = make_engine("deltanet", check_loops=False)
    for op in dataset.ops:
        if op.is_insert:
            engine.process(op)
    return engine


def _cmd_allpairs(args: argparse.Namespace) -> int:
    from repro.checkers.allpairs import (
        all_pairs_reachability, loops_from_closure,
    )

    engine = _build_data_plane(args.dataset, args.scale)
    deltanet = engine.session.native
    start = time.perf_counter()
    closure = all_pairs_reachability(deltanet)
    elapsed = time.perf_counter() - start
    looping = loops_from_closure(closure)
    print(f"{args.dataset}: Algorithm 3 over {len(deltanet.nodes)} nodes / "
          f"{deltanet.num_atoms} atoms in {elapsed:.3f}s")
    print(f"  reachable (src, dst) pairs: {len(closure)}")
    print(f"  nodes on forwarding loops: {len(looping)}")
    return 0


def _cmd_blackholes(args: argparse.Namespace) -> int:
    from repro.checkers.blackholes import find_blackholes

    engine = _build_data_plane(args.dataset, args.scale)
    holes = find_blackholes(engine.session.native)
    print(f"{args.dataset}: {len(holes)} node(s) black-hole traffic")
    for node, atoms in sorted(holes.items(), key=lambda kv: repr(kv[0]))[:20]:
        print(f"  {node}: {len(atoms)} packet classes")
    if not holes:
        print("  (none — every delivered packet is forwarded, dropped "
              "explicitly, or terminates at a sink)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import runpy
    import os
    import sys as _sys

    script = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "..", "benchmarks", "run_experiments.py")
    script = os.path.normpath(script)
    if not os.path.exists(script):
        print("benchmarks/run_experiments.py not found; run from a source "
              "checkout", file=sys.stderr)
        return 1
    argv_backup = _sys.argv
    _sys.argv = [script, args.output]
    try:
        runpy.run_path(script, run_name="__main__")
    except SystemExit as exit_info:
        return int(exit_info.code or 0)
    finally:
        _sys.argv = argv_backup
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    dataset = build_dataset(args.dataset, scale=args.scale)
    engine = make_engine("deltanet", check_loops=False)
    for op in dataset.ops:
        if op.is_insert:
            engine.process(op)
    session = engine.session
    links = sorted(session.links(), key=repr)
    if args.speculate:
        return _whatif_speculate(session, dataset, links, args)
    start = time.perf_counter()
    total_classes = 0
    for link in links:
        result = session.query(LinkDown(link, loops=args.loops))
        total_classes += len(result.atoms or ())
    elapsed = time.perf_counter() - start
    print(f"{dataset.name}: {len(links)} link-failure queries in "
          f"{elapsed:.3f}s ({elapsed / max(1, len(links)) * 1e3:.2f} ms avg), "
          f"{total_classes} affected packet classes total")
    return 0


def _whatif_speculate(session, dataset, links, args: argparse.Namespace) -> int:
    """Speculative what-if: fork a copy-on-write child per link, remove
    the link's rules in the child, check loops there, and discard — the
    base session is never touched.
    """
    by_link = {}
    for op in dataset.ops:
        if op.is_insert and op.rule.target is not None:
            by_link.setdefault((op.rule.source, op.rule.target),
                               []).append(op.rule.rid)
    live = set(session.rules())
    start = time.perf_counter()
    loops_total = 0
    for link in links:
        child = session.speculate()
        try:
            rids = [rid for rid in by_link.get(link, ()) if rid in live]
            if rids:
                child.apply_batch([], rids)
            loops_total += len(child.query(Loops()).violations)
        finally:
            child.discard()
    elapsed = time.perf_counter() - start
    print(f"{dataset.name}: {len(links)} speculative link-removal forks "
          f"in {elapsed:.3f}s "
          f"({elapsed / max(1, len(links)) * 1e3:.2f} ms avg), "
          f"{loops_total} loops found across candidates "
          f"(base session untouched at seq {session.sequence})")
    return 0


def _split_backends(text: str) -> List[str]:
    from repro.api import backend_factory

    if text == "all":
        return list(available_backends())
    names = [name for name in text.split(",") if name]
    for name in names:
        backend_factory(name)  # readable UnknownBackendError on typos
    return names


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        build_scenario, family_info, run_scenario, scenario_families,
    )

    if args.action == "list":
        rows = []
        for name in scenario_families():
            family = family_info(name)
            rows.append((name, family.description, family.knobs))
        print(render_table(("Family", "Description", "Seed/scale knobs"),
                           rows, title="Scenario families "
                                       "(`scenario run <family>`)"))
        return 0

    backends = _split_backends(args.backends)
    # The family builders generate 32-bit prefixes; width is not a
    # user knob here.
    scenario = build_scenario(args.family, seed=args.seed,
                              scale=args.scale)
    print(scenario.describe())
    for aspect, note in sorted(scenario.expectations.items()):
        print(f"  expect[{aspect}]: {note}")
    if args.save:
        count = save_ops(scenario.ops, args.save)
        print(f"wrote {count} ops to {args.save}")
    report = run_scenario(scenario, backends)
    print(report.describe())
    if report.ok:
        print(f"OK: {len(backends)} backend(s) agree with the sweep "
              f"oracle on all {scenario.num_ops} updates")
        return 0
    # A divergence is the whole point of this command existing: report
    # it readably (the describe() above already printed the diff) and
    # leave a minimized repro behind instead of a traceback.
    if args.artifacts:
        from repro.fuzz import minimize_failure, save_failure_artifacts

        failure = minimize_failure(scenario, report,
                                   max_probes=args.shrink_probes)
        save_failure_artifacts(failure, report, backends, args.artifacts)
        print(f"minimized repro ({len(failure.shrunk_ops)} ops): "
              f"{failure.repro_path} (text twin: {failure.ops_path})")
    print("FAIL: backend/oracle disagreement (see diff above)",
          file=sys.stderr)
    return 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import fuzz, replay_repro

    if args.chaos and args.corrupt:
        print("--chaos (process faults) and --corrupt (state corruption) "
              "are separate campaigns; pick one", file=sys.stderr)
        return 2
    if args.speculate and (args.chaos or args.corrupt):
        print("--speculate replays fault-free traces through speculative "
              "forks; it is incompatible with --chaos/--corrupt",
              file=sys.stderr)
        return 2
    if args.replay and (args.chaos or args.corrupt or args.speculate):
        print("--replay re-runs a saved repro fault-free; it is "
              "incompatible with --chaos/--corrupt/--speculate",
              file=sys.stderr)
        return 2
    if args.replay:
        # Without --backends, replay what the file recorded; an
        # explicit --backends (including 'all') overrides it.
        backends = (_split_backends(args.backends)
                    if args.backends is not None else None)
        report = replay_repro(args.replay, backends=backends)
        print(report.describe())
        if report.ok:
            print("OK: the saved repro no longer diverges")
            return 0
        print("FAIL: the saved repro still diverges (see diff above)",
              file=sys.stderr)
        return 1
    backends = _split_backends(args.backends or "all")
    families = ([name for name in args.families.split(",") if name]
                if args.families else None)
    report = fuzz(args.budget, seed=args.seed, backends=backends,
                  families=families, artifacts_dir=args.artifacts,
                  time_budget=args.time_budget,
                  shrink_probes=args.shrink_probes,
                  chaos=args.chaos, chaos_faults=args.chaos_faults,
                  corrupt=args.corrupt, speculate=args.speculate,
                  log=None if args.quiet else print)
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        DrainRequested, StreamServer, install_sigterm_drain, serve_socket,
        serve_stdio,
    )

    engine = args.engine
    options = {}
    if engine == "deltanet-gc":
        engine, options = "deltanet", {"gc": True}
    properties = tuple(name for name in args.properties.split(",") if name)
    log = lambda line: print(f"# {line}", file=sys.stderr, flush=True)
    if args.multi:
        return _serve_multi(args, engine, properties, options, log)
    server = StreamServer(
        args.store, engine=engine, width=args.width,
        checkpoint_every=args.checkpoint_every,
        checkpoint_interval=args.checkpoint_interval,
        properties=properties,
        request_timeout=args.request_timeout,
        max_queue=args.max_queue,
        retry_after=args.retry_after,
        max_line_bytes=args.max_line_bytes,
        scrub_interval=args.scrub_interval,
        scrub_budget=args.scrub_budget,
        log=log,
        **options)
    install_sigterm_drain(server)
    try:
        if args.listen:
            host, _sep, port = args.listen.rpartition(":")
            serve_socket(server, host or "127.0.0.1", int(port),
                         ready=lambda h, p: print(f"# listening on {h}:{p}",
                                                  file=sys.stderr,
                                                  flush=True))
        else:
            serve_stdio(server, sys.stdin, sys.stdout)
    except DrainRequested:
        # SIGTERM mid-wait: fall through to the same final-checkpoint
        # close() a protocol `shutdown` takes.
        log("SIGTERM: draining, writing final checkpoint")
    finally:
        server.close()
    return 0


def _serve_multi(args: argparse.Namespace, engine: str, properties, options,
                 log) -> int:
    """Multi-tenant mode: --store is a sessions root served by the hub."""
    import asyncio

    from repro.serve import (
        AsyncSessionHub, DrainRequested, SessionManager, install_sigterm_drain,
        serve_hub_stdio, serve_hub_tcp,
    )

    defaults = dict(
        engine=engine, width=args.width,
        checkpoint_every=args.checkpoint_every,
        checkpoint_interval=args.checkpoint_interval,
        properties=properties,
        request_timeout=args.request_timeout,
        max_queue=args.max_queue,
        retry_after=args.retry_after,
        max_line_bytes=args.max_line_bytes,
        scrub_interval=args.scrub_interval,
        scrub_budget=args.scrub_budget,
        **options)
    manager = SessionManager(args.store, log=log, defaults=defaults)
    hub = AsyncSessionHub(manager, retry_after=args.retry_after,
                          max_line_bytes=args.max_line_bytes, log=log)

    def boot() -> None:
        for name in (n for n in (args.open or "").split(",") if n):
            manager.open(name)
            log(f"pre-opened session {name!r}")

    if args.listen:
        host, _sep, port = args.listen.rpartition(":")

        async def main() -> None:
            boot()
            await serve_hub_tcp(
                hub, host or "127.0.0.1", int(port),
                ready=lambda h, p: print(f"# listening on {h}:{p}",
                                         file=sys.stderr, flush=True),
                install_signals=True)

        asyncio.run(main())
        return 0

    # stdio compatibility mode: the main thread blocks on readline, so
    # SIGTERM can break the read with DrainRequested like single mode.
    class _DrainShim:
        draining = False
        _busy = False

        def request_drain(self) -> None:
            self.draining = True
            hub.request_stop()

    install_sigterm_drain(_DrainShim())
    boot()
    try:
        serve_hub_stdio(hub, sys.stdin, sys.stdout)
    except DrainRequested:
        log("SIGTERM: draining, writing final checkpoints")
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="deltanet",
        description="Delta-net (NSDI'17) reproduction: datasets, replay, queries")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table 2 datasets")

    sub.add_parser("backends", help="list the registered verifier backends")

    generate = sub.add_parser("generate", help="generate a dataset ops file")
    generate.add_argument("dataset", choices=sorted(DATASET_BUILDERS))
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--scale", type=float, default=1.0)

    replay_cmd = sub.add_parser("replay", help="replay an ops file")
    replay_cmd.add_argument("opsfile")
    replay_cmd.add_argument("--engine", default="deltanet",
                            choices=engine_names(),
                            help="verification backend (see `deltanet backends`)")
    replay_cmd.add_argument("--no-check", action="store_true",
                            help="skip per-update loop checking")
    replay_cmd.add_argument("--batch", type=_positive_int, default=None,
                            metavar="N",
                            help="apply ops in aggregated batches of up to "
                                 "N (amortizes update + check costs)")
    replay_cmd.add_argument("--cdf", action="store_true",
                            help="print an ASCII CDF of per-op times")
    replay_cmd.add_argument("--checkpoint", metavar="DIR", default=None,
                            help="journal ops and snapshot every "
                                 "--checkpoint-every ops into DIR "
                                 "(see docs/operations.md)")
    replay_cmd.add_argument("--checkpoint-every", type=_positive_int,
                            default=1000, metavar="N",
                            help="snapshot cadence in ops (default 1000)")
    replay_cmd.add_argument("--resume", action="store_true",
                            help="recover from --checkpoint DIR and "
                                 "continue the ops file from the "
                                 "recovered sequence")
    replay_cmd.add_argument("--stop-after", type=_positive_int, default=None,
                            metavar="N",
                            help="simulate a crash: hard-exit after N ops "
                                 "without a final checkpoint")
    replay_cmd.add_argument("--diff-oracle", action="store_true",
                            help="diff the engine's per-op loop alerts "
                                 "against the sweep oracle; exit 1 with a "
                                 "readable diff on disagreement")

    scenario = sub.add_parser(
        "scenario", help="build and differentially run scenario traces")
    scenario_sub = scenario.add_subparsers(dest="action", required=True)
    scenario_sub.add_parser("list", help="catalogue the scenario families")
    scenario_run = scenario_sub.add_parser(
        "run", help="run one scenario through backend(s) + the sweep oracle")
    scenario_run.add_argument("family",
                              help="scenario family (see `scenario list`)")
    scenario_run.add_argument("--seed", type=int, default=0)
    scenario_run.add_argument("--scale", type=float, default=1.0)
    scenario_run.add_argument("--backends", default="deltanet",
                              metavar="A,B|all",
                              help="comma-separated backends, or 'all' "
                                   "(default: deltanet)")
    scenario_run.add_argument("--save", metavar="FILE", default=None,
                              help="also write the trace as a replayable "
                                   ".ops text file")
    scenario_run.add_argument("--artifacts", metavar="DIR", default=None,
                              help="on divergence, write a minimized repro "
                                   "file + .ops twin into DIR")
    scenario_run.add_argument("--shrink-probes", type=_positive_int,
                              default=150, metavar="N",
                              help="shrinker replay budget (default 150)")

    fuzz_cmd = sub.add_parser(
        "fuzz", help="differential fuzzer: random scenarios through every "
                     "backend vs the sweep oracle")
    fuzz_cmd.add_argument("--budget", type=_positive_int, default=100,
                          metavar="N",
                          help="number of random traces (default 100)")
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="campaign seed (default 0)")
    fuzz_cmd.add_argument("--backends", default=None, metavar="A,B|all",
                          help="comma-separated backends, or 'all' for "
                               "every registered one (campaign default: "
                               "all; --replay default: the file's "
                               "recorded list)")
    fuzz_cmd.add_argument("--families", default=None, metavar="A,B",
                          help="restrict to these scenario families")
    fuzz_cmd.add_argument("--artifacts", metavar="DIR", default=None,
                          help="write minimized repro files here on failure")
    fuzz_cmd.add_argument("--time-budget", type=float, default=None,
                          metavar="SECONDS",
                          help="stop early once SECONDS elapsed (CI smoke)")
    fuzz_cmd.add_argument("--shrink-probes", type=_positive_int, default=150,
                          metavar="N")
    fuzz_cmd.add_argument("--chaos", action="store_true",
                          help="replay every trace under a seed-derived "
                               "fault plan (worker kills, torn journals, "
                               "checkpoint crashes) and require the "
                               "recovered stream to still match the "
                               "fault-free oracle")
    fuzz_cmd.add_argument("--chaos-faults", type=_positive_int, default=4,
                          metavar="N",
                          help="fault events injected per trace in "
                               "--chaos mode (default 4)")
    fuzz_cmd.add_argument("--corrupt", action="store_true",
                          help="corrupt state instead of killing "
                               "processes: snapshot byte flips, journal "
                               "payload mutations, shard desyncs, and "
                               "daemon frame mutation — failures must be "
                               "loud or answers correct, never silently "
                               "wrong")
    fuzz_cmd.add_argument("--speculate", action="store_true",
                          help="additionally replay every trace through "
                               "copy-on-write speculative forks (random "
                               "chunks, randomized commit/discard) and "
                               "require the committed stream to match "
                               "both the fork's preview and a straight "
                               "replay")
    fuzz_cmd.add_argument("--replay", metavar="FILE", default=None,
                          help="re-run a saved .repro file instead of "
                               "fuzzing (exit 1 if it still diverges)")
    fuzz_cmd.add_argument("-q", "--quiet", action="store_true",
                          help="suppress per-trace progress lines")

    serve = sub.add_parser(
        "serve", help="long-running streaming verification daemon "
                      "(ndjson over stdin or TCP)")
    serve.add_argument("--store", required=True, metavar="DIR",
                       help="checkpoint/journal directory (recovers from "
                            "it when it already holds state)")
    serve.add_argument("--engine", default="deltanet",
                       choices=engine_names())
    serve.add_argument("--width", type=_positive_int, default=32)
    serve.add_argument("--checkpoint-every", type=_positive_int,
                       default=1000, metavar="N")
    serve.add_argument("--checkpoint-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="also snapshot in the background every "
                            "SECONDS (quiet-session durability)")
    serve.add_argument("--listen", metavar="HOST:PORT", default=None,
                       help="serve ndjson over TCP instead of stdin "
                            "(PORT 0 picks a free port)")
    serve.add_argument("--properties", default="loops",
                       help="comma-separated properties to watch on a "
                            "fresh session (default: loops; '' for none)")
    serve.add_argument("--request-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="max seconds a request may wait for the "
                            "session before an immediate 'busy' + "
                            "retry_after response (default: wait forever)")
    serve.add_argument("--max-queue", type=_positive_int, default=64,
                       metavar="N",
                       help="max requests waiting for the session before "
                            "'overloaded' backpressure (default 64)")
    serve.add_argument("--retry-after", type=float, default=1.0,
                       metavar="SECONDS",
                       help="retry_after hint in backpressure responses "
                            "(default 1.0)")
    serve.add_argument("--max-line-bytes", type=_positive_int,
                       default=1 << 20, metavar="N",
                       help="max request frame size; longer lines are "
                            "drained and answered with 'frame too "
                            "large' (default 1 MiB)")
    serve.add_argument("--scrub-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="run one budgeted state-integrity scrub "
                            "step every SECONDS in the background "
                            "(default: off; see 'audit' for on-demand)")
    serve.add_argument("--scrub-budget", type=_positive_int, default=4096,
                       metavar="ENTRIES",
                       help="max digest entries re-verified per scrub "
                            "step (default 4096)")
    serve.add_argument("--multi", action="store_true",
                       help="multi-tenant mode: --store is a root "
                            "directory of named sessions served by the "
                            "asyncio hub (verbs open/attach/detach/"
                            "sessions; see docs/protocol.md)")
    serve.add_argument("--open", metavar="NAME[,NAME...]", default=None,
                       help="with --multi: sessions to open (create or "
                            "recover) at boot")

    whatif = sub.add_parser("whatif", help="link-failure query sweep")
    whatif.add_argument("dataset", choices=sorted(DATASET_BUILDERS))
    whatif.add_argument("--scale", type=float, default=1.0)
    whatif.add_argument("--loops", action="store_true",
                        help="also check loops in affected subgraphs")
    whatif.add_argument("--speculate", action="store_true",
                        help="evaluate each link failure in a "
                             "copy-on-write speculative fork (remove the "
                             "link's rules, check loops, discard) instead "
                             "of the goal-directed read-only query")

    allpairs = sub.add_parser(
        "allpairs", help="Algorithm 3: all-pairs reachability of all atoms")
    allpairs.add_argument("dataset", choices=sorted(DATASET_BUILDERS))
    allpairs.add_argument("--scale", type=float, default=1.0)

    blackholes = sub.add_parser(
        "blackholes", help="find nodes that silently swallow traffic")
    blackholes.add_argument("dataset", choices=sorted(DATASET_BUILDERS))
    blackholes.add_argument("--scale", type=float, default=1.0)

    report = sub.add_parser(
        "report", help="regenerate the full experiment report (markdown)")
    report.add_argument("-o", "--output", default="experiment_report.md")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "backends": _cmd_backends,
        "generate": _cmd_generate,
        "replay": _cmd_replay,
        "whatif": _cmd_whatif,
        "allpairs": _cmd_allpairs,
        "blackholes": _cmd_blackholes,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "scenario": _cmd_scenario,
        "fuzz": _cmd_fuzz,
    }
    try:
        return handlers[args.command](args)
    except _READABLE_ERRORS as exc:
        # Bad family names, malformed traces/repro files, unknown
        # backends: a message and exit 2, never a bare traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
