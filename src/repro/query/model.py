"""Typed queries and the uniform result envelope (the Query API).

The session's historical query surface grew one method — and one return
shape — per question: ``flows_on`` returned spans, ``reachable`` spans,
``what_if_link_down`` spans with the subgraph dropped on the floor, and
``find_loops`` node cycles.  This module unifies them: a query is a
small frozen dataclass (:class:`FlowsOn`, :class:`Reachable`,
:class:`LinkDown`, :class:`Loops`), an answer is always a
:class:`QueryResult` carrying every currency the backends can produce —
packet-space spans, atom ids, the affected link subgraph, loop
violations and the evaluation time — with fields the backend cannot
fill left ``None``/empty.

The payload helpers define the daemon wire form of both sides
(``{"cmd": "query", "query": {"kind": ...}}``; see docs/protocol.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.rules import Link

#: A forwarding cycle as an ordered node tuple; a packet-space answer as
#: canonical half-open ``(lo, hi)`` interval pairs.
Cycle = Tuple[object, ...]
Spans = List[Tuple[int, int]]

LinkLike = Union[Link, Tuple[object, object]]


def as_link(link: LinkLike) -> Link:
    """Normalize a ``(source, target)`` pair into a :class:`Link`."""
    return link if isinstance(link, Link) else Link(*link)


@dataclass(frozen=True)
class FlowsOn:
    """Which packets currently flow along ``link``?"""

    link: LinkLike


@dataclass(frozen=True)
class Reachable:
    """Which packets can travel from ``src`` to ``dst``?"""

    src: object
    dst: object


@dataclass(frozen=True)
class LinkDown:
    """What is the fate of packets using ``link`` if it fails (§4.3.2)?

    With ``loops=True`` the affected subgraph is additionally swept for
    forwarding loops (Table 4's "+Loops" column).
    """

    link: LinkLike
    loops: bool = False


@dataclass(frozen=True)
class Loops:
    """Enumerate all forwarding loops in the current state."""


Query = Union[FlowsOn, Reachable, LinkDown, Loops]

QUERY_KINDS: Dict[type, str] = {
    FlowsOn: "flows_on",
    Reachable: "reachable",
    LinkDown: "link_down",
    Loops: "loops",
}


@dataclass
class QueryResult:
    """The uniform answer envelope every :class:`Query` resolves to.

    ``spans`` is always populated (the packet-space view every backend
    shares); ``atoms`` and ``subgraph`` are filled by the in-process
    Delta-net backends and ``None`` where the backend has no atom
    currency; ``violations`` carries forwarding cycles for
    :class:`Loops` and ``LinkDown(loops=True)``.
    """

    kind: str
    backend: str
    spans: Spans = field(default_factory=list)
    #: Affected/arriving atom ids, ascending — in-process backends only.
    atoms: Optional[List[int]] = None
    #: ``link -> affected atom ids`` restriction of the labelled graph.
    subgraph: Optional[Dict[Link, List[int]]] = None
    #: Forwarding cycles found, canonicalized node tuples.
    violations: List[Cycle] = field(default_factory=list)
    #: Wall-clock evaluation time in seconds.
    seconds: float = 0.0

    def to_payload(self) -> dict:
        """The deterministic wire form (daemon ``query`` responses)."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "backend": self.backend,
            "spans": [[lo, hi] for lo, hi in self.spans],
            "violations": [list(cycle) for cycle in self.violations],
            "micros": int(self.seconds * 1_000_000),
        }
        payload["atoms"] = list(self.atoms) if self.atoms is not None else None
        if self.subgraph is None:
            payload["subgraph"] = None
        else:
            payload["subgraph"] = [
                [[link.source, link.target], list(atoms)]
                for link, atoms in sorted(self.subgraph.items(),
                                          key=lambda item: repr(item[0]))]
        return payload


class QueryPayloadError(ValueError):
    """A wire-form query payload that does not parse into a Query."""


def query_to_payload(query: Query) -> dict:
    """The wire form of ``query`` (the client side of ``cmd: query``)."""
    if isinstance(query, FlowsOn):
        link = as_link(query.link)
        return {"kind": "flows_on", "source": link.source,
                "target": link.target}
    if isinstance(query, Reachable):
        return {"kind": "reachable", "src": query.src, "dst": query.dst}
    if isinstance(query, LinkDown):
        link = as_link(query.link)
        return {"kind": "link_down", "source": link.source,
                "target": link.target, "loops": query.loops}
    if isinstance(query, Loops):
        return {"kind": "loops"}
    raise QueryPayloadError(f"not a Query: {query!r}")


def query_from_payload(payload: Any) -> Query:
    """Parse the wire form back into a typed :class:`Query`."""
    if not isinstance(payload, dict):
        raise QueryPayloadError("query payload must be an object")
    kind = payload.get("kind")
    if kind == "flows_on":
        return FlowsOn(link=_payload_link(payload))
    if kind == "reachable":
        if "src" not in payload or "dst" not in payload:
            raise QueryPayloadError("reachable query needs src and dst")
        return Reachable(src=payload["src"], dst=payload["dst"])
    if kind == "link_down":
        return LinkDown(link=_payload_link(payload),
                        loops=bool(payload.get("loops", False)))
    if kind == "loops":
        return Loops()
    raise QueryPayloadError(f"unknown query kind {kind!r}")


def _payload_link(payload: dict) -> Link:
    if "source" not in payload or "target" not in payload:
        raise QueryPayloadError(
            f"{payload.get('kind')} query needs source and target")
    return Link(payload["source"], payload["target"])
